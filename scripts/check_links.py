#!/usr/bin/env python
"""Markdown link checker for the doctested guides.

Walks ``README.md`` and every ``docs/*.md`` page, extracts the inline
links and reference definitions, and fails if any *local* target is
dangling — a missing file, or a missing anchor when the link carries a
``#fragment``.  External (``http(s)://``/``mailto:``) links are listed
but not fetched: CI must stay hermetic, and the guides only use external
links for citations.

Usage::

    python scripts/check_links.py [root]

Exit status 0 when every local link resolves, 1 otherwise (each broken
link is reported as ``file:line: target — reason``).
"""

import re
import sys
from pathlib import Path

#: inline links/images: [text](target) — target taken up to the first
#: unescaped closing paren; titles ("...") are stripped below
_INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: reference definitions: [label]: target
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
#: fenced code blocks are skipped entirely (they hold code, not links)
_FENCE = re.compile(r"^(```|~~~)")

_EXTERNAL = ("http://", "https://", "mailto:")


def _anchors(path: Path) -> set:
    """GitHub-style anchors for every heading in *path*."""
    found = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence or not line.startswith("#"):
            continue
        title = line.lstrip("#").strip()
        slug = re.sub(r"[^\w\- ]", "", title.lower()).strip()
        found.add(re.sub(r"\s+", "-", slug))
    return found


def _links(path: Path):
    """Yield ``(lineno, target)`` for every link outside code fences."""
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _INLINE.finditer(line):
            yield lineno, match.group(1)
        for match in _REFDEF.finditer(line):
            yield lineno, match.group(1)


def check_file(path: Path, root: Path) -> list:
    """Return ``(path, lineno, target, reason)`` for each broken link."""
    broken = []
    for lineno, target in _links(path):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            if target.startswith("#") and target[1:] not in _anchors(path):
                broken.append((path, lineno, target, "missing anchor"))
            continue
        raw, _, fragment = target.partition("#")
        candidate = (path.parent / raw).resolve()
        try:
            candidate.relative_to(root)
        except ValueError:
            broken.append((path, lineno, target, "escapes the repository"))
            continue
        if not candidate.exists():
            broken.append((path, lineno, target, "missing file"))
            continue
        if fragment and candidate.suffix == ".md":
            if fragment not in _anchors(candidate):
                broken.append((path, lineno, target, "missing anchor"))
    return broken


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parents[1]
    pages = sorted([root / "README.md", *(root / "docs").glob("*.md")])
    broken = []
    checked = 0
    for page in pages:
        if not page.exists():
            broken.append((page, 0, str(page), "page itself is missing"))
            continue
        checked += sum(1 for _ in _links(page))
        broken.extend(check_file(page, root))
    if broken:
        for path, lineno, target, reason in broken:
            rel = path.relative_to(root) if path.is_absolute() else path
            print(f"{rel}:{lineno}: {target} — {reason}", file=sys.stderr)
        print(
            f"{len(broken)} broken link(s) across {len(pages)} page(s)",
            file=sys.stderr,
        )
        return 1
    print(f"{checked} links OK across {len(pages)} page(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
