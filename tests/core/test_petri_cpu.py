"""The Figure 3 Petri net: structure (Table 1), invariants, and accuracy."""

import pytest

from repro.core.exact_renewal import ExactRenewalModel
from repro.core.params import CPUModelParams
from repro.core.petri_cpu import PetriCPUModel, build_cpu_net, describe_transitions
from repro.des.distributions import Deterministic, Exponential
from repro.petri.analysis import ReachabilityOptions, explore_reachability
from repro.petri.simulator import PetriNetSimulator
from repro.petri.transitions import ImmediateTransition, TimedTransition


class TestStructureMatchesPaper:
    def setup_method(self):
        self.params = CPUModelParams.paper_defaults(T=0.3, D=0.001)
        self.net = build_cpu_net(self.params)

    def test_figure3_places_present(self):
        expected = {
            "P0", "P1", "CPU_Buffer", "P6",
            "Stand_By", "Power_Up", "CPU_ON", "Idle", "Active",
        }
        assert set(self.net.place_names) == expected

    def test_table1_transitions_present(self):
        expected = {"AR", "T1", "T2", "SR", "PDT", "T5", "T6", "PUT"}
        assert set(self.net.transition_names) == expected

    def test_table1_priorities(self):
        priorities = {
            t.name: t.priority
            for t in self.net.transitions
            if isinstance(t, ImmediateTransition)
        }
        assert priorities == {"T1": 4, "T6": 3, "T5": 2, "T2": 1}

    def test_table1_distributions(self):
        ar = self.net.transition("AR")
        sr = self.net.transition("SR")
        pdt = self.net.transition("PDT")
        put = self.net.transition("PUT")
        assert isinstance(ar, TimedTransition) and ar.rate == 1.0
        assert isinstance(sr, TimedTransition) and sr.rate == 10.0
        assert isinstance(pdt.distribution, Deterministic)
        assert pdt.distribution.value == pytest.approx(0.3)
        assert isinstance(put.distribution, Deterministic)
        assert put.distribution.value == pytest.approx(0.001)

    def test_pdt_has_paper_inhibitor_arcs(self):
        from repro.petri.arcs import ArcKind

        inhibitors = {
            a.place
            for a in self.net.arcs
            if a.kind is ArcKind.INHIBITOR and a.transition == "PDT"
        }
        assert inhibitors == {"Active", "CPU_Buffer"}

    def test_initial_marking_standby(self):
        m = self.net.initial_marking()
        assert m["Stand_By"] == 1
        assert m["Idle"] == 1
        assert m["P0"] == 1
        assert m.total_tokens() == 3

    def test_describe_transitions_matches_table1(self):
        rows = {r["transition"]: r for r in describe_transitions(self.params)}
        assert rows["T1"]["priority"] == "4"
        assert rows["T2"]["priority"] == "1"
        assert rows["T5"]["priority"] == "2"
        assert rows["T6"]["priority"] == "3"
        assert rows["AR"]["firing_distribution"] == "Exponential"
        assert rows["PDT"]["firing_distribution"] == "Deterministic"
        assert len(rows) == 8

    def test_net_passes_validation(self):
        assert self.net.validate() == []


class TestInvariants:
    def test_power_state_invariant_in_reachability(self):
        # Stand_By + Power_Up + CPU_ON = 1 and Idle + Active = 1 in every
        # reachable marking (explore with a bounded queue surrogate: cap
        # exploration; invariants hold in all markings seen)
        net = build_cpu_net(CPUModelParams.paper_defaults())
        g = explore_reachability(net, ReachabilityOptions(max_markings=400))
        for m in g.markings:
            assert m["Stand_By"] + m["Power_Up"] + m["CPU_ON"] == 1
            assert m["Idle"] + m["Active"] == 1
            assert m["P0"] + m["P1"] == 1

    def test_invariants_hold_at_end_of_simulation(self):
        model = PetriCPUModel(CPUModelParams.paper_defaults(T=0.2, D=0.3), seed=3)
        res = model.run(horizon=500.0)
        m = res.raw.final_marking
        assert m["Stand_By"] + m["Power_Up"] + m["CPU_ON"] == 1
        assert m["Idle"] + m["Active"] == 1


class TestAccuracy:
    @pytest.mark.parametrize(
        "T,D",
        [(0.1, 0.001), (0.3, 0.3), (0.0, 10.0)],
        ids=["paper-small-D", "moderate", "huge-D"],
    )
    def test_matches_exact_renewal(self, T, D):
        p = CPUModelParams.paper_defaults(T=T, D=D)
        exact = ExactRenewalModel(p).solve().fractions()
        got = PetriCPUModel(p, seed=42).run(horizon=20_000.0, warmup=200.0)
        assert got.fractions.l1_distance(exact) < 0.03

    def test_fractions_sum_to_one(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.001)
        got = PetriCPUModel(p, seed=1).run(horizon=2_000.0)
        assert got.fractions.total() == pytest.approx(1.0, abs=1e-9)

    def test_throughput_matches_arrival_rate(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.001)
        got = PetriCPUModel(p, seed=2).run(horizon=20_000.0, warmup=200.0)
        assert got.throughput == pytest.approx(p.arrival_rate, rel=0.05)

    def test_jobs_in_system_close_to_mm1(self):
        # with large T the system is essentially M/M/1: L = rho/(1-rho)
        p = CPUModelParams.paper_defaults(T=20.0, D=0.001)
        got = PetriCPUModel(p, seed=3).run(horizon=30_000.0, warmup=500.0)
        rho = p.utilization
        assert got.jobs_in_system == pytest.approx(rho / (1 - rho), rel=0.15)

    def test_replication_averages(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.001)
        model = PetriCPUModel(p, seed=5)
        rep = model.run_replicated(horizon=2_000.0, n_replications=3, warmup=100.0)
        assert rep.fractions.total() == pytest.approx(1.0, abs=1e-6)

    def test_replication_reproducible(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.001)
        a = PetriCPUModel(p, seed=5).run_replicated(500.0, 2)
        b = PetriCPUModel(p, seed=5).run_replicated(500.0, 2)
        assert a.fractions.as_dict() == b.fractions.as_dict()

    def test_zero_threshold_handled(self):
        # T = 0 uses the tiny positive surrogate delay
        p = CPUModelParams.paper_defaults(T=0.0, D=0.001)
        exact = ExactRenewalModel(p).solve().fractions()
        got = PetriCPUModel(p, seed=9).run(horizon=10_000.0, warmup=100.0)
        assert got.fractions.l1_distance(exact) < 0.03
        assert got.fractions.idle == pytest.approx(0.0, abs=1e-3)
