"""CPU simulators vs the exact renewal ground truth, and vs each other."""

import numpy as np
import pytest

from repro.core.exact_renewal import ExactRenewalModel
from repro.core.params import CPUModelParams
from repro.core.simulation_cpu import (
    CPUEventSimulator,
    fractions_from_summary,
    replicate_cpu_simulation,
    simulate_job_scan,
)
from repro.des.distributions import Deterministic, Exponential
from repro.des.random_streams import StreamManager
from repro.workload.base import RenewalProcess


class TestEventSimulatorVsExact:
    @pytest.mark.parametrize(
        "T,D",
        [(0.1, 0.001), (0.3, 0.3), (0.0, 10.0), (1.0, 0.001)],
        ids=["paper-small-D", "moderate", "huge-D", "large-T"],
    )
    def test_fractions_match_exact(self, T, D):
        p = CPUModelParams.paper_defaults(T=T, D=D)
        exact = ExactRenewalModel(p).solve().fractions()
        res = CPUEventSimulator(p, seed=101).run(horizon=30_000.0, warmup=500.0)
        assert res.fractions.l1_distance(exact) < 0.02

    def test_fractions_sum_to_one(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.3)
        res = CPUEventSimulator(p, seed=1).run(horizon=2_000.0)
        assert res.fractions.total() == pytest.approx(1.0, abs=1e-9)

    def test_throughput_equals_arrival_rate(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.001)
        res = CPUEventSimulator(p, seed=5).run(horizon=20_000.0, warmup=500.0)
        rate = res.jobs_served / res.horizon
        assert rate == pytest.approx(p.arrival_rate, rel=0.03)

    def test_latency_above_service_time(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.3)
        res = CPUEventSimulator(p, seed=5).run(horizon=10_000.0)
        assert res.mean_latency > p.mean_service_time

    def test_littles_law_holds_in_measurement(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.3)
        res = CPUEventSimulator(p, seed=8).run(horizon=50_000.0, warmup=1_000.0)
        assert res.mean_jobs_in_system == pytest.approx(
            p.arrival_rate * res.mean_latency, rel=0.05
        )

    def test_reproducibility(self):
        p = CPUModelParams.paper_defaults()
        a = CPUEventSimulator(p, seed=3).run(horizon=1_000.0)
        b = CPUEventSimulator(p, seed=3).run(horizon=1_000.0)
        assert a.fractions.as_dict() == b.fractions.as_dict()
        assert a.jobs_served == b.jobs_served

    def test_warmup_window_accounting(self):
        p = CPUModelParams.paper_defaults()
        res = CPUEventSimulator(p, seed=4).run(horizon=2_000.0, warmup=500.0)
        assert res.horizon == pytest.approx(1_500.0)

    def test_invalid_args(self):
        sim = CPUEventSimulator(CPUModelParams.paper_defaults(), seed=1)
        with pytest.raises(ValueError):
            sim.run(horizon=0.0)
        with pytest.raises(ValueError):
            sim.run(horizon=10.0, warmup=20.0)


class TestJobScanVsEventSim:
    @pytest.mark.parametrize("T,D", [(0.1, 0.001), (0.5, 0.3), (0.0, 10.0)])
    def test_two_implementations_agree(self, T, D):
        p = CPUModelParams.paper_defaults(T=T, D=D)
        ev = CPUEventSimulator(p, seed=11).run(horizon=40_000.0, warmup=500.0)
        js = simulate_job_scan(p, n_jobs=40_000, rng=np.random.default_rng(12))
        assert ev.fractions.l1_distance(js.fractions) < 0.02

    def test_job_scan_matches_exact(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.3)
        exact = ExactRenewalModel(p).solve().fractions()
        js = simulate_job_scan(p, n_jobs=100_000, rng=np.random.default_rng(0))
        assert js.fractions.l1_distance(exact) < 0.01

    def test_job_scan_serves_all_jobs(self):
        p = CPUModelParams.paper_defaults()
        js = simulate_job_scan(p, n_jobs=500, rng=np.random.default_rng(1))
        assert js.jobs_served == 500
        assert js.jobs_arrived == 500

    def test_job_scan_latency_includes_powerup(self):
        # with T=0 every lone arrival pays D: latency >= D + service
        p = CPUModelParams.paper_defaults(T=0.0, D=0.5)
        js = simulate_job_scan(p, n_jobs=20_000, rng=np.random.default_rng(2))
        assert js.mean_latency > 0.5

    def test_job_scan_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            simulate_job_scan(CPUModelParams.paper_defaults(), 0,
                              np.random.default_rng(0))


class TestReplication:
    def test_summary_fields(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.001)
        s = replicate_cpu_simulation(p, horizon=1_000.0, n_replications=4, seed=7)
        assert s.n == 4
        f = fractions_from_summary(s)
        assert f.total() == pytest.approx(1.0, abs=0.01)

    def test_ci_narrows_with_horizon(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.001)
        short = replicate_cpu_simulation(p, horizon=500.0, n_replications=5, seed=1)
        long = replicate_cpu_simulation(p, horizon=8_000.0, n_replications=5, seed=1)
        assert long.half_width("standby") < short.half_width("standby")


class TestGeneralWorkloads:
    def test_renewal_deterministic_arrivals(self):
        # deterministic gaps of 1s with T > gap: the CPU never powers down
        p = CPUModelParams.paper_defaults(T=2.0, D=0.3)
        process = RenewalProcess(Deterministic(1.0))
        res = CPUEventSimulator(
            p, seed=21, arrival_process=process
        ).run(horizon=10_000.0, warmup=100.0)
        assert res.fractions.standby == pytest.approx(0.0, abs=1e-6)
        assert res.fractions.powerup < 1e-3  # only the initial wake-up
        assert res.fractions.active == pytest.approx(0.1, abs=0.01)

    def test_custom_service_distribution(self):
        # deterministic service of 0.1s: active fraction still rho = 0.1
        p = CPUModelParams.paper_defaults(T=0.3, D=0.001)
        res = CPUEventSimulator(
            p, seed=22, service_distribution=Deterministic(0.1)
        ).run(horizon=20_000.0, warmup=200.0)
        assert res.fractions.active == pytest.approx(0.1, abs=0.01)

    def test_exponential_process_equals_default_in_mean(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.001)
        explicit = CPUEventSimulator(
            p, seed=23, arrival_process=RenewalProcess(Exponential(1.0))
        ).run(horizon=20_000.0, warmup=200.0)
        default = CPUEventSimulator(p, seed=24).run(
            horizon=20_000.0, warmup=200.0
        )
        assert explicit.fractions.l1_distance(default.fractions) < 0.03
