"""The paper's closed forms: internal identities and limiting cases."""

import math

import pytest

from repro.core.exact_renewal import ExactRenewalModel
from repro.core.markov_supplementary import MarkovSupplementaryModel
from repro.core.params import CPUModelParams


class TestInternalIdentities:
    def test_fractions_sum_to_one(self):
        for T in (0.0, 0.1, 0.5, 1.0, 5.0):
            for D in (0.001, 0.3, 10.0):
                p = CPUModelParams.paper_defaults(T=T, D=D)
                f = MarkovSupplementaryModel(p).solve().fractions()
                assert f.total() == pytest.approx(1.0, abs=1e-12)

    def test_stable_form_matches_paper_form(self):
        # where the literal equations don't overflow the two must agree
        for T in (0.0, 0.3, 1.0, 20.0):
            for D in (0.001, 0.3, 10.0):
                p = CPUModelParams.paper_defaults(T=T, D=D)
                model = MarkovSupplementaryModel(p)
                a = model.solve()
                b = model.solve_paper_form()
                assert a.p_standby == pytest.approx(b.p_standby, rel=1e-12)
                assert a.p_idle == pytest.approx(b.p_idle, rel=1e-12)
                assert a.p_powerup == pytest.approx(b.p_powerup, rel=1e-12)
                assert a.utilization == pytest.approx(b.utilization, rel=1e-12)
                assert a.mean_jobs == pytest.approx(b.mean_jobs, rel=1e-12)

    def test_eq12_idle_standby_relation(self):
        # p_idle = (e^{λT} - 1) p_standby
        p = CPUModelParams.paper_defaults(T=0.7, D=0.3)
        st = MarkovSupplementaryModel(p).solve()
        assert st.p_idle == pytest.approx(
            (math.exp(p.arrival_rate * p.power_down_threshold) - 1.0)
            * st.p_standby
        )

    def test_eq13_powerup_standby_relation(self):
        # p_powerup = (1 - e^{-λD}) p_standby
        p = CPUModelParams.paper_defaults(T=0.4, D=0.25)
        st = MarkovSupplementaryModel(p).solve()
        assert st.p_powerup == pytest.approx(
            (1.0 - math.exp(-p.arrival_rate * p.power_up_delay)) * st.p_standby
        )

    def test_latency_is_littles_law(self):
        p = CPUModelParams.paper_defaults(T=0.2, D=0.1)
        st = MarkovSupplementaryModel(p).solve()
        assert st.mean_latency == pytest.approx(st.mean_jobs / p.arrival_rate)

    def test_no_overflow_for_huge_threshold(self):
        # λT = 5000 overflows exp() in the printed equations
        p = CPUModelParams.paper_defaults(T=5000.0, D=0.5)
        st = MarkovSupplementaryModel(p).solve()
        assert st.p_standby == pytest.approx(0.0, abs=1e-300)
        assert st.p_idle + st.utilization == pytest.approx(1.0)


class TestLimits:
    def test_t_zero_d_zero_is_pure_sleep_mm1(self):
        # instant power transitions: standby replaces idle entirely
        p = CPUModelParams.paper_defaults(T=0.0, D=0.0)
        st = MarkovSupplementaryModel(p).solve()
        assert st.p_idle == 0.0
        assert st.p_powerup == 0.0
        assert st.p_standby == pytest.approx(1.0 - p.utilization)
        assert st.utilization == pytest.approx(p.utilization)

    def test_large_t_approaches_plain_mm1(self):
        p = CPUModelParams.paper_defaults(T=50.0, D=0.3)
        st = MarkovSupplementaryModel(p).solve()
        assert st.p_idle == pytest.approx(1.0 - p.utilization, rel=1e-6)
        assert st.utilization == pytest.approx(p.utilization, rel=1e-6)
        assert st.p_standby < 1e-10

    def test_mean_jobs_mm1_limit(self):
        # T -> inf removes power management: L -> rho/(1-rho)
        p = CPUModelParams.paper_defaults(T=50.0, D=0.001)
        st = MarkovSupplementaryModel(p).solve()
        rho = p.utilization
        assert st.mean_jobs == pytest.approx(rho / (1.0 - rho), rel=1e-4)


class TestApproximationQuality:
    def test_agrees_with_exact_for_tiny_d(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=1e-4)
        approx = MarkovSupplementaryModel(p).solve().fractions()
        exact = ExactRenewalModel(p).solve().fractions()
        assert approx.l1_distance(exact) < 1e-4

    def test_first_order_agreement_in_lambda_d(self):
        # error should shrink ~ quadratically as D -> 0
        p_big = CPUModelParams.paper_defaults(T=0.3, D=0.02)
        p_small = CPUModelParams.paper_defaults(T=0.3, D=0.002)
        err_big = (
            MarkovSupplementaryModel(p_big).solve().fractions().l1_distance(
                ExactRenewalModel(p_big).solve().fractions()
            )
        )
        err_small = (
            MarkovSupplementaryModel(p_small)
            .solve()
            .fractions()
            .l1_distance(ExactRenewalModel(p_small).solve().fractions())
        )
        assert err_small < err_big / 50.0  # ~quadratic: factor 100 expected

    def test_utilization_bias_grows_with_d(self):
        # the approximation overestimates utilization for large D
        p = CPUModelParams.paper_defaults(T=0.0, D=10.0)
        st = MarkovSupplementaryModel(p).solve()
        assert st.utilization > 3.0 * p.utilization  # paper's collapse


class TestEnergyEquations:
    def test_eq23_total_running_time(self):
        p = CPUModelParams.paper_defaults(T=0.2, D=0.001)
        model = MarkovSupplementaryModel(p)
        st = model.solve()
        n = 1000.0
        assert model.total_running_time(n) == pytest.approx(
            (n + st.mean_jobs**2) / p.arrival_rate
        )

    def test_eq24_total_energy(self):
        p = CPUModelParams.paper_defaults(T=0.2, D=0.001)
        model = MarkovSupplementaryModel(p)
        st = model.solve()
        n = 1000.0
        avg_mw = p.profile.average_power_mw(st.fractions())
        want = avg_mw * model.total_running_time(n) / 1000.0
        assert model.total_energy_joules(n) == pytest.approx(want)

    def test_energy_in_plausible_range(self):
        # for the paper's parameters energy over 1000s is tens of Joules
        p = CPUModelParams.paper_defaults(T=0.5, D=0.001)
        e = MarkovSupplementaryModel(p).total_energy_joules(1000.0)
        assert 17.0 < e < 193.0

    def test_negative_jobs_rejected(self):
        p = CPUModelParams.paper_defaults()
        with pytest.raises(ValueError):
            MarkovSupplementaryModel(p).total_running_time(-1.0)
