"""Phase-type (Erlang-k) CTMC: convergence to exact, structure, truncation."""

import pytest

from repro.core.exact_renewal import ExactRenewalModel
from repro.core.markov_supplementary import MarkovSupplementaryModel
from repro.core.params import CPUModelParams
from repro.core.phase_type import PhaseTypeModel


class TestConvergence:
    def test_error_decreases_with_stages(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.3)
        exact = ExactRenewalModel(p).solve().fractions()
        errors = []
        for k in (1, 4, 16, 64):
            f = PhaseTypeModel(p, stages=k).solve().fractions
            errors.append(f.l1_distance(exact))
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 1e-3

    def test_large_k_matches_exact_closely(self):
        p = CPUModelParams.paper_defaults(T=0.5, D=10.0)
        exact = ExactRenewalModel(p).solve().fractions()
        f = PhaseTypeModel(p, stages=64).solve().fractions
        assert f.l1_distance(exact) < 2e-3

    def test_beats_supplementary_approximation_at_large_d(self):
        # the paper's conclusion asks for a better constant-delay Markov
        # treatment; even Erlang-1 does better than the supplementary
        # variables at D = 10
        p = CPUModelParams.paper_defaults(T=0.3, D=10.0)
        exact = ExactRenewalModel(p).solve().fractions()
        markov_err = (
            MarkovSupplementaryModel(p).solve().fractions().l1_distance(exact)
        )
        erlang1_err = PhaseTypeModel(p, stages=1).solve().fractions.l1_distance(exact)
        assert erlang1_err < markov_err / 10.0

    def test_utilization_always_close_to_rho(self):
        # phase-type respects work conservation up to truncation error
        p = CPUModelParams.paper_defaults(T=0.2, D=10.0)
        sol = PhaseTypeModel(p, stages=16).solve()
        assert sol.fractions.active == pytest.approx(p.utilization, abs=0.01)


class TestStructure:
    def test_fractions_sum_to_one(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.3)
        sol = PhaseTypeModel(p, stages=8).solve()
        assert sol.fractions.total() == pytest.approx(1.0, abs=1e-9)

    def test_truncation_mass_reported_small(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.3)
        sol = PhaseTypeModel(p, stages=8).solve()
        assert sol.truncation_mass < 1e-6

    def test_zero_threshold_removes_idle_states(self):
        p = CPUModelParams.paper_defaults(T=0.0, D=0.3)
        sol = PhaseTypeModel(p, stages=8).solve()
        assert sol.fractions.idle == 0.0
        assert sol.stages_idle == 0

    def test_zero_delay_removes_powerup_states(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.0)
        sol = PhaseTypeModel(p, stages=8).solve()
        assert sol.fractions.powerup == 0.0
        assert sol.stages_powerup == 0

    def test_separate_stage_counts(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.3)
        m = PhaseTypeModel(p, stages=4, stages_powerup=7, stages_idle=3)
        sol = m.solve()
        assert sol.stages_powerup == 7
        assert sol.stages_idle == 3

    def test_state_count_formula(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.3)
        m = PhaseTypeModel(p, stages=5, n_max=20)
        sol = m.solve()
        # standby + powerup(k*n_max) + busy(n_max) + idle(k)
        assert sol.n_states == 1 + 5 * 20 + 20 + 5

    def test_mean_jobs_close_to_mm1_for_large_t(self):
        p = CPUModelParams.paper_defaults(T=20.0, D=0.001)
        sol = PhaseTypeModel(p, stages=16).solve()
        rho = p.utilization
        assert sol.mean_jobs == pytest.approx(rho / (1 - rho), rel=0.02)


class TestValidation:
    def test_bad_stage_count(self):
        p = CPUModelParams.paper_defaults()
        with pytest.raises(ValueError):
            PhaseTypeModel(p, stages=0)

    def test_bad_n_max(self):
        p = CPUModelParams.paper_defaults()
        with pytest.raises(ValueError):
            PhaseTypeModel(p, n_max=1)

    def test_auto_n_max_scales_with_backlog(self):
        small = PhaseTypeModel(CPUModelParams.paper_defaults(D=0.001))
        big = PhaseTypeModel(CPUModelParams.paper_defaults(D=10.0))
        assert big.n_max > small.n_max
