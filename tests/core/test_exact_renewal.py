"""Exact renewal-reward model: identities, limits, and Monte-Carlo truth."""

import math

import numpy as np
import pytest

from repro.core.exact_renewal import ExactRenewalModel
from repro.core.params import CPUModelParams


class TestIdentities:
    @pytest.mark.parametrize("T", [0.0, 0.1, 0.5, 2.0])
    @pytest.mark.parametrize("D", [0.0, 0.001, 0.3, 10.0])
    def test_fractions_sum_to_one(self, T, D):
        p = CPUModelParams.paper_defaults(T=T, D=D)
        f = ExactRenewalModel(p).solve().fractions()
        assert f.total() == pytest.approx(1.0, abs=1e-12)

    def test_active_is_exactly_rho(self):
        # work conservation: the exact model never violates it
        for T, D in [(0.0, 10.0), (0.5, 0.3), (3.0, 0.0)]:
            p = CPUModelParams.paper_defaults(T=T, D=D)
            st = ExactRenewalModel(p).solve()
            assert st.utilization == p.utilization

    def test_closed_form_values(self):
        lam, mu, T, D = 1.0, 10.0, 0.3, 0.5
        p = CPUModelParams(arrival_rate=lam, service_rate=mu,
                           power_down_threshold=T, power_up_delay=D)
        st = ExactRenewalModel(p).solve()
        rho = lam / mu
        denom = lam * D + math.exp(lam * T)
        assert st.p_standby == pytest.approx((1 - rho) / denom)
        assert st.p_powerup == pytest.approx(lam * D * (1 - rho) / denom)
        assert st.p_idle == pytest.approx(
            (math.exp(lam * T) - 1) * (1 - rho) / denom
        )

    def test_cycle_length(self):
        lam, mu, T, D = 1.0, 10.0, 0.3, 0.5
        p = CPUModelParams(arrival_rate=lam, service_rate=mu,
                           power_down_threshold=T, power_up_delay=D)
        st = ExactRenewalModel(p).solve()
        want = (lam * D + math.exp(lam * T)) / (lam * (1 - lam / mu))
        assert st.mean_cycle_length == pytest.approx(want)
        assert st.power_down_rate == pytest.approx(1.0 / want)
        assert st.jobs_per_cycle == pytest.approx(lam * want)

    def test_no_overflow_for_huge_threshold(self):
        p = CPUModelParams.paper_defaults(T=10_000.0, D=1.0)
        st = ExactRenewalModel(p).solve()
        assert st.p_idle == pytest.approx(1.0 - p.utilization)
        assert st.p_standby == pytest.approx(0.0, abs=1e-300)


class TestLimits:
    def test_t_zero_d_zero(self):
        p = CPUModelParams.paper_defaults(T=0.0, D=0.0)
        st = ExactRenewalModel(p).solve()
        assert st.p_standby == pytest.approx(1.0 - p.utilization)
        assert st.p_idle == 0.0
        assert st.p_powerup == 0.0

    def test_large_t_is_mm1(self):
        p = CPUModelParams.paper_defaults(T=40.0, D=5.0)
        st = ExactRenewalModel(p).solve()
        assert st.p_idle == pytest.approx(1.0 - p.utilization, rel=1e-6)

    def test_large_d_powerup_dominates(self):
        p = CPUModelParams.paper_defaults(T=0.0, D=10.0)
        st = ExactRenewalModel(p).solve()
        # λD=10: powerup = 10(1-ρ)/11
        assert st.p_powerup == pytest.approx(10.0 * 0.9 / 11.0)


class TestMonteCarloCycle:
    def test_cycle_simulation_matches_closed_form(self, rng):
        """Simulate regeneration cycles directly (independent of the DES)."""
        lam, mu, T, D = 1.0, 5.0, 0.4, 0.6
        p = CPUModelParams(arrival_rate=lam, service_rate=mu,
                           power_down_threshold=T, power_up_delay=D)
        st = ExactRenewalModel(p).solve()

        n_cycles = 4000
        totals = {"standby": 0.0, "powerup": 0.0, "idle": 0.0, "active": 0.0}
        for _ in range(n_cycles):
            totals["standby"] += rng.exponential(1.0 / lam)
            totals["powerup"] += D
            n = 1 + rng.poisson(lam * D)
            while True:
                # busy period serving n jobs (arrivals during service join)
                while n > 0:
                    s = rng.exponential(1.0 / mu)
                    totals["active"] += s
                    n -= 1 - rng.poisson(lam * s)
                gap = rng.exponential(1.0 / lam)
                if gap > T:
                    totals["idle"] += T
                    break
                totals["idle"] += gap
                n = 1
        total = sum(totals.values())
        assert totals["standby"] / total == pytest.approx(st.p_standby, rel=0.05)
        assert totals["powerup"] / total == pytest.approx(st.p_powerup, rel=0.05)
        assert totals["idle"] / total == pytest.approx(st.p_idle, rel=0.05)
        assert totals["active"] / total == pytest.approx(p.utilization, rel=0.05)


class TestEnergyAndBias:
    def test_energy_rate_bounds(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.001)
        rate = ExactRenewalModel(p).energy_rate_mw()
        assert 17.0 < rate < 193.0

    def test_energy_scales_linearly(self):
        model = ExactRenewalModel(CPUModelParams.paper_defaults())
        assert model.energy_joules(2000.0) == pytest.approx(
            2.0 * model.energy_joules(1000.0)
        )

    def test_negative_duration_rejected(self):
        model = ExactRenewalModel(CPUModelParams.paper_defaults())
        with pytest.raises(ValueError):
            model.energy_joules(-1.0)

    def test_markov_bias_direction_large_d(self):
        p = CPUModelParams.paper_defaults(T=0.0, D=10.0)
        bias = ExactRenewalModel(p).markov_model_bias()
        assert bias.active > 0.2  # Markov overestimates utilization
        assert bias.powerup < -0.2  # and underestimates powerup

    def test_markov_bias_negligible_small_d(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.001)
        bias = ExactRenewalModel(p).markov_model_bias()
        assert abs(bias.active) < 1e-4
