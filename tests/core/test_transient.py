"""Transient analysis: occupancy curves, cumulative energy, time-to-empty."""

import numpy as np
import pytest

from repro.core.exact_renewal import ExactRenewalModel
from repro.core.params import CPUModelParams
from repro.core.transient import TransientEnergyModel


@pytest.fixture(scope="module")
def model():
    return TransientEnergyModel(
        CPUModelParams.paper_defaults(T=0.3, D=0.3), stages=8
    )


class TestOccupancy:
    def test_starts_in_standby(self, model):
        f = model.occupancy_at(0.0)
        assert f.standby == pytest.approx(1.0)
        assert f.active == 0.0

    def test_converges_to_steady_state(self, model):
        exact = ExactRenewalModel(model.params).solve().fractions()
        late = model.occupancy_at(500.0)
        assert late.l1_distance(exact) < 0.01

    def test_fractions_always_sum_to_one(self, model):
        curve = model.curve(horizon=20.0, n_points=10)
        for i in range(10):
            assert curve.occupancy_at(i).total() == pytest.approx(1.0, abs=1e-9)

    def test_negative_time_rejected(self, model):
        with pytest.raises(ValueError):
            model.occupancy_at(-1.0)


class TestCumulativeEnergy:
    def test_starts_at_zero_and_increases(self, model):
        curve = model.curve(horizon=50.0, n_points=25)
        e = curve.cumulative_energy_joules
        assert e[0] == 0.0
        assert np.all(np.diff(e) > 0.0)

    def test_early_energy_below_steady_rate(self, model):
        # the CPU starts asleep (17 mW), below the steady-state mix
        curve = model.curve(horizon=2.0, n_points=10)
        steady = curve.steady_state_power_mw * curve.times / 1000.0
        assert curve.cumulative_energy_joules[-1] < steady[-1]

    def test_long_run_energy_matches_steady_rate(self, model):
        curve = model.curve(horizon=2_000.0, n_points=120)
        rel = curve.relative_transient_error()
        assert rel[-1] < 0.02  # transient bias washed out

    def test_transient_error_decays(self, model):
        curve = model.curve(horizon=2_000.0, n_points=120)
        rel = curve.relative_transient_error()
        assert rel[-1] < rel[3]

    def test_argument_validation(self, model):
        with pytest.raises(ValueError):
            model.curve(horizon=0.0)
        with pytest.raises(ValueError):
            model.curve(horizon=10.0, n_points=1)


class TestTimeToEmpty:
    def test_matches_steady_rate_for_large_budget(self, model):
        steady_w = ExactRenewalModel(model.params).energy_rate_mw() / 1000.0
        budget = 500.0  # joules; empties way past the transient
        t = model.time_to_empty(budget)
        assert t == pytest.approx(budget / steady_w, rel=0.02)

    def test_small_budget_empties_inside_transient(self, model):
        # 20 ms of standby ~ 0.34 mJ; the budget below empties very early
        t = model.time_to_empty(0.001)
        assert 0.0 < t < 1.0

    def test_monotone_in_budget(self, model):
        assert model.time_to_empty(10.0) < model.time_to_empty(20.0)

    def test_invalid_budget_rejected(self, model):
        with pytest.raises(ValueError):
            model.time_to_empty(0.0)


class TestAgainstSimulation:
    def test_transient_occupancy_matches_monte_carlo(self):
        """Expected occupancy at a fixed time vs many short simulations."""
        from repro.core.simulation_cpu import CPUEventSimulator
        from repro.des.random_streams import StreamManager

        params = CPUModelParams.paper_defaults(T=0.3, D=0.3)
        model = TransientEnergyModel(params, stages=32)
        t_check = 5.0
        predicted = model.occupancy_at(t_check)

        # Monte-Carlo: occupancy over [0, t] averaged over replications
        # approximates the *time-average*, so integrate the prediction too.
        curve = model.curve(horizon=t_check, n_points=40)
        integral = {
            k: float(np.trapezoid(curve.occupancy[k], curve.times)) / t_check
            for k in curve.occupancy
        }
        base = StreamManager(99)
        acc = {"idle": 0.0, "standby": 0.0, "powerup": 0.0, "active": 0.0}
        n_rep = 400
        for i in range(n_rep):
            sim = CPUEventSimulator(params, streams=base.for_replication(i))
            f = sim.run(horizon=t_check).fractions
            for k in acc:
                acc[k] += getattr(f, k) / n_rep
        for k in acc:
            assert acc[k] == pytest.approx(integral[k], abs=0.03), k
