"""Parameters, power profiles, state fractions."""

import math

import pytest

from repro.core.params import (
    PAPER_TOTAL_SIMULATED_TIME,
    PXA271,
    CPUModelParams,
    PowerProfile,
    StateFractions,
)


class TestPowerProfile:
    def test_paper_table3_values(self):
        assert PXA271.standby_mw == 17.0
        assert PXA271.idle_mw == 88.0
        assert PXA271.powerup_mw == 192.442
        assert PXA271.active_mw == 193.0

    def test_average_power_weighting(self):
        f = StateFractions(idle=0.25, standby=0.25, powerup=0.25, active=0.25)
        want = (17.0 + 88.0 + 192.442 + 193.0) / 4.0
        assert PXA271.average_power_mw(f) == pytest.approx(want)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            PowerProfile("bad", -1.0, 1.0, 1.0, 1.0)

    def test_as_dict_keys(self):
        assert set(PXA271.as_dict()) == {"idle", "standby", "powerup", "active"}


class TestParams:
    def test_paper_defaults_table2(self):
        p = CPUModelParams.paper_defaults()
        assert p.arrival_rate == 1.0
        assert p.service_rate == 10.0  # mean service time 0.1 s
        assert p.utilization == pytest.approx(0.1)
        assert PAPER_TOTAL_SIMULATED_TIME == 1000.0

    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            CPUModelParams(arrival_rate=10.0, service_rate=1.0)

    def test_boundary_rho_one_rejected(self):
        with pytest.raises(ValueError):
            CPUModelParams(arrival_rate=2.0, service_rate=2.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            CPUModelParams(power_down_threshold=-0.1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            CPUModelParams(power_up_delay=-0.1)

    def test_with_threshold_copies(self):
        p = CPUModelParams.paper_defaults(T=0.1)
        p2 = p.with_threshold(0.9)
        assert p2.power_down_threshold == 0.9
        assert p.power_down_threshold == 0.1
        assert p2.arrival_rate == p.arrival_rate

    def test_with_powerup_delay_copies(self):
        p = CPUModelParams.paper_defaults(D=0.001)
        assert p.with_powerup_delay(10.0).power_up_delay == 10.0

    def test_derived_times(self):
        p = CPUModelParams.paper_defaults()
        assert p.mean_service_time == pytest.approx(0.1)
        assert p.mean_interarrival_time == pytest.approx(1.0)


class TestStateFractions:
    def test_as_percent(self):
        f = StateFractions(idle=0.2, standby=0.5, powerup=0.05, active=0.25)
        pct = f.as_percent_dict()
        assert pct["standby"] == pytest.approx(50.0)
        assert sum(pct.values()) == pytest.approx(100.0)

    def test_l1_distance_symmetric(self):
        a = StateFractions(0.2, 0.5, 0.05, 0.25)
        b = StateFractions(0.25, 0.45, 0.05, 0.25)
        assert a.l1_distance(b) == pytest.approx(0.1)
        assert a.l1_distance(b) == b.l1_distance(a)
        assert a.l1_distance(a) == 0.0

    def test_mean_pointwise(self):
        a = StateFractions(0.0, 1.0, 0.0, 0.0)
        b = StateFractions(1.0, 0.0, 0.0, 0.0)
        m = StateFractions.mean([a, b])
        assert m.idle == 0.5
        assert m.standby == 0.5

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            StateFractions.mean([])

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            StateFractions(math.nan, 0.0, 0.0, 0.0)
