"""Energy accounting (eq. 25) and battery lifetime."""

import pytest

from repro.core.energy import (
    average_power_mw,
    battery_lifetime_seconds,
    energy_breakdown_joules,
    energy_joules,
)
from repro.core.params import PXA271, StateFractions


def quarter() -> StateFractions:
    return StateFractions(idle=0.25, standby=0.25, powerup=0.25, active=0.25)


class TestEnergy:
    def test_pure_standby(self):
        f = StateFractions(idle=0.0, standby=1.0, powerup=0.0, active=0.0)
        # 17 mW for 1000 s = 17 J
        assert energy_joules(f, PXA271, 1000.0) == pytest.approx(17.0)

    def test_pure_active(self):
        f = StateFractions(idle=0.0, standby=0.0, powerup=0.0, active=1.0)
        assert energy_joules(f, PXA271, 1000.0) == pytest.approx(193.0)

    def test_mixture_weighting(self):
        e = energy_joules(quarter(), PXA271, 1000.0)
        assert e == pytest.approx((17.0 + 88.0 + 192.442 + 193.0) / 4.0)

    def test_linear_in_duration(self):
        f = quarter()
        assert energy_joules(f, PXA271, 500.0) == pytest.approx(
            0.5 * energy_joules(f, PXA271, 1000.0)
        )

    def test_zero_duration(self):
        assert energy_joules(quarter(), PXA271, 0.0) == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            energy_joules(quarter(), PXA271, -1.0)

    def test_breakdown_sums_to_total(self):
        f = StateFractions(idle=0.2, standby=0.6, powerup=0.05, active=0.15)
        parts = energy_breakdown_joules(f, PXA271, 1000.0)
        assert sum(parts.values()) == pytest.approx(
            energy_joules(f, PXA271, 1000.0)
        )
        assert set(parts) == {"idle", "standby", "powerup", "active"}

    def test_average_power_consistency(self):
        f = quarter()
        assert energy_joules(f, PXA271, 1000.0) == pytest.approx(
            average_power_mw(f, PXA271)  # 1000 s cancels the /1000
        )


class TestBatteryLifetime:
    def test_simple_division(self):
        f = StateFractions(idle=0.0, standby=1.0, powerup=0.0, active=0.0)
        # 17 mW drain on a 17 J battery -> 1000 s
        assert battery_lifetime_seconds(f, PXA271, 17.0) == pytest.approx(1000.0)

    def test_lower_power_lives_longer(self):
        sleepy = StateFractions(idle=0.0, standby=0.9, powerup=0.0, active=0.1)
        busy = StateFractions(idle=0.9, standby=0.0, powerup=0.0, active=0.1)
        assert battery_lifetime_seconds(
            sleepy, PXA271, 1000.0
        ) > battery_lifetime_seconds(busy, PXA271, 1000.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            battery_lifetime_seconds(quarter(), PXA271, 0.0)
