"""Sweep machinery and the Table 4/5 delta statistics."""

import numpy as np
import pytest

from repro.core.comparison import (
    SweepConfig,
    delta_energy,
    delta_state_percent,
    delta_table,
    energy_delta_table,
    run_threshold_sweep,
)
from repro.core.params import CPUModelParams

FAST = SweepConfig(
    sim_horizon=1_000.0,
    sim_warmup=50.0,
    sim_replications=2,
    petri_horizon=1_000.0,
    petri_warmup=50.0,
    petri_replications=1,
    phase_stages=8,
    seed=1,
)

THRESHOLDS = (0.0, 0.5, 1.0)


@pytest.fixture(scope="module")
def small_sweep():
    params = CPUModelParams.paper_defaults(D=0.001)
    return run_threshold_sweep(
        params,
        thresholds=THRESHOLDS,
        models=("markov", "exact", "phase_type", "simulation", "petri"),
        config=FAST,
    )


class TestSweep:
    def test_all_models_present(self, small_sweep):
        assert set(small_sweep.models()) == {
            "markov", "exact", "phase_type", "simulation", "petri",
        }

    def test_each_model_has_one_point_per_threshold(self, small_sweep):
        for model in small_sweep.models():
            assert len(small_sweep.fractions[model]) == len(THRESHOLDS)

    def test_series_percent_shape(self, small_sweep):
        s = small_sweep.series_percent("markov", "standby")
        assert s.shape == (len(THRESHOLDS),)
        assert np.all((0.0 <= s) & (s <= 100.0))

    def test_energies_increase_with_threshold(self, small_sweep):
        # Figure 5's shape: larger T keeps the CPU in costlier idle
        e = small_sweep.energies_joules("exact")
        assert np.all(np.diff(e) > 0)

    def test_analytic_models_deterministic(self):
        params = CPUModelParams.paper_defaults(D=0.001)
        a = run_threshold_sweep(params, THRESHOLDS, ("markov",), FAST)
        b = run_threshold_sweep(params, THRESHOLDS, ("markov",), FAST)
        assert a.fractions["markov"][0].as_dict() == (
            b.fractions["markov"][0].as_dict()
        )

    def test_empty_thresholds_rejected(self):
        with pytest.raises(ValueError):
            run_threshold_sweep(
                CPUModelParams.paper_defaults(), [], ("markov",), FAST
            )

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            run_threshold_sweep(
                CPUModelParams.paper_defaults(), THRESHOLDS, ("nope",), FAST
            )


class TestDeltas:
    def test_delta_zero_against_self(self, small_sweep):
        assert delta_state_percent(small_sweep, "markov", "markov") == 0.0
        assert delta_energy(small_sweep, "exact", "exact") == 0.0

    def test_delta_symmetric(self, small_sweep):
        ab = delta_state_percent(small_sweep, "markov", "exact")
        ba = delta_state_percent(small_sweep, "exact", "markov")
        assert ab == pytest.approx(ba)

    def test_markov_exact_tiny_at_small_d(self, small_sweep):
        assert delta_state_percent(small_sweep, "markov", "exact") < 0.1

    def test_stochastic_models_near_exact(self, small_sweep):
        assert delta_state_percent(small_sweep, "simulation", "exact") < 5.0
        assert delta_state_percent(small_sweep, "petri", "exact") < 5.0

    def test_delta_tables_shape(self):
        params = CPUModelParams.paper_defaults
        sweeps = {
            d: run_threshold_sweep(
                params(D=d), THRESHOLDS, ("markov", "exact"), FAST
            )
            for d in (0.001, 10.0)
        }
        pairs = (("markov", "exact"),)
        rows4 = delta_table(sweeps, pairs=pairs)
        rows5 = energy_delta_table(sweeps, pairs=pairs)
        assert [r["power_up_delay"] for r in rows4] == [0.001, 10.0]
        assert len(rows5) == 2
        # the paper's story: Markov collapses at D = 10
        assert rows4[1]["markov-exact"] > 20.0 * rows4[0]["markov-exact"]
        assert rows5[1]["markov-exact"] > rows5[0]["markov-exact"]
