"""Precision-controlled sequential replication."""

import pytest

from repro.des.precision import run_until_precise
from repro.des.random_streams import StreamManager


def noisy_model(streams: StreamManager, loc: float = 10.0, spread: float = 1.0):
    rng = streams.get("n")
    return {"metric": loc + spread * float(rng.normal()),
            "other": 5.0 + 0.1 * float(rng.normal())}


def constant_model(streams: StreamManager):
    streams.get("n").random()
    return {"metric": 7.0}


def zero_mean_model(streams: StreamManager):
    rng = streams.get("n")
    return {"metric": 0.001 * float(rng.normal())}


class TestConvergence:
    def test_converges_and_reports(self):
        res = run_until_precise(
            noisy_model, ["metric"], relative_half_width=0.05, seed=1
        )
        assert res.converged
        assert res.relative_half_widths["metric"] <= 0.05
        assert res.means["metric"] == pytest.approx(10.0, abs=1.0)
        assert res.n_replications >= 5

    def test_tighter_target_needs_more_replications(self):
        loose = run_until_precise(
            noisy_model, ["metric"], relative_half_width=0.10, seed=2
        )
        tight = run_until_precise(
            noisy_model, ["metric"], relative_half_width=0.02, seed=2
        )
        assert tight.n_replications > loose.n_replications

    def test_constant_model_converges_at_pilot(self):
        res = run_until_precise(
            constant_model, ["metric"], relative_half_width=0.01,
            min_replications=5, seed=3,
        )
        assert res.converged
        assert res.n_replications == 5
        assert res.half_widths["metric"] == 0.0

    def test_budget_exhaustion_reported_honestly(self):
        res = run_until_precise(
            noisy_model,
            ["metric"],
            relative_half_width=0.0001,
            max_replications=20,
            seed=4,
        )
        assert not res.converged
        assert res.n_replications == 20
        assert res.relative_half_widths["metric"] > 0.0001

    def test_multiple_metrics_all_controlled(self):
        res = run_until_precise(
            noisy_model, ["metric", "other"], relative_half_width=0.05, seed=5
        )
        assert res.converged
        assert all(v <= 0.05 for v in res.relative_half_widths.values())

    def test_worst_metric_identified(self):
        res = run_until_precise(
            noisy_model, ["metric", "other"], relative_half_width=0.05, seed=6
        )
        worst = res.worst_metric()
        assert res.relative_half_widths[worst] == max(
            res.relative_half_widths.values()
        )

    def test_near_zero_mean_uses_absolute_width(self):
        res = run_until_precise(
            zero_mean_model,
            ["metric"],
            relative_half_width=0.01,
            max_replications=50,
            seed=7,
        )
        # must terminate (absolute criterion) rather than divide by ~0
        assert res.n_replications <= 50


class TestValidation:
    def test_missing_metric_detected(self):
        with pytest.raises(KeyError):
            run_until_precise(constant_model, ["nope"], seed=1)

    def test_empty_metric_list_rejected(self):
        with pytest.raises(ValueError):
            run_until_precise(constant_model, [], seed=1)

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            run_until_precise(constant_model, ["metric"], relative_half_width=1.5)

    def test_bad_budgets_rejected(self):
        with pytest.raises(ValueError):
            run_until_precise(constant_model, ["metric"], min_replications=1)
        with pytest.raises(ValueError):
            run_until_precise(
                constant_model, ["metric"],
                min_replications=10, max_replications=5,
            )


class TestWithCPUSimulation:
    def test_cpu_standby_fraction_to_five_percent(self):
        """End-to-end: drive the CPU simulator to 5 % relative precision."""
        from repro.core.params import CPUModelParams
        from repro.core.simulation_cpu import simulate_cpu_metrics

        params = CPUModelParams.paper_defaults(T=0.3, D=0.001)
        res = run_until_precise(
            simulate_cpu_metrics,
            ["standby", "idle"],
            relative_half_width=0.05,
            seed=11,
            max_replications=100,
            params=params,
            horizon=500.0,
            warmup=50.0,
        )
        assert res.converged
        from repro.core.exact_renewal import ExactRenewalModel

        exact = ExactRenewalModel(params).solve()
        assert res.means["standby"] == pytest.approx(exact.p_standby, rel=0.1)
