"""Statistics collectors: hand-computed trajectories and known answers."""

import math

import numpy as np
import pytest

from repro.des.statistics import (
    BatchMeans,
    TallyStatistic,
    TimeWeightedStatistic,
    confidence_interval,
    mser_truncation_point,
)


class TestTimeWeighted:
    def test_piecewise_constant_average(self):
        # value 2 on [0,1), 4 on [1,3) -> mean = (2*1 + 4*2)/3
        s = TimeWeightedStatistic(2.0)
        s.update(1.0, 4.0)
        assert s.time_average(3.0) == pytest.approx((2.0 + 8.0) / 3.0)

    def test_finalize_closes_last_segment(self):
        s = TimeWeightedStatistic(1.0)
        s.update(2.0, 3.0)
        assert s.finalize(4.0) == pytest.approx((1.0 * 2.0 + 3.0 * 2.0) / 4.0)

    def test_start_time_offsets_window(self):
        s = TimeWeightedStatistic(5.0, start_time=10.0)
        s.update(12.0, 0.0)
        assert s.time_average(14.0) == pytest.approx(10.0 / 4.0)

    def test_time_variance_of_indicator(self):
        # indicator on half the window: variance = p(1-p) = 0.25
        s = TimeWeightedStatistic(1.0)
        s.update(5.0, 0.0)
        assert s.time_variance(10.0) == pytest.approx(0.25)

    def test_backwards_time_rejected(self):
        s = TimeWeightedStatistic(0.0)
        s.update(2.0, 1.0)
        with pytest.raises(ValueError):
            s.update(1.0, 2.0)

    def test_min_max_tracking(self):
        s = TimeWeightedStatistic(3.0)
        s.update(1.0, -2.0)
        s.update(2.0, 7.0)
        assert s.minimum() == -2.0
        assert s.maximum() == 7.0

    def test_zero_length_window(self):
        s = TimeWeightedStatistic(42.0)
        assert s.time_average() == 42.0

    def test_repeated_updates_same_time(self):
        s = TimeWeightedStatistic(1.0)
        s.update(1.0, 2.0)
        s.update(1.0, 3.0)  # zero-width segment contributes nothing
        assert s.time_average(2.0) == pytest.approx((1.0 + 3.0) / 2.0)


class TestTally:
    def test_mean_and_variance_match_numpy(self, rng):
        data = rng.normal(5.0, 2.0, size=500)
        t = TallyStatistic()
        t.record_many(data)
        assert t.mean == pytest.approx(float(np.mean(data)))
        assert t.variance == pytest.approx(float(np.var(data, ddof=1)))
        assert t.count == 500

    def test_empty_tally_is_nan(self):
        t = TallyStatistic()
        assert math.isnan(t.mean)
        assert math.isnan(t.variance)

    def test_single_observation(self):
        t = TallyStatistic()
        t.record(3.0)
        assert t.mean == 3.0
        assert math.isnan(t.variance)

    def test_merge_equals_combined(self, rng):
        a_data = rng.normal(size=300)
        b_data = rng.normal(loc=2.0, size=200)
        a, b, c = TallyStatistic(), TallyStatistic(), TallyStatistic()
        a.record_many(a_data)
        b.record_many(b_data)
        c.record_many(np.concatenate([a_data, b_data]))
        merged = a.merge(b)
        assert merged.mean == pytest.approx(c.mean)
        assert merged.variance == pytest.approx(c.variance)
        assert merged.count == 500

    def test_merge_with_empty(self):
        a = TallyStatistic()
        a.record(1.0)
        merged = a.merge(TallyStatistic())
        assert merged.mean == 1.0
        assert merged.count == 1

    def test_extrema(self):
        t = TallyStatistic()
        t.record_many([3.0, -1.0, 7.0])
        assert t.minimum == -1.0
        assert t.maximum == 7.0


class TestConfidenceInterval:
    def test_contains_true_mean_usually(self, rng):
        # coverage check: ~95% of intervals should contain the true mean
        hits = 0
        trials = 300
        for i in range(trials):
            data = np.random.default_rng(i).normal(10.0, 3.0, size=30)
            lo, hi = confidence_interval(data, 0.95)
            hits += lo <= 10.0 <= hi
        assert hits / trials > 0.90

    def test_single_sample_degenerate(self):
        assert confidence_interval([5.0]) == (5.0, 5.0)

    def test_empty_is_nan(self):
        lo, hi = confidence_interval([])
        assert math.isnan(lo) and math.isnan(hi)

    def test_zero_variance(self):
        assert confidence_interval([2.0, 2.0, 2.0]) == (2.0, 2.0)

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], level=1.5)

    def test_width_shrinks_with_n(self, rng):
        small = rng.normal(size=20)
        big = rng.normal(size=2000)
        w_small = np.diff(confidence_interval(small))[0]
        w_big = np.diff(confidence_interval(big))[0]
        assert w_big < w_small


class TestBatchMeans:
    def test_batches_formed_correctly(self):
        bm = BatchMeans(batch_size=3)
        for x in [1, 2, 3, 4, 5, 6, 7]:
            bm.record(float(x))
        assert bm.batch_count == 2
        assert list(bm.batch_means) == [2.0, 5.0]

    def test_mean_over_batches(self):
        bm = BatchMeans(2)
        for x in [1.0, 3.0, 5.0, 7.0]:
            bm.record(x)
        assert bm.mean() == pytest.approx(4.0)

    def test_ci_reasonable(self, rng):
        bm = BatchMeans(50)
        for x in rng.normal(1.0, 1.0, size=5000):
            bm.record(float(x))
        lo, hi = bm.confidence_interval()
        assert lo < 1.0 < hi

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BatchMeans(0)


class TestMSER:
    def test_detects_initial_transient(self, rng):
        # biased start: first 100 samples high, then stationary around 0
        transient = np.linspace(10.0, 0.0, 100)
        stationary = rng.normal(0.0, 1.0, size=900)
        series = np.concatenate([transient, stationary])
        cut = mser_truncation_point(series, batch=5)
        assert 40 <= cut <= 200

    def test_stationary_series_keeps_everything(self, rng):
        series = rng.normal(size=1000)
        cut = mser_truncation_point(series, batch=5)
        assert cut < 250  # no large truncation for stationary data

    def test_short_series_returns_zero(self):
        assert mser_truncation_point([1.0, 2.0, 3.0], batch=5) == 0
