"""Simulator engine: clock monotonicity, scheduling rules, stop conditions."""

import pytest

from repro.des.engine import SimulationError, Simulator


class TestScheduling:
    def test_actions_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.run()
        assert log == ["a", "b"]

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.schedule(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5, 4.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_nan_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_actions_can_schedule_followups(self):
        sim = Simulator()
        log = []

        def chain(n: int) -> None:
            log.append(sim.now)
            if n > 0:
                sim.schedule(1.0, lambda: chain(n - 1))

        sim.schedule(0.0, lambda: chain(3))
        sim.run()
        assert log == [0.0, 1.0, 2.0, 3.0]


class TestRunUntil:
    def test_clock_lands_exactly_on_horizon(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until(5.0)
        assert sim.now == 5.0

    def test_events_at_horizon_fire(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(True))
        sim.run_until(5.0)
        assert fired == [True]

    def test_events_beyond_horizon_do_not_fire(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0001, lambda: fired.append(True))
        sim.run_until(5.0)
        assert fired == []
        assert sim.pending_count() == 1

    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_resume_after_horizon(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(7.0, lambda: log.append(7))
        sim.run_until(5.0)
        assert log == [1]
        sim.run_until(10.0)
        assert log == [1, 7]


class TestStopAndBudget:
    def test_stop_halts_run(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: (log.append(1), sim.stop()))
        sim.schedule(2.0, lambda: log.append(2))
        sim.run()
        assert log[0] == 1
        assert 2 not in log

    def test_event_budget_raises(self):
        sim = Simulator(max_events=10)

        def loop() -> None:
            sim.schedule(1.0, loop)

        sim.schedule(1.0, loop)
        with pytest.raises(SimulationError, match="budget"):
            sim.run()

    def test_cancel_prevents_action(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append(True))
        sim.cancel(ev)
        sim.run()
        assert fired == []

    def test_trace_hook_sees_every_event(self):
        seen = []
        sim = Simulator(trace_hook=lambda t, ev: seen.append(t))
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert seen == [1.0, 2.0]

    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 5
