"""Event queue semantics: ordering, cancellation, compaction."""

import pytest

from repro.des.events import Event, EventQueue


def _noop() -> None:
    pass


class TestEventOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        for t in (3.0, 1.0, 2.0):
            q.push(Event(t, _noop))
        times = [q.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        low = q.push(Event(1.0, _noop, priority=5, tag="low"))
        high = q.push(Event(1.0, _noop, priority=0, tag="high"))
        assert q.pop() is high
        assert q.pop() is low

    def test_fifo_within_same_time_and_priority(self):
        q = EventQueue()
        first = q.push(Event(1.0, _noop, tag="first"))
        second = q.push(Event(1.0, _noop, tag="second"))
        assert q.pop() is first
        assert q.pop() is second

    def test_peek_time_does_not_remove(self):
        q = EventQueue()
        q.push(Event(2.5, _noop))
        assert q.peek_time() == 2.5
        assert len(q) == 1

    def test_empty_queue_pop_and_peek(self):
        q = EventQueue()
        assert q.pop() is None
        assert q.peek_time() is None
        assert not q


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        ev1 = q.push(Event(1.0, _noop))
        ev2 = q.push(Event(2.0, _noop))
        q.cancel(ev1)
        assert q.pop() is ev2
        assert q.pop() is None

    def test_cancel_updates_length(self):
        q = EventQueue()
        ev = q.push(Event(1.0, _noop))
        q.push(Event(2.0, _noop))
        q.cancel(ev)
        assert len(q) == 1

    def test_double_cancel_is_idempotent(self):
        q = EventQueue()
        ev = q.push(Event(1.0, _noop))
        q.cancel(ev)
        q.cancel(ev)
        assert len(q) == 0

    def test_peek_skips_cancelled_head(self):
        q = EventQueue()
        ev1 = q.push(Event(1.0, _noop))
        q.push(Event(2.0, _noop))
        q.cancel(ev1)
        assert q.peek_time() == 2.0

    def test_dead_fraction_and_compact(self):
        q = EventQueue()
        events = [q.push(Event(float(i), _noop)) for i in range(100)]
        for ev in events[:90]:
            q.cancel(ev)
        assert q.dead_fraction() > 0.8
        q.compact()
        assert q.dead_fraction() == 0.0
        assert len(q) == 10

    def test_clear(self):
        q = EventQueue()
        q.push(Event(1.0, _noop))
        q.clear()
        assert len(q) == 0
        assert q.pop() is None


class TestValidation:
    def test_nan_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(Event(float("nan"), _noop))

    def test_iter_pending_skips_cancelled(self):
        q = EventQueue()
        keep = q.push(Event(1.0, _noop))
        drop = q.push(Event(2.0, _noop))
        q.cancel(drop)
        assert list(q.iter_pending()) == [keep]
