"""Replication runner: reproducibility, aggregation, parallel equivalence."""

import numpy as np
import pytest

from repro.des.random_streams import StreamManager
from repro.des.replication import run_replications


def _model(streams: StreamManager, loc: float = 10.0) -> dict:
    """Toy model: one noisy metric plus its replication-identifying draw."""
    rng = streams.get("noise")
    return {"metric": loc + float(rng.normal()), "draw": float(rng.random())}


def _two_key_model(streams: StreamManager) -> dict:
    """Metric set depends on the replication's first draw -> inconsistent."""
    rng = streams.get("n")
    val = float(rng.random())
    if val < 0.5:
        return {"a": val}
    return {"a": val, "extra": 1.0}


class TestBasics:
    def test_summary_shape(self):
        s = run_replications(_model, n_replications=8, seed=1)
        assert s.n == 8
        assert set(s.means) == {"metric", "draw"}
        assert len(s.replications) == 8

    def test_reproducible_given_seed(self):
        a = run_replications(_model, n_replications=5, seed=42)
        b = run_replications(_model, n_replications=5, seed=42)
        assert a.means == b.means

    def test_replications_are_distinct(self):
        s = run_replications(_model, n_replications=5, seed=42)
        draws = s.metric_samples("draw")
        assert len(np.unique(draws)) == 5

    def test_mean_estimates_location(self):
        s = run_replications(_model, n_replications=100, seed=0, loc=3.0)
        assert s.means["metric"] == pytest.approx(3.0, abs=0.5)

    def test_ci_contains_mean(self):
        s = run_replications(_model, n_replications=30, seed=0)
        lo, hi = s.intervals["metric"]
        assert lo <= s.means["metric"] <= hi

    def test_half_width_helpers(self):
        s = run_replications(_model, n_replications=30, seed=0)
        assert s.half_width("metric") > 0.0
        assert s.relative_half_width("metric") > 0.0

    def test_zero_replications_rejected(self):
        with pytest.raises(ValueError):
            run_replications(_model, n_replications=0)

    def test_inconsistent_metrics_detected(self):
        with pytest.raises(ValueError):
            run_replications(_two_key_model, n_replications=20, seed=3)


class TestParallel:
    def test_parallel_equals_serial(self):
        serial = run_replications(_model, n_replications=6, seed=9, n_jobs=1)
        parallel = run_replications(_model, n_replications=6, seed=9, n_jobs=2)
        assert serial.means == parallel.means
        for a, b in zip(serial.replications, parallel.replications):
            assert a.index == b.index
            assert a.metrics == b.metrics
