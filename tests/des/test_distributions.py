"""Distributions: parameter validation, exact moments, sampled moments."""

import math

import numpy as np
import pytest

from repro.des.distributions import (
    Deterministic,
    Empirical,
    Erlang,
    Exponential,
    Gamma,
    HyperExponential,
    LogNormal,
    Pareto,
    TruncatedNormal,
    Uniform,
    Weibull,
)

ALL_DISTS = [
    Deterministic(0.7),
    Exponential(2.0),
    Uniform(0.5, 1.5),
    Erlang(4, 8.0),
    Gamma(2.5, 0.4),
    HyperExponential([0.3, 0.7], [1.0, 5.0]),
    Pareto(4.0, 1.0),
    Weibull(1.5, 2.0),
    LogNormal(0.0, 0.5),
    TruncatedNormal(1.0, 0.3),
    Empirical([0.1, 0.2, 0.3, 0.4]),
]


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
class TestCommonContract:
    def test_samples_non_negative(self, dist, rng):
        samples = dist.sample_array(rng, 2000)
        assert np.all(samples >= 0.0)
        assert np.all(np.isfinite(samples))

    def test_scalar_and_array_agree_in_distribution(self, dist, rng):
        scalars = np.array([dist.sample(rng) for _ in range(4000)])
        array = dist.sample_array(np.random.default_rng(99), 4000)
        # same distribution => close means (both estimate dist.mean())
        tol = 6.0 * math.sqrt(max(dist.variance(), 1e-12) / 4000)
        assert abs(scalars.mean() - dist.mean()) < tol + 1e-9
        assert abs(array.mean() - dist.mean()) < tol + 1e-9

    def test_sampled_mean_matches_theory(self, dist, rng):
        n = 20000
        samples = dist.sample_array(rng, n)
        se = math.sqrt(max(dist.variance(), 1e-12) / n)
        assert abs(samples.mean() - dist.mean()) < 5.0 * se + 1e-9

    def test_sampled_variance_matches_theory(self, dist, rng):
        n = 40000
        samples = dist.sample_array(rng, n)
        var = dist.variance()
        assert samples.var() == pytest.approx(var, rel=0.15, abs=1e-9)

    def test_cv2_consistent_with_moments(self, dist, rng):
        if dist.mean() > 0:
            assert dist.cv2() == pytest.approx(
                dist.variance() / dist.mean() ** 2
            )


class TestDeterministic:
    def test_constant(self, rng):
        d = Deterministic(1.25)
        assert d.sample(rng) == 1.25
        assert np.all(d.sample_array(rng, 5) == 1.25)
        assert d.variance() == 0.0

    def test_zero_is_immediate(self):
        assert Deterministic(0.0).is_immediate()
        assert not Deterministic(0.1).is_immediate()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Deterministic(-1.0)

    def test_infinite_rejected(self):
        with pytest.raises(ValueError):
            Deterministic(math.inf)


class TestExponential:
    def test_mean_is_inverse_rate(self):
        assert Exponential(4.0).mean() == 0.25

    def test_memorylessness_statistical(self, rng):
        # P(X > s + t | X > s) == P(X > t)
        d = Exponential(1.0)
        x = d.sample_array(rng, 200_000)
        s, t = 0.5, 0.7
        conditional = np.mean(x[x > s] > s + t)
        unconditional = np.mean(x > t)
        assert conditional == pytest.approx(unconditional, abs=0.01)

    @pytest.mark.parametrize("rate", [0.0, -1.0, math.inf])
    def test_bad_rate_rejected(self, rate):
        with pytest.raises(ValueError):
            Exponential(rate)


class TestErlang:
    def test_with_mean_constructor(self):
        d = Erlang.with_mean(5, 2.0)
        assert d.mean() == pytest.approx(2.0)
        assert d.k == 5

    def test_variance_shrinks_with_stages(self):
        # Erlang-k with fixed mean approaches a constant as k grows
        v = [Erlang.with_mean(k, 1.0).variance() for k in (1, 4, 16, 64)]
        assert v == sorted(v, reverse=True)
        assert v[-1] == pytest.approx(1.0 / 64.0)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            Erlang(0, 1.0)
        with pytest.raises(ValueError):
            Erlang(1, 0.0)


class TestHyperExponential:
    def test_probs_must_sum_to_one(self):
        with pytest.raises(ValueError):
            HyperExponential([0.5, 0.4], [1.0, 2.0])

    def test_cv2_above_one(self):
        d = HyperExponential([0.9, 0.1], [10.0, 0.5])
        assert d.cv2() > 1.0

    def test_mean(self):
        d = HyperExponential([0.5, 0.5], [1.0, 2.0])
        assert d.mean() == pytest.approx(0.5 * 1.0 + 0.5 * 0.5)


class TestLogNormal:
    def test_with_mean_cv_roundtrip(self):
        d = LogNormal.with_mean_cv(mean=3.0, cv=0.8)
        assert d.mean() == pytest.approx(3.0)
        assert math.sqrt(d.variance()) / d.mean() == pytest.approx(0.8)


class TestTruncatedNormal:
    def test_truncation_increases_mean_when_loc_near_zero(self):
        d = TruncatedNormal(0.0, 1.0)
        # half-normal mean = sqrt(2/pi)
        assert d.mean() == pytest.approx(math.sqrt(2.0 / math.pi), rel=1e-6)

    def test_sampling_respects_truncation(self, rng):
        d = TruncatedNormal(-0.5, 1.0)
        assert np.all(d.sample_array(rng, 10_000) >= 0.0)


class TestEmpirical:
    def test_resamples_only_observed_values(self, rng):
        values = [0.5, 1.5, 2.5]
        d = Empirical(values)
        assert set(np.unique(d.sample_array(rng, 1000))) <= set(values)

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            Empirical([])
        with pytest.raises(ValueError):
            Empirical([1.0, -0.1])


class TestGamma:
    def test_integer_shape_matches_erlang(self, rng):
        g = Gamma(4.0, 0.125)
        e = Erlang(4, 8.0)
        assert g.mean() == pytest.approx(e.mean())
        assert g.variance() == pytest.approx(e.variance())

    def test_shape_below_one_is_bursty(self):
        assert Gamma(0.5, 1.0).cv2() > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Gamma(0.0, 1.0)
        with pytest.raises(ValueError):
            Gamma(1.0, -1.0)


class TestPareto:
    def test_samples_respect_minimum(self, rng):
        d = Pareto(2.5, 3.0)
        assert d.sample_array(rng, 10_000).min() >= 3.0

    def test_mean_formula(self):
        d = Pareto(3.0, 2.0)
        assert d.mean() == pytest.approx(3.0)

    def test_infinite_moments_raise(self):
        with pytest.raises(ValueError, match="mean"):
            Pareto(0.9, 1.0).mean()
        with pytest.raises(ValueError, match="variance"):
            Pareto(1.5, 1.0).variance()

    def test_heavy_tail_statistical(self, rng):
        # P(X > 10 m) = 10^-alpha for Pareto
        d = Pareto(1.2, 1.0)
        x = d.sample_array(rng, 200_000)
        tail = float((x > 10.0).mean())
        assert tail == pytest.approx(10.0 ** -1.2, rel=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            Pareto(0.0, 1.0)
        with pytest.raises(ValueError):
            Pareto(1.0, 0.0)


class TestUniform:
    def test_bounds_respected(self, rng):
        d = Uniform(0.2, 0.8)
        x = d.sample_array(rng, 10_000)
        assert x.min() >= 0.2
        assert x.max() <= 0.8

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            Uniform(1.0, 0.5)
        with pytest.raises(ValueError):
            Uniform(-0.5, 1.0)
