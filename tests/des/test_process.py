"""Process-interaction API: timeouts, resources, joins, and an M/M/1
built in process style validated against theory."""

import pytest

from repro.des.engine import SimulationError
from repro.des.process import ProcessEnvironment
from repro.markov.queueing import MM1Queue


class TestTimeouts:
    def test_sequential_timeouts(self):
        env = ProcessEnvironment()
        log = []

        def proc():
            yield env.timeout(1.0)
            log.append(env.now)
            yield env.timeout(2.5)
            log.append(env.now)

        env.spawn(proc())
        env.run()
        assert log == [1.0, 3.5]

    def test_zero_timeout_allowed(self):
        env = ProcessEnvironment()
        log = []

        def proc():
            yield env.timeout(0.0)
            log.append(env.now)

        env.spawn(proc())
        env.run()
        assert log == [0.0]

    def test_negative_timeout_rejected(self):
        env = ProcessEnvironment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_run_until_pauses_processes(self):
        env = ProcessEnvironment()
        log = []

        def proc():
            yield env.timeout(5.0)
            log.append("five")
            yield env.timeout(5.0)
            log.append("ten")

        env.spawn(proc())
        env.run_until(7.0)
        assert log == ["five"]
        env.run_until(12.0)
        assert log == ["five", "ten"]

    def test_bad_yield_raises(self):
        env = ProcessEnvironment()

        def proc():
            yield "nonsense"

        env.spawn(proc())
        with pytest.raises(SimulationError, match="unsupported"):
            env.run()


class TestResources:
    def test_mutual_exclusion(self):
        env = ProcessEnvironment()
        server = env.resource(capacity=1)
        spans = []

        def worker(name):
            req = server.request()
            yield req
            start = env.now
            yield env.timeout(1.0)
            server.release()
            spans.append((name, start, env.now))

        for i in range(3):
            env.spawn(worker(i))
        env.run()
        # with capacity 1 the spans must not overlap
        spans.sort(key=lambda s: s[1])
        for (_, _, end), (_, start, _) in zip(spans, spans[1:]):
            assert start >= end

    def test_capacity_two_parallelism(self):
        env = ProcessEnvironment()
        server = env.resource(capacity=2)
        finished = []

        def worker(i):
            req = server.request()
            yield req
            yield env.timeout(1.0)
            server.release()
            finished.append((i, env.now))

        for i in range(4):
            env.spawn(worker(i))
        env.run()
        # 4 jobs, 2 at a time, 1s each -> makespan 2s
        assert max(t for _, t in finished) == pytest.approx(2.0)

    def test_release_without_grant_raises(self):
        env = ProcessEnvironment()
        server = env.resource()
        with pytest.raises(SimulationError):
            server.release()

    def test_wait_statistics(self):
        env = ProcessEnvironment()
        server = env.resource(capacity=1)

        def worker():
            req = server.request()
            yield req
            yield env.timeout(1.0)
            server.release()

        env.spawn(worker())
        env.spawn(worker())
        env.run()
        assert server.total_requests == 2
        assert server.total_waits == 1

    def test_invalid_capacity(self):
        env = ProcessEnvironment()
        with pytest.raises(ValueError):
            env.resource(capacity=0)


class TestJoin:
    def test_yield_on_process_waits_for_completion(self):
        env = ProcessEnvironment()
        log = []

        def child():
            yield env.timeout(3.0)
            log.append(("child", env.now))

        def parent():
            c = env.spawn(child())
            yield c
            log.append(("parent", env.now))

        env.spawn(parent())
        env.run()
        assert log == [("child", 3.0), ("parent", 3.0)]

    def test_join_finished_process_continues_immediately(self):
        env = ProcessEnvironment()
        log = []

        def child():
            yield env.timeout(1.0)

        def parent(c):
            yield env.timeout(5.0)
            yield c  # already finished
            log.append(env.now)

        c = env.spawn(child())
        env.spawn(parent(c))
        env.run()
        assert log == [5.0]


class TestMM1InProcessStyle:
    def test_matches_theory(self):
        """An M/M/1 queue written as processes reproduces W = 1/(mu-lambda)."""
        lam, mu = 1.0, 2.0
        env = ProcessEnvironment(seed=42)
        arr_rng = env.streams.get("arrivals")
        svc_rng = env.streams.get("service")
        server = env.resource(capacity=1)
        latencies = []

        def customer():
            born = env.now
            req = server.request()
            yield req
            yield env.timeout(svc_rng.exponential(1.0 / mu))
            server.release()
            latencies.append(env.now - born)

        def source():
            while True:
                yield env.timeout(arr_rng.exponential(1.0 / lam))
                env.spawn(customer())

        env.spawn(source())
        env.run_until(50_000.0)
        theory = MM1Queue(lam, mu).mean_latency()
        measured = sum(latencies) / len(latencies)
        assert measured == pytest.approx(theory, rel=0.05)
