"""Monitors: occupancy bookkeeping and trace recording."""

import pytest

from repro.des.monitors import StateOccupancyMonitor, TraceRecorder


class TestOccupancy:
    def test_simple_two_state_split(self):
        m = StateOccupancyMonitor(["on", "off"], "off")
        m.transition(4.0, "on")
        occ = m.occupancy(until=10.0)
        assert occ["off"] == pytest.approx(0.4)
        assert occ["on"] == pytest.approx(0.6)

    def test_occupancies_sum_to_one(self):
        m = StateOccupancyMonitor(["a", "b", "c"], "a")
        m.transition(1.0, "b")
        m.transition(2.5, "c")
        m.transition(4.0, "a")
        occ = m.occupancy(until=8.0)
        assert sum(occ.values()) == pytest.approx(1.0)

    def test_never_visited_state_is_zero(self):
        m = StateOccupancyMonitor(["a", "b", "c"], "a")
        m.transition(5.0, "b")
        assert m.occupancy(until=10.0)["c"] == 0.0

    def test_self_transition_is_noop(self):
        m = StateOccupancyMonitor(["a", "b"], "a")
        m.transition(1.0, "a")
        assert m.transition_count == 0
        assert m.occupancy(until=2.0)["a"] == pytest.approx(1.0)

    def test_unknown_state_rejected(self):
        m = StateOccupancyMonitor(["a"], "a")
        with pytest.raises(KeyError):
            m.transition(1.0, "zzz")

    def test_unknown_initial_rejected(self):
        with pytest.raises(ValueError):
            StateOccupancyMonitor(["a", "b"], "nope")

    def test_percent_scaling(self):
        m = StateOccupancyMonitor(["a", "b"], "a")
        m.transition(5.0, "b")
        pct = m.occupancy_percent(until=10.0)
        assert pct["a"] == pytest.approx(50.0)

    def test_start_time_offset(self):
        m = StateOccupancyMonitor(["a", "b"], "a", start_time=100.0)
        m.transition(150.0, "b")
        occ = m.occupancy(until=200.0)
        assert occ["a"] == pytest.approx(0.5)

    def test_transition_counting(self):
        m = StateOccupancyMonitor(["a", "b"], "a")
        m.transition(1.0, "b")
        m.transition(2.0, "a")
        assert m.transition_count == 2
        assert m.current_state == "a"


class TestTraceRecorder:
    def test_records_in_order(self):
        tr = TraceRecorder()
        tr.record(1.0, "x", {"v": 1})
        tr.record(2.0, "y")
        assert tr.labels() == ["x", "y"]
        assert tr.times() == [1.0, 2.0]

    def test_capacity_limits_and_counts_drops(self):
        tr = TraceRecorder(capacity=2)
        for i in range(5):
            tr.record(float(i), "e")
        assert len(tr) == 2
        assert tr.dropped == 3

    def test_filter_by_label(self):
        tr = TraceRecorder()
        tr.record(1.0, "a")
        tr.record(2.0, "b")
        tr.record(3.0, "a")
        assert [t for t, _, _ in tr.filter("a")] == [1.0, 3.0]

    def test_clear_resets(self):
        tr = TraceRecorder(capacity=1)
        tr.record(1.0, "a")
        tr.record(2.0, "b")
        tr.clear()
        assert len(tr) == 0
        assert tr.dropped == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=-1)

    def test_iteration(self):
        tr = TraceRecorder()
        tr.record(1.0, "a", 42)
        assert list(tr) == [(1.0, "a", 42)]
