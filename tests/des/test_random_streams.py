"""Stream manager: reproducibility and independence guarantees."""

import numpy as np

from repro.des.random_streams import StreamManager


class TestReproducibility:
    def test_same_seed_same_stream(self):
        a = StreamManager(42).get("arrivals").random(10)
        b = StreamManager(42).get("arrivals").random(10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = StreamManager(1).get("arrivals").random(10)
        b = StreamManager(2).get("arrivals").random(10)
        assert not np.array_equal(a, b)

    def test_get_returns_same_object(self):
        m = StreamManager(7)
        assert m.get("x") is m.get("x")

    def test_reset_regenerates_identically(self):
        m = StreamManager(7)
        a = m.get("x").random(5)
        m.reset()
        b = m.get("x").random(5)
        assert np.array_equal(a, b)


class TestIndependence:
    def test_named_streams_differ(self):
        m = StreamManager(42)
        a = m.get("arrivals").random(10)
        b = m.get("service").random(10)
        assert not np.array_equal(a, b)

    def test_order_of_creation_is_irrelevant(self):
        m1 = StreamManager(42)
        m1.get("a")
        first_b = m1.get("b").random(10)

        m2 = StreamManager(42)  # request b before a this time
        second_b = m2.get("b").random(10)
        m2.get("a")
        assert np.array_equal(first_b, second_b)

    def test_streams_uncorrelated(self):
        m = StreamManager(3)
        x = m.get("one").normal(size=20_000)
        y = m.get("two").normal(size=20_000)
        assert abs(np.corrcoef(x, y)[0, 1]) < 0.02


class TestReplications:
    def test_replications_reproducible(self):
        a = StreamManager(42).for_replication(3).get("arrivals").random(10)
        b = StreamManager(42).for_replication(3).get("arrivals").random(10)
        assert np.array_equal(a, b)

    def test_replications_differ_from_each_other(self):
        base = StreamManager(42)
        a = base.for_replication(0).get("x").random(10)
        b = base.for_replication(1).get("x").random(10)
        assert not np.array_equal(a, b)

    def test_replication_independent_of_parent_usage(self):
        m1 = StreamManager(42)
        m1.get("noise").random(1000)  # consume parent entropy
        a = m1.for_replication(5).get("x").random(10)

        m2 = StreamManager(42)
        b = m2.for_replication(5).get("x").random(10)
        assert np.array_equal(a, b)

    def test_negative_index_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            StreamManager(1).for_replication(-1)
