"""PNML serialisation round-trips."""

import pytest

from repro.core.params import CPUModelParams
from repro.core.petri_cpu import build_cpu_net
from repro.des.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    LogNormal,
    Uniform,
    Weibull,
)
from repro.petri.arcs import ArcKind
from repro.petri.ctmc_export import ctmc_from_net
from repro.petri.net import NetStructureError, PetriNet
from repro.petri.pnml import from_pnml, load_pnml, save_pnml, to_pnml
from repro.petri.simulator import PetriNetSimulator
from repro.petri.transitions import MemoryPolicy, TimedTransition


def assert_nets_equal(a: PetriNet, b: PetriNet) -> None:
    assert a.name == b.name
    assert a.place_names == b.place_names
    for pa, pb in zip(a.places, b.places):
        assert (pa.name, pa.initial, pa.capacity) == (pb.name, pb.initial, pb.capacity)
    assert a.transition_names == b.transition_names
    for ta, tb in zip(a.transitions, b.transitions):
        assert type(ta) is type(tb)
        if ta.is_immediate:
            assert ta.priority == tb.priority
            assert ta.weight == tb.weight
        else:
            assert repr(ta.distribution) == repr(tb.distribution)
            assert ta.memory_policy == tb.memory_policy
    arcs_a = {(x.place, x.transition, x.kind, x.multiplicity) for x in a.arcs}
    arcs_b = {(x.place, x.transition, x.kind, x.multiplicity) for x in b.arcs}
    assert arcs_a == arcs_b


class TestRoundTrip:
    def test_cpu_net_roundtrip(self):
        net = build_cpu_net(CPUModelParams.paper_defaults(T=0.3, D=0.001))
        again = from_pnml(to_pnml(net))
        assert_nets_equal(net, again)

    def test_roundtrip_preserves_behaviour(self):
        net = build_cpu_net(CPUModelParams.paper_defaults(T=0.3, D=0.001))
        again = from_pnml(to_pnml(net))
        r1 = PetriNetSimulator(net, seed=9).run(horizon=1_000.0)
        r2 = PetriNetSimulator(again, seed=9).run(horizon=1_000.0)
        assert r1.mean_tokens("Stand_By") == pytest.approx(
            r2.mean_tokens("Stand_By")
        )

    def test_all_serialisable_distributions(self):
        net = PetriNet("dists")
        net.add_place("src", initial=5, capacity=9)
        net.add_place("dst")
        for i, dist in enumerate(
            [
                Exponential(2.5),
                Deterministic(0.7),
                Uniform(0.1, 0.9),
                Erlang(4, 8.0),
                Weibull(1.5, 2.0),
                LogNormal(0.1, 0.4),
            ]
        ):
            net.add_timed_transition(
                f"t{i}", dist, memory_policy=MemoryPolicy.AGE
            )
            net.add_input_arc("src", f"t{i}")
            net.add_output_arc(f"t{i}", "dst")
        again = from_pnml(to_pnml(net))
        assert_nets_equal(net, again)

    def test_inhibitor_and_multiplicity_roundtrip(self):
        net = PetriNet("arcs")
        net.add_place("a", initial=4)
        net.add_place("b")
        net.add_place("blocker")
        net.add_immediate_transition("t", priority=7, weight=2.5)
        net.add_input_arc("a", "t", multiplicity=2)
        net.add_output_arc("t", "b", multiplicity=3)
        net.add_inhibitor_arc("blocker", "t", multiplicity=4)
        again = from_pnml(to_pnml(net))
        assert_nets_equal(net, again)

    def test_file_roundtrip(self, tmp_path):
        net = build_cpu_net(CPUModelParams.paper_defaults())
        path = save_pnml(net, tmp_path / "cpu.pnml")
        assert path.exists()
        assert_nets_equal(net, load_pnml(path))

    def test_roundtrip_preserves_ctmc_solution(self):
        net = PetriNet("mm1k")
        net.add_place("free", initial=4)
        net.add_place("queue")
        net.add_timed_transition("arrive", Exponential(1.0))
        net.add_input_arc("free", "arrive")
        net.add_output_arc("arrive", "queue")
        net.add_timed_transition("serve", Exponential(2.0))
        net.add_input_arc("queue", "serve")
        net.add_output_arc("serve", "free")
        again = from_pnml(to_pnml(net))
        assert ctmc_from_net(net).mean_tokens("queue") == pytest.approx(
            ctmc_from_net(again).mean_tokens("queue"), rel=1e-12
        )


class TestRejections:
    def test_guard_not_serialisable(self):
        net = PetriNet("guarded")
        net.add_place("p", initial=1)
        net.add_place("q")
        net.add_immediate_transition("t", guard=lambda m: True)
        net.add_input_arc("p", "t")
        net.add_output_arc("t", "q")
        with pytest.raises(NetStructureError, match="guard"):
            to_pnml(net)

    def test_malformed_document_rejected(self):
        with pytest.raises(NetStructureError):
            from_pnml('<?xml version="1.0"?><pnml xmlns="http://www.pnml.org/version-2009/grammar/pnml"></pnml>')

    def test_foreign_transition_without_timing_rejected(self):
        text = to_pnml(build_cpu_net(CPUModelParams.paper_defaults()))
        stripped = text.replace('tool="repro"', 'tool="other"')
        with pytest.raises(NetStructureError):
            from_pnml(stripped)
