"""Structural analyzers: siphons, traps, Commoner, bounds, conflicts."""

import pytest

from repro.des.distributions import Exponential
from repro.petri import (
    PetriNet,
    commoner_check,
    immediate_conflicts,
    maximal_trap_within,
    minimal_siphons,
    minimal_traps,
    p_invariants_detailed,
    structural_bounds,
    structurally_dead_transitions,
)
from repro.core.params import CPUModelParams
from repro.core.petri_cpu import build_cpu_net
from repro.sweep.nets import build_deadlock_net, build_mm1k_net


def cpu_net(**kwargs) -> PetriNet:
    """The paper's Figure 3 EDSPN at its default parameters."""
    return build_cpu_net(CPUModelParams.paper_defaults(), **kwargs)


def cycle_net() -> PetriNet:
    """a -> t1 -> b -> t2 -> a, one token: {a, b} is siphon AND trap."""
    net = PetriNet("cycle")
    net.add_place("a", initial=1)
    net.add_place("b")
    net.add_timed_transition("t1", Exponential(1.0))
    net.add_input_arc("a", "t1")
    net.add_output_arc("t1", "b")
    net.add_timed_transition("t2", Exponential(1.0))
    net.add_input_arc("b", "t2")
    net.add_output_arc("t2", "a")
    return net


class TestSiphonsAndTraps:
    def test_cycle_is_siphon_and_trap(self):
        net = cycle_net()
        siphons = minimal_siphons(net)
        traps = minimal_traps(net)
        assert siphons.complete and traps.complete
        assert siphons.sets == (frozenset({"a", "b"}),)
        assert traps.sets == (frozenset({"a", "b"}),)

    def test_source_fed_place_is_in_no_siphon(self):
        net = PetriNet("source")
        net.add_place("p", capacity=3)
        net.add_timed_transition("src", Exponential(1.0))
        net.add_output_arc("src", "p")
        result = minimal_siphons(net)
        assert result.complete
        assert result.sets == ()

    def test_mm1k_siphon(self):
        result = minimal_siphons(build_mm1k_net(K=5))
        assert result.sets == (frozenset({"free", "queue"}),)

    def test_minimality(self):
        """A net where {a, b} and the superset {a, b, c} both close: only
        the minimal one is reported."""
        net = cycle_net()
        net.add_place("c")
        net.add_timed_transition("t3", Exponential(1.0))
        net.add_input_arc("c", "t3")
        net.add_output_arc("t3", "c")
        sets = minimal_siphons(net).sets
        assert frozenset({"a", "b"}) in sets
        assert frozenset({"c"}) in sets
        assert all(not (s > frozenset({"a", "b"})) for s in sets)

    def test_budget_truncation_flagged(self):
        result = minimal_siphons(cpu_net(), budget=3)
        assert not result.complete
        assert result.nodes_expanded <= 3

    def test_maximal_trap_within(self):
        net = build_deadlock_net()
        trap = maximal_trap_within(
            net, ["lockA", "lockB", "p_working", "q_working"]
        )
        assert trap == frozenset()
        # the whole-process invariant set is its own trap
        trap2 = maximal_trap_within(
            net, ["p_idle", "p_has_first", "p_working"]
        )
        assert trap2 == frozenset({"p_idle", "p_has_first", "p_working"})

    def test_unknown_place_raises(self):
        with pytest.raises(KeyError):
            maximal_trap_within(cycle_net(), ["nope"])


class TestCommoner:
    def test_cpu_net_deadlock_free(self):
        """The paper's CPU net satisfies Commoner — structurally, with
        zero reachability exploration."""
        result = commoner_check(cpu_net(buffer_capacity=25))
        assert result.holds
        assert result.unmarked_siphons == ()
        # inhibitor arcs and capacities restrict the proof to the skeleton
        assert any("inhibitor" in q for q in result.qualifications)
        assert any("capacit" in q for q in result.qualifications)

    def test_deadlock_net_fails_commoner(self):
        result = commoner_check(build_deadlock_net())
        assert not result.holds
        assert (
            frozenset({"lockA", "lockB", "p_working", "q_working"})
            in result.unmarked_siphons
        )

    def test_marked_traps_recorded(self):
        result = commoner_check(build_mm1k_net(K=3))
        assert result.holds
        assert result.marked_traps[frozenset({"free", "queue"})] == frozenset(
            {"free", "queue"}
        )

    def test_truncated_search_never_claims_holds(self):
        result = commoner_check(cpu_net(), budget=3)
        assert not result.holds
        assert not result.siphons.complete


class TestStructuralBounds:
    def test_invariant_bounds(self):
        bounds = structural_bounds(build_mm1k_net(K=7))
        assert bounds == {"free": 7, "queue": 7}

    def test_capacity_bounds(self):
        net = PetriNet("capped")
        net.add_place("p", capacity=3)
        net.add_timed_transition("src", Exponential(1.0))
        net.add_output_arc("src", "p")
        assert structural_bounds(net) == {"p": 3}

    def test_uncovered_place_is_none(self):
        net = PetriNet("unbounded")
        net.add_place("p")
        net.add_timed_transition("src", Exponential(1.0))
        net.add_output_arc("src", "p")
        assert structural_bounds(net) == {"p": None}

    def test_cpu_net_unit_bounds(self):
        bounds = structural_bounds(cpu_net(buffer_capacity=25))
        for place in (
            "Stand_By", "Power_Up", "CPU_ON", "Idle", "Active", "P0", "P1"
        ):
            assert bounds[place] == 1, place
        assert bounds["CPU_Buffer"] == 25
        assert bounds["P6"] is None  # genuinely not invariant-coverable


class TestDeadTransitions:
    def test_live_net_has_none(self):
        assert structurally_dead_transitions(build_mm1k_net()) == []

    def test_unmarkable_input_is_dead(self):
        net = cycle_net()
        net.add_place("never")
        net.add_timed_transition("t3", Exponential(1.0))
        net.add_input_arc("never", "t3")
        net.add_output_arc("t3", "a")
        assert structurally_dead_transitions(net) == ["t3"]

    def test_chain_of_dead_transitions(self):
        """Deadness propagates: t4 feeds off t3's output only."""
        net = cycle_net()
        net.add_place("never")
        net.add_place("downstream")
        net.add_timed_transition("t3", Exponential(1.0))
        net.add_input_arc("never", "t3")
        net.add_output_arc("t3", "downstream")
        net.add_timed_transition("t4", Exponential(1.0))
        net.add_input_arc("downstream", "t4")
        net.add_output_arc("t4", "a")
        assert structurally_dead_transitions(net) == ["t3", "t4"]


class TestImmediateConflicts:
    def build_conflict(self, w1=1.0, w2=1.0, p1=1, p2=1) -> PetriNet:
        net = PetriNet("conflict")
        net.add_place("p", initial=1)
        net.add_place("a")
        net.add_place("b")
        net.add_immediate_transition("t1", priority=p1, weight=w1)
        net.add_immediate_transition("t2", priority=p2, weight=w2)
        net.add_input_arc("p", "t1")
        net.add_output_arc("t1", "a")
        net.add_input_arc("p", "t2")
        net.add_output_arc("t2", "b")
        return net

    def test_default_weights_flagged(self):
        (conflict,) = immediate_conflicts(self.build_conflict())
        assert conflict.place == "p"
        assert conflict.transitions == ("t1", "t2")
        assert conflict.untied_default_weights
        assert conflict.free_choice

    def test_explicit_weights_not_flagged(self):
        (conflict,) = immediate_conflicts(self.build_conflict(w1=3.0))
        assert not conflict.untied_default_weights

    def test_different_priorities_no_conflict(self):
        assert immediate_conflicts(self.build_conflict(p1=2)) == []

    def test_non_free_choice(self):
        net = self.build_conflict()
        net.add_place("extra", initial=1)
        net.add_input_arc("extra", "t2")
        (conflict,) = immediate_conflicts(net)
        assert not conflict.free_choice

    def test_timed_transitions_ignored(self):
        assert immediate_conflicts(build_mm1k_net()) == []


class TestInvariantTruncation:
    def test_budget_flagged(self):
        result = p_invariants_detailed(cpu_net(), budget=1)
        assert result.truncated
        assert result.candidates_tried >= 1

    def test_default_budget_complete_on_paper_net(self):
        result = p_invariants_detailed(cpu_net())
        assert not result.truncated
        supports = {frozenset(inv) for inv in result.invariants}
        assert frozenset({"P0", "P1"}) in supports
        assert frozenset({"Idle", "Active"}) in supports
        assert frozenset({"Stand_By", "Power_Up", "CPU_ON"}) in supports
