"""Structural invariants: incidence matrix, P/T-invariants."""

import numpy as np
import pytest

from repro.core.params import CPUModelParams
from repro.core.petri_cpu import build_cpu_net
from repro.des.distributions import Exponential
from repro.petri.invariants import (
    incidence_matrix,
    invariant_report,
    p_invariants,
    t_invariants,
    verify_p_invariant,
)
from repro.petri.net import PetriNet


def ring_net(n: int = 3) -> PetriNet:
    net = PetriNet("ring")
    for i in range(n):
        net.add_place(f"p{i}", initial=1 if i == 0 else 0)
    for i in range(n):
        net.add_timed_transition(f"t{i}", Exponential(1.0))
        net.add_input_arc(f"p{i}", f"t{i}")
        net.add_output_arc(f"t{i}", f"p{(i + 1) % n}")
    return net


class TestIncidenceMatrix:
    def test_ring_structure(self):
        C = incidence_matrix(ring_net(3))
        assert C.shape == (3, 3)
        # t0 moves p0 -> p1
        assert C[0, 0] == -1
        assert C[1, 0] == 1
        # columns sum to zero (token conservation per firing)
        assert np.all(C.sum(axis=0) == 0)

    def test_multiplicities_counted(self):
        net = PetriNet("mult")
        net.add_place("a", initial=3)
        net.add_place("b")
        net.add_immediate_transition("t")
        net.add_input_arc("a", "t", multiplicity=3)
        net.add_output_arc("t", "b", multiplicity=2)
        C = incidence_matrix(net)
        assert C[0, 0] == -3
        assert C[1, 0] == 2

    def test_inhibitors_excluded(self):
        net = PetriNet("inh")
        net.add_place("a", initial=1)
        net.add_place("guard")
        net.add_place("b")
        net.add_immediate_transition("t")
        net.add_input_arc("a", "t")
        net.add_inhibitor_arc("guard", "t")
        net.add_output_arc("t", "b")
        C = incidence_matrix(net)
        assert C[net.place_names.index("guard"), 0] == 0


class TestPInvariants:
    def test_ring_total_token_invariant(self):
        invs = p_invariants(ring_net(4))
        assert {"p0": 1, "p1": 1, "p2": 1, "p3": 1} in invs

    def test_cpu_net_derives_paper_invariants(self):
        net = build_cpu_net(CPUModelParams.paper_defaults())
        invs = p_invariants(net)
        assert {"P0": 1, "P1": 1} in invs
        assert {"Idle": 1, "Active": 1} in invs
        assert {"Stand_By": 1, "Power_Up": 1, "CPU_ON": 1} in invs

    def test_invariants_conserved_under_simulation(self):
        from repro.petri.simulator import PetriNetSimulator

        net = build_cpu_net(CPUModelParams.paper_defaults(T=0.2, D=0.1))
        compiled = net.compile()
        m0 = compiled.initial_marking
        invs = p_invariants(net)
        res = PetriNetSimulator(net, seed=4).run(horizon=300.0)
        m_end = res.final_marking
        for inv in invs:
            start = sum(w * m0[compiled.place_names.index(p)] for p, w in inv.items())
            end = sum(w * m_end[p] for p, w in inv.items())
            assert start == end

    def test_unbounded_generator_place_not_in_invariants(self):
        # a source transition's output place can't be covered
        net = PetriNet("source")
        net.add_place("gen", initial=1)
        net.add_place("pile")
        net.add_timed_transition("make", Exponential(1.0))
        net.add_input_arc("gen", "make")
        net.add_output_arc("make", "gen")
        net.add_output_arc("make", "pile")
        for inv in p_invariants(net):
            assert "pile" not in inv


class TestTInvariants:
    def test_ring_cycle(self):
        invs = t_invariants(ring_net(3))
        assert {"t0": 1, "t1": 1, "t2": 1} in invs

    def test_cpu_net_cycles(self):
        net = build_cpu_net(CPUModelParams.paper_defaults())
        invs = t_invariants(net)
        # the awake job cycle and the full sleep-wake cycle
        assert {"AR": 1, "T1": 1, "T5": 1, "T2": 1, "SR": 1} in invs
        assert {
            "AR": 1, "T1": 1, "T6": 1, "PUT": 1, "T2": 1, "SR": 1, "PDT": 1
        } in invs

    def test_acyclic_net_has_no_t_invariant(self):
        net = PetriNet("line")
        net.add_place("a", initial=1)
        net.add_place("b")
        net.add_timed_transition("t", Exponential(1.0))
        net.add_input_arc("a", "t")
        net.add_output_arc("t", "b")
        assert t_invariants(net) == []


class TestVerifyAndReport:
    def test_verify_valid_invariant(self):
        net = build_cpu_net(CPUModelParams.paper_defaults())
        ok, total = verify_p_invariant(net, {"Idle": 1, "Active": 1})
        assert ok
        assert total == 1

    def test_verify_invalid_invariant(self):
        net = build_cpu_net(CPUModelParams.paper_defaults())
        ok, _ = verify_p_invariant(net, {"Idle": 1, "CPU_Buffer": 1})
        assert not ok

    def test_report_mentions_all_invariants(self):
        net = build_cpu_net(CPUModelParams.paper_defaults())
        text = invariant_report(net)
        assert "Idle + Active = 1" in text
        assert "P-invariants" in text
        assert "T-invariants" in text
