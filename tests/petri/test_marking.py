"""Marking: access, equality/hash, construction."""

import numpy as np
import pytest

from repro.petri.marking import Marking

NAMES = ["a", "b", "c"]


class TestAccess:
    def test_by_name_and_index(self):
        m = Marking([1, 0, 2], NAMES)
        assert m["a"] == 1
        assert m[2] == 2

    def test_get_with_default(self):
        m = Marking([1, 0, 2], NAMES)
        assert m.get("zzz", default=7) == 7
        assert m.get("c") == 2

    def test_total_tokens(self):
        assert Marking([1, 0, 2], NAMES).total_tokens() == 3

    def test_as_dict_skip_zero(self):
        m = Marking([1, 0, 2], NAMES)
        assert m.as_dict(skip_zero=True) == {"a": 1, "c": 2}
        assert m.as_dict() == {"a": 1, "b": 0, "c": 2}

    def test_len_and_iter(self):
        m = Marking([1, 0, 2], NAMES)
        assert len(m) == 3
        assert dict(m) == {"a": 1, "b": 0, "c": 2}


class TestIdentity:
    def test_equal_markings_hash_equal(self):
        m1 = Marking([1, 2, 3], NAMES)
        m2 = Marking([1, 2, 3], NAMES)
        assert m1 == m2
        assert hash(m1) == hash(m2)

    def test_different_counts_not_equal(self):
        assert Marking([1, 0, 0], NAMES) != Marking([0, 1, 0], NAMES)

    def test_usable_as_dict_key(self):
        d = {Marking([1, 0, 0], NAMES): "x"}
        assert d[Marking([1, 0, 0], NAMES)] == "x"

    def test_counts_are_immutable(self):
        m = Marking([1, 0, 0], NAMES)
        with pytest.raises(ValueError):
            m.counts[0] = 5

    def test_source_array_copied(self):
        src = np.array([1, 0, 0], dtype=np.int64)
        m = Marking(src, NAMES)
        src[0] = 99
        assert m["a"] == 1


class TestConstruction:
    def test_negative_tokens_rejected(self):
        with pytest.raises(ValueError):
            Marking([-1, 0, 0], NAMES)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Marking([1, 2], NAMES)

    def test_from_dict_partial(self):
        m = Marking.from_dict({"b": 4}, NAMES)
        assert m["a"] == 0
        assert m["b"] == 4

    def test_from_dict_unknown_place(self):
        with pytest.raises(KeyError):
            Marking.from_dict({"nope": 1}, NAMES)

    def test_repr_mentions_nonzero_places(self):
        text = repr(Marking([0, 3, 0], NAMES))
        assert "b=3" in text
        assert "a=" not in text
