"""Token-game simulator semantics: immediates, priorities, weights,
inhibitors, memory policies, and statistics."""

import math

import numpy as np
import pytest

from repro.des.distributions import Deterministic, Exponential, Uniform
from repro.des.engine import SimulationError
from repro.markov.queueing import MM1Queue
from repro.petri.net import PetriNet
from repro.petri.simulator import PetriNetSimulator
from repro.petri.transitions import MemoryPolicy


def figure1_net(rate: float = 1.0) -> PetriNet:
    """The paper's Figure 1: P0 --T0--> P1."""
    net = PetriNet("figure1")
    net.add_place("P0", initial=1)
    net.add_place("P1")
    net.add_timed_transition("T0", Exponential(rate))
    net.add_input_arc("P0", "T0")
    net.add_output_arc("T0", "P1")
    return net


class TestBasicTokenGame:
    def test_single_firing_moves_token(self):
        res = PetriNetSimulator(figure1_net(), seed=1).run(horizon=1000.0)
        assert res.final_marking["P0"] == 0
        assert res.final_marking["P1"] == 1
        assert res.firing_counts["T0"] == 1

    def test_mean_tokens_approach_one(self):
        # token moves to P1 after Exp(1) ~ 1s out of 100s
        res = PetriNetSimulator(figure1_net(1.0), seed=2).run(horizon=100.0)
        assert res.mean_tokens("P1") > 0.9
        assert res.mean_tokens("P0") + res.mean_tokens("P1") == pytest.approx(1.0)

    def test_unknown_place_raises(self):
        res = PetriNetSimulator(figure1_net(), seed=1).run(horizon=1.0)
        with pytest.raises(KeyError):
            res.mean_tokens("nope")
        with pytest.raises(KeyError):
            res.throughput("nope")

    def test_reproducible_with_seed(self):
        r1 = PetriNetSimulator(figure1_net(), seed=3).run(horizon=50.0)
        r2 = PetriNetSimulator(figure1_net(), seed=3).run(horizon=50.0)
        assert r1.mean_tokens("P1") == r2.mean_tokens("P1")

    def test_horizon_validation(self):
        sim = PetriNetSimulator(figure1_net(), seed=1)
        with pytest.raises(ValueError):
            sim.run(horizon=0.0)
        with pytest.raises(ValueError):
            sim.run(horizon=10.0, warmup=10.0)


class TestImmediateSemantics:
    def test_cascade_until_tangible(self):
        # a1 -> a2 -> a3 via two immediates, all at t=0
        net = PetriNet("cascade")
        net.add_place("a1", initial=1)
        net.add_place("a2")
        net.add_place("a3")
        net.add_immediate_transition("i1")
        net.add_input_arc("a1", "i1")
        net.add_output_arc("i1", "a2")
        net.add_immediate_transition("i2")
        net.add_input_arc("a2", "i2")
        net.add_output_arc("i2", "a3")
        res = PetriNetSimulator(net, seed=1).run(horizon=10.0)
        assert res.final_marking["a3"] == 1
        assert res.mean_tokens("a3") == pytest.approx(1.0)
        assert res.immediate_firings == 2

    def test_priority_selects_winner(self):
        # both immediates want the same token; higher priority wins always
        net = PetriNet("prio")
        net.add_place("src", initial=1)
        net.add_place("hi_out")
        net.add_place("lo_out")
        net.add_immediate_transition("hi", priority=5)
        net.add_immediate_transition("lo", priority=1)
        net.add_input_arc("src", "hi")
        net.add_input_arc("src", "lo")
        net.add_output_arc("hi", "hi_out")
        net.add_output_arc("lo", "lo_out")
        res = PetriNetSimulator(net, seed=1).run(horizon=1.0)
        assert res.final_marking["hi_out"] == 1
        assert res.final_marking["lo_out"] == 0

    def test_weights_split_conflicts(self):
        # 3:1 weighted conflict, resolved independently per token
        net = PetriNet("weights")
        net.add_place("src", initial=1)
        net.add_place("a_out")
        net.add_place("b_out")
        net.add_place("reload")
        net.add_timed_transition("feeder", Exponential(100.0))
        net.add_input_arc("reload", "feeder")
        net.add_output_arc("feeder", "src")
        net.add_immediate_transition("a", weight=3.0)
        net.add_immediate_transition("b", weight=1.0)
        net.add_input_arc("src", "a")
        net.add_input_arc("src", "b")
        net.add_output_arc("a", "a_out")
        net.add_output_arc("b", "b_out")
        # recycle outputs so the conflict repeats
        net.add_immediate_transition("recycle_a", priority=0)
        net.add_immediate_transition("recycle_b", priority=0)
        net.add_input_arc("a_out", "recycle_a")
        net.add_output_arc("recycle_a", "reload")
        net.add_input_arc("b_out", "recycle_b")
        net.add_output_arc("recycle_b", "reload")
        res = PetriNetSimulator(net, seed=7).run(horizon=200.0)
        total = res.firing_counts["a"] + res.firing_counts["b"]
        assert total > 1000
        share = res.firing_counts["a"] / total
        assert share == pytest.approx(0.75, abs=0.03)

    def test_zero_time_livelock_detected(self):
        # two immediates shuttle a token forever at t=0
        net = PetriNet("livelock")
        net.add_place("x", initial=1)
        net.add_place("y")
        net.add_immediate_transition("fwd")
        net.add_input_arc("x", "fwd")
        net.add_output_arc("fwd", "y")
        net.add_immediate_transition("back")
        net.add_input_arc("y", "back")
        net.add_output_arc("back", "x")
        sim = PetriNetSimulator(net, seed=1, max_immediate_chain=1000)
        with pytest.raises(SimulationError, match="livelock"):
            sim.run(horizon=1.0)


class TestInhibitors:
    def test_inhibitor_blocks_until_cleared(self):
        # t can only fire once 'blocker' drains via 'drain'
        net = PetriNet("inhibit")
        net.add_place("blocker", initial=1)
        net.add_place("src", initial=1)
        net.add_place("out")
        net.add_place("sink")
        net.add_timed_transition("drain", Deterministic(5.0))
        net.add_input_arc("blocker", "drain")
        net.add_output_arc("drain", "sink")
        net.add_timed_transition("t", Deterministic(1.0))
        net.add_input_arc("src", "t")
        net.add_inhibitor_arc("blocker", "t")
        net.add_output_arc("t", "out")
        res = PetriNetSimulator(net, seed=1).run(horizon=20.0)
        assert res.final_marking["out"] == 1
        # t could only start its 1s delay after the drain at t=5
        assert res.mean_tokens("out") == pytest.approx((20.0 - 6.0) / 20.0)

    def test_inhibitor_multiplicity_threshold(self):
        # t enabled while tokens < 2
        net = PetriNet("thresh")
        net.add_place("level", initial=1)
        net.add_place("src", initial=1)
        net.add_place("out")
        net.add_immediate_transition("t")
        net.add_input_arc("src", "t")
        net.add_inhibitor_arc("level", "t", multiplicity=2)
        net.add_output_arc("t", "out")
        res = PetriNetSimulator(net, seed=1).run(horizon=1.0)
        assert res.final_marking["out"] == 1  # 1 < 2: enabled


class TestMemoryPolicies:
    @staticmethod
    def _preemption_net(policy: MemoryPolicy) -> PetriNet:
        """'slow' (det 10) races 'fast' (det 3); fast disables slow via a
        shared token and returns it after 2s; measure slow's firing time."""
        net = PetriNet(f"preempt_{policy.value}")
        net.add_place("shared", initial=1)
        net.add_place("fast_src", initial=1)
        net.add_place("slow_done")
        net.add_place("fast_hold")
        net.add_timed_transition("slow", Deterministic(10.0), memory_policy=policy)
        net.add_input_arc("shared", "slow")
        net.add_output_arc("slow", "slow_done")
        net.add_timed_transition("fast", Deterministic(3.0))
        net.add_input_arc("fast_src", "fast")
        net.add_input_arc("shared", "fast")
        net.add_output_arc("fast", "fast_hold")
        net.add_timed_transition("release", Deterministic(2.0))
        net.add_input_arc("fast_hold", "release")
        net.add_output_arc("release", "shared")
        return net

    def _slow_firing_time(self, policy: MemoryPolicy) -> float:
        net = self._preemption_net(policy)
        sim = PetriNetSimulator(net, seed=1)
        res = sim.run(horizon=100.0)
        assert res.firing_counts["slow"] == 1
        # slow_done holds its token from the firing instant to the horizon
        return 100.0 * (1.0 - res.mean_tokens("slow_done"))

    def test_resample_restarts_clock(self):
        # slow enabled [0,3) preempted, re-enabled at 5, fires at 15
        assert self._slow_firing_time(MemoryPolicy.RESAMPLE) == pytest.approx(15.0)

    def test_age_resumes_clock(self):
        # 3s of age at preemption; remaining 7s after re-enable at 5 -> 12
        assert self._slow_firing_time(MemoryPolicy.AGE) == pytest.approx(12.0)

    def test_identical_repeats_same_sample(self):
        # deterministic: identical == resample
        assert self._slow_firing_time(MemoryPolicy.IDENTICAL) == pytest.approx(15.0)

    @staticmethod
    def _uniform_slow_net(policy: MemoryPolicy, preempt: bool) -> PetriNet:
        """Like _preemption_net but slow ~ Uniform(6, 20); identical net
        name so both variants draw the same first sample for 'slow'."""
        net = PetriNet("uniform_preempt")
        net.add_place("shared", initial=1)
        net.add_place("fast_src", initial=1 if preempt else 0)
        net.add_place("slow_done")
        net.add_place("fast_hold")
        net.add_timed_transition("slow", Uniform(6.0, 20.0), memory_policy=policy)
        net.add_input_arc("shared", "slow")
        net.add_output_arc("slow", "slow_done")
        net.add_timed_transition("fast", Deterministic(3.0))
        net.add_input_arc("fast_src", "fast")
        net.add_input_arc("shared", "fast")
        net.add_output_arc("fast", "fast_hold")
        net.add_timed_transition("release", Deterministic(2.0))
        net.add_input_arc("fast_hold", "release")
        net.add_output_arc("release", "shared")
        return net

    def test_identical_reuses_random_sample(self):
        # IDENTICAL: preempted at t=3, re-enabled at t=5, restarts the SAME
        # sample S -> fires at 5 + S, exactly 5 later than the
        # non-preempted run firing at S (same seed => same first sample).
        horizon = 200.0

        def firing_time(preempt: bool) -> float:
            net = self._uniform_slow_net(MemoryPolicy.IDENTICAL, preempt)
            res = PetriNetSimulator(net, seed=31).run(horizon=horizon)
            assert res.firing_counts["slow"] == 1
            return horizon * (1.0 - res.mean_tokens("slow_done"))

        assert firing_time(True) - firing_time(False) == pytest.approx(5.0)

    def test_age_memory_accumulates_across_multiple_preemptions(self):
        # 'slow' needs 10s of cumulative enabling; it is enabled in windows
        # of 3s (then preempted for 2s, repeatedly).  Under AGE it fires
        # after accumulating 10s of age: windows [0,3),[5,8),[10,13),[15,16]
        # -> 3+3+3+1 = 10 at t=16.
        net = self._preemption_net(MemoryPolicy.AGE)
        # make the preemption cycle repeat: feed fast_src from release
        net.add_output_arc("release", "fast_src")
        sim = PetriNetSimulator(net, seed=2)
        res = sim.run(horizon=100.0)
        assert res.firing_counts["slow"] == 1
        fired_at = 100.0 * (1.0 - res.mean_tokens("slow_done"))
        assert fired_at == pytest.approx(16.0)

    def test_exponential_unaffected_by_policy_in_mean(self):
        # memorylessness: resample vs age give the same steady state
        def build(policy):
            net = PetriNet("expo")
            net.add_place("on", initial=1)
            net.add_place("off")
            net.add_timed_transition(
                "down", Exponential(1.0), memory_policy=policy
            )
            net.add_input_arc("on", "down")
            net.add_output_arc("down", "off")
            net.add_timed_transition("up", Exponential(1.0))
            net.add_input_arc("off", "up")
            net.add_output_arc("up", "on")
            return net

        r1 = PetriNetSimulator(build(MemoryPolicy.RESAMPLE), seed=5).run(5000.0)
        r2 = PetriNetSimulator(build(MemoryPolicy.AGE), seed=5).run(5000.0)
        assert r1.mean_tokens("on") == pytest.approx(0.5, abs=0.03)
        assert r2.mean_tokens("on") == pytest.approx(0.5, abs=0.03)


class TestStatistics:
    def test_mm1_mean_queue_matches_theory(self):
        lam, mu = 1.0, 2.0
        net = PetriNet("mm1")
        net.add_place("gen", initial=1)
        net.add_place("queue")
        net.add_timed_transition("arrive", Exponential(lam))
        net.add_input_arc("gen", "arrive")
        net.add_output_arc("arrive", "gen")
        net.add_output_arc("arrive", "queue")
        net.add_timed_transition("serve", Exponential(mu))
        net.add_input_arc("queue", "serve")
        res = PetriNetSimulator(net, seed=11).run(horizon=30_000.0, warmup=500.0)
        q = MM1Queue(lam, mu)
        assert res.mean_tokens("queue") == pytest.approx(
            q.mean_number_in_system(), rel=0.05
        )
        assert res.throughput("serve") == pytest.approx(lam, rel=0.03)

    def test_watchers(self):
        net = figure1_net(1.0)
        sim = PetriNetSimulator(net, seed=4)
        sim.watch_place_positive("p1_busy", "P1")
        res = sim.run(horizon=100.0)
        assert res.watcher("p1_busy") == pytest.approx(res.mean_tokens("P1"))

    def test_warmup_excludes_initial_transient(self):
        # token leaves P0 around t~1; with warmup 50 P1 should read ~1.0
        res = PetriNetSimulator(figure1_net(1.0), seed=6).run(
            horizon=100.0, warmup=50.0
        )
        assert res.mean_tokens("P1") == pytest.approx(1.0)
        assert res.observed_time == pytest.approx(50.0)

    def test_max_firings_stops_early(self):
        net = PetriNet("loop")
        net.add_place("a", initial=1)
        net.add_place("b")
        net.add_timed_transition("go", Exponential(10.0))
        net.add_input_arc("a", "go")
        net.add_output_arc("go", "b")
        net.add_timed_transition("back", Exponential(10.0))
        net.add_input_arc("b", "back")
        net.add_output_arc("back", "a")
        res = PetriNetSimulator(net, seed=2).run(horizon=1e9, max_firings=100)
        total = sum(res.firing_counts.values())
        assert total == 100

    def test_run_batches_independent(self):
        sim = PetriNetSimulator(figure1_net(1.0), seed=9)
        batches = sim.run_batches(batch_length=50.0, n_batches=3)
        values = [b.mean_tokens("P1") for b in batches]
        assert len(set(values)) == 3  # different randomness per batch
