"""Reachability analysis: graph structure, vanishing elimination, bounds."""

import pytest

from repro.des.distributions import Deterministic, Exponential
from repro.petri.analysis import ReachabilityOptions, explore_reachability
from repro.petri.net import NetStructureError, PetriNet


def mm1k_net(K: int = 3) -> PetriNet:
    net = PetriNet("mm1k")
    net.add_place("free", initial=K)
    net.add_place("queue")
    net.add_timed_transition("arrive", Exponential(1.0))
    net.add_input_arc("free", "arrive")
    net.add_output_arc("arrive", "queue")
    net.add_timed_transition("serve", Exponential(2.0))
    net.add_input_arc("queue", "serve")
    net.add_output_arc("serve", "free")
    return net


class TestExploration:
    def test_mm1k_state_count(self):
        g = explore_reachability(mm1k_net(3))
        assert g.n_markings == 4  # queue = 0..3
        assert g.complete
        assert all(g.tangible)

    def test_place_bounds(self):
        g = explore_reachability(mm1k_net(3))
        assert g.place_bound("queue") == 3
        assert g.place_bound("free") == 3
        assert g.is_k_bounded(3)
        assert not g.is_k_bounded(2)

    def test_edges_reference_transitions(self):
        g = explore_reachability(mm1k_net(2))
        names = set()
        for edges in g.edges_out:
            for e in edges:
                names.add(g.transition_names[e.transition_index])
        assert names == {"arrive", "serve"}

    def test_dead_transitions_detected(self):
        net = mm1k_net(2)
        net.add_place("never", initial=0)
        net.add_place("sink")
        net.add_timed_transition("ghost", Exponential(1.0))
        net.add_input_arc("never", "ghost")
        net.add_output_arc("ghost", "sink")
        g = explore_reachability(net)
        assert g.dead_transitions() == ["ghost"]

    def test_dead_marking_detected(self):
        # one-shot net: after t fires nothing is enabled
        net = PetriNet("oneshot")
        net.add_place("a", initial=1)
        net.add_place("b")
        net.add_timed_transition("t", Exponential(1.0))
        net.add_input_arc("a", "t")
        net.add_output_arc("t", "b")
        g = explore_reachability(net)
        dead = g.dead_markings()
        assert len(dead) == 1
        assert g.markings[dead[0]]["b"] == 1

    def test_unbounded_net_reports_incomplete(self):
        net = PetriNet("unbounded")
        net.add_place("gen", initial=1)
        net.add_place("pile")
        net.add_timed_transition("make", Exponential(1.0))
        net.add_input_arc("gen", "make")
        net.add_output_arc("make", "gen")
        net.add_output_arc("make", "pile")
        g = explore_reachability(net, ReachabilityOptions(max_markings=50))
        assert not g.complete
        assert g.n_markings >= 50

    def test_find_marking(self):
        g = explore_reachability(mm1k_net(2))
        initial = g.markings[g.initial_index]
        assert g.find(initial) == g.initial_index


class TestVanishing:
    @staticmethod
    def _net_with_immediate() -> PetriNet:
        # arrive puts a token in staging; an immediate routes it to the queue
        net = PetriNet("staged")
        net.add_place("gen", initial=1)
        net.add_place("staging")
        net.add_place("queue", capacity=5)
        net.add_timed_transition("arrive", Exponential(1.0))
        net.add_input_arc("gen", "arrive")
        net.add_output_arc("arrive", "staging")
        net.add_immediate_transition("route")
        net.add_input_arc("staging", "route")
        net.add_output_arc("route", "gen")
        net.add_output_arc("route", "queue")
        net.add_timed_transition("serve", Exponential(3.0))
        net.add_input_arc("queue", "serve")
        return net

    def test_vanishing_markings_classified(self):
        g = explore_reachability(self._net_with_immediate())
        vanishing = g.vanishing_indices()
        assert vanishing  # staging-marked states are vanishing
        for v in vanishing:
            assert g.markings[v]["staging"] >= 1

    def test_vanishing_edges_carry_probabilities(self):
        g = explore_reachability(self._net_with_immediate())
        for v in g.vanishing_indices():
            probs = [e.probability for e in g.edges_out[v]]
            assert all(p is not None for p in probs)
            assert sum(probs) == pytest.approx(1.0)

    def test_absorption_reaches_tangible(self):
        g = explore_reachability(self._net_with_immediate())
        absorption = g.vanishing_absorption()
        for v, dist in absorption.items():
            assert sum(dist.values()) == pytest.approx(1.0)
            for target in dist:
                assert g.tangible[target]

    def test_weighted_conflict_probabilities(self):
        net = PetriNet("conflict")
        net.add_place("src", initial=1)
        net.add_place("a")
        net.add_place("b")
        net.add_immediate_transition("to_a", weight=3.0)
        net.add_input_arc("src", "to_a")
        net.add_output_arc("to_a", "a")
        net.add_immediate_transition("to_b", weight=1.0)
        net.add_input_arc("src", "to_b")
        net.add_output_arc("to_b", "b")
        g = explore_reachability(net)
        init_edges = g.edges_out[g.initial_index]
        probs = {
            g.transition_names[e.transition_index]: e.probability
            for e in init_edges
        }
        assert probs["to_a"] == pytest.approx(0.75)
        assert probs["to_b"] == pytest.approx(0.25)

    def test_priority_excludes_lower_immediates(self):
        net = PetriNet("prio")
        net.add_place("src", initial=1)
        net.add_place("hi")
        net.add_place("lo")
        net.add_immediate_transition("high", priority=2)
        net.add_input_arc("src", "high")
        net.add_output_arc("high", "hi")
        net.add_immediate_transition("low", priority=1)
        net.add_input_arc("src", "low")
        net.add_output_arc("low", "lo")
        g = explore_reachability(net)
        init_edges = g.edges_out[g.initial_index]
        assert len(init_edges) == 1
        assert g.transition_names[init_edges[0].transition_index] == "high"
