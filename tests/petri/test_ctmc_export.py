"""GSPN -> CTMC reduction validated against queueing closed forms."""

import pytest

from repro.des.distributions import Deterministic, Exponential
from repro.markov.queueing import MM1KQueue, MMcQueue
from repro.petri.ctmc_export import ctmc_from_net
from repro.petri.net import NetStructureError, PetriNet
from repro.petri.simulator import PetriNetSimulator


def mm1k_net(lam: float, mu: float, K: int) -> PetriNet:
    net = PetriNet("mm1k")
    net.add_place("free", initial=K)
    net.add_place("queue")
    net.add_timed_transition("arrive", Exponential(lam))
    net.add_input_arc("free", "arrive")
    net.add_output_arc("arrive", "queue")
    net.add_timed_transition("serve", Exponential(mu))
    net.add_input_arc("queue", "serve")
    net.add_output_arc("serve", "free")
    return net


class TestAgainstTheory:
    def test_mm1k_mean_queue(self):
        lam, mu, K = 1.0, 2.0, 6
        sol = ctmc_from_net(mm1k_net(lam, mu, K))
        q = MM1KQueue(lam, mu, K)
        assert sol.mean_tokens("queue") == pytest.approx(
            q.mean_number_in_system(), rel=1e-9
        )

    def test_mm1k_utilization(self):
        lam, mu, K = 1.0, 2.0, 6
        sol = ctmc_from_net(mm1k_net(lam, mu, K))
        q = MM1KQueue(lam, mu, K)
        assert sol.probability_positive("queue") == pytest.approx(
            q.utilization(), rel=1e-9
        )

    def test_mm1k_throughput(self):
        lam, mu, K = 1.0, 2.0, 6
        sol = ctmc_from_net(mm1k_net(lam, mu, K))
        q = MM1KQueue(lam, mu, K)
        assert sol.throughput("serve") == pytest.approx(
            q.effective_arrival_rate(), rel=1e-9
        )

    def test_steady_state_sums_to_one(self):
        sol = ctmc_from_net(mm1k_net(1.0, 1.5, 4))
        assert sum(sol.steady_state().values()) == pytest.approx(1.0)

    def test_simulator_agrees_with_ctmc(self):
        net = mm1k_net(1.0, 2.0, 4)
        sol = ctmc_from_net(net)
        res = PetriNetSimulator(net, seed=13).run(horizon=30_000.0, warmup=500.0)
        assert res.mean_tokens("queue") == pytest.approx(
            sol.mean_tokens("queue"), rel=0.05
        )


class TestVanishingElimination:
    def test_immediate_routing_preserves_rates(self):
        # identical M/M/1/K but arrivals route through an immediate stage;
        # the eliminated chain must match the direct one exactly
        lam, mu, K = 1.3, 2.2, 5
        direct = ctmc_from_net(mm1k_net(lam, mu, K))

        staged = PetriNet("staged")
        staged.add_place("free", initial=K)
        staged.add_place("staging")
        staged.add_place("queue")
        staged.add_timed_transition("arrive", Exponential(lam))
        staged.add_input_arc("free", "arrive")
        staged.add_output_arc("arrive", "staging")
        staged.add_immediate_transition("route")
        staged.add_input_arc("staging", "route")
        staged.add_output_arc("route", "queue")
        staged.add_timed_transition("serve", Exponential(mu))
        staged.add_input_arc("queue", "serve")
        staged.add_output_arc("serve", "free")

        sol = ctmc_from_net(staged)
        assert sol.mean_tokens("queue") == pytest.approx(
            direct.mean_tokens("queue"), rel=1e-9
        )

    def test_weighted_branch_split(self):
        # arrivals split 3:1 between two queues by immediate weights
        lam, mu = 1.0, 5.0
        net = PetriNet("split")
        net.add_place("gen", initial=1)
        net.add_place("staging")
        net.add_place("qa", capacity=30)
        net.add_place("qb", capacity=30)
        net.add_timed_transition("arrive", Exponential(lam))
        net.add_input_arc("gen", "arrive")
        net.add_output_arc("arrive", "staging")
        # the routing immediates return the generator token, so the state
        # space stays finite even in the (astronomically unlikely) corner
        # where both queues are at capacity
        net.add_immediate_transition("to_a", weight=3.0)
        net.add_input_arc("staging", "to_a")
        net.add_output_arc("to_a", "qa")
        net.add_output_arc("to_a", "gen")
        net.add_immediate_transition("to_b", weight=1.0)
        net.add_input_arc("staging", "to_b")
        net.add_output_arc("to_b", "qb")
        net.add_output_arc("to_b", "gen")
        net.add_timed_transition("serve_a", Exponential(mu))
        net.add_input_arc("qa", "serve_a")
        net.add_timed_transition("serve_b", Exponential(mu))
        net.add_input_arc("qb", "serve_b")
        sol = ctmc_from_net(net)
        # each branch is an M/M/1 with thinned Poisson arrivals
        rho_a, rho_b = 0.75 * lam / mu, 0.25 * lam / mu
        assert sol.mean_tokens("qa") == pytest.approx(
            rho_a / (1 - rho_a), rel=1e-6
        )
        assert sol.mean_tokens("qb") == pytest.approx(
            rho_b / (1 - rho_b), rel=1e-6
        )


class TestRejections:
    def test_deterministic_transition_rejected(self):
        net = PetriNet("dspn")
        net.add_place("a", initial=1)
        net.add_place("b")
        net.add_timed_transition("t", Deterministic(1.0))
        net.add_input_arc("a", "t")
        net.add_output_arc("t", "b")
        with pytest.raises(NetStructureError, match="exponential"):
            ctmc_from_net(net)

    def test_unbounded_net_rejected(self):
        net = PetriNet("unbounded")
        net.add_place("gen", initial=1)
        net.add_place("pile")
        net.add_timed_transition("make", Exponential(1.0))
        net.add_input_arc("gen", "make")
        net.add_output_arc("make", "gen")
        net.add_output_arc("make", "pile")
        from repro.petri.analysis import ReachabilityOptions

        with pytest.raises(NetStructureError, match="unbounded"):
            ctmc_from_net(net, ReachabilityOptions(max_markings=100))

    def test_throughput_requires_exponential_transition(self):
        sol = ctmc_from_net(mm1k_net(1.0, 2.0, 3))
        with pytest.raises(KeyError):
            sol.throughput("nope")
