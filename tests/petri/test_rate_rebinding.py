"""Rate rebinding: GSPNSolver re-solves nets without re-exploration."""

import numpy as np
import pytest

from repro.des.distributions import Exponential
from repro.petri.ctmc_export import GSPNSolver, ctmc_from_net
from repro.petri.net import PetriNet


def mm1k_net(lam: float, mu: float, K: int = 6) -> PetriNet:
    net = PetriNet("mm1k")
    net.add_place("free", initial=K)
    net.add_place("queue")
    net.add_timed_transition("arrive", Exponential(lam))
    net.add_input_arc("free", "arrive")
    net.add_output_arc("arrive", "queue")
    net.add_timed_transition("serve", Exponential(mu))
    net.add_input_arc("queue", "serve")
    net.add_output_arc("serve", "free")
    return net


def staged_net(lam: float, mu: float, K: int = 5) -> PetriNet:
    """Arrivals through an immediate stage — exercises vanishing reuse."""
    net = PetriNet("staged")
    net.add_place("free", initial=K)
    net.add_place("staging")
    net.add_place("queue")
    net.add_timed_transition("arrive", Exponential(lam))
    net.add_input_arc("free", "arrive")
    net.add_output_arc("arrive", "staging")
    net.add_immediate_transition("route")
    net.add_input_arc("staging", "route")
    net.add_output_arc("route", "queue")
    net.add_timed_transition("serve", Exponential(mu))
    net.add_input_arc("queue", "serve")
    net.add_output_arc("serve", "free")
    return net


class TestRebindMatchesFreshSolve:
    @pytest.mark.parametrize("factory", [mm1k_net, staged_net])
    @pytest.mark.parametrize("lam,mu", [(0.4, 3.0), (1.3, 2.2), (2.0, 2.1)])
    def test_rebound_equals_rebuilt(self, factory, lam, mu):
        solver = GSPNSolver(factory(1.0, 1.0))
        rebound = solver.solve(rates={"arrive": lam, "serve": mu})
        fresh = ctmc_from_net(factory(lam, mu))
        for place in ("free", "queue"):
            assert rebound.mean_tokens(place) == pytest.approx(
                fresh.mean_tokens(place), rel=1e-9
            )
        assert rebound.throughput("serve") == pytest.approx(
            fresh.throughput("serve"), rel=1e-9
        )

    def test_partial_override_keeps_net_rates(self):
        solver = GSPNSolver(mm1k_net(1.0, 2.0))
        sol = solver.solve(rates={"arrive": 1.5})
        fresh = ctmc_from_net(mm1k_net(1.5, 2.0))
        assert sol.mean_tokens("queue") == pytest.approx(
            fresh.mean_tokens("queue"), rel=1e-9
        )
        assert sol.rates == {"arrive": 1.5, "serve": 2.0}

    def test_default_solve_equals_ctmc_from_net(self):
        net = mm1k_net(1.0, 2.0)
        a = GSPNSolver(net).solve()
        b = ctmc_from_net(mm1k_net(1.0, 2.0))
        assert np.allclose(a.ctmc.steady_state(), b.ctmc.steady_state())
        assert a.rates == b.rates == {"arrive": 1.0, "serve": 2.0}

    def test_transient_after_rebind(self):
        solver = GSPNSolver(mm1k_net(1.0, 2.0))
        sol = solver.solve(rates={"arrive": 0.7})
        fresh = ctmc_from_net(mm1k_net(0.7, 2.0))
        p_sol = sol.ctmc.transient(sol.initial_distribution, 2.5)
        p_fresh = fresh.ctmc.transient(fresh.initial_distribution, 2.5)
        assert np.max(np.abs(p_sol - p_fresh)) < 1e-9

    def test_many_points_share_one_graph(self):
        solver = GSPNSolver(mm1k_net(1.0, 2.0))
        graph = solver.graph
        for lam in (0.3, 0.9, 1.7):
            sol = solver.solve(rates={"arrive": lam})
            assert sol.graph is graph  # no re-exploration


class TestRebindValidation:
    def test_unknown_transition_rejected(self):
        solver = GSPNSolver(mm1k_net(1.0, 2.0))
        with pytest.raises(KeyError, match="nope"):
            solver.solve(rates={"nope": 1.0})

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_nonpositive_rate_rejected(self, bad):
        solver = GSPNSolver(mm1k_net(1.0, 2.0))
        with pytest.raises(ValueError, match="finite and > 0"):
            solver.solve(rates={"arrive": bad})

    def test_exponential_transitions_listed(self):
        solver = GSPNSolver(staged_net(1.0, 2.0))
        assert sorted(solver.exponential_transitions) == ["arrive", "serve"]


class TestSolutionCaching:
    """GSPNSolution solves pi once and reuses it everywhere."""

    def test_steady_state_solved_once_across_queries(self, monkeypatch):
        from repro.markov.ctmc import CTMC

        calls = {"n": 0}
        original = CTMC._solve_steady_state

        def counting(self, *args):
            calls["n"] += 1
            return original(self, *args)

        monkeypatch.setattr(CTMC, "_solve_steady_state", counting)
        sol = ctmc_from_net(mm1k_net(1.0, 2.0))
        sol.steady_state()
        sol.mean_tokens("queue")
        sol.probability_positive("queue")
        sol.throughput("serve")
        sol.throughput("arrive")
        assert calls["n"] == 1

    def test_cached_queries_match_fresh_solution(self):
        sol = ctmc_from_net(mm1k_net(1.0, 2.0))
        warm = (sol.mean_tokens("queue"), sol.throughput("serve"))
        fresh = ctmc_from_net(mm1k_net(1.0, 2.0))
        assert warm[0] == pytest.approx(fresh.mean_tokens("queue"), rel=1e-12)
        assert warm[1] == pytest.approx(fresh.throughput("serve"), rel=1e-12)


class TestBackendChoice:
    def test_solver_backends_agree(self):
        solver = GSPNSolver(staged_net(1.3, 2.2))
        dense = solver.solve(backend="dense")
        sp = solver.solve(backend="sparse")
        assert dense.ctmc.backend == "dense"
        assert sp.ctmc.backend == "sparse"
        assert np.max(
            np.abs(dense.ctmc.steady_state() - sp.ctmc.steady_state())
        ) < 1e-9

    def test_auto_backend_small_net_is_dense(self):
        sol = ctmc_from_net(mm1k_net(1.0, 2.0))
        assert sol.ctmc.backend == "dense"
