"""Net construction, validation, and compilation."""

import pytest

from repro.des.distributions import Deterministic, Exponential
from repro.petri.net import NetStructureError, PetriNet
from repro.petri.transitions import ImmediateTransition


def small_net() -> PetriNet:
    net = PetriNet("small")
    net.add_place("p", initial=1)
    net.add_place("q")
    net.add_timed_transition("t", Exponential(1.0))
    net.add_input_arc("p", "t")
    net.add_output_arc("t", "q")
    return net


class TestConstruction:
    def test_builder_chaining(self):
        net = (
            PetriNet("chain")
            .add_place("a", initial=1)
            .add_place("b")
            .add_timed_transition("t", Exponential(1.0))
            .add_input_arc("a", "t")
            .add_output_arc("t", "b")
        )
        assert net.place_names == ["a", "b"]
        assert net.transition_names == ["t"]

    def test_duplicate_place_rejected(self):
        net = PetriNet().add_place("x")
        with pytest.raises(NetStructureError):
            net.add_place("x")

    def test_place_transition_name_collision_rejected(self):
        net = PetriNet().add_place("x")
        with pytest.raises(NetStructureError):
            net.add_immediate_transition("x")

    def test_arc_to_unknown_place_rejected(self):
        net = PetriNet().add_place("p").add_immediate_transition("t")
        net.add_input_arc("p", "t")
        with pytest.raises(NetStructureError):
            net.add_input_arc("nope", "t")

    def test_arc_to_unknown_transition_rejected(self):
        net = PetriNet().add_place("p")
        with pytest.raises(NetStructureError):
            net.add_input_arc("p", "nope")

    def test_negative_initial_rejected(self):
        with pytest.raises(NetStructureError):
            PetriNet().add_place("p", initial=-1)

    def test_capacity_below_initial_rejected(self):
        with pytest.raises(NetStructureError):
            PetriNet().add_place("p", initial=5, capacity=2)

    def test_initial_marking(self):
        net = small_net()
        m = net.initial_marking()
        assert m["p"] == 1
        assert m["q"] == 0

    def test_accessors(self):
        net = small_net()
        assert net.place("p").initial == 1
        assert net.transition("t").name == "t"
        with pytest.raises(NetStructureError):
            net.place("zz")
        with pytest.raises(NetStructureError):
            net.transition("zz")


class TestValidation:
    def test_clean_net_has_no_issues(self):
        assert small_net().validate() == []

    def test_sourceless_timed_transition_flagged(self):
        net = PetriNet().add_place("p").add_timed_transition("t", Exponential(1.0))
        net.add_output_arc("t", "p")
        issues = net.validate()
        assert any("always enabled" in i for i in issues)

    def test_inputless_immediate_flagged(self):
        net = PetriNet().add_place("p").add_immediate_transition("t")
        net.add_output_arc("t", "p")
        issues = net.validate()
        assert any("zero-time" in i for i in issues)

    def test_marking_preserving_immediate_flagged(self):
        net = PetriNet().add_place("p", initial=1).add_immediate_transition("t")
        net.add_input_arc("p", "t")
        net.add_output_arc("t", "p")
        issues = net.validate()
        assert any("livelock" in i for i in issues)

    def test_check_raises_on_issues(self):
        net = PetriNet()
        with pytest.raises(NetStructureError):
            net.check()


class TestCompilation:
    def test_compiled_structure(self):
        net = small_net()
        c = net.compile()
        assert c.place_names == ["p", "q"]
        assert list(c.initial_marking) == [1, 0]
        assert c.timed_indices == [0]
        assert c.immediate_indices == []
        assert c.inputs[0] == ((0, 1),)
        assert c.outputs[0] == ((1, 1),)

    def test_compile_cached_and_invalidated(self):
        net = small_net()
        c1 = net.compile()
        assert net.compile() is c1
        net.add_place("r")
        assert net.compile() is not c1

    def test_enabled_and_fire(self):
        net = small_net()
        c = net.compile()
        m = c.initial_marking.copy()
        assert c.enabled(0, m)
        c.fire(0, m)
        assert list(m) == [0, 1]
        assert not c.enabled(0, m)

    def test_capacity_disables_transition(self):
        net = PetriNet()
        net.add_place("src", initial=2)
        net.add_place("dst", capacity=1)
        net.add_immediate_transition("t")
        net.add_input_arc("src", "t")
        net.add_output_arc("t", "dst")
        c = net.compile()
        m = c.initial_marking.copy()
        assert c.enabled(0, m)
        c.fire(0, m)
        # capacity semantics: the transition is disabled, not an error
        assert not c.enabled(0, m)
        # but force-firing past the bound is caught defensively
        with pytest.raises(NetStructureError, match="capacity"):
            c.fire(0, m)

    def test_self_loop_does_not_trip_capacity(self):
        # consume and reproduce in the same bounded place: net delta 0
        net = PetriNet()
        net.add_place("spot", initial=1, capacity=1)
        net.add_place("counter")
        net.add_timed_transition("tick", Exponential(1.0))
        net.add_input_arc("spot", "tick")
        net.add_output_arc("tick", "spot")
        net.add_output_arc("tick", "counter")
        c = net.compile()
        assert c.enabled(0, c.initial_marking.copy())

    def test_inhibitor_in_compiled_form(self):
        net = PetriNet()
        net.add_place("p", initial=1)
        net.add_place("blocker", initial=1)
        net.add_place("out")
        net.add_immediate_transition("t")
        net.add_input_arc("p", "t")
        net.add_inhibitor_arc("blocker", "t")
        net.add_output_arc("t", "out")
        c = net.compile()
        m = c.initial_marking.copy()
        assert not c.enabled(0, m)
        m[c.place_names.index("blocker")] = 0
        assert c.enabled(0, m)

    def test_guard_respected(self):
        net = PetriNet()
        net.add_place("p", initial=5)
        net.add_place("out")
        net.add_immediate_transition("t", guard=lambda m: m[0] >= 3)
        net.add_input_arc("p", "t")
        net.add_output_arc("t", "out")
        c = net.compile()
        m = c.initial_marking.copy()
        assert c.enabled(0, m)
        m[0] = 2
        assert not c.enabled(0, m)

    def test_multiplicity_arcs(self):
        net = PetriNet()
        net.add_place("p", initial=4)
        net.add_place("out")
        net.add_immediate_transition("t")
        net.add_input_arc("p", "t", multiplicity=3)
        net.add_output_arc("t", "out", multiplicity=2)
        c = net.compile()
        m = c.initial_marking.copy()
        assert c.enabled(0, m)
        c.fire(0, m)
        assert list(m) == [1, 2]
        assert not c.enabled(0, m)
