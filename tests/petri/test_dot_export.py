"""DOT export: structural content of the rendered graph text."""

from repro.core.params import CPUModelParams
from repro.core.petri_cpu import build_cpu_net
from repro.des.distributions import Exponential
from repro.petri.analysis import explore_reachability
from repro.petri.dot_export import reachability_to_dot, to_dot
from repro.petri.net import PetriNet


def tiny_net() -> PetriNet:
    net = PetriNet("tiny")
    net.add_place("p", initial=2)
    net.add_place("q")
    net.add_timed_transition("t", Exponential(1.5))
    net.add_input_arc("p", "t")
    net.add_output_arc("t", "q")
    net.add_immediate_transition("i", priority=3)
    net.add_input_arc("q", "i")
    net.add_output_arc("i", "p")
    return net


class TestNetExport:
    def test_contains_all_nodes(self):
        dot = to_dot(tiny_net())
        for name in ("p", "q", "t", "i"):
            assert f'"{name}"' in dot

    def test_initial_tokens_in_label(self):
        assert "(2)" in to_dot(tiny_net())

    def test_exponential_rate_in_label(self):
        assert "exp(1.5)" in to_dot(tiny_net())

    def test_immediate_priority_rendered(self):
        assert "prio 3" in to_dot(tiny_net())

    def test_inhibitor_arrowhead(self):
        params = CPUModelParams.paper_defaults()
        dot = to_dot(build_cpu_net(params))
        assert "arrowhead=odot" in dot

    def test_valid_digraph_delimiters(self):
        dot = to_dot(tiny_net())
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_cpu_net_mentions_deterministic(self):
        dot = to_dot(build_cpu_net(CPUModelParams.paper_defaults(T=0.5)))
        assert "det(0.5)" in dot


class TestReachabilityExport:
    def test_reachability_nodes_and_edges(self):
        g = explore_reachability(tiny_net())
        dot = reachability_to_dot(g)
        assert "m0" in dot
        assert "->" in dot
        assert dot.startswith("digraph")

    def test_truncation_marker(self):
        net = PetriNet("big")
        net.add_place("gen", initial=1)
        net.add_place("pile")
        net.add_timed_transition("make", Exponential(1.0))
        net.add_input_arc("gen", "make")
        net.add_output_arc("make", "gen")
        net.add_output_arc("make", "pile")
        from repro.petri.analysis import ReachabilityOptions

        g = explore_reachability(net, ReachabilityOptions(max_markings=20))
        dot = reachability_to_dot(g, max_nodes=5)
        assert "more" in dot
