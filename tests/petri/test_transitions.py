"""Transition objects and arc dataclass validation."""

import pytest

from repro.des.distributions import Deterministic, Exponential, Uniform
from repro.petri.arcs import Arc, ArcKind
from repro.petri.transitions import (
    ImmediateTransition,
    MemoryPolicy,
    TimedTransition,
)


class TestImmediate:
    def test_defaults(self):
        t = ImmediateTransition("t")
        assert t.is_immediate
        assert t.priority == 1
        assert t.weight == 1.0

    def test_weight_must_be_positive(self):
        with pytest.raises(ValueError):
            ImmediateTransition("t", weight=0.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ImmediateTransition("")


class TestTimed:
    def test_exponential_properties(self):
        t = TimedTransition("t", Exponential(3.0))
        assert not t.is_immediate
        assert t.is_exponential
        assert t.rate == 3.0

    def test_deterministic_is_not_exponential(self):
        t = TimedTransition("t", Deterministic(0.5))
        assert not t.is_exponential
        with pytest.raises(AttributeError):
            _ = t.rate

    def test_general_distribution_allowed(self):
        t = TimedTransition("t", Uniform(0.1, 0.2))
        assert not t.is_exponential

    def test_zero_delay_rejected(self):
        with pytest.raises(ValueError, match="zero delay"):
            TimedTransition("t", Deterministic(0.0))

    def test_non_distribution_rejected(self):
        with pytest.raises(TypeError):
            TimedTransition("t", 0.5)

    def test_default_memory_policy_is_resample(self):
        t = TimedTransition("t", Deterministic(1.0))
        assert t.memory_policy is MemoryPolicy.RESAMPLE

    def test_bad_memory_policy_rejected(self):
        with pytest.raises(TypeError):
            TimedTransition("t", Exponential(1.0), memory_policy="age")


class TestArcs:
    def test_describe_input(self):
        assert Arc("p", "t", ArcKind.INPUT).describe() == "p -> t"

    def test_describe_inhibitor_with_multiplicity(self):
        text = Arc("p", "t", ArcKind.INHIBITOR, multiplicity=3).describe()
        assert "-o" in text and "x3" in text

    def test_multiplicity_must_be_positive(self):
        with pytest.raises(ValueError):
            Arc("p", "t", ArcKind.INPUT, multiplicity=0)

    def test_kind_must_be_enum(self):
        with pytest.raises(TypeError):
            Arc("p", "t", "input")
