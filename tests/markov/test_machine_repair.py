"""Finite-source queue (M/M/1//N): closed forms vs chain solve vs the
closed-workload simulator."""

import pytest

from repro.core.params import CPUModelParams
from repro.des.distributions import Exponential
from repro.markov.birth_death import BirthDeathChain
from repro.markov.queueing import MachineRepairQueue
from repro.workload.closed_workload import ClosedCPUSimulator, ClosedWorkload


class TestClosedForms:
    def test_probabilities_sum_to_one(self):
        q = MachineRepairQueue(n_clients=5, think_rate=0.5, service_rate=2.0)
        assert sum(q.state_probabilities()) == pytest.approx(1.0)

    def test_matches_birth_death_chain(self):
        n, think, mu = 6, 0.7, 3.0
        q = MachineRepairQueue(n, think, mu)
        chain = BirthDeathChain(
            capacity=n,
            birth_rates=lambda k: (n - k) * think,
            death_rates=lambda k: mu,
        )
        probs = q.state_probabilities()
        pi = chain.stationary_distribution()
        for a, b in zip(probs, pi):
            assert a == pytest.approx(b, rel=1e-10)

    def test_single_client_known_answer(self):
        # N=1: utilization = think / (think + mu) by alternating renewal
        think, mu = 0.5, 2.0
        q = MachineRepairQueue(1, think, mu)
        cycle = 1.0 / think + 1.0 / mu
        assert q.utilization() == pytest.approx((1.0 / mu) / cycle)
        assert q.mean_response_time() == pytest.approx(1.0 / mu)

    def test_throughput_bounded_by_both_resources(self):
        q = MachineRepairQueue(10, 1.0, 2.0)
        assert q.throughput() < 2.0  # server capacity
        assert q.throughput() < 10.0 * 1.0  # population capacity

    def test_response_time_grows_with_population(self):
        r = [
            MachineRepairQueue(n, 0.5, 2.0).mean_response_time()
            for n in (1, 5, 20)
        ]
        assert r[0] < r[1] < r[2]

    def test_large_population_saturates_server(self):
        q = MachineRepairQueue(200, 0.5, 2.0)
        assert q.utilization() == pytest.approx(1.0, abs=1e-6)
        assert q.throughput() == pytest.approx(2.0, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineRepairQueue(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            MachineRepairQueue(1, 0.0, 1.0)


class TestAgainstClosedSimulator:
    def test_simulator_without_power_management_matches(self):
        """ClosedCPUSimulator with T -> inf and D = 0 *is* M/M/1//N."""
        n, think, mu = 4, 0.8, 5.0
        params = CPUModelParams(
            arrival_rate=0.1,  # unused by the closed loop
            service_rate=mu,
            power_down_threshold=1e9,  # never powers down
            power_up_delay=0.0,
        )
        workload = ClosedWorkload(n_clients=n, think_time=Exponential(think))
        res = ClosedCPUSimulator(params, workload, seed=17).run(
            horizon=30_000.0, warmup=500.0
        )
        q = MachineRepairQueue(n, think, mu)
        assert res.fractions.active == pytest.approx(q.utilization(), rel=0.03)
        assert res.effective_arrival_rate == pytest.approx(
            q.throughput(), rel=0.03
        )
        assert res.mean_latency == pytest.approx(
            q.mean_response_time(), rel=0.05
        )
