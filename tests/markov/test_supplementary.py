"""Supplementary-variable stage primitives vs direct integration."""

import math

import numpy as np
import pytest

from repro.markov.supplementary import SupplementaryVariableStage


class TestInterruptibleStage:
    def test_completion_probability(self):
        st = SupplementaryVariableStage(duration=0.5, hazard_rate=2.0)
        assert st.completion_probability() == pytest.approx(math.exp(-1.0))

    def test_probabilities_complement(self):
        st = SupplementaryVariableStage(0.7, 1.3)
        assert st.completion_probability() + st.interruption_probability() == (
            pytest.approx(1.0)
        )

    def test_expected_sojourn_is_integral_of_survival(self):
        # E[min(X, tau)] = int_0^tau e^{-lam x} dx
        lam, tau = 1.7, 0.9
        st = SupplementaryVariableStage(tau, lam)
        xs = np.linspace(0.0, tau, 100_001)
        integral = np.trapezoid(np.exp(-lam * xs), xs)
        assert st.expected_sojourn_interruptible() == pytest.approx(
            integral, rel=1e-6
        )

    def test_sojourn_monte_carlo(self, rng):
        lam, tau = 2.0, 0.4
        st = SupplementaryVariableStage(tau, lam)
        draws = np.minimum(rng.exponential(1.0 / lam, size=200_000), tau)
        assert draws.mean() == pytest.approx(
            st.expected_sojourn_interruptible(), rel=0.01
        )

    def test_stationary_mass_renewal_reward(self):
        st = SupplementaryVariableStage(0.5, 1.0)
        assert st.stationary_mass_interruptible(2.0) == pytest.approx(
            2.0 * st.expected_sojourn_interruptible()
        )

    def test_age_density_shape(self):
        st = SupplementaryVariableStage(1.0, 2.0)
        p0 = 3.0
        assert st.age_density(0.0, p0) == 3.0
        assert st.age_density(0.5, p0) == pytest.approx(3.0 * math.exp(-1.0))

    def test_age_outside_range_rejected(self):
        st = SupplementaryVariableStage(1.0, 1.0)
        with pytest.raises(ValueError):
            st.age_density(1.5, 1.0)

    def test_zero_duration_degenerates(self):
        st = SupplementaryVariableStage(0.0, 1.0)
        assert st.completion_probability() == 1.0
        assert st.expected_sojourn_interruptible() == 0.0


class TestFullStage:
    def test_poisson_pmf_matches_scipy(self):
        from scipy.stats import poisson

        st = SupplementaryVariableStage(duration=2.5, hazard_rate=1.2)
        x = 2.5 * 1.2
        for n in range(10):
            assert st.poisson_count_pmf(n) == pytest.approx(
                poisson.pmf(n, x), rel=1e-10
            )

    def test_pmf_vector_matches_scalar(self):
        st = SupplementaryVariableStage(1.0, 3.0)
        vec = st.poisson_count_pmf_vector(8)
        for n, v in enumerate(vec):
            assert v == pytest.approx(st.poisson_count_pmf(n), rel=1e-12)

    def test_pmf_sums_to_one(self):
        st = SupplementaryVariableStage(0.8, 2.0)
        assert sum(st.poisson_count_pmf_vector(60)) == pytest.approx(1.0)

    def test_large_lambda_tau_no_overflow(self):
        st = SupplementaryVariableStage(duration=100.0, hazard_rate=10.0)
        # mode of Poisson(1000)
        assert 0.0 < st.poisson_count_pmf(1000) < 1.0
        assert st.poisson_count_pmf(0) == pytest.approx(0.0, abs=1e-300)

    def test_expected_arrivals(self):
        st = SupplementaryVariableStage(2.0, 1.5)
        assert st.expected_arrivals() == 3.0

    def test_full_mass(self):
        st = SupplementaryVariableStage(2.0, 1.0)
        assert st.stationary_mass_full(0.25) == 0.5


class TestValidation:
    def test_negative_duration(self):
        with pytest.raises(ValueError):
            SupplementaryVariableStage(-1.0, 1.0)

    def test_nonpositive_hazard(self):
        with pytest.raises(ValueError):
            SupplementaryVariableStage(1.0, 0.0)

    def test_negative_entry_rate(self):
        st = SupplementaryVariableStage(1.0, 1.0)
        with pytest.raises(ValueError):
            st.stationary_mass_interruptible(-0.1)
