"""Queueing closed forms: textbook identities and cross-family limits."""

import math

import pytest

from repro.markov.queueing import (
    MD1Queue,
    MG1Queue,
    MM1KQueue,
    MM1Queue,
    MMcQueue,
    little_l,
    little_w,
)


class TestMM1:
    def test_utilization(self):
        assert MM1Queue(1.0, 4.0).utilization == 0.25

    def test_mean_number_geometric(self):
        q = MM1Queue(1.0, 2.0)
        assert q.mean_number_in_system() == pytest.approx(1.0)
        assert q.mean_number_in_queue() == pytest.approx(0.5)

    def test_latency_and_little(self):
        q = MM1Queue(2.0, 5.0)
        assert q.mean_latency() == pytest.approx(1.0 / 3.0)
        assert little_l(2.0, q.mean_latency()) == pytest.approx(
            q.mean_number_in_system()
        )
        assert little_w(q.mean_number_in_system(), 2.0) == pytest.approx(
            q.mean_latency()
        )

    def test_state_probabilities_sum(self):
        q = MM1Queue(1.0, 3.0)
        assert sum(q.p_n(n) for n in range(200)) == pytest.approx(1.0)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            MM1Queue(2.0, 2.0)

    def test_p0_is_idle_probability(self):
        q = MM1Queue(1.0, 4.0)
        assert q.p_n(0) == pytest.approx(1.0 - q.utilization)


class TestMM1K:
    def test_limits_to_mm1_for_large_k(self):
        lam, mu = 1.0, 2.0
        finite = MM1KQueue(lam, mu, 80)
        infinite = MM1Queue(lam, mu)
        assert finite.mean_number_in_system() == pytest.approx(
            infinite.mean_number_in_system(), rel=1e-6
        )
        assert finite.blocking_probability() < 1e-20

    def test_rho_equal_one_uniform(self):
        q = MM1KQueue(1.0, 1.0, 4)
        assert q.p_n(2) == pytest.approx(0.2)
        assert q.mean_number_in_system() == pytest.approx(2.0)

    def test_probabilities_sum_to_one(self):
        q = MM1KQueue(2.0, 1.0, 6)  # overloaded is fine for finite K
        assert sum(q.p_n(n) for n in range(7)) == pytest.approx(1.0)

    def test_effective_rate_below_offered(self):
        q = MM1KQueue(3.0, 1.0, 3)
        assert q.effective_arrival_rate() < 3.0

    def test_latency_consistent_with_little(self):
        q = MM1KQueue(1.0, 2.0, 5)
        assert q.mean_latency() == pytest.approx(
            q.mean_number_in_system() / q.effective_arrival_rate()
        )

    def test_out_of_range_n(self):
        q = MM1KQueue(1.0, 2.0, 3)
        with pytest.raises(ValueError):
            q.p_n(4)


class TestMMc:
    def test_c1_reduces_to_mm1(self):
        lam, mu = 1.0, 3.0
        mmc = MMcQueue(lam, mu, 1)
        mm1 = MM1Queue(lam, mu)
        assert mmc.erlang_c() == pytest.approx(mm1.utilization)
        assert mmc.mean_number_in_system() == pytest.approx(
            mm1.mean_number_in_system()
        )
        assert mmc.mean_latency() == pytest.approx(mm1.mean_latency())

    def test_more_servers_less_waiting(self):
        lam, mu = 3.0, 1.0
        w4 = MMcQueue(lam, mu, 4).mean_waiting_time()
        w8 = MMcQueue(lam, mu, 8).mean_waiting_time()
        assert w8 < w4

    def test_erlang_c_in_unit_interval(self):
        q = MMcQueue(5.0, 1.0, 7)
        assert 0.0 < q.erlang_c() < 1.0

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            MMcQueue(4.0, 1.0, 4)


class TestMG1:
    def test_exponential_service_recovers_mm1(self):
        lam, mu = 1.0, 2.5
        mg1 = MG1Queue(lam, 1.0 / mu, 1.0)  # cv^2 = 1
        mm1 = MM1Queue(lam, mu)
        assert mg1.mean_waiting_time() == pytest.approx(mm1.mean_waiting_time())
        assert mg1.mean_number_in_system() == pytest.approx(
            mm1.mean_number_in_system()
        )

    def test_md1_half_the_mm1_wait(self):
        lam, mu = 1.0, 2.0
        md1 = MD1Queue(lam, 1.0 / mu)
        mm1 = MM1Queue(lam, mu)
        assert md1.mean_waiting_time() == pytest.approx(
            mm1.mean_waiting_time() / 2.0
        )

    def test_variability_hurts(self):
        base = MG1Queue(1.0, 0.4, 0.0)
        bursty = MG1Queue(1.0, 0.4, 4.0)
        assert bursty.mean_waiting_time() > base.mean_waiting_time()

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            MG1Queue(2.0, 0.5, 1.0)

    def test_negative_cv2_rejected(self):
        with pytest.raises(ValueError):
            MG1Queue(1.0, 0.5, -0.1)


class TestLittlesLaw:
    def test_roundtrip(self):
        assert little_w(little_l(2.0, 3.0), 2.0) == pytest.approx(3.0)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            little_w(1.0, 0.0)
