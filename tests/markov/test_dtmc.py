"""DTMC: stationary distributions, absorption, hitting times."""

import numpy as np
import pytest

from repro.markov.dtmc import DTMC


def weather_chain() -> DTMC:
    """Classic 2-state chain: sunny/rainy."""
    return DTMC(np.array([[0.9, 0.1], [0.5, 0.5]]), labels=["sunny", "rainy"])


class TestConstruction:
    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValueError):
            DTMC(np.array([[0.5, 0.4], [0.5, 0.5]]))

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            DTMC(np.array([[1.1, -0.1], [0.5, 0.5]]))

    def test_from_probabilities(self):
        d = DTMC.from_probabilities(
            {("a", "b"): 1.0, ("b", "a"): 0.25, ("b", "b"): 0.75}
        )
        assert d.n == 2
        assert d.is_stochastic()

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            DTMC(np.eye(2), labels=["x", "x"])


class TestStationary:
    def test_weather_chain_known_answer(self):
        pi = weather_chain().stationary_dict()
        # solve: pi_s = 0.9 pi_s + 0.5 pi_r -> pi_s / pi_r = 5
        assert pi["sunny"] == pytest.approx(5.0 / 6.0)
        assert pi["rainy"] == pytest.approx(1.0 / 6.0)

    def test_stationary_is_fixed_point(self):
        d = weather_chain()
        pi = d.stationary_distribution()
        assert np.allclose(pi @ d.P, pi)

    def test_doubly_stochastic_is_uniform(self):
        P = np.array([[0.2, 0.3, 0.5], [0.5, 0.2, 0.3], [0.3, 0.5, 0.2]])
        pi = DTMC(P).stationary_distribution()
        assert np.allclose(pi, 1.0 / 3.0)

    def test_step_evolution(self):
        d = weather_chain()
        p0 = np.array([1.0, 0.0])
        p1 = d.step(p0)
        assert p1 == pytest.approx([0.9, 0.1])
        p2 = d.step(p0, k=2)
        assert p2 == pytest.approx(p1 @ d.P)


class TestAbsorption:
    def test_gamblers_ruin(self):
        # states 0..3; 0 and 3 absorbing; fair coin
        P = np.array(
            [
                [1.0, 0.0, 0.0, 0.0],
                [0.5, 0.0, 0.5, 0.0],
                [0.0, 0.5, 0.0, 0.5],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )
        d = DTMC(P)
        absorb = d.absorption_probabilities([0, 3])
        # from state 1, P(hit 3) = 1/3
        assert absorb[1][3] == pytest.approx(1.0 / 3.0)
        assert absorb[1][0] == pytest.approx(2.0 / 3.0)
        assert absorb[2][3] == pytest.approx(2.0 / 3.0)

    def test_absorption_rows_sum_to_one(self):
        P = np.array(
            [[1.0, 0.0, 0.0], [0.3, 0.2, 0.5], [0.0, 0.0, 1.0]]
        )
        d = DTMC(P)
        absorb = d.absorption_probabilities([0, 2])
        assert sum(absorb[1].values()) == pytest.approx(1.0)

    def test_no_transient_states(self):
        d = DTMC(np.eye(2))
        assert d.absorption_probabilities([0, 1]) == {}


class TestHittingTimes:
    def test_expected_steps_simple_walk(self):
        # 0 -> 1 -> 2 deterministic: hitting 2 from 0 takes 2 steps
        P = np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [0.0, 0.0, 1.0]])
        d = DTMC(P)
        h = d.expected_hitting_time([2])
        assert h[0] == pytest.approx(2.0)
        assert h[1] == pytest.approx(1.0)
        assert h[2] == 0.0

    def test_geometric_return(self):
        # from 'rainy', expected steps to 'sunny' = 1/0.5 = 2
        h = weather_chain().expected_hitting_time(["sunny"])
        assert h["rainy"] == pytest.approx(2.0)
