"""Birth-death chains: product form vs generic CTMC solve, M/M/1 truncation."""

import numpy as np
import pytest

from repro.markov.birth_death import BirthDeathChain
from repro.markov.queueing import MM1KQueue, MM1Queue


class TestProductForm:
    def test_matches_generic_ctmc_solver(self):
        chain = BirthDeathChain(
            capacity=8,
            birth_rates=lambda n: 1.0 + 0.1 * n,
            death_rates=lambda n: 2.0 + 0.05 * n,
        )
        pi_closed = chain.stationary_distribution()
        pi_ctmc = chain.to_ctmc().steady_state()
        assert np.allclose(pi_closed, pi_ctmc, atol=1e-10)

    def test_mm1k_special_case(self):
        lam, mu, K = 1.0, 2.0, 7
        chain = BirthDeathChain(K, lam, mu)
        q = MM1KQueue(lam, mu, K)
        pi = chain.stationary_distribution()
        for n in range(K + 1):
            assert pi[n] == pytest.approx(q.p_n(n), rel=1e-10)

    def test_mean_population_mm1k(self):
        lam, mu, K = 1.5, 2.0, 12
        chain = BirthDeathChain(K, lam, mu)
        q = MM1KQueue(lam, mu, K)
        assert chain.mean_population() == pytest.approx(
            q.mean_number_in_system(), rel=1e-10
        )

    def test_large_chain_no_overflow(self):
        # rho = 5: raw product form would overflow; log-space must survive
        chain = BirthDeathChain(500, 5.0, 1.0)
        pi = chain.stationary_distribution()
        assert np.all(np.isfinite(pi))
        assert pi.sum() == pytest.approx(1.0)
        # mass concentrates at the top when rho > 1
        assert pi[-1] > 0.5

    def test_throughput_equals_effective_arrival(self):
        lam, mu, K = 1.0, 2.0, 5
        chain = BirthDeathChain(K, lam, mu)
        q = MM1KQueue(lam, mu, K)
        assert chain.throughput() == pytest.approx(
            q.effective_arrival_rate(), rel=1e-10
        )

    def test_blocking_probability(self):
        lam, mu, K = 1.0, 1.0, 4
        chain = BirthDeathChain(K, lam, mu)
        assert chain.blocking_probability() == pytest.approx(1.0 / (K + 1))


class TestTruncation:
    def test_truncated_mm1_approximates_infinite(self):
        lam, mu = 1.0, 2.0
        rho = lam / mu
        K = BirthDeathChain.truncation_for_mm1(rho, tail_mass=1e-12)
        chain = BirthDeathChain(K, lam, mu)
        q = MM1Queue(lam, mu)
        assert chain.mean_population() == pytest.approx(
            q.mean_number_in_system(), rel=1e-6
        )
        assert chain.stationary_distribution()[0] == pytest.approx(
            1.0 - rho, rel=1e-9
        )

    def test_truncation_level_monotone_in_tail(self):
        k_loose = BirthDeathChain.truncation_for_mm1(0.5, 1e-6)
        k_tight = BirthDeathChain.truncation_for_mm1(0.5, 1e-15)
        assert k_tight > k_loose

    def test_invalid_rho_rejected(self):
        with pytest.raises(ValueError):
            BirthDeathChain.truncation_for_mm1(1.5)


class TestValidation:
    def test_rate_sequence_lengths_checked(self):
        with pytest.raises(ValueError):
            BirthDeathChain(3, [1.0, 1.0], [1.0, 1.0, 1.0])

    def test_zero_death_rate_rejected(self):
        with pytest.raises(ValueError):
            BirthDeathChain(2, 1.0, [1.0, 0.0])

    def test_negative_birth_rejected(self):
        with pytest.raises(ValueError):
            BirthDeathChain(2, -1.0, 1.0)

    def test_capacity_minimum(self):
        with pytest.raises(ValueError):
            BirthDeathChain(0, 1.0, 1.0)
