"""Iterative steady-state solvers: GMRES, power iteration, auto policy."""

import pickle

import numpy as np
import pytest
from scipy import sparse

from repro.markov.ctmc import (
    CTMC,
    ITERATIVE_AUTO_THRESHOLD,
    STEADY_STATE_METHODS,
    ConvergenceError,
    SolverCache,
    gmres_steady_state,
    power_steady_state,
    resolve_steady_state_method,
)


def _cyclic_chain(n=6, fast=5.0, slow=0.01):
    """An irreducible ring with one slow link (mixes slowly)."""
    rates = {}
    for i in range(n):
        rates[(i, (i + 1) % n)] = slow if i == 0 else fast
        rates[(i, (i - 1) % n)] = fast
    return CTMC.from_rates(rates)


class TestMethodAgreement:
    def test_all_methods_agree_small_dense(self):
        Q = [[-1.0, 0.6, 0.4], [0.5, -1.5, 1.0], [0.2, 0.3, -0.5]]
        pi = {
            m: CTMC(Q).steady_state(method=m, tol=1e-13)
            for m in ("lu", "gmres", "power")
        }
        np.testing.assert_allclose(pi["gmres"], pi["lu"], rtol=0, atol=1e-9)
        np.testing.assert_allclose(pi["power"], pi["lu"], rtol=0, atol=1e-8)

    def test_all_methods_agree_sparse_backend(self):
        chain = _cyclic_chain()
        pi_lu = chain.steady_state(method="lu")
        pi_gmres = CTMC(chain.Q_sparse, backend="sparse").steady_state(
            method="gmres", tol=1e-12
        )
        pi_power = CTMC(chain.Q_sparse, backend="sparse").steady_state(
            method="power", tol=1e-13
        )
        np.testing.assert_allclose(pi_gmres, pi_lu, rtol=0, atol=1e-9)
        np.testing.assert_allclose(pi_power, pi_lu, rtol=0, atol=1e-7)

    def test_results_cached_per_method(self):
        chain = _cyclic_chain()
        a = chain.steady_state(method="gmres")
        b = chain.steady_state(method="gmres")
        np.testing.assert_array_equal(a, b)
        b[0] = 123.0  # a copy is returned: mutating it must not poison
        np.testing.assert_array_equal(a, chain.steady_state(method="gmres"))

    def test_module_level_solvers_accept_dense_arrays(self):
        Q = np.array([[-2.0, 2.0], [1.0, -1.0]])
        expect = np.array([1.0 / 3.0, 2.0 / 3.0])
        np.testing.assert_allclose(gmres_steady_state(Q), expect, atol=1e-9)
        np.testing.assert_allclose(
            power_steady_state(Q, tol=1e-14), expect, atol=1e-9
        )


class TestAutoPolicy:
    def test_resolution_is_deterministic_in_state_count(self):
        assert resolve_steady_state_method(1) == "lu"
        assert resolve_steady_state_method(ITERATIVE_AUTO_THRESHOLD) == "lu"
        assert (
            resolve_steady_state_method(ITERATIVE_AUTO_THRESHOLD + 1)
            == "gmres"
        )

    def test_explicit_methods_resolve_to_themselves(self):
        for m in ("lu", "gmres", "power"):
            assert resolve_steady_state_method(10**9, m) == m

    def test_unknown_method_raises_with_menu(self):
        with pytest.raises(ValueError, match="auto"):
            resolve_steady_state_method(10, "cholesky")
        with pytest.raises(ValueError, match="cholesky"):
            CTMC([[-1.0, 1.0], [1.0, -1.0]]).steady_state(method="cholesky")

    def test_ctmc_resolve_method_uses_own_size(self):
        chain = CTMC([[-1.0, 1.0], [1.0, -1.0]])
        assert chain.resolve_method() == "lu"
        assert chain.resolve_method("power") == "power"

    def test_methods_tuple_is_documented_set(self):
        assert STEADY_STATE_METHODS == ("auto", "lu", "gmres", "power")


class TestConvergenceError:
    def test_power_stall_raises_with_diagnostics(self):
        chain = _cyclic_chain()
        with pytest.raises(ConvergenceError) as exc_info:
            chain.steady_state(method="power", max_iter=2, tol=1e-15)
        err = exc_info.value
        assert err.method == "power"
        assert err.iterations == 2
        assert err.residual > err.tol
        message = str(err)
        assert "2 iterations" in message
        assert f"{err.residual:.3e}" in message
        assert "method='lu'" in message

    def test_gmres_stall_raises_with_diagnostics(self):
        # unpreconditioned with a 2-iteration budget on a 40-state ring:
        # cannot converge, must raise rather than return the junk vector
        chain = _cyclic_chain(n=40)
        with pytest.raises(ConvergenceError) as exc_info:
            gmres_steady_state(
                chain.Q_sparse, max_iter=2, tol=1e-12, use_ilu=False
            )
        err = exc_info.value
        assert err.method == "gmres"
        assert err.iterations >= 1
        assert err.residual > err.tol

    def test_stalled_solve_is_not_cached(self):
        chain = _cyclic_chain()
        with pytest.raises(ConvergenceError):
            chain.steady_state(method="power", max_iter=1, tol=1e-15)
        pi = chain.steady_state(method="power", tol=1e-13)  # fresh solve
        np.testing.assert_allclose(
            pi, chain.steady_state(method="lu"), atol=1e-7
        )

    def test_bad_max_iter_rejected(self):
        chain = _cyclic_chain()
        with pytest.raises(ValueError, match="max_iter"):
            chain.steady_state(method="gmres", max_iter=0)
        with pytest.raises(ValueError, match="max_iter"):
            chain.steady_state(method="power", max_iter=0)

    def test_power_rejects_all_absorbing(self):
        with pytest.raises(ValueError, match="absorbing"):
            power_steady_state(np.zeros((3, 3)))


class TestWarmStartCache:
    def test_cache_carries_warm_start_between_chains(self):
        cache = SolverCache()
        chain_a = _cyclic_chain()
        pi_a = gmres_steady_state(chain_a.Q_sparse, cache=cache)
        assert "pi0" in cache and "ilu" in cache
        # a same-pattern chain with slightly different rates reuses both
        chain_b = _cyclic_chain(fast=5.5)
        pi_b = gmres_steady_state(chain_b.Q_sparse, cache=cache)
        np.testing.assert_allclose(
            pi_b, chain_b.steady_state(method="lu"), atol=1e-8
        )
        assert not np.allclose(pi_a, pi_b)

    def test_wrong_size_cache_entries_ignored(self):
        cache = SolverCache(pi0=np.ones(3) / 3.0)
        chain = _cyclic_chain(n=8)
        pi = gmres_steady_state(chain.Q_sparse, cache=cache)
        np.testing.assert_allclose(
            pi, chain.steady_state(method="lu"), atol=1e-8
        )

    def test_explicit_x0_wins_over_cache(self):
        chain = _cyclic_chain()
        pi_lu = chain.steady_state(method="lu")
        pi = gmres_steady_state(
            chain.Q_sparse, x0=np.full(chain.n, 1.0 / chain.n)
        )
        np.testing.assert_allclose(pi, pi_lu, atol=1e-8)

    def test_ctmc_factor_cache_shared_by_iterative_methods(self):
        cache = SolverCache()
        chain = CTMC(_cyclic_chain().Q_sparse, factor_cache=cache)
        chain.steady_state(method="gmres")
        assert "pi0" in cache

    def test_pickling_drops_process_local_entries(self):
        cache = SolverCache()
        chain = _cyclic_chain()
        gmres_steady_state(chain.Q_sparse, cache=cache)
        revived = pickle.loads(pickle.dumps(cache))
        assert isinstance(revived, SolverCache)
        assert "ilu" not in revived
        np.testing.assert_array_equal(revived["pi0"], cache["pi0"])

    def test_power_updates_warm_start(self):
        cache = SolverCache()
        chain = _cyclic_chain()
        pi = power_steady_state(chain.Q_sparse, tol=1e-13, cache=cache)
        np.testing.assert_allclose(cache["pi0"], pi, atol=1e-12)


class TestSeededSteadyState:
    def test_seed_serves_every_method(self):
        chain = _cyclic_chain()
        seeded = np.full(chain.n, 1.0 / chain.n)
        chain.seed_steady_state(seeded)
        for m in ("lu", "gmres", "power"):
            np.testing.assert_array_equal(chain.steady_state(method=m), seeded)

    def test_seed_shape_checked(self):
        chain = _cyclic_chain()
        with pytest.raises(ValueError, match="shape"):
            chain.seed_steady_state(np.ones(2))


class TestLargerChainSanity:
    def test_gmres_on_block_tridiagonal_chain(self):
        # a 900-state lattice random walk: sparse backend, auto -> lu at
        # this size, but gmres must agree when asked for explicitly
        n = 30
        rng = np.random.default_rng(7)
        rows, cols, data = [], [], []
        for i in range(n):
            for j in range(n):
                s = i * n + j
                for di, dj in ((0, 1), (1, 0), (0, -1), (-1, 0)):
                    ni, nj = i + di, j + dj
                    if 0 <= ni < n and 0 <= nj < n:
                        rows.append(s)
                        cols.append(ni * n + nj)
                        data.append(rng.uniform(0.5, 2.0))
        off = sparse.coo_matrix((data, (rows, cols)), shape=(n * n, n * n))
        Q = (off - sparse.diags(np.asarray(off.sum(axis=1)).ravel())).tocsr()
        chain = CTMC(Q, backend="sparse")
        np.testing.assert_allclose(
            chain.steady_state(method="gmres"),
            chain.steady_state(method="lu"),
            rtol=0,
            atol=1e-9,
        )


class TestReviewRegressions:
    def test_convergence_error_survives_pickling(self):
        err = ConvergenceError("gmres", 42, 1e-3, 1e-10)
        revived = pickle.loads(pickle.dumps(err))
        assert isinstance(revived, ConvergenceError)
        assert (revived.method, revived.iterations) == ("gmres", 42)
        assert (revived.residual, revived.tol) == (1e-3, 1e-10)
        assert "42 iterations" in str(revived)

    def test_tighter_tolerance_is_never_served_from_a_looser_cache(self):
        chain = _cyclic_chain()
        loose = chain.steady_state(method="power", tol=1e-1)
        tight = chain.steady_state(method="power", tol=1e-13)
        pi_lu = chain.steady_state(method="lu")
        # the loose solve must not have poisoned the tight one
        assert np.abs(tight - pi_lu).max() < 1e-7
        assert np.abs(tight - pi_lu).max() <= np.abs(loose - pi_lu).max()

    def test_explicit_arg_solves_are_not_cached(self):
        chain = _cyclic_chain()
        chain.steady_state(method="power", tol=1e-1)
        assert "power" not in chain._pi_cache
        chain.steady_state(method="power")
        assert "power" in chain._pi_cache

    def test_failed_ilu_is_attempted_once_per_cache(self, monkeypatch):
        import repro.markov.ctmc as ctmc_mod

        calls = {"n": 0}

        def failing_spilu(*args, **kwargs):
            calls["n"] += 1
            raise RuntimeError("Factor is exactly singular")

        monkeypatch.setattr(ctmc_mod, "spilu", failing_spilu)
        cache = SolverCache()
        chain = _cyclic_chain()
        for _ in range(3):  # three same-family solves, one failed attempt
            gmres_steady_state(chain.Q_sparse, cache=cache)
        assert calls["n"] == 1
        assert cache["ilu"] is None
