"""Sparse CTMC backend: construction, solver parity, caching, rewards."""

import numpy as np
import pytest
from scipy import sparse

from repro.markov.ctmc import CTMC


def random_generator(n: int, seed: int = 0, density: float = 0.3) -> np.ndarray:
    """A dense random irreducible-ish generator (cycle + random extras)."""
    rng = np.random.default_rng(seed)
    M = rng.random((n, n)) * (rng.random((n, n)) < density)
    for i in range(n):  # a cycle guarantees a single recurrent class
        M[i, (i + 1) % n] += 0.5
    np.fill_diagonal(M, 0.0)
    Q = M.copy()
    np.fill_diagonal(Q, -M.sum(axis=1))
    return Q


def mm1k_generator(lam: float, mu: float, K: int) -> dict:
    rates = {}
    for n in range(K):
        rates[(n, n + 1)] = lam
        rates[(n + 1, n)] = mu
    return rates


class TestConstruction:
    def test_sparse_input_selects_sparse_backend(self):
        Q = sparse.csr_matrix(random_generator(8))
        c = CTMC(Q)
        assert c.backend == "sparse"

    def test_dense_input_small_selects_dense_backend(self):
        c = CTMC(random_generator(8))
        assert c.backend == "dense"

    def test_explicit_backend_overrides_auto(self):
        Q = random_generator(8)
        assert CTMC(Q, backend="sparse").backend == "sparse"
        assert CTMC(sparse.csr_matrix(Q), backend="dense").backend == "dense"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            CTMC(random_generator(4), backend="gpu")

    def test_sparse_negative_offdiagonal_rejected(self):
        Q = sparse.csr_matrix(
            np.array([[0.5, -0.5], [1.0, -1.0]])
        )
        with pytest.raises(ValueError, match="off-diagonal"):
            CTMC(Q)

    def test_sparse_rows_must_sum_to_zero(self):
        Q = sparse.csr_matrix(np.array([[-1.0, 0.5], [1.0, -1.0]]))
        with pytest.raises(ValueError, match="sum to zero"):
            CTMC(Q)

    def test_dense_property_roundtrip(self):
        Qd = random_generator(6, seed=3)
        c = CTMC(sparse.csr_matrix(Qd), backend="sparse")
        assert np.allclose(c.Q, Qd)
        assert np.allclose(c.Q_sparse.toarray(), Qd)

    def test_from_rates_sparse_backend(self):
        c = CTMC.from_rates(mm1k_generator(1.0, 2.0, 10), backend="sparse")
        assert c.backend == "sparse"
        d = CTMC.from_rates(mm1k_generator(1.0, 2.0, 10), backend="dense")
        assert np.allclose(c.Q, d.Q)


class TestBackendParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_steady_state_agrees(self, seed):
        Q = random_generator(12, seed=seed)
        pi_dense = CTMC(Q, backend="dense").steady_state()
        pi_sparse = CTMC(sparse.csr_matrix(Q), backend="sparse").steady_state()
        assert np.max(np.abs(pi_dense - pi_sparse)) < 1e-9

    def test_steady_state_agrees_mm1k(self):
        rates = mm1k_generator(1.0, 2.0, 30)
        pi_d = CTMC.from_rates(rates, backend="dense").steady_state()
        pi_s = CTMC.from_rates(rates, backend="sparse").steady_state()
        assert np.max(np.abs(pi_d - pi_s)) < 1e-9

    @pytest.mark.parametrize("t", [0.1, 1.0, 25.0])
    def test_transient_agrees(self, t):
        Q = random_generator(10, seed=7)
        p0 = np.zeros(10)
        p0[0] = 1.0
        got_d = CTMC(Q, backend="dense").transient(p0, t)
        got_s = CTMC(Q, backend="sparse").transient(p0, t)
        assert np.max(np.abs(got_d - got_s)) < 1e-9

    def test_transient_matches_expm_sparse(self):
        from scipy.linalg import expm

        Q = random_generator(6, seed=5)
        c = CTMC(Q, backend="sparse")
        p0 = np.zeros(6)
        p0[0] = 1.0
        want = p0 @ expm(Q * 1.7)
        assert np.allclose(c.transient(p0, 1.7), want, atol=1e-8)

    def test_holding_rate_and_embedded_dtmc_sparse(self):
        Q = random_generator(5, seed=11)
        cd = CTMC(Q, backend="dense")
        cs = CTMC(Q, backend="sparse")
        for s in range(5):
            assert cs.holding_rate(s) == pytest.approx(cd.holding_rate(s))
        assert np.allclose(cs.embedded_dtmc(), cd.embedded_dtmc())


class TestSingularNormalisation:
    """Both backends must raise ValueError on reducible/singular chains."""

    @staticmethod
    def disconnected_generator() -> np.ndarray:
        # two disjoint 2-state chains: the balance system is singular
        Q = np.zeros((4, 4))
        Q[0, 1] = Q[1, 0] = 1.0
        Q[2, 3] = Q[3, 2] = 1.0
        np.fill_diagonal(Q, -Q.sum(axis=1))
        return Q

    def test_dense_branch_raises(self):
        c = CTMC(self.disconnected_generator(), backend="dense")
        with pytest.raises(ValueError):
            c.steady_state()

    def test_sparse_branch_raises(self):
        c = CTMC(self.disconnected_generator(), backend="sparse")
        with pytest.raises(ValueError):
            c.steady_state()


class TestSteadyStateCache:
    def test_cached_equals_fresh(self):
        c = CTMC.from_rates(mm1k_generator(1.0, 2.0, 8))
        first = c.steady_state()
        second = c.steady_state()
        assert np.array_equal(first, second)

    def test_solved_once(self, monkeypatch):
        c = CTMC.from_rates(mm1k_generator(1.0, 2.0, 8))
        calls = {"n": 0}
        original = CTMC._solve_steady_state

        def counting(self, *args):
            calls["n"] += 1
            return original(self, *args)

        monkeypatch.setattr(CTMC, "_solve_steady_state", counting)
        c.steady_state()
        c.steady_state()
        c.expected_reward_rate(np.ones(c.n))
        assert calls["n"] == 1

    def test_mutating_returned_vector_does_not_corrupt_cache(self):
        c = CTMC.from_rates(mm1k_generator(1.0, 2.0, 8))
        pi = c.steady_state()
        pi[:] = -1.0
        again = c.steady_state()
        assert again.sum() == pytest.approx(1.0)
        assert np.all(again >= 0.0)


class TestAccumulatedReward:
    """The incremental-stepping integrator keeps its accuracy contract."""

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_matches_analytic_integral(self, backend):
        a = b = 1.0
        c = CTMC.from_rates(
            {("off", "on"): a, ("on", "off"): b}, backend=backend
        )
        t = 2.0
        acc = c.accumulated_reward(
            {"off": 1.0}, {"on": 1.0, "off": 0.0}, t, steps=512
        )
        want = 0.5 * t - 0.25 * (1.0 - np.exp(-2.0 * t))
        assert acc == pytest.approx(want, rel=1e-6)

    def test_long_horizon_linear_in_steady_state(self):
        # over a long horizon the accumulated reward approaches pi.r * t
        c = CTMC.from_rates({("off", "on"): 2.0, ("on", "off"): 1.0})
        r = {"on": 9.0, "off": 3.0}
        t = 500.0
        acc = c.accumulated_reward({"off": 1.0}, r, t, steps=128)
        assert acc == pytest.approx(c.expected_reward_rate(r) * t, rel=1e-2)

    def test_backends_agree(self):
        Q = random_generator(9, seed=13)
        p0 = np.zeros(9)
        p0[0] = 1.0
        r = np.linspace(0.0, 5.0, 9)
        acc_d = CTMC(Q, backend="dense").accumulated_reward(p0, r, 4.0)
        acc_s = CTMC(Q, backend="sparse").accumulated_reward(p0, r, 4.0)
        assert acc_d == pytest.approx(acc_s, abs=1e-9)


class TestSharedFactorisation:
    """sparse_steady_state: one symbolic analysis serves a pattern family."""

    def test_perm_reuse_matches_fresh_solve(self):
        from repro.markov.ctmc import sparse_steady_state

        Q1 = sparse.csr_matrix(random_generator(40, seed=1))
        pi1, perm = sparse_steady_state(Q1)
        assert perm.shape == (40,)
        # same sparsity pattern, different rates
        Q2 = sparse.csr_matrix(random_generator(40, seed=1))
        Q2.data = Q2.data * 1.7
        Q2 = Q2 - sparse.diags(np.asarray(Q2.sum(axis=1)).ravel())
        pi_reused, perm2 = sparse_steady_state(Q2, perm)
        pi_fresh, _ = sparse_steady_state(Q2)
        np.testing.assert_allclose(pi_reused, pi_fresh, rtol=0, atol=1e-12)
        np.testing.assert_array_equal(perm2, perm)

    def test_wrong_length_perm_rejected(self):
        from repro.markov.ctmc import sparse_steady_state

        Q = sparse.csr_matrix(random_generator(10))
        with pytest.raises(ValueError, match="perm_c"):
            sparse_steady_state(Q, np.arange(5))

    def test_factor_cache_threads_through_ctmc(self):
        cache = {}
        Q = random_generator(12, seed=3)
        c1 = CTMC(Q, backend="sparse", factor_cache=cache)
        pi1 = c1.steady_state()
        assert "perm_c" in cache
        c2 = CTMC(Q * 2.0, backend="sparse", factor_cache=cache)
        pi2 = c2.steady_state()
        # scaling a generator leaves its stationary distribution unchanged
        np.testing.assert_allclose(pi1, pi2, atol=1e-12)
        no_cache = CTMC(Q * 2.0, backend="sparse").steady_state()
        np.testing.assert_allclose(pi2, no_cache, atol=1e-12)

    def test_stale_cache_size_is_ignored_not_fatal(self):
        cache = {"perm_c": np.arange(3)}
        c = CTMC(random_generator(12, seed=5), backend="sparse", factor_cache=cache)
        pi = c.steady_state()
        assert pi.sum() == pytest.approx(1.0)
        assert cache["perm_c"].shape == (12,)
