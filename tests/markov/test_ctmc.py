"""CTMC: construction validation, steady state, transient, rewards."""

import numpy as np
import pytest

from repro.markov.ctmc import CTMC


def two_state(a: float = 1.0, b: float = 2.0) -> CTMC:
    """On/off chain: off -> on at rate a, on -> off at rate b."""
    return CTMC.from_rates({("off", "on"): a, ("on", "off"): b})


class TestConstruction:
    def test_from_rates_builds_generator(self):
        c = two_state(1.0, 2.0)
        q = c.Q
        i_off = c.labels.index("off")
        i_on = c.labels.index("on")
        assert q[i_off, i_on] == 1.0
        assert q[i_off, i_off] == -1.0
        assert q[i_on, i_on] == -2.0

    def test_rows_must_sum_to_zero(self):
        with pytest.raises(ValueError):
            CTMC(np.array([[-1.0, 0.5], [1.0, -1.0]]))

    def test_negative_offdiagonal_rejected(self):
        with pytest.raises(ValueError):
            CTMC(np.array([[0.5, -0.5], [1.0, -1.0]]))

    def test_self_loop_rejected_in_from_rates(self):
        with pytest.raises(ValueError):
            CTMC.from_rates({("a", "a"): 1.0, ("a", "b"): 1.0, ("b", "a"): 1.0})

    def test_duplicate_labels_rejected(self):
        Q = np.array([[-1.0, 1.0], [1.0, -1.0]])
        with pytest.raises(ValueError):
            CTMC(Q, labels=["x", "x"])

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            CTMC(np.zeros((2, 3)))

    def test_parallel_rates_accumulate(self):
        c = CTMC.from_rates(
            {("a", "b"): 1.0, ("b", "a"): 3.0}
        )
        assert c.holding_rate("a") == 1.0


class TestSteadyState:
    def test_two_state_balance(self):
        c = two_state(1.0, 3.0)
        pi = c.steady_state_dict()
        # pi_on * b = pi_off * a => pi_on = a/(a+b)
        assert pi["on"] == pytest.approx(0.25)
        assert pi["off"] == pytest.approx(0.75)

    def test_sums_to_one(self):
        c = two_state(0.3, 0.7)
        assert c.steady_state().sum() == pytest.approx(1.0)

    def test_mm1_truncated_geometric(self):
        lam, mu, K = 1.0, 2.0, 20
        rates = {}
        for n in range(K):
            rates[(n, n + 1)] = lam
            rates[(n + 1, n)] = mu
        c = CTMC.from_rates(rates, labels=list(range(K + 1)))
        pi = c.steady_state()
        rho = lam / mu
        expected0 = (1 - rho) / (1 - rho ** (K + 1))
        assert pi[0] == pytest.approx(expected0, rel=1e-9)
        # geometric decay
        assert pi[5] / pi[4] == pytest.approx(rho, rel=1e-9)

    def test_reward_rate(self):
        c = two_state(1.0, 1.0)
        r = c.expected_reward_rate({"on": 10.0, "off": 2.0})
        assert r == pytest.approx(6.0)


class TestTransient:
    def test_t_zero_returns_initial(self):
        c = two_state()
        p0 = {"off": 1.0}
        assert c.transient_dict(p0, 0.0)["off"] == 1.0

    def test_two_state_analytic(self):
        # p_on(t) = a/(a+b) (1 - exp(-(a+b) t)) starting from off
        a, b = 1.5, 0.5
        c = two_state(a, b)
        for t in (0.1, 0.5, 2.0, 10.0):
            got = c.transient_dict({"off": 1.0}, t)["on"]
            want = a / (a + b) * (1.0 - np.exp(-(a + b) * t))
            assert got == pytest.approx(want, abs=1e-9)

    def test_converges_to_steady_state(self):
        c = two_state(2.0, 1.0)
        late = c.transient({"off": 1.0}, 200.0)
        assert np.allclose(late, c.steady_state(), atol=1e-9)

    def test_distribution_stays_normalised(self):
        c = two_state()
        for t in (0.01, 1.0, 37.5):
            assert c.transient({"off": 1.0}, t).sum() == pytest.approx(1.0)

    def test_matches_scipy_expm(self):
        from scipy.linalg import expm

        rng = np.random.default_rng(5)
        n = 6
        M = rng.random((n, n))
        np.fill_diagonal(M, 0.0)
        Q = M.copy()
        np.fill_diagonal(Q, -M.sum(axis=1))
        c = CTMC(Q)
        p0 = np.zeros(n)
        p0[0] = 1.0
        t = 1.7
        want = p0 @ expm(Q * t)
        got = c.transient(p0, t)
        assert np.allclose(got, want, atol=1e-8)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            two_state().transient({"off": 1.0}, -1.0)

    def test_bad_initial_distribution_rejected(self):
        with pytest.raises(ValueError):
            two_state().transient({"off": 0.5}, 1.0)


class TestRewardsAndStructure:
    def test_accumulated_reward_constant_chain(self):
        # single recurrent state pair with equal rewards -> reward = r*t
        c = two_state(1.0, 1.0)
        acc = c.accumulated_reward({"off": 1.0}, {"on": 5.0, "off": 5.0}, 3.0)
        assert acc == pytest.approx(15.0, rel=1e-6)

    def test_accumulated_reward_transient_weighting(self):
        a, b = 1.0, 1.0
        c = two_state(a, b)
        # starting off, reward only in on: integral of p_on(s) ds
        t = 2.0
        acc = c.accumulated_reward({"off": 1.0}, {"on": 1.0, "off": 0.0}, t, steps=512)
        # p_on(s) = 0.5 (1 - e^{-2s}); integral = 0.5 t - 0.25 (1 - e^{-2t})
        want = 0.5 * t - 0.25 * (1.0 - np.exp(-2.0 * t))
        assert acc == pytest.approx(want, rel=1e-4)

    def test_embedded_dtmc_rows_stochastic(self):
        c = two_state(1.0, 4.0)
        P = c.embedded_dtmc()
        assert np.allclose(P.sum(axis=1), 1.0)

    def test_holding_rate(self):
        c = two_state(1.0, 4.0)
        assert c.holding_rate("on") == 4.0
