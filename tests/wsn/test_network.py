"""Network aggregates: relay asymmetry and first-death lifetime."""

import pytest

from repro.core.params import CPUModelParams
from repro.wsn.network import SensorNetwork
from repro.wsn.node import SensorNode
from repro.wsn.profiles import CC2420, MSP430
from repro.wsn.radio import DutyCycledRadio


def cpu_params() -> CPUModelParams:
    return CPUModelParams(
        arrival_rate=0.05,
        service_rate=10.0,
        power_down_threshold=0.1,
        power_up_delay=0.01,
        profile=MSP430,
    )


def radio() -> DutyCycledRadio:
    return DutyCycledRadio(CC2420, listen_duty_cycle=0.005)


class TestCollectionTree:
    def test_node_count(self):
        net = SensorNetwork.collection_tree(
            n_nodes=5, sensing_rate=0.05, cpu_params=cpu_params(), radio=radio()
        )
        assert len(net) == 5

    def test_sink_adjacent_node_relays_most(self):
        net = SensorNetwork.collection_tree(
            n_nodes=5, sensing_rate=0.05, cpu_params=cpu_params(), radio=radio()
        )
        # node01 is next to the sink: 4 nodes behind it
        assert net.nodes[0].rx_per_second == pytest.approx(4 * 0.05)
        # last node relays nothing
        assert net.nodes[-1].rx_per_second == 0.0

    def test_report_bottleneck_is_sink_adjacent(self):
        net = SensorNetwork.collection_tree(
            n_nodes=6, sensing_rate=0.05, cpu_params=cpu_params(), radio=radio()
        )
        report = net.report()
        assert report.bottleneck_node() == "node01"
        assert report.first_death_days <= report.mean_lifetime_days
        assert report.mean_lifetime_days <= report.last_death_days

    def test_saturating_relay_load_rejected(self):
        with pytest.raises(ValueError, match="saturates"):
            SensorNetwork.collection_tree(
                n_nodes=500,
                sensing_rate=0.05,
                cpu_params=cpu_params(),
                radio=radio(),
            )

    def test_total_power_additive(self):
        net = SensorNetwork.collection_tree(
            n_nodes=3, sensing_rate=0.05, cpu_params=cpu_params(), radio=radio()
        )
        report = net.report()
        assert report.total_power_mw == pytest.approx(
            sum(r.total_power_mw for r in report.node_reports.values())
        )


class TestValidation:
    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            SensorNetwork([])

    def test_duplicate_names_rejected(self):
        node = SensorNode(cpu_params=cpu_params(), radio=None, name="x")
        twin = SensorNode(cpu_params=cpu_params(), radio=None, name="x")
        with pytest.raises(ValueError):
            SensorNetwork([node, twin])

    def test_single_node_network(self):
        node = SensorNode(cpu_params=cpu_params(), radio=None, name="solo")
        report = SensorNetwork([node]).report()
        assert report.first_death_days == report.last_death_days
