"""Sensor node: energy reports across CPU models and profiles."""

import pytest

from repro.core.params import CPUModelParams
from repro.wsn.battery import Battery
from repro.wsn.node import SensorNode
from repro.wsn.profiles import CC2420, MSP430
from repro.wsn.radio import DutyCycledRadio


def make_node(**kwargs) -> SensorNode:
    params = CPUModelParams(
        arrival_rate=0.1,
        service_rate=10.0,
        power_down_threshold=0.1,
        power_up_delay=0.01,
        profile=kwargs.pop("profile", MSP430),
    )
    return SensorNode(
        cpu_params=params,
        radio=kwargs.pop("radio", DutyCycledRadio(CC2420, listen_duty_cycle=0.01)),
        **kwargs,
    )


class TestReports:
    def test_report_fields_consistent(self):
        node = make_node()
        r = node.report()
        assert r.total_power_mw == pytest.approx(
            r.cpu_power_mw + r.radio_power_mw
        )
        assert r.cpu_fractions.total() == pytest.approx(1.0)
        assert r.lifetime_days > 0.0

    def test_radio_free_node(self):
        node = SensorNode(
            cpu_params=CPUModelParams.paper_defaults(), radio=None
        )
        r = node.report()
        assert r.radio_power_mw == 0.0

    def test_lifetime_uses_battery(self):
        small = make_node(battery=Battery(100.0))
        big = make_node(battery=Battery(2500.0))
        assert big.report().lifetime_days > small.report().lifetime_days

    def test_tx_rate_scales_with_jobs(self):
        node = make_node(tx_per_job=2.0)
        assert node.tx_rate() == pytest.approx(0.2)

    def test_relay_traffic_costs_energy(self):
        quiet = make_node(rx_per_second=0.0)
        busy = make_node(rx_per_second=5.0)
        assert busy.report().radio_power_mw > quiet.report().radio_power_mw

    def test_negative_traffic_rejected(self):
        with pytest.raises(ValueError):
            make_node(tx_per_job=-1.0)


class TestModelSelection:
    def test_all_models_available(self):
        node = make_node()
        exact = node.cpu_fractions(model="exact")
        markov = node.cpu_fractions(model="markov")
        sim = node.cpu_fractions(model="simulation", horizon=3_000.0, seed=1)
        petri = node.cpu_fractions(model="petri", horizon=3_000.0, seed=2)
        for f in (exact, markov, sim, petri):
            assert f.total() == pytest.approx(1.0, abs=1e-6)
        # at these tiny delays all models agree
        assert exact.l1_distance(markov) < 0.01
        assert exact.l1_distance(sim) < 0.05
        assert exact.l1_distance(petri) < 0.05

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            make_node().cpu_fractions(model="oracle")


class TestThresholdChoice:
    def test_optimal_threshold_is_smallest_for_paper_profile(self):
        # idle (88 mW) costs far more than standby (17) and power-up is
        # nearly free at D = 0.01 -> sleep as soon as possible
        node = make_node(profile=CPUModelParams.paper_defaults().profile)
        assert node.optimal_threshold() == 0.0

    def test_custom_candidates(self):
        node = make_node()
        t = node.optimal_threshold(candidates=[0.5, 1.0])
        assert t in (0.5, 1.0)
