"""Hardware profiles: paper fidelity and catalogue sanity."""

import pytest

from repro.core.params import PXA271
from repro.wsn.profiles import (
    ATMEGA128L,
    CC2420,
    MSP430,
    PXA271_PROFILE,
    processor_profiles,
)


class TestProcessorProfiles:
    def test_pxa271_reexport_is_paper_table3(self):
        assert PXA271_PROFILE is PXA271
        assert PXA271_PROFILE.standby_mw == 17.0
        assert PXA271_PROFILE.powerup_mw == 192.442

    def test_catalogue_complete(self):
        profiles = processor_profiles()
        assert set(profiles) == {"PXA271", "MSP430", "ATmega128L"}

    def test_state_ordering_sane(self):
        # every profile: standby < idle < active
        for p in processor_profiles().values():
            assert p.standby_mw < p.idle_mw < p.active_mw

    def test_low_power_motes_below_pxa(self):
        assert MSP430.active_mw < PXA271.active_mw
        assert ATMEGA128L.active_mw < PXA271.active_mw


class TestRadioProfile:
    def test_cc2420_figures(self):
        assert CC2420.tx_mw == pytest.approx(52.2)
        assert CC2420.rx_mw == pytest.approx(56.4)
        assert CC2420.bitrate_bps == 250_000.0

    def test_sleep_far_below_listen(self):
        assert CC2420.sleep_mw < CC2420.listen_mw / 100.0
