"""Radio energy model: airtime, occupancy, duty cycling."""

import pytest

from repro.wsn.profiles import CC2420, RadioProfile
from repro.wsn.radio import DutyCycledRadio


class TestProfiles:
    def test_cc2420_airtime(self):
        # (36 + 17) bytes at 250 kbit/s = 53*8/250000 s
        t = CC2420.packet_airtime_s(36)
        assert t == pytest.approx(53 * 8 / 250_000.0)

    def test_tx_energy(self):
        e = CC2420.tx_energy_mj(36)
        assert e == pytest.approx(52.2 * CC2420.packet_airtime_s(36))

    def test_validation(self):
        with pytest.raises(ValueError):
            RadioProfile("bad", -1.0, 1.0, 1.0, 1.0, 250e3)
        with pytest.raises(ValueError):
            RadioProfile("bad", 1.0, 1.0, 1.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            CC2420.packet_airtime_s(-1)


class TestOccupancy:
    def test_fractions_sum_to_one(self):
        radio = DutyCycledRadio(CC2420, listen_duty_cycle=0.02)
        occ = radio.occupancy(tx_packets_per_s=1.0, rx_packets_per_s=2.0)
        assert occ.total() == pytest.approx(1.0)

    def test_idle_radio_sleeps_mostly(self):
        radio = DutyCycledRadio(CC2420, listen_duty_cycle=0.01)
        occ = radio.occupancy(0.0, 0.0)
        assert occ.sleep == pytest.approx(0.99)
        assert occ.listen == pytest.approx(0.01)
        assert occ.tx == 0.0

    def test_average_power_between_sleep_and_rx(self):
        radio = DutyCycledRadio(CC2420, listen_duty_cycle=0.01)
        p = radio.average_power_mw(0.5, 0.5)
        assert CC2420.sleep_mw < p < CC2420.rx_mw

    def test_duty_cycle_dominates_idle_power(self):
        lazy = DutyCycledRadio(CC2420, listen_duty_cycle=0.001)
        eager = DutyCycledRadio(CC2420, listen_duty_cycle=0.5)
        assert eager.average_power_mw(0.0, 0.0) > 100 * lazy.average_power_mw(
            0.0, 0.0
        )

    def test_saturation_rejected(self):
        radio = DutyCycledRadio(CC2420)
        too_fast = 2.0 * radio.max_packet_rate()
        with pytest.raises(ValueError, match="capacity"):
            radio.occupancy(too_fast, 0.0)

    def test_energy_scales_with_duration(self):
        radio = DutyCycledRadio(CC2420)
        assert radio.energy_joules(1.0, 1.0, 200.0) == pytest.approx(
            2.0 * radio.energy_joules(1.0, 1.0, 100.0)
        )

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            DutyCycledRadio(CC2420).occupancy(-1.0, 0.0)

    def test_bad_duty_cycle_rejected(self):
        with pytest.raises(ValueError):
            DutyCycledRadio(CC2420, listen_duty_cycle=1.5)
