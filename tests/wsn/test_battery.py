"""Battery arithmetic."""

import math

import pytest

from repro.wsn.battery import Battery


class TestCapacity:
    def test_energy_joules(self):
        # 1000 mAh at 3 V, fully usable: 1000*3.6*3 = 10800 J
        b = Battery(1000.0, 3.0, usable_fraction=1.0)
        assert b.energy_joules == pytest.approx(10_800.0)

    def test_derating_applies(self):
        full = Battery(1000.0, 3.0, usable_fraction=1.0)
        derated = Battery(1000.0, 3.0, usable_fraction=0.5)
        assert derated.energy_joules == pytest.approx(full.energy_joules / 2.0)

    def test_presets(self):
        assert Battery.aa_pair().capacity_mah == 2500.0
        assert Battery.coin_cell().capacity_mah == 225.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(0.0)
        with pytest.raises(ValueError):
            Battery(100.0, voltage_v=0.0)
        with pytest.raises(ValueError):
            Battery(100.0, usable_fraction=1.5)


class TestLifetime:
    def test_simple_lifetime(self):
        b = Battery(1000.0, 3.0, usable_fraction=1.0)  # 10800 J
        # 10.8 mW -> 1e6 s
        assert b.lifetime_seconds(10.8) == pytest.approx(1.0e6)

    def test_days_conversion(self):
        b = Battery(1000.0, 3.0, usable_fraction=1.0)
        assert b.lifetime_days(10.8) == pytest.approx(1.0e6 / 86400.0)

    def test_zero_power_infinite(self):
        assert math.isinf(Battery(100.0).lifetime_seconds(0.0))

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            Battery(100.0).lifetime_seconds(-1.0)

    def test_drain_fraction(self):
        b = Battery(1000.0, 3.0, usable_fraction=1.0)
        assert b.drain_fraction(10_800.0, 1000.0) == pytest.approx(1.0)
        assert b.drain_fraction(10_800.0, 500.0) == pytest.approx(0.5)

    def test_lifetime_halves_with_double_power(self):
        b = Battery.aa_pair()
        assert b.lifetime_seconds(20.0) == pytest.approx(
            b.lifetime_seconds(10.0) / 2.0
        )
