"""The sweep model-backend subsystem: protocol, phase-type, renewal."""

import math
import pickle

import numpy as np
import pytest

from repro.core.exact_renewal import ExactRenewalModel
from repro.core.params import CPUModelParams, STATE_NAMES
from repro.core.phase_type import PhaseTypeModel
from repro.core.transient import TransientEnergyModel
from repro.sweep import (
    GSPNBackend,
    PhaseTypeBackend,
    RenewalBackend,
    SweepGrid,
    SweepRunner,
    build_mm1k_net,
    make_backend,
)
from repro.sweep.backends.base import parse_metric_spec

PARAMS = CPUModelParams.paper_defaults(T=0.3, D=0.05)
THRESHOLDS = tuple(0.1 + 0.1 * i for i in range(20))  # 20-point Figure-4 grid


class TestMetricSpecGrammar:
    def test_steady_kinds(self):
        spec = parse_metric_spec("fraction:standby")
        assert (spec.kind, spec.arg, spec.at) == ("fraction", "standby", None)
        assert not spec.is_transient
        spec = parse_metric_spec("power")
        assert (spec.kind, spec.arg, spec.at) == ("power", None, None)

    def test_transient_kinds(self):
        spec = parse_metric_spec("energy@5")
        assert (spec.kind, spec.arg, spec.at) == ("energy", None, 5.0)
        assert spec.is_transient
        spec = parse_metric_spec("accumulated_reward:power@2.5")
        assert (spec.kind, spec.arg, spec.at) == (
            "accumulated_reward",
            "power",
            2.5,
        )
        assert parse_metric_spec("time_to_threshold:0.01").is_transient

    @pytest.mark.parametrize(
        "bad, needle",
        [
            ("energy@abc", "'abc'"),
            ("energy@-1", "horizon"),
            (":idle", "missing metric kind"),
            ("fraction:", "missing argument"),
        ],
    )
    def test_bad_specs_name_the_problem(self, bad, needle):
        with pytest.raises(ValueError, match=needle):
            parse_metric_spec(bad)


class TestRegistry:
    def test_make_backend_names(self):
        assert make_backend("gspn", net=build_mm1k_net()).name == "gspn"
        assert make_backend("phase-type", params=PARAMS).name == "phase-type"
        assert make_backend("renewal", params=PARAMS).name == "renewal"
        with pytest.raises(KeyError, match="bogus"):
            make_backend("bogus")

    def test_backends_are_picklable(self):
        for backend in (
            GSPNBackend(build_mm1k_net()),
            PhaseTypeBackend(PARAMS, stages=4, n_max=15),
            RenewalBackend(PARAMS),
        ):
            backend.prepare()
            clone = pickle.loads(pickle.dumps(backend))
            assert clone.name == backend.name


class TestPhaseTypeParity:
    """Acceptance: batched phase-type sweeps == pointwise repro.core."""

    def test_threshold_sweep_matches_pointwise_model(self):
        """Figure 4/5-style threshold sweep, 20 points, 1e-9 parity."""
        backend = PhaseTypeBackend(PARAMS, stages=8, n_max=30)
        metrics = [f"fraction:{s}" for s in STATE_NAMES] + [
            "power",
            "mean_jobs",
            "truncation_mass",
        ]
        result = SweepRunner(backend, metrics).run(
            SweepGrid({"T": THRESHOLDS})
        )
        for row in result.rows():
            sol = PhaseTypeModel(
                PARAMS.with_threshold(row["T"]), stages=8, n_max=30
            ).solve()
            for state in STATE_NAMES:
                assert row[f"fraction:{state}"] == pytest.approx(
                    getattr(sol.fractions, state), abs=1e-9
                )
            assert row["mean_jobs"] == pytest.approx(sol.mean_jobs, abs=1e-9)
            assert row["truncation_mass"] == pytest.approx(
                sol.truncation_mass, abs=1e-9
            )
            assert row["power"] == pytest.approx(
                PARAMS.profile.average_power_mw(sol.fractions), abs=1e-9
            )

    def test_delay_sweep_matches_pointwise_model(self):
        """The other Figure-5 axis: sweeping the power-up delay D."""
        backend = PhaseTypeBackend(PARAMS, stages=6, n_max=30)
        result = SweepRunner(backend, ["fraction:powerup"]).run(
            SweepGrid({"D": [0.01, 0.1, 0.5, 1.0]})
        )
        for row in result.rows():
            sol = PhaseTypeModel(
                PARAMS.with_powerup_delay(row["D"]), stages=6, n_max=30
            ).solve()
            assert row["fraction:powerup"] == pytest.approx(
                sol.fractions.powerup, abs=1e-9
            )

    def test_single_point_sweep_equals_pointwise(self):
        """A one-point sweep is exactly the pointwise model (1e-9)."""
        backend = PhaseTypeBackend(PARAMS, stages=8, n_max=25)
        result = SweepRunner(
            backend, ["fraction:standby", "power", "energy@2"]
        ).run(SweepGrid({"T": [0.3]}))
        row = result.rows()[0]
        sol = PhaseTypeModel(PARAMS, stages=8, n_max=25).solve()
        assert row["fraction:standby"] == pytest.approx(
            sol.fractions.standby, abs=1e-9
        )
        assert row["power"] == pytest.approx(
            PARAMS.profile.average_power_mw(sol.fractions), abs=1e-9
        )
        # the sweep machinery itself adds nothing: re-solving the same
        # point directly through the backend gives the same energy
        direct = backend.evaluate(backend.solve({"T": 0.3}), "energy@2")
        assert row["energy@2"] == pytest.approx(direct, abs=1e-12)

    def test_parallel_matches_serial(self):
        metrics = ["fraction:standby", "power"]
        grid = SweepGrid({"T": [0.2, 0.4, 0.8, 1.6]})
        serial = SweepRunner(
            PhaseTypeBackend(PARAMS, stages=4, n_max=20), metrics
        ).run(grid)
        parallel = SweepRunner(
            PhaseTypeBackend(PARAMS, stages=4, n_max=20),
            metrics,
            n_workers=2,
        ).run(grid)
        for m in metrics:
            np.testing.assert_allclose(
                parallel.column(m), serial.column(m), rtol=1e-12
            )


class TestTransientMetrics:
    def test_energy_converges_to_transient_model_with_stages(self):
        """energy@t approaches TransientEnergyModel's curve as k grows."""
        horizon = 3.0
        ref_model = TransientEnergyModel(PARAMS, stages=32)
        ref = float(
            ref_model.curve(horizon, n_points=201).cumulative_energy_joules[-1]
        )
        errors = []
        for stages in (1, 4, 32):
            backend = PhaseTypeBackend(PARAMS, stages=stages)
            val = backend.evaluate(
                backend.solve({"T": PARAMS.power_down_threshold}),
                f"energy@{horizon}",
            )
            errors.append(abs(val - ref))
        assert errors[0] > errors[-1], errors
        assert errors[-1] < 1e-3 * ref, errors

    def test_occupancy_converges_to_occupancy_at(self):
        """fraction:<state>@t approaches occupancy_at as stages grow."""
        t = 1.5
        ref = TransientEnergyModel(PARAMS, stages=32).occupancy_at(t)
        errors = []
        for stages in (1, 32):
            backend = PhaseTypeBackend(PARAMS, stages=stages)
            sol = backend.solve({"T": PARAMS.power_down_threshold})
            err = sum(
                abs(
                    backend.evaluate(sol, f"fraction:{s}@{t}")
                    - getattr(ref, s)
                )
                for s in STATE_NAMES
            )
            errors.append(err)
        assert errors[0] > errors[1]
        assert errors[1] < 1e-6, errors

    def test_same_stage_chain_matches_transient_model_exactly(self):
        """Same stages + n_max: backend and TransientEnergyModel agree."""
        model = TransientEnergyModel(PARAMS, stages=8)
        backend = PhaseTypeBackend(
            PARAMS, stages=8, n_max=model.model.n_max
        )
        sol = backend.solve({"T": PARAMS.power_down_threshold})
        for t in (0.1, 1.0, 5.0):
            want = model.occupancy_at(t)
            for s in STATE_NAMES:
                got = backend.evaluate(sol, f"fraction:{s}@{t}")
                assert got == pytest.approx(getattr(want, s), abs=1e-8)

    def test_accumulated_power_reward_is_energy(self):
        backend = PhaseTypeBackend(PARAMS, stages=4, n_max=20)
        sol = backend.solve({"T": 0.3})
        mws = backend.evaluate(sol, "accumulated_reward:power@2")
        joules = backend.evaluate(sol, "energy@2")
        assert joules == pytest.approx(mws / 1000.0, rel=1e-12)

    def test_time_to_threshold_positive_and_monotone_in_frac(self):
        backend = PhaseTypeBackend(PARAMS, stages=4, n_max=20)
        sol = backend.solve({"T": 0.3})
        t_loose = backend.evaluate(sol, "time_to_threshold:0.2")
        t_tight = backend.evaluate(sol, "time_to_threshold:0.02")
        assert 0.0 < t_loose <= t_tight < math.inf
        # settled power really is inside the band at the reported time
        tpl = backend.prepare()
        pt = sol.ctmc.transient(tpl.p0, t_tight)
        power_ss = sol.power_mw()
        assert abs(float(pt @ tpl.power_mw) - power_ss) <= 0.02 * power_ss * 1.05

    def test_time_to_threshold_bad_frac_rejected(self):
        backend = PhaseTypeBackend(PARAMS, stages=2, n_max=15)
        sol = backend.solve({"T": 0.3})
        with pytest.raises(ValueError, match="time_to_threshold"):
            backend.evaluate(sol, "time_to_threshold:nope")


class TestRenewalBackend:
    def test_matches_closed_form(self):
        result = SweepRunner(
            RenewalBackend(PARAMS),
            ["fraction:standby", "power", "mean_cycle_length"],
        ).run(SweepGrid({"T": THRESHOLDS[:6]}))
        for row in result.rows():
            exact = ExactRenewalModel(
                PARAMS.with_threshold(row["T"])
            ).solve()
            assert row["fraction:standby"] == pytest.approx(
                exact.p_standby, rel=1e-12
            )
            assert row["mean_cycle_length"] == pytest.approx(
                exact.mean_cycle_length, rel=1e-12
            )

    def test_phase_type_converges_to_renewal_cross_check(self):
        """The two new backends cross-validate: Erlang error -> 0."""
        grid = SweepGrid({"T": [0.2, 0.6, 1.2]})
        exact = SweepRunner(RenewalBackend(PARAMS), ["fraction:standby"]).run(
            grid
        )
        errs = []
        for stages in (1, 8, 64):
            approx = SweepRunner(
                PhaseTypeBackend(PARAMS, stages=stages), ["fraction:standby"]
            ).run(grid)
            errs.append(
                np.max(
                    np.abs(
                        approx.column("fraction:standby")
                        - exact.column("fraction:standby")
                    )
                )
            )
        assert errs[0] > errs[1] > errs[2]
        assert errs[2] < 5e-3, errs

    def test_transient_metric_rejected_with_pointer(self):
        backend = RenewalBackend(PARAMS)
        sol = backend.solve({"T": 0.3})
        with pytest.raises(ValueError, match="phase-type"):
            backend.evaluate(sol, "energy@5")


class TestAxes:
    def test_cpu_axis_aliases(self):
        backend = PhaseTypeBackend(PARAMS, stages=2, n_max=15)
        for alias in ("T", "PDT", "power_down_threshold"):
            sol = backend.solve({alias: 0.7})
            assert sol.params.power_down_threshold == 0.7
        sol = backend.solve({"AR": 2.0, "D": 0.2})
        assert sol.params.arrival_rate == 2.0
        assert sol.params.power_up_delay == 0.2

    def test_unknown_axis_rejected_before_solving(self):
        runner = SweepRunner(
            PhaseTypeBackend(PARAMS, stages=2, n_max=15), ["power"]
        )
        with pytest.raises(KeyError, match="bogus"):
            runner.run(SweepGrid({"bogus": [1.0]}))

    def test_unstable_point_raises(self):
        backend = PhaseTypeBackend(PARAMS, stages=2, n_max=15)
        with pytest.raises(ValueError, match="unstable"):
            backend.solve({"AR": 100.0})

    def test_degenerate_delay_rejected_at_construction(self):
        with pytest.raises(ValueError, match="power_up_delay"):
            PhaseTypeBackend(CPUModelParams.paper_defaults(T=0.3, D=0.0))

    def test_degenerate_delay_point_rejected_with_diagnosis(self):
        """A zero T/D at a grid point must not leak a ZeroDivisionError."""
        backend = PhaseTypeBackend(PARAMS, stages=2, n_max=15)
        with pytest.raises(ValueError, match="power_down_threshold > 0"):
            backend.solve({"T": 0.0})
        with pytest.raises(ValueError, match="power_up_delay > 0"):
            backend.solve({"D": 0.0})

    def test_colliding_aliases_rejected(self):
        """T and PDT name the same parameter: sweeping both is an error,
        not a silently-ignored column."""
        for backend in (
            PhaseTypeBackend(PARAMS, stages=2, n_max=15),
            RenewalBackend(PARAMS),
        ):
            runner = SweepRunner(backend, ["fraction:standby"])
            with pytest.raises(ValueError, match="'T' and 'PDT'"):
                runner.run(SweepGrid({"T": [0.1, 0.2], "PDT": [1.0, 2.0]}))
            with pytest.raises(ValueError, match="both set"):
                backend.solve({"AR": 1.0, "lambda": 2.0})


class TestGSPNBackendTransients:
    def test_accumulated_tokens_matches_ctmc_integral(self):
        backend = GSPNBackend(build_mm1k_net(K=6))
        sol = backend.solve({"arrive": 1.2})
        got = backend.evaluate(sol, "accumulated_reward:queue@4")
        rewards = np.array(
            [float(m["queue"]) for m in sol.tangible_markings]
        )
        want = sol.ctmc.accumulated_reward(
            sol.initial_distribution, rewards, 4.0
        )
        assert got == pytest.approx(want, rel=1e-12)

    def test_transient_mean_tokens_approaches_steady_state(self):
        backend = GSPNBackend(build_mm1k_net(K=6))
        sol = backend.solve({"arrive": 1.2})
        late = backend.evaluate(sol, "mean_tokens:queue@200")
        steady = backend.evaluate(sol, "mean_tokens:queue")
        assert late == pytest.approx(steady, rel=1e-6)

    def test_unknown_place_rejected(self):
        backend = GSPNBackend(build_mm1k_net())
        sol = backend.solve({"arrive": 1.0})
        with pytest.raises(KeyError, match="nope"):
            backend.evaluate(sol, "accumulated_reward:nope@1")

    def test_energy_metric_rejected_for_nets(self):
        backend = GSPNBackend(build_mm1k_net())
        sol = backend.solve({"arrive": 1.0})
        with pytest.raises(ValueError, match="energy"):
            backend.evaluate(sol, "energy@1")
