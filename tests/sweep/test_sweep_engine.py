"""The unified execution engine: plans, partitions, batched wire framing.

The engine package must be a *refactor* for the serial and pool paths
(their behaviour is pinned by test_sweep/test_batched) and a new
capability for the wire paths: a batch-capable backend ships whole
stacked batches as ``rows`` frames, survives worker death by blame-free
requeue + pointwise downgrade, and stays bit-identical to the serial
batched runner in the dense/LU regimes.
"""

import json
import math

import numpy as np
import pytest

from repro import obs
from repro.core.params import CPUModelParams
from repro.sweep import (
    BatchedPhaseTypeBackend,
    SweepGrid,
    SweepRunner,
)
from repro.sweep.distributed import (
    DistributedSweepError,
    DistributedSweepRunner,
)
from repro.sweep.engine import (
    build_plan,
    partition_indices,
    plan_fingerprint,
)

PARAMS = CPUModelParams.paper_defaults(T=0.3, D=0.05)
METRICS = ["power", "fraction:standby"]
GRID_24 = SweepGrid.from_specs(["T=0.05:2.0:24"])


def batched_backend(**kwargs):
    kwargs.setdefault("stages", 2)
    kwargs.setdefault("n_max", 10)
    return BatchedPhaseTypeBackend(PARAMS, **kwargs)


def metric_matrix(result, metrics=METRICS):
    return np.array([[row[m] for m in metrics] for row in result.rows()])


def serial_batched(grid=GRID_24, **kwargs):
    return SweepRunner(batched_backend(**kwargs), METRICS).run(grid)


def assert_bitwise_equal(result, reference):
    assert result.points == reference.points
    np.testing.assert_array_equal(
        metric_matrix(result), metric_matrix(reference)
    )


class TestPlan:
    def test_partitions_align_to_batch_size(self):
        assert partition_indices(list(range(10)), 3, align=4) == [
            [0, 1, 2, 3],
            [4, 5, 6, 7],
            [8, 9],
        ]

    def test_partitions_never_span_gaps(self):
        """Checkpoint-resumed grids have holes; a partition crossing one
        would warm-start across distant parameter points."""
        assert partition_indices([0, 1, 2, 3, 4, 6, 7], 3) == [
            [0, 1, 2],
            [3, 4],
            [6, 7],
        ]

    def test_build_plan_aligns_and_skips_done(self):
        model = batched_backend(batch_size=4)
        points = [{"T": 0.1 * (i + 1)} for i in range(12)]
        plan = build_plan(model, METRICS, points, n_partitions=3)
        assert plan.batch_size == 4
        assert [p.indices for p in plan.partitions] == [
            [0, 1, 2, 3],
            [4, 5, 6, 7],
            [8, 9, 10, 11],
        ]
        resumed = build_plan(
            model, METRICS, points, n_partitions=3, done={0, 1, 2, 3}
        )
        assert resumed.n_pending == 8
        assert all(
            i >= 4 for part in resumed.partitions for i in part.indices
        )

    def test_fingerprint_tracks_shape_not_values(self):
        model = batched_backend()
        points = [{"T": 0.5}, {"T": 1.0}]
        base = plan_fingerprint(model, METRICS, points)
        assert base == plan_fingerprint(model, METRICS, points)
        assert base != plan_fingerprint(model, ["power"], points)
        assert base != plan_fingerprint(model, METRICS, points[:1])


class TestBatchedOverTheWire:
    """--batched --distributed: stacked solves ship as ``rows`` frames."""

    def test_bitwise_parity_with_serial_batched(self):
        result = DistributedSweepRunner(
            batched_backend(), METRICS, n_shards=2, worker_mode="inline"
        ).run(GRID_24)
        assert_bitwise_equal(result, serial_batched())
        assert result.errors == []

    def test_process_mode_bitwise_parity(self):
        result = DistributedSweepRunner(
            batched_backend(), METRICS, n_shards=2
        ).run(GRID_24)
        assert_bitwise_equal(result, serial_batched())

    def test_wire_batching_off_is_bitwise_identical(self):
        """The benchmark baseline (pointwise framing) must agree bit for
        bit in the dense regime — batching is a wire/perf concern, never
        a results concern."""
        result = DistributedSweepRunner(
            batched_backend(),
            METRICS,
            n_shards=2,
            worker_mode="inline",
            wire_batching=False,
        ).run(GRID_24)
        assert_bitwise_equal(result, serial_batched())

    def test_exactly_once_telemetry_across_rows_frames(self):
        """One sweep.point span per grid point and exact completed
        counters, however the rows were framed."""
        with obs.tracing() as trace:
            DistributedSweepRunner(
                batched_backend(batch_size=7),
                METRICS,
                n_shards=2,
                worker_mode="inline",
            ).run(GRID_24)
        names = [s.name for s in trace.spans]
        assert names.count("sweep.point") == 24
        assert trace.counters["sweep.rows.completed"] == 24
        assert trace.counters.get("sweep.rows.failed", 0) == 0

    def test_sigkill_mid_partition_requeues_bit_identically(self):
        """A real SIGKILL while batched frames are in flight: the whole
        unfinished partition is requeued and the merged table still
        matches serial bit for bit."""
        result = DistributedSweepRunner(
            batched_backend(),
            METRICS,
            n_shards=2,
            _fault_injection={"kill_worker_after_rows": 4},
        ).run(GRID_24)
        assert_bitwise_equal(result, serial_batched())
        assert result.errors == []

    def test_poison_in_batch_converges_to_pointwise_isolation(self):
        """A point that kills every worker holding its *batch* must be
        isolated by the pointwise downgrade: with max_requeues=0, only
        the killer is poisoned — its batch-mates never inherit blame."""
        grid = SweepGrid.from_specs(["T=0.1:1.2:12"])
        result = DistributedSweepRunner(
            batched_backend(batch_size=4),
            METRICS,
            n_shards=3,
            worker_mode="inline",
            n_chunks=1,
            max_requeues=0,
            _fault_injection={"die_worker": -1, "die_at_index": 9},
        ).run(grid)
        reference = SweepRunner(batched_backend(batch_size=4), METRICS).run(
            grid
        )
        got = metric_matrix(result)
        want = metric_matrix(reference)
        assert all(math.isnan(v) for v in got[9])
        mask = np.arange(len(got)) != 9
        np.testing.assert_array_equal(got[mask], want[mask])
        (failure,) = result.errors
        assert failure.index == 9
        assert failure.stage == "worker"

    def test_checkpoint_resume_across_partition_boundary(self, tmp_path):
        """Kill the fleet mid-sweep (whole batches journalled), resume
        with a fresh one: the journal holds each row exactly once and
        the merged table is bit-identical to serial."""
        path = tmp_path / "sweep.ckpt"
        with pytest.raises(DistributedSweepError):
            DistributedSweepRunner(
                batched_backend(batch_size=4),
                METRICS,
                n_shards=1,
                worker_mode="inline",
                checkpoint=path,
                _fault_injection={"die_worker": 0, "die_after_rows": 5},
            ).run(GRID_24)
        journalled = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        done = [r for r in journalled if r["kind"] == "row"]
        assert 0 < len(done) < 24  # a genuine mid-sweep interruption
        resumed = DistributedSweepRunner(
            batched_backend(batch_size=4),
            METRICS,
            n_shards=2,
            worker_mode="inline",
            checkpoint=path,
        ).run(GRID_24)
        assert_bitwise_equal(resumed, serial_batched(batch_size=4))
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        rows = [r for r in records if r["kind"] == "row"]
        assert sorted(r["index"] for r in rows) == list(range(24))


class TestHandshake:
    def test_v1_worker_rejected_with_capability_diagnosis(self):
        """An old worker gets a reject naming both versions and this
        side's capabilities, not a dropped connection."""
        import asyncio

        from repro.sweep.distributed.coordinator import SweepCoordinator
        from repro.sweep.distributed.protocol import (
            recv_message,
            send_message,
        )

        async def scenario():
            coordinator = SweepCoordinator(
                None, ["m"], [{"x": 1.0}], n_chunks=1
            )
            server = await asyncio.start_server(
                coordinator.handle_worker, host="127.0.0.1", port=0
            )
            host, port = server.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            try:
                await send_message(
                    writer,
                    {"kind": "hello", "version": 1, "worker": "old"},
                )
                return await recv_message(reader)
            finally:
                writer.close()
                server.close()
                await server.wait_closed()

        reply = asyncio.run(scenario())
        assert reply["kind"] == "reject"
        assert "capabilities: rows" in reply["message"]
        assert "coordinator 2" in reply["message"]
        assert "worker 1" in reply["message"]
