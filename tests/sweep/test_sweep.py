"""The repro.sweep subsystem: grids, runner, results, CLI wiring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.petri.ctmc_export import ctmc_from_net
from repro.sweep import (
    SweepGrid,
    SweepResult,
    SweepRunner,
    build_cpu_gspn_net,
    build_mm1k_net,
    parse_axis,
)


class TestGrid:
    def test_linspace_spec(self):
        name, values = parse_axis("AR=0.5:2.0:4")
        assert name == "AR"
        assert values == pytest.approx((0.5, 1.0, 1.5, 2.0))

    def test_log_spec(self):
        _, values = parse_axis("mu=0.1:10:3:log")
        assert values == pytest.approx((0.1, 1.0, 10.0))

    def test_list_and_single_specs(self):
        assert parse_axis("x=0.5,1,2")[1] == (0.5, 1.0, 2.0)
        assert parse_axis("x=1.5")[1] == (1.5,)

    @pytest.mark.parametrize(
        "bad", ["", "AR", "AR=", "=1", "AR=a:b:c", "AR=1:2", "AR=1:2:0"]
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_axis(bad)

    @pytest.mark.parametrize(
        "bad, needle",
        [
            # the message must name the axis and the offending token
            ("AR=1:2", r"axis 'AR'.*'1:2'.*start:stop:num"),
            ("AR=1:2:3:4:5", r"axis 'AR'.*start:stop:num"),
            ("mu=a:2:5", r"axis 'mu'.*start 'a'"),
            ("mu=1:b:5", r"axis 'mu'.*stop 'b'"),
            ("T=1:2:x", r"axis 'T'.*point count 'x'"),
            ("T=1:2:0", r"axis 'T'.*point count must be >= 1, got 0"),
            ("D=0.5,oops,2", r"axis 'D'.*list value 'oops'"),
            ("D=abc", r"axis 'D'.*'abc'"),
            ("AR", r"NAME=VALUES.*'AR'"),
        ],
    )
    def test_bad_specs_name_token_and_axis(self, bad, needle):
        with pytest.raises(ValueError, match=needle):
            parse_axis(bad)

    def test_duplicate_axis_message_names_axis(self):
        with pytest.raises(ValueError, match="duplicate axis 'AR'"):
            SweepGrid.from_specs(["AR=1", "AR=2"])

    def test_cartesian_order_last_axis_fastest(self):
        grid = SweepGrid({"a": [1.0, 2.0], "b": [10.0, 20.0]})
        assert grid.points() == [
            {"a": 1.0, "b": 10.0},
            {"a": 1.0, "b": 20.0},
            {"a": 2.0, "b": 10.0},
            {"a": 2.0, "b": 20.0},
        ]
        assert len(grid) == 4

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SweepGrid.from_specs(["a=1", "a=2"])

    def test_nonpositive_rates_rejected(self):
        with pytest.raises(ValueError, match="non-positive"):
            SweepGrid({"a": [1.0, 0.0]})

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            SweepGrid({})


class TestRunnerCorrectness:
    def test_serial_matches_pointwise_reduction(self):
        grid = SweepGrid({"arrive": [0.3, 0.8, 1.4], "serve": [2.0, 3.0]})
        runner = SweepRunner(
            build_mm1k_net(K=8), ["mean_tokens:queue", "throughput:serve"]
        )
        result = runner.run(grid)
        for row in result.rows():
            fresh = ctmc_from_net(
                build_mm1k_net(lam=row["arrive"], mu=row["serve"], K=8)
            )
            assert row["mean_tokens:queue"] == pytest.approx(
                fresh.mean_tokens("queue"), rel=1e-9
            )
            assert row["throughput:serve"] == pytest.approx(
                fresh.throughput("serve"), rel=1e-9
            )

    @settings(max_examples=15, deadline=None)
    @given(
        rates=st.lists(
            st.floats(min_value=0.05, max_value=5.0),
            min_size=1,
            max_size=6,
        )
    )
    def test_property_sweep_equals_pointwise(self, rates):
        """SweepRunner over arbitrary rate lists == independent reductions."""
        runner = SweepRunner(build_mm1k_net(K=5), ["mean_tokens:queue"])
        result = runner.run(SweepGrid({"arrive": rates}))
        want = [
            ctmc_from_net(build_mm1k_net(lam=r, K=5)).mean_tokens("queue")
            for r in rates
        ]
        np.testing.assert_allclose(
            result.column("mean_tokens:queue"), want, rtol=1e-9, atol=1e-12
        )

    def test_parallel_matches_serial(self):
        grid = SweepGrid({"arrive": [0.3, 0.7, 1.1, 1.5]})
        metrics = ["mean_tokens:queue", "probability_positive:queue"]
        serial = SweepRunner(build_mm1k_net(), metrics).run(grid)
        parallel = SweepRunner(build_mm1k_net(), metrics, n_workers=2).run(grid)
        for m in metrics:
            np.testing.assert_allclose(
                parallel.column(m), serial.column(m), rtol=1e-12
            )
        assert parallel.points == serial.points

    def test_unpicklable_template_falls_back_to_serial(self, caplog):
        """A metric closure cannot cross process boundaries: the runner
        must log one warning and solve serially, never crash the pool."""
        grid = SweepGrid({"arrive": [0.4, 0.9, 1.3]})
        unpicklable = lambda solution: solution.mean_tokens("queue")  # noqa: E731
        runner = SweepRunner(build_mm1k_net(), [unpicklable], n_workers=2)
        with caplog.at_level("WARNING", logger="repro.sweep.runner"):
            result = runner.run(grid)
        assert "not picklable" in caplog.text and "serially" in caplog.text
        want = SweepRunner(build_mm1k_net(), ["mean_tokens:queue"]).run(grid)
        np.testing.assert_allclose(
            result.column(result.metric_names[0]),
            want.column("mean_tokens:queue"),
            rtol=1e-12,
        )

    def test_callable_metric(self):
        def queue_mass(solution):
            return solution.probability_positive("queue")

        runner = SweepRunner(build_mm1k_net(), [queue_mass])
        result = runner.run(SweepGrid({"arrive": [0.5, 1.0]}))
        assert result.metric_names == ["queue_mass"]
        assert np.all(result.column("queue_mass") > 0.0)

    def test_cpu_gspn_sweep_physics(self):
        """Sanity on the paper's net: more load => less standby."""
        runner = SweepRunner(build_cpu_gspn_net(), ["mean_tokens:Stand_By"])
        result = runner.run(SweepGrid({"AR": [0.5, 2.0, 6.0]}))
        standby = result.column("mean_tokens:Stand_By")
        assert standby[0] > standby[1] > standby[2]

    def test_sweep_backends_agree(self):
        grid = SweepGrid({"arrive": [0.4, 0.9, 1.6]})
        dense = SweepRunner(
            build_mm1k_net(), ["mean_tokens:queue"], backend="dense"
        ).run(grid)
        sp = SweepRunner(
            build_mm1k_net(), ["mean_tokens:queue"], backend="sparse"
        ).run(grid)
        np.testing.assert_allclose(
            dense.column("mean_tokens:queue"),
            sp.column("mean_tokens:queue"),
            rtol=0,
            atol=1e-9,
        )


class TestRunnerValidation:
    def test_unknown_axis_rejected_before_solving(self):
        runner = SweepRunner(build_mm1k_net(), ["mean_tokens:queue"])
        with pytest.raises(KeyError, match="bogus"):
            runner.run(SweepGrid({"bogus": [1.0]}))

    def test_bad_metric_spec_rejected(self):
        runner = SweepRunner(build_mm1k_net(), ["tokens:queue"])
        with pytest.raises(ValueError, match="'tokens:queue'.*supports"):
            runner.run(SweepGrid({"arrive": [1.0]}))

    def test_no_metrics_rejected(self):
        with pytest.raises(ValueError, match="metric"):
            SweepRunner(build_mm1k_net(), [])

    def test_empty_point_list_rejected(self):
        runner = SweepRunner(build_mm1k_net(), ["mean_tokens:queue"])
        with pytest.raises(ValueError, match="empty"):
            runner.run([])


class TestResults:
    @staticmethod
    def small_result() -> SweepResult:
        return SweepResult(
            axis_names=["lam"],
            metric_names=["m"],
            points=[{"lam": 0.5}, {"lam": 1.0}, {"lam": 2.0}],
            values=[{"m": 3.0}, {"m": 1.0}, {"m": 2.0}],
        )

    def test_column_lookup(self):
        r = self.small_result()
        assert r.column("lam") == pytest.approx([0.5, 1.0, 2.0])
        assert r.column("m") == pytest.approx([3.0, 1.0, 2.0])
        with pytest.raises(KeyError):
            r.column("nope")

    def test_best_min_and_max(self):
        r = self.small_result()
        assert r.best("m")["lam"] == 1.0
        assert r.best("m", minimize=False)["lam"] == 0.5

    def test_render_contains_headers_and_rows(self):
        text = self.small_result().render(title="t")
        assert "lam" in text and "m" in text and "0.5" in text

    def test_csv_roundtrip(self, tmp_path):
        r = self.small_result()
        path = r.write_csv(tmp_path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "lam,m"
        assert len(lines) == 4
        assert float(lines[1].split(",")[1]) == 3.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SweepResult(["a"], ["m"], [{"a": 1.0}], [])


class TestCLI:
    def test_sweep_subcommand_runs(self, capsys):
        from repro.experiments.cli import main

        rc = main(
            [
                "sweep",
                "--net",
                "mm1k",
                "--rate",
                "arrive=0.4:1.2:3",
                "--metric",
                "mean_tokens:queue",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "mean_tokens:queue" in out
        assert "graph explored once" in out

    def test_sweep_subcommand_writes_csv(self, capsys, tmp_path):
        from repro.experiments.cli import main

        rc = main(
            ["sweep", "--rate", "AR=0.5,1.0", "--csv-dir", str(tmp_path)]
        )
        assert rc == 0
        assert (tmp_path / "sweep.csv").exists()

    def test_phase_type_model_subcommand_runs(self, capsys):
        from repro.experiments.cli import main

        rc = main(
            [
                "sweep",
                "--model",
                "phase-type",
                "--stages",
                "4",
                "--param",
                "D=0.05",
                "--rate",
                "T=0.2,0.8",
                "--metric",
                "fraction:standby",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "fraction:standby" in out
        assert "structure built once" in out

    @pytest.mark.parametrize(
        "argv, needle",
        [
            # flags the selected model would otherwise silently ignore
            (
                ["sweep", "--model", "gspn", "--param", "SR=20",
                 "--rate", "AR=1"],
                "--param does not apply",
            ),
            (
                ["sweep", "--model", "phase-type", "--net", "mm1k",
                 "--rate", "T=0.5"],
                "--net does not apply",
            ),
            (
                ["sweep", "--model", "renewal", "--stages", "8",
                 "--rate", "T=0.5"],
                "--stages does not apply",
            ),
        ],
    )
    def test_inapplicable_flags_rejected(self, capsys, argv, needle):
        from repro.experiments.cli import main

        rc = main(argv)
        err = capsys.readouterr().err
        assert rc == 2
        assert needle in err
