"""The sweep preflight gate: doomed sweeps abort before any solving.

This is the runner-level integration of :func:`repro.verify.preflight_sweep`
— the unit behaviour of the analyzers lives in ``tests/verify/``.
"""

import pytest

from repro.des.distributions import Exponential
from repro.petri.net import PetriNet
from repro.sweep import SweepGrid, SweepRunner
from repro.sweep.backends import PhaseTypeBackend
from repro.sweep.distributed import DistributedSweepRunner
from repro.sweep.nets import build_deadlock_net, build_mm1k_net
from repro.verify import PreflightError

from tests.sweep.test_failure_isolation import FlakyBackend


def forked_net() -> PetriNet:
    net = PetriNet("forked-absorbing")
    net.add_place("start", initial=1)
    net.add_place("left")
    net.add_place("right")
    net.add_timed_transition("go_left", Exponential(1.0))
    net.add_input_arc("start", "go_left")
    net.add_output_arc("go_left", "left")
    net.add_timed_transition("go_right", Exponential(1.0))
    net.add_input_arc("start", "go_right")
    net.add_output_arc("go_right", "right")
    return net


DEADLOCK_GRID = SweepGrid({"p_get1": [0.5, 1.0, 1.5]})


class TestSweepRunnerPreflight:
    def test_reducible_chain_names_an_absorbing_marking(self):
        """Regression: the preflight diagnosis must *name* a marking the
        chain absorbs into, not just say 'singular matrix'."""
        runner = SweepRunner(forked_net(), ["mean_tokens:left"])
        with pytest.raises(PreflightError) as exc_info:
            runner.run(SweepGrid({"go_left": [0.5, 1.5]}))
        message = str(exc_info.value)
        assert "CH001" in message
        assert "left=1" in message or "right=1" in message
        report = exc_info.value.report
        assert any(d.code == "CH001" for d in report.errors)

    def test_deadlock_net_aborts_before_solving(self):
        runner = SweepRunner(build_deadlock_net(), ["mean_tokens:p_working"])
        with pytest.raises(PreflightError, match="CH001"):
            runner.run(DEADLOCK_GRID)

    def test_opt_out_runs_anyway(self):
        runner = SweepRunner(
            build_deadlock_net(), ["mean_tokens:p_working"], preflight=False
        )
        result = runner.run(DEADLOCK_GRID)
        assert len(result.points) == 3  # solved (to the deadlock distribution)

    def test_transient_metrics_not_blocked(self):
        """Transient analysis of an absorbing chain is legitimate —
        the CH001 finding degrades to a logged warning."""
        runner = SweepRunner(forked_net(), ["mean_tokens:left@2.0"])
        result = runner.run(SweepGrid({"go_left": [0.5, 1.5]}))
        assert result.n_failed == 0

    def test_preflight_warnings_are_logged(self, caplog):
        runner = SweepRunner(forked_net(), ["mean_tokens:left@2.0"])
        with caplog.at_level("WARNING", logger="repro.sweep.runner"):
            runner.run(SweepGrid({"go_left": [0.5]}))
        assert "CH001" in caplog.text
        assert "dead marking" in caplog.text

    def test_bad_grid_value_is_sw001(self):
        """SweepGrid already rejects non-positive rates at construction;
        the preflight catches what slips past it — infinities."""
        runner = SweepRunner(build_mm1k_net(K=3), ["mean_tokens:queue"])
        with pytest.raises(PreflightError, match="SW001"):
            runner.run(SweepGrid({"arrive": [1.0, float("inf")]}))

    def test_healthy_sweep_unaffected(self):
        runner = SweepRunner(build_mm1k_net(K=3), ["mean_tokens:queue"])
        result = runner.run(SweepGrid({"arrive": [0.5, 1.0]}))
        assert result.n_failed == 0

    def test_unknown_backend_type_unaffected(self):
        runner = SweepRunner(FlakyBackend(), ["value"])
        result = runner.run(SweepGrid({"x": [1.0, 2.0]}))
        assert result.n_failed == 0

    def test_phase_type_sw002_logged_not_raised(self, caplog):
        runner = SweepRunner(PhaseTypeBackend(stages=4), ["fraction:standby"])
        with caplog.at_level("WARNING", logger="repro.sweep.runner"):
            result = runner.run(SweepGrid({"lambda": [0.4, 0.6]}))
        assert result.n_failed == 0
        assert "SW002" in caplog.text

    def test_preflight_runs_before_execute(self, monkeypatch):
        """The abort must happen before the execution strategy — no
        point is ever solved."""
        def explode(self, axis_names, points):
            raise AssertionError("_execute reached despite a doomed net")

        monkeypatch.setattr(SweepRunner, "_execute", explode)
        runner = SweepRunner(build_deadlock_net(), ["mean_tokens:p_working"])
        with pytest.raises(PreflightError):
            runner.run(DEADLOCK_GRID)


class TestDistributedPreflight:
    def test_aborts_before_fan_out(self, monkeypatch):
        """No worker may ever receive a template from a doomed sweep."""
        def explode(self, axis_names, points):
            raise AssertionError("fan-out reached despite a doomed net")

        monkeypatch.setattr(DistributedSweepRunner, "_execute", explode)
        runner = DistributedSweepRunner(
            build_deadlock_net(), ["mean_tokens:p_working"], n_shards=2
        )
        with pytest.raises(PreflightError, match="CH001"):
            runner.run(DEADLOCK_GRID)

    def test_opt_out_reaches_execution(self, monkeypatch):
        reached = []

        def record(self, axis_names, points):
            reached.append(len(points))
            return [[0.0]] * len(points), []

        monkeypatch.setattr(DistributedSweepRunner, "_execute", record)
        runner = DistributedSweepRunner(
            build_deadlock_net(),
            ["mean_tokens:p_working"],
            n_shards=2,
            preflight=False,
        )
        runner.run(DEADLOCK_GRID)
        assert reached == [3]
