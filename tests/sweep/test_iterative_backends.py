"""Solver-method threading through the sweep subsystem and the demo nets."""

import numpy as np
import pytest

from repro.core.params import CPUModelParams
from repro.markov.ctmc import ConvergenceError
from repro.petri.ctmc_export import GSPNSolver
from repro.sweep import (
    PhaseTypeBackend,
    SweepGrid,
    SweepRunner,
    build_mm1k_net,
    build_wsn_cluster_net,
)
from repro.sweep.backends import GSPNBackend

PARAMS = CPUModelParams.paper_defaults(T=0.3, D=0.05)


class TestGSPNMethodThreading:
    def test_solver_methods_agree_on_mm1k(self):
        solver = GSPNSolver(build_mm1k_net(K=15))
        lu = solver.solve(method="lu")
        gmres = solver.solve(method="gmres")
        power = solver.solve(method="power", tol=1e-13)
        ref = lu.mean_tokens("queue")
        assert abs(gmres.mean_tokens("queue") - ref) < 1e-8
        assert abs(power.mean_tokens("queue") - ref) < 1e-7

    def test_unknown_method_rejected_before_assembly(self):
        solver = GSPNSolver(build_mm1k_net(K=5))
        with pytest.raises(ValueError, match="qr"):
            solver.solve(method="qr")

    def test_backend_forwards_method_and_budget(self):
        backend = GSPNBackend(
            build_mm1k_net(K=15), method="power", tol=1e-15, max_iter=1
        )
        with pytest.raises(ConvergenceError):
            backend.solve({}).mean_tokens("queue")

    def test_backend_describe_names_solver(self):
        backend = GSPNBackend(build_mm1k_net(K=5), method="gmres")
        assert "gmres" in backend.describe()

    def test_runner_forwards_solver_to_wrapped_net(self):
        runner = SweepRunner(
            build_mm1k_net(K=10), ["mean_tokens:queue"], method="gmres"
        )
        result = runner.run(SweepGrid({"arrive": [0.5, 1.0, 1.5]}))
        reference = SweepRunner(
            build_mm1k_net(K=10), ["mean_tokens:queue"]
        ).run(SweepGrid({"arrive": [0.5, 1.0, 1.5]}))
        np.testing.assert_allclose(
            result.column("mean_tokens:queue"),
            reference.column("mean_tokens:queue"),
            rtol=0,
            atol=1e-8,
        )

    def test_runner_rejects_solver_args_with_backend_instance(self):
        backend = GSPNBackend(build_mm1k_net(K=5))
        with pytest.raises(ValueError, match="configure the backend"):
            SweepRunner(backend, ["mean_tokens:queue"], method="gmres")
        with pytest.raises(ValueError, match="configure the backend"):
            SweepRunner(backend, ["mean_tokens:queue"], tol=1e-8)

    def test_gmres_sweep_warm_starts_through_shared_cache(self):
        backend = GSPNBackend(build_mm1k_net(K=15), method="gmres")
        SweepRunner(backend, ["mean_tokens:queue"]).run(
            SweepGrid({"arrive": [0.5, 1.0, 1.5]})
        )
        assert "pi0" in backend.solver._factor_cache


class TestPhaseTypeMethodThreading:
    def test_methods_agree_to_1e8(self):
        kwargs = dict(stages=8, n_max=25)
        pi_lu = PhaseTypeBackend(PARAMS, method="lu", **kwargs).solve({}).pi
        pi_gmres = (
            PhaseTypeBackend(PARAMS, method="gmres", **kwargs).solve({}).pi
        )
        pi_power = (
            PhaseTypeBackend(PARAMS, method="power", tol=1e-13, **kwargs)
            .solve({})
            .pi
        )
        np.testing.assert_allclose(pi_gmres, pi_lu, rtol=0, atol=1e-8)
        np.testing.assert_allclose(pi_power, pi_lu, rtol=0, atol=1e-8)

    def test_gmres_sweep_matches_lu_sweep(self):
        grid = SweepGrid({"T": [0.2, 0.3, 0.4, 0.5]})
        metrics = ["power", "fraction:standby"]
        lu = SweepRunner(
            PhaseTypeBackend(PARAMS, stages=8, n_max=25, method="lu"), metrics
        ).run(grid)
        gmres = SweepRunner(
            PhaseTypeBackend(PARAMS, stages=8, n_max=25, method="gmres"),
            metrics,
        ).run(grid)
        for m in metrics:
            np.testing.assert_allclose(
                gmres.column(m), lu.column(m), rtol=0, atol=1e-7
            )

    def test_unknown_method_rejected_at_construction(self):
        with pytest.raises(ValueError, match="cholesky"):
            PhaseTypeBackend(PARAMS, method="cholesky")

    def test_convergence_error_carries_budget(self):
        backend = PhaseTypeBackend(
            PARAMS, stages=8, n_max=25, method="power", tol=1e-15, max_iter=3
        )
        with pytest.raises(ConvergenceError) as exc_info:
            backend.solve({})
        assert exc_info.value.iterations == 3

    def test_reset_solver_state_forces_cold_solves(self):
        backend = PhaseTypeBackend(PARAMS, stages=8, n_max=25, method="gmres")
        backend.solve({})
        assert backend._factor_cache
        backend.reset_solver_state()
        assert not backend._factor_cache
        backend.solve({})  # still solvable from cold
        assert "pi0" in backend._factor_cache

    def test_describe_names_solver(self):
        backend = PhaseTypeBackend(PARAMS, stages=8, n_max=25, method="power")
        assert "power steady state" in backend.describe()

    def test_transient_metrics_reuse_iterative_solution(self):
        backend = PhaseTypeBackend(PARAMS, stages=8, n_max=20, method="gmres")
        solution = backend.solve({})
        energy = backend.evaluate(solution, "energy@5")
        reference = PhaseTypeBackend(PARAMS, stages=8, n_max=20, method="lu")
        assert (
            abs(energy - reference.evaluate(reference.solve({}), "energy@5"))
            < 1e-6
        )


class TestWSNClusterNet:
    def test_state_space_is_the_product_formula(self):
        solver = GSPNSolver(build_wsn_cluster_net(n_nodes=2, buffer_capacity=3))
        assert solver.n == (3 + 1) ** 2 * (2 + 1)

    def test_solves_and_channel_is_conserved(self):
        solver = GSPNSolver(build_wsn_cluster_net(n_nodes=2, buffer_capacity=4))
        solution = solver.solve(method="gmres")
        # the channel token is either free or held by exactly one tx place
        for marking in solution.tangible_markings:
            held = sum(marking[f"tx{i}"] for i in range(2))
            assert marking["ch"] + held == 1
        # stationary solve agrees with lu
        lu = solver.solve(method="lu")
        assert (
            abs(solution.mean_tokens("buf0") - lu.mean_tokens("buf0")) < 1e-8
        )

    def test_nodes_contend_for_the_channel(self):
        # with contention, a node's throughput is below its solo service
        # capacity even at light load; sanity-check both are positive
        solver = GSPNSolver(build_wsn_cluster_net(n_nodes=3, buffer_capacity=2))
        solution = solver.solve()
        for i in range(3):
            assert solution.throughput(f"rel{i}") > 0.0

    def test_axes_are_per_node_rates(self):
        backend = GSPNBackend(build_wsn_cluster_net(n_nodes=2, buffer_capacity=2))
        axes = backend.axis_names()
        assert {"arr0", "snd0", "rel0", "arr1", "snd1", "rel1"} <= set(axes)

    def test_degenerate_sizes_rejected(self):
        with pytest.raises(ValueError, match="n_nodes"):
            build_wsn_cluster_net(n_nodes=0)
        with pytest.raises(ValueError, match="buffer_capacity"):
            build_wsn_cluster_net(buffer_capacity=0)
