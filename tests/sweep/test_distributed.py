"""The distributed fan-out: coordinator/worker protocol, faults, resume.

Inline workers (asyncio tasks inside the test process) exercise the full
TCP wire protocol deterministically; a handful of process-mode tests
cover real fork/kill behaviour.  Parity is asserted bit-for-bit against
the serial ``SweepRunner`` wherever the direct solvers run (their solves
are warm-start independent), and to tolerance for the iterative
phase-type path (chunk boundaries legitimately reset its warm start).
"""

import json
import math

import numpy as np
import pytest

from repro.sweep import (
    SweepGrid,
    SweepRunner,
    build_mm1k_net,
    build_wsn_cluster_net,
)
from repro.sweep.backends import PhaseTypeBackend
from repro.sweep.distributed import (
    CheckpointMismatchError,
    DistributedSweepError,
    DistributedSweepRunner,
    SweepCheckpoint,
    sweep_fingerprint,
)
from tests.sweep.test_failure_isolation import FlakyBackend

MM1K_GRID = SweepGrid({"arrive": [0.1 * i for i in range(1, 17)]})
MM1K_METRICS = ["mean_tokens:queue", "throughput:serve"]


def serial_mm1k():
    return SweepRunner(build_mm1k_net(), MM1K_METRICS).run(MM1K_GRID)


def assert_bitwise_equal(result, reference):
    assert result.points == reference.points
    assert result.metric_names == reference.metric_names
    for name in reference.metric_names:
        assert np.array_equal(result.column(name), reference.column(name)), name


class TestInlineParity:
    def test_mm1k_bitwise_parity(self):
        result = DistributedSweepRunner(
            build_mm1k_net(), MM1K_METRICS, n_shards=2, worker_mode="inline"
        ).run(MM1K_GRID)
        assert_bitwise_equal(result, serial_mm1k())
        assert result.errors == []

    def test_wsn_cluster_bitwise_parity(self):
        """The ordering-parity check the issue asks for, on wsn-cluster."""
        grid = SweepGrid({"arr0": [0.4, 0.7, 1.0, 1.3], "snd0": [1.5, 2.5]})
        metrics = ["mean_tokens:buf0", "throughput:snd0"]
        net = lambda: build_wsn_cluster_net(n_nodes=2, buffer_capacity=3)  # noqa: E731
        reference = SweepRunner(net(), metrics).run(grid)
        result = DistributedSweepRunner(
            net(), metrics, n_shards=3, worker_mode="inline"
        ).run(grid)
        assert_bitwise_equal(result, reference)

    def test_phase_type_ordering_parity(self):
        """Iterative backend: same ordering, tolerance-level agreement
        (chunk boundaries reset the GMRES warm start by design)."""
        grid = SweepGrid({"T": [0.2, 0.5, 0.8, 1.1, 1.4, 1.7]})
        metrics = ["fraction:standby", "power"]
        reference = SweepRunner(PhaseTypeBackend(stages=4), metrics).run(grid)
        result = DistributedSweepRunner(
            PhaseTypeBackend(stages=4), metrics, n_shards=2,
            worker_mode="inline",
        ).run(grid)
        assert result.points == reference.points
        for name in metrics:
            np.testing.assert_allclose(
                result.column(name), reference.column(name),
                rtol=1e-8, atol=1e-12,
            )

    def test_single_point_grid(self):
        result = DistributedSweepRunner(
            build_mm1k_net(), ["mean_tokens:queue"], n_shards=2,
            worker_mode="inline",
        ).run(SweepGrid({"arrive": [0.8]}))
        assert len(result) == 1

    def test_per_point_failures_cross_the_wire(self):
        """A NaN row + error record produced inside a worker arrives
        intact on the merged result."""
        result = DistributedSweepRunner(
            FlakyBackend(fail_at=[3.0]), ["value"], n_shards=2,
            worker_mode="inline",
        ).run(SweepGrid({"x": [1.0, 2.0, 3.0, 4.0]}))
        got = result.column("value")
        assert math.isnan(got[2])
        np.testing.assert_allclose(np.delete(got, 2), [2.0, 4.0, 8.0])
        (failure,) = result.errors
        assert failure.index == 2
        assert failure.error_type == "ConvergenceError"

    def test_unpicklable_template_falls_back_to_serial(self, caplog):
        unpicklable = lambda solution: solution.mean_tokens("queue")  # noqa: E731
        runner = DistributedSweepRunner(
            build_mm1k_net(), [unpicklable], n_shards=2, worker_mode="inline"
        )
        with caplog.at_level("WARNING", logger="repro.sweep.distributed.runner"):
            result = runner.run(SweepGrid({"arrive": [0.5, 1.0]}))
        assert "not picklable" in caplog.text
        want = SweepRunner(build_mm1k_net(), ["mean_tokens:queue"]).run(
            SweepGrid({"arrive": [0.5, 1.0]})
        )
        np.testing.assert_allclose(
            result.column(result.metric_names[0]),
            want.column("mean_tokens:queue"),
        )


class TestFaultTolerance:
    def test_inline_worker_death_requeues_to_survivor(self):
        """Worker 0 aborts its connection before point 9; worker 1 must
        finish the sweep with full bit parity and no error records."""
        result = DistributedSweepRunner(
            build_mm1k_net(), MM1K_METRICS, n_shards=2, worker_mode="inline",
            _fault_injection={"die_worker": 0, "die_at_index": 9},
        ).run(MM1K_GRID)
        assert_bitwise_equal(result, serial_mm1k())
        assert result.errors == []

    def test_process_worker_hard_exit_mid_sweep(self):
        """A forked worker hard-exits (os._exit) after 3 rows; the sweep
        completes with parity."""
        result = DistributedSweepRunner(
            build_mm1k_net(), MM1K_METRICS, n_shards=2,
            _fault_injection={"die_after_rows": 3},
        ).run(MM1K_GRID)
        assert_bitwise_equal(result, serial_mm1k())
        assert result.errors == []

    def test_process_worker_sigkill_mid_sweep(self):
        """A real SIGKILL once 4 rows are in; survivors complete."""
        result = DistributedSweepRunner(
            build_mm1k_net(), MM1K_METRICS, n_shards=2,
            _fault_injection={"kill_worker_after_rows": 4},
        ).run(MM1K_GRID)
        assert_bitwise_equal(result, serial_mm1k())
        assert result.errors == []

    def test_poison_point_after_requeue_budget(self):
        """With max_requeues=0 a point that killed one worker is not
        retried: NaN row, stage='worker' record, everything else solved.
        Only the killer point is blamed — the healthy tail of its chunk
        (n_chunks=2 puts indices 10..15 behind it) must not be poisoned
        wholesale."""
        result = DistributedSweepRunner(
            build_mm1k_net(), ["mean_tokens:queue"], n_shards=2,
            worker_mode="inline", max_requeues=0, n_chunks=2,
            _fault_injection={"die_worker": -1, "die_at_index": 9},
        ).run(MM1K_GRID)
        reference = serial_mm1k()
        got = result.column("mean_tokens:queue")
        want = reference.column("mean_tokens:queue")
        assert math.isnan(got[9])
        mask = np.arange(len(got)) != 9
        assert np.array_equal(got[mask], want[mask])
        (failure,) = result.errors
        assert failure.index == 9
        assert failure.stage == "worker"
        assert "died on this point" in failure.message

    def test_configuration_error_aborts_with_diagnosis(self):
        """An unknown place would fail on every point of every worker:
        the sweep must abort carrying the real diagnosis, not a generic
        'all workers exited'."""
        runner = DistributedSweepRunner(
            build_mm1k_net(), ["mean_tokens:nosuchplace"], n_shards=2,
            worker_mode="inline",
        )
        with pytest.raises(DistributedSweepError, match="nosuchplace"):
            runner.run(SweepGrid({"arrive": [0.5, 1.0, 1.5]}))

    def test_all_workers_dead_raises(self):
        runner = DistributedSweepRunner(
            build_mm1k_net(), ["mean_tokens:queue"], n_shards=1,
            worker_mode="inline",
            _fault_injection={"die_worker": 0, "die_at_index": 4},
        )
        with pytest.raises(DistributedSweepError, match="unfinished"):
            runner.run(MM1K_GRID)


class TestCheckpoint:
    def test_interrupt_then_resume_bitwise(self, tmp_path):
        """Kill the only worker mid-sweep; the second run resumes from the
        journal and the merged table is bit-identical to serial."""
        path = tmp_path / "sweep.ckpt"
        with pytest.raises(DistributedSweepError):
            DistributedSweepRunner(
                build_mm1k_net(), MM1K_METRICS, n_shards=1,
                worker_mode="inline", checkpoint=path,
                _fault_injection={"die_worker": 0, "die_after_rows": 5},
            ).run(MM1K_GRID)
        journalled = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert journalled[0]["kind"] == "header"
        assert len([r for r in journalled if r["kind"] == "row"]) == 5

        resumed = DistributedSweepRunner(
            build_mm1k_net(), MM1K_METRICS, n_shards=2,
            worker_mode="inline", checkpoint=path,
        ).run(MM1K_GRID)
        assert_bitwise_equal(resumed, serial_mm1k())
        # the journal now holds every row exactly once (plus the blame
        # record for the point the dying worker was solving)
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ][1:]
        rows = [r for r in records if r["kind"] == "row"]
        assert sorted(r["index"] for r in rows) == list(range(len(MM1K_GRID)))

    def test_completed_checkpoint_skips_solving(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        first = DistributedSweepRunner(
            build_mm1k_net(), MM1K_METRICS, n_shards=2, worker_mode="inline",
            checkpoint=path,
        ).run(MM1K_GRID)
        # resume with a model whose every solve would fail: nothing left
        # to solve, so the result comes straight from the journal
        again = DistributedSweepRunner(
            build_mm1k_net(), MM1K_METRICS, n_shards=0, checkpoint=path
        ).run(MM1K_GRID)
        assert_bitwise_equal(again, first)

    def test_mismatched_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        DistributedSweepRunner(
            build_mm1k_net(), ["mean_tokens:queue"], n_shards=1,
            worker_mode="inline", checkpoint=path,
        ).run(SweepGrid({"arrive": [0.5, 1.0]}))
        other = DistributedSweepRunner(
            build_mm1k_net(), ["mean_tokens:queue"], n_shards=1,
            worker_mode="inline", checkpoint=path,
        )
        with pytest.raises(CheckpointMismatchError, match="different sweep"):
            other.run(SweepGrid({"arrive": [0.5, 1.0, 1.5]}))

    def test_deterministic_killer_point_converges_across_resumes(self, tmp_path):
        """A point that kills every worker each run must not loop
        forever: journalled blame counts make the next resume poison it
        and finish the sweep."""
        path = tmp_path / "sweep.ckpt"

        def attempt():
            return DistributedSweepRunner(
                build_mm1k_net(), ["mean_tokens:queue"], n_shards=1,
                worker_mode="inline", checkpoint=path, max_requeues=0,
                _fault_injection={"die_worker": -1, "die_at_index": 9},
            ).run(MM1K_GRID)

        with pytest.raises(DistributedSweepError):
            attempt()  # run 1: the only worker dies on point 9
        result = attempt()  # run 2: count 9 > budget -> poisoned, completes
        assert math.isnan(result.column("mean_tokens:queue")[9])
        (failure,) = result.errors
        assert failure.index == 9 and failure.stage == "worker"
        reference = serial_mm1k().column("mean_tokens:queue")
        got = result.column("mean_tokens:queue")
        mask = np.arange(len(got)) != 9
        assert np.array_equal(got[mask], reference[mask])

    def test_requeue_only_journal_survives_resume(self, tmp_path):
        """A run that dies on its very first point journals a blame
        count and zero rows; the resume must append to that journal —
        truncating it would reset poison convergence forever."""
        path = tmp_path / "sweep.ckpt"

        def attempt():
            return DistributedSweepRunner(
                build_mm1k_net(), ["mean_tokens:queue"], n_shards=1,
                worker_mode="inline", checkpoint=path, max_requeues=0,
                _fault_injection={"die_worker": -1, "die_at_index": 0},
            ).run(MM1K_GRID)

        with pytest.raises(DistributedSweepError):
            attempt()  # dies before producing any row
        records = [json.loads(x) for x in path.read_text().splitlines()]
        assert [r["kind"] for r in records] == ["header", "requeue"]

        result = attempt()  # blame count loaded -> point 0 poisoned
        assert math.isnan(result.column("mean_tokens:queue")[0])
        (failure,) = result.errors
        assert failure.index == 0 and failure.stage == "worker"

    def test_different_model_rejected(self, tmp_path):
        """Same grid, different model (K=5 vs K=40 buffer): the
        fingerprint must refuse the resume."""
        path = tmp_path / "sweep.ckpt"
        grid = SweepGrid({"arrive": [0.5, 1.0]})
        DistributedSweepRunner(
            build_mm1k_net(K=5), ["mean_tokens:queue"], n_shards=1,
            worker_mode="inline", checkpoint=path,
        ).run(grid)
        other = DistributedSweepRunner(
            build_mm1k_net(K=40), ["mean_tokens:queue"], n_shards=1,
            worker_mode="inline", checkpoint=path,
        )
        with pytest.raises(CheckpointMismatchError, match="different sweep"):
            other.run(grid)

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        points = MM1K_GRID.points()
        checkpoint = SweepCheckpoint(path)
        checkpoint.open_for_append(
            MM1K_GRID.names, MM1K_METRICS, points, has_state=False
        )
        checkpoint.append_row(0, [1.0, 2.0])
        checkpoint.close()
        with path.open("a") as fh:
            fh.write('{"kind": "row", "index": 1, "val')  # torn write
        rows, errors, requeues = SweepCheckpoint(path).load(
            MM1K_GRID.names, MM1K_METRICS, points
        )
        assert rows == {0: [1.0, 2.0]}
        assert errors == {} and requeues == {}

    def test_append_after_torn_line_does_not_corrupt(self, tmp_path):
        """Resuming must truncate the torn tail first — otherwise the next
        append welds two records into one corrupt mid-file line."""
        path = tmp_path / "sweep.ckpt"
        points = MM1K_GRID.points()
        checkpoint = SweepCheckpoint(path)
        checkpoint.open_for_append(
            MM1K_GRID.names, MM1K_METRICS, points, has_state=False
        )
        checkpoint.append_row(0, [1.0, 2.0])
        checkpoint.close()
        with path.open("a") as fh:
            fh.write('{"kind": "row", "index": 1, "val')  # torn write
        resumed = SweepCheckpoint(path)
        resumed.open_for_append(
            MM1K_GRID.names, MM1K_METRICS, points, has_state=True
        )
        resumed.append_row(2, [3.0, 4.0])
        resumed.close()
        rows, _, _ = SweepCheckpoint(path).load(
            MM1K_GRID.names, MM1K_METRICS, points
        )
        assert rows == {0: [1.0, 2.0], 2: [3.0, 4.0]}

    def test_unpicklable_fallback_still_journals(self, tmp_path):
        """The serial fallback must honour --checkpoint: rows land in the
        journal and a later resume skips them."""
        path = tmp_path / "sweep.ckpt"
        unpicklable = lambda solution: solution.mean_tokens("queue")  # noqa: E731
        DistributedSweepRunner(
            build_mm1k_net(), [unpicklable], n_shards=2, worker_mode="inline",
            checkpoint=path,
        ).run(SweepGrid({"arrive": [0.5, 1.0]}))
        journalled = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert len([r for r in journalled if r["kind"] == "row"]) == 2

    def test_torn_header_treated_as_empty(self, tmp_path):
        """A journal killed mid-write of its very first line holds no
        state: load as empty (and let the next run rewrite it), don't
        demand the user delete the file."""
        path = tmp_path / "sweep.ckpt"
        path.write_text('{"kind": "head')  # torn header, no newline
        rows, errors, requeues = SweepCheckpoint(path).load(
            MM1K_GRID.names, MM1K_METRICS, MM1K_GRID.points()
        )
        assert rows == {} and errors == {} and requeues == {}
        result = DistributedSweepRunner(
            build_mm1k_net(), MM1K_METRICS, n_shards=1, worker_mode="inline",
            checkpoint=path,
        ).run(MM1K_GRID)
        assert_bitwise_equal(result, serial_mm1k())

    def test_dispatch_failure_blames_nobody(self):
        """A chunk that never reached its worker (send to a dead socket)
        must be requeued without incrementing any blame count."""
        import asyncio

        from repro.sweep.distributed.coordinator import SweepCoordinator

        points = [{"x": 1.0}, {"x": 2.0}]
        coordinator = SweepCoordinator(
            None, ["m"], points, n_chunks=1
        )

        async def scenario():
            chunk = coordinator._pop_live_chunk()
            await coordinator._requeue(
                chunk, set(), ConnectionError("dead socket"), blame=False
            )
            return chunk

        asyncio.run(scenario())
        assert coordinator._requeues == {}
        assert len(coordinator._pending) == 1

    def test_fingerprint_sensitive_to_grid_and_metrics(self):
        points = [{"x": 1.0}, {"x": 2.0}]
        base = sweep_fingerprint(["x"], ["m"], points)
        assert base == sweep_fingerprint(["x"], ["m"], points)
        assert base != sweep_fingerprint(["x"], ["m2"], points)
        assert base != sweep_fingerprint(["x"], ["m"], points[:1])
        assert base != sweep_fingerprint(["x"], ["m"], [{"x": 1.0}, {"x": 2.5}])


class TestRunnerValidation:
    def test_bad_worker_mode_rejected(self):
        with pytest.raises(ValueError, match="worker_mode"):
            DistributedSweepRunner(
                build_mm1k_net(), ["mean_tokens:queue"], worker_mode="thread"
            )

    def test_negative_shards_rejected(self):
        with pytest.raises(ValueError, match="n_shards"):
            DistributedSweepRunner(
                build_mm1k_net(), ["mean_tokens:queue"], n_shards=-1
            )

    def test_address_is_bound_before_run(self):
        runner = DistributedSweepRunner(
            build_mm1k_net(), ["mean_tokens:queue"], n_shards=0
        )
        host, port = runner.address
        assert host == "127.0.0.1"
        assert port > 0


class TestCLI:
    def test_distributed_sweep_subcommand(self, capsys):
        from repro.experiments.cli import main

        rc = main(
            [
                "sweep", "--net", "mm1k", "--rate", "arrive=0.4:1.2:6",
                "--metric", "mean_tokens:queue",
                "--distributed", "--shards", "2",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "mean_tokens:queue" in out
        assert "2 local process worker(s)" in out

    def test_bind_in_use_is_a_clean_error(self, capsys):
        import socket

        from repro.experiments.cli import main

        blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            rc = main(
                [
                    "sweep", "--rate", "AR=1", "--distributed",
                    "--bind", f"127.0.0.1:{port}",
                ]
            )
        finally:
            blocker.close()
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv, needle",
        [
            (["sweep", "--rate", "AR=1", "--shards", "2"],
             "--shards requires --distributed"),
            (["sweep", "--rate", "AR=1", "--checkpoint", "x.ckpt"],
             "--checkpoint requires --distributed"),
            (["sweep", "--rate", "AR=1", "--distributed", "--jobs", "2"],
             "--jobs does not apply with --distributed"),
            (["sweep", "--rate", "AR=1", "--distributed", "--bind", "nope"],
             "--bind must look like HOST:PORT"),
            (["sweep", "--rate", "AR=1", "--distributed", "--bind",
              "127.0.0.1:http"], "port 'http'"),
        ],
    )
    def test_flag_validation(self, capsys, argv, needle):
        from repro.experiments.cli import main

        rc = main(argv)
        assert rc == 2
        assert needle in capsys.readouterr().err
