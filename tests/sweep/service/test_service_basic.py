"""Service fundamentals: parity, ops, cache behaviour, backpressure.

Everything here runs the daemon in-process (``ServiceFixture``) with
inline solving — the wire formats and request lifecycle are identical to
pool mode, without the fork cost.  Pool-mode behaviour is covered by
``test_service_faults.py`` and ``test_service_concurrency.py``.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.sweep import SweepGrid, SweepRunner, build_mm1k_net
from repro.sweep.distributed.protocol import PROTOCOL_VERSION
from tests.sweep.service.fixture import (
    MM1K_METRICS,
    MM1K_MODEL,
    ServiceFixture,
    exchange_on,
    mm1k_sweep_payload,
)


class TestSolveParity:
    def test_sweep_bitwise_parity_with_serial_runner(self):
        payload = mm1k_sweep_payload(6)
        grid = SweepGrid.from_specs(payload["axes"])
        reference = SweepRunner(
            build_mm1k_net(K=10), MM1K_METRICS
        ).run(grid)
        with ServiceFixture(telemetry=False) as svc:
            reply = svc.request(payload)
        assert reply["kind"] == "result"
        assert reply["metric_names"] == MM1K_METRICS
        assert reply["points"] == reference.points
        for i, name in enumerate(MM1K_METRICS):
            got = np.array([row[i] for row in reply["rows"]])
            assert np.array_equal(got, reference.column(name)), name
        assert reply["errors"] == []

    def test_steady_matches_sweep_single_point(self):
        with ServiceFixture(telemetry=False) as svc:
            steady = svc.request({
                "op": "steady", "model": MM1K_MODEL,
                "metrics": MM1K_METRICS,
            })
            sweep = svc.request({
                "op": "sweep", "model": MM1K_MODEL,
                "axes": ["arrive=1.0:1.0:1"],
                "metrics": MM1K_METRICS,
            })
        assert steady["kind"] == "result"
        assert set(steady["values"]) == set(MM1K_METRICS)
        assert all(np.isfinite(v) for v in steady["values"].values())
        # mm1k's base arrival rate is 1.0 — the same point solved two ways
        assert steady["values"]["mean_tokens:queue"] == sweep["rows"][0][0]

    def test_http_sweep_parity_with_pickle(self):
        payload = mm1k_sweep_payload(4)
        with ServiceFixture(telemetry=False) as svc:
            pickle_reply = svc.request(payload)
            status, http_reply = svc.http("POST", "/v1/sweep", {
                k: v for k, v in payload.items() if k != "op"
            })
        assert status == 200
        assert http_reply["rows"] == pickle_reply["rows"]
        assert http_reply["points"] == pickle_reply["points"]
        assert http_reply["fingerprint"] == pickle_reply["fingerprint"]


class TestOps:
    def test_ping_and_stats(self):
        with ServiceFixture(telemetry=False) as svc:
            ping = svc.request({"op": "ping"})
            assert ping["ok"] is True and ping["draining"] is False
            stats = svc.stats()
            assert stats["requests"]["completed"] == 0
            assert stats["cache"]["size"] == 0
            assert stats["draining"] is False

    def test_lint_op(self):
        with ServiceFixture(telemetry=False) as svc:
            reply = svc.request({"op": "lint", "net": "mm1k"})
            assert reply["ok"] is True
            assert reply["facts"]  # proved invariants travel
            deadlock = svc.request(
                {"op": "lint", "net": "deadlock", "level": "deep"}
            )
        assert deadlock["ok"] is False
        severities = {d["severity"] for d in deadlock["diagnostics"]}
        assert "error" in severities  # findings travel with codes intact
        assert all(d["code"] for d in deadlock["diagnostics"])

    def test_request_id_round_trips(self):
        with ServiceFixture(telemetry=False) as svc:
            reply = svc.request({**mm1k_sweep_payload(2), "id": "client-42"})
            assert reply["id"] == "client-42"
            err = svc.request({"op": "sweep", "id": 7, "model": MM1K_MODEL})
            assert err["kind"] == "error" and err["id"] == 7

    def test_healthz_and_http_stats(self):
        with ServiceFixture(telemetry=False) as svc:
            status, body = svc.http("GET", "/healthz")
            assert (status, body["ok"]) == (200, True)
            status, body = svc.http("GET", "/stats")
            assert status == 200 and "cache" in body["stats"]


class TestTemplateCacheBehaviour:
    def test_repeat_fingerprint_hits_cache(self):
        with ServiceFixture(telemetry=False) as svc:
            first = svc.request(mm1k_sweep_payload(3))
            second = svc.request(mm1k_sweep_payload(5))  # same model, new grid
            stats = svc.stats()
        assert first["cache_hit"] is False
        assert second["cache_hit"] is True
        assert second["fingerprint"] == first["fingerprint"]
        assert stats["cache"] == {**stats["cache"], "misses": 1, "hits": 1}

    def test_different_models_prepare_independently(self):
        with ServiceFixture(telemetry=False) as svc:
            a = svc.request(mm1k_sweep_payload(2))
            b = svc.request(mm1k_sweep_payload(2, buffer=12))
            stats = svc.stats()
        assert a["fingerprint"] != b["fingerprint"]
        assert stats["cache"]["misses"] == 2
        assert stats["cache"]["size"] == 2

    def test_lru_eviction_under_capacity_pressure(self):
        with ServiceFixture(telemetry=False, cache_capacity=2) as svc:
            for buffer in (8, 9, 10):  # three models, capacity two
                svc.request(mm1k_sweep_payload(2, buffer=buffer))
            evicted_stats = svc.stats()
            # the oldest (buffer=8) was evicted; using it again re-prepares
            again = svc.request(mm1k_sweep_payload(2, buffer=8))
        assert evicted_stats["cache"]["evictions"] == 1
        assert evicted_stats["cache"]["size"] == 2
        assert again["cache_hit"] is False


class TestBackpressure:
    def test_busy_reply_when_queue_full(self):
        # one slot, no queue, and a per-point delay so the first request
        # reliably occupies the slot while the second arrives
        with ServiceFixture(
            telemetry=False, max_inflight=1, max_pending=0, solve_delay=0.2
        ) as svc:
            slow = threading.Thread(
                target=svc.request, args=(mm1k_sweep_payload(8),)
            )
            slow.start()
            try:
                deadline = time.monotonic() + 10
                reply = None
                while time.monotonic() < deadline:
                    if svc.stats()["inflight"] >= 1:
                        reply = svc.request(mm1k_sweep_payload(8))
                        break
                    time.sleep(0.01)
            finally:
                slow.join()
            assert reply is not None, "first request never became in-flight"
            assert reply["kind"] == "busy"
            assert reply["draining"] is False
            final = svc.stats()
        assert final["requests"]["completed"] == 1

    def test_http_429_when_queue_full(self):
        with ServiceFixture(
            telemetry=False, max_inflight=1, max_pending=0, solve_delay=0.2
        ) as svc:
            slow = threading.Thread(
                target=svc.request, args=(mm1k_sweep_payload(8),)
            )
            slow.start()
            try:
                deadline = time.monotonic() + 10
                status = None
                while time.monotonic() < deadline:
                    if svc.stats()["inflight"] >= 1:
                        status, body = svc.http(
                            "POST", "/v1/sweep",
                            {k: v for k, v in mm1k_sweep_payload(2).items()
                             if k != "op"},
                        )
                        break
                    time.sleep(0.01)
            finally:
                slow.join()
            assert status == 429
            assert "error" in body

    def test_queued_request_completes(self):
        # queue of one: the second request waits, then runs — no busy
        with ServiceFixture(
            telemetry=False, max_inflight=1, max_pending=1, solve_delay=0.05
        ) as svc:
            replies = []
            threads = [
                threading.Thread(
                    target=lambda: replies.append(
                        svc.request(mm1k_sweep_payload(4))
                    )
                )
                for _ in range(2)
            ]
            for t in threads:
                t.start()
                time.sleep(0.05)  # ensure ordered arrival
            for t in threads:
                t.join()
            stats = svc.stats()
        assert [r["kind"] for r in replies] == ["result", "result"]
        assert stats["requests"]["completed"] == 2


class TestConnectionSemantics:
    def test_many_requests_per_connection(self):
        with ServiceFixture(telemetry=False) as svc:
            with svc.open_socket() as sock:
                for n in (2, 3, 4):
                    reply = exchange_on(sock, mm1k_sweep_payload(n))
                    assert reply["kind"] == "result"
                    assert len(reply["rows"]) == n

    def test_version_mismatch_rejected(self):
        from tests.sweep.service.fixture import recv_frame, send_frame

        with ServiceFixture(telemetry=False) as svc:
            with svc.open_socket() as sock:
                send_frame(sock, {
                    "kind": "request", "version": PROTOCOL_VERSION + 1,
                    **mm1k_sweep_payload(2),
                })
                reply = recv_frame(sock)
        assert reply["kind"] == "error"
        assert reply["code"] == "bad-request"
        assert str(PROTOCOL_VERSION) in reply["message"]

    def test_journal_records_lifecycle(self, tmp_path):
        journal = tmp_path / "service.journal.jsonl"
        with ServiceFixture(telemetry=False, journal=str(journal)) as svc:
            svc.request(mm1k_sweep_payload(2))
        records = [
            json.loads(line) for line in journal.read_text().splitlines()
        ]
        events = [r.get("event") or r.get("op") for r in records]
        assert events[0] == "start"
        assert "sweep" in events
        assert events[-1] == "drain"
        assert records[-1]["completed"] == 1


class TestBadRequests:
    @pytest.mark.parametrize(
        "payload, needle",
        [
            ({"op": "warp"}, "unknown op"),
            ({"op": "sweep", "model": {"net": "nope"}}, "unknown net"),
            ({"op": "sweep", "model": MM1K_MODEL}, "needs 'axes'"),
            (
                {"op": "sweep", "model": {**MM1K_MODEL, "turbo": 1},
                 "axes": ["arrive=1:2:2"]},
                "unknown model spec key",
            ),
            (
                {"op": "sweep", "model": MM1K_MODEL,
                 "axes": ["arrive=1:2:2"], "metrics": [42]},
                "metrics",
            ),
            (
                {"op": "steady", "model": MM1K_MODEL,
                 "axes": ["arrive=1:2:2"]},
                "steady takes no axes",
            ),
            ({"op": "lint", "net": "mm1k", "level": "psychic"}, "level"),
        ],
    )
    def test_bad_request_is_a_clean_error(self, payload, needle):
        with ServiceFixture(telemetry=False) as svc:
            reply = svc.request(payload)
            # and the service is still fine afterwards
            assert svc.request({"op": "ping"})["ok"] is True
        assert reply["kind"] == "error"
        assert reply["code"] == "bad-request"
        assert needle in reply["message"]
