"""Property tests for the template LRU and the fingerprint contract.

Three layers, matching the tentpole's cache guarantees:

- :class:`LRUTemplates` behaves exactly like an ``OrderedDict``-based
  reference model under arbitrary get/put sequences (hypothesis): size
  never exceeds capacity, repeat fingerprints always hit, evictions come
  out strictly LRU-first;
- :class:`TemplateCache.get_or_prepare` is single-flight: concurrent
  awaiters of the same fingerprint run the builder exactly once;
- :func:`spec_fingerprint` over :func:`canonical_model_spec` collides
  iff two specs configure the same prepared template — every size- and
  solver-relevant field perturbs it, while spelling differences (key
  order, int-vs-float, axis aliases, omitted defaults) collapse.  This
  extends PR 5's checkpoint-fingerprint discipline from sweeps to
  models.
"""

import asyncio
from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sweep.service import (
    LRUTemplates,
    TemplateCache,
    canonical_model_spec,
    spec_fingerprint,
)

# -- strategies -------------------------------------------------------------

_KEYS = st.sampled_from([f"fp-{i}" for i in range(8)])
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("get"), _KEYS),
        st.tuples(st.just("put"), _KEYS),
    ),
    max_size=60,
)


def fingerprint_of(spec):
    return spec_fingerprint(canonical_model_spec(spec))


class TestLRUProperties:
    @given(capacity=st.integers(1, 4), ops=_OPS)
    @settings(max_examples=200, deadline=None)
    def test_matches_ordered_dict_reference_model(self, capacity, ops):
        """The real LRU and a five-line OrderedDict model never diverge."""
        lru = LRUTemplates(capacity)
        model = OrderedDict()
        for op, key in ops:
            if op == "get":
                got = lru.get(key)
                if key in model:
                    model.move_to_end(key)
                    assert got is model[key]
                else:
                    assert got is None
            else:
                value = object()
                evicted = lru.put(key, value)
                model[key] = value
                model.move_to_end(key)
                expect_evicted = []
                while len(model) > capacity:
                    victim, _ = model.popitem(last=False)
                    expect_evicted.append(victim)
                assert evicted == expect_evicted
            # invariants that must hold after *every* step
            assert len(lru) == len(model)
            assert len(lru) <= capacity
            assert list(lru.keys()) == list(model)  # LRU-first order

    @given(ops=_OPS)
    @settings(max_examples=100, deadline=None)
    def test_repeat_fingerprint_always_hits(self, ops):
        """Once put and not yet evicted, a fingerprint always hits."""
        lru = LRUTemplates(3)
        live = set()
        for op, key in ops:
            if op == "put":
                for victim in lru.put(key, key):
                    live.discard(victim)
                live.add(key)
            else:
                got = lru.get(key)
                assert (got is not None) == (key in live)

    def test_eviction_is_strictly_lru_not_fifo(self):
        lru = LRUTemplates(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")  # refresh: "b" is now least recent
        assert lru.put("c", 3) == ["b"]
        assert list(lru.keys()) == ["a", "c"]

    def test_stats_accounting(self):
        lru = LRUTemplates(1)
        lru.get("x")
        lru.put("x", 1)
        lru.get("x")
        lru.put("y", 2)  # evicts x
        stats = lru.stats()
        assert stats == {
            "size": 1, "capacity": 1,
            "hits": 1, "misses": 1, "evictions": 1,
        }


class TestSingleFlight:
    def test_concurrent_get_or_prepare_builds_once(self):
        class FakeBackend:
            def prepare(self):
                pass

        calls = []

        def builder():
            calls.append(1)
            return FakeBackend()

        async def scenario():
            cache = TemplateCache(capacity=4)
            entries = await asyncio.gather(
                *(cache.get_or_prepare("fp", builder) for _ in range(10))
            )
            return cache, entries

        cache, entries = asyncio.run(scenario())
        assert len(calls) == 1
        assert cache.builds == 1
        backends = {id(entry.backend) for entry, _hit in entries}
        assert len(backends) == 1  # everyone shares the one template

    def test_failed_build_is_not_cached(self):
        attempts = []

        def builder():
            attempts.append(1)
            if len(attempts) == 1:
                raise ValueError("flaky")

            class FakeBackend:
                def prepare(self):
                    pass

            return FakeBackend()

        async def scenario():
            cache = TemplateCache(capacity=4)
            try:
                await cache.get_or_prepare("fp", builder)
            except ValueError:
                pass
            # the failure must not poison the slot: retry rebuilds
            entry, hit = await cache.get_or_prepare("fp", builder)
            return cache, entry, hit

        cache, entry, hit = asyncio.run(scenario())
        assert len(attempts) == 2
        assert hit is False
        assert entry.backend is not None


class TestFingerprintContract:
    """Collisions impossible by construction: every template-relevant
    field perturbs the fingerprint; cosmetic respellings do not."""

    def test_gspn_size_knobs_perturb(self):
        base = fingerprint_of({"kind": "gspn", "net": "mm1k", "buffer": 10})
        assert base == fingerprint_of(
            {"kind": "gspn", "net": "mm1k", "buffer": 10}
        )
        # the ISSUE's headline case: --buffer variants never collide
        assert base != fingerprint_of(
            {"kind": "gspn", "net": "mm1k", "buffer": 20}
        )
        assert base != fingerprint_of({"kind": "gspn", "net": "cpu-gspn"})
        assert base != fingerprint_of(
            {"kind": "gspn", "net": "mm1k", "buffer": 10, "backend": "dense"}
        )
        assert base != fingerprint_of(
            {"kind": "gspn", "net": "mm1k", "buffer": 10, "solver": "power"}
        )
        assert base != fingerprint_of(
            {"kind": "gspn", "net": "mm1k", "buffer": 10, "max_markings": 99}
        )

    def test_stages_variants_perturb(self):
        base = fingerprint_of({"kind": "phase-type", "stages": 32})
        # --stages variants never collide
        assert base != fingerprint_of({"kind": "phase-type", "stages": 16})
        assert base != fingerprint_of({"kind": "phase-type", "n_max": 400})
        assert base != fingerprint_of(
            {"kind": "phase-type", "params": {"lambda": 90.0}}
        )
        # a different kind is a different template even with equal knobs
        assert base != fingerprint_of(
            {"kind": "phase-type-batched", "stages": 32}
        )

    def test_cosmetic_respellings_collapse(self):
        # omitted defaults == spelled-out defaults
        assert fingerprint_of({"kind": "gspn", "net": "mm1k"}) == (
            fingerprint_of({
                "kind": "gspn", "net": "mm1k", "solver": "auto",
                "backend": "auto", "max_markings": 2_000_000,
            })
        )
        # int vs float spellings of an integer knob
        assert fingerprint_of(
            {"kind": "gspn", "net": "mm1k", "buffer": 20}
        ) == fingerprint_of({"kind": "gspn", "net": "mm1k", "buffer": 20.0})
        # axis aliases resolve to one spelling, param order is sorted
        assert fingerprint_of(
            {"kind": "renewal", "params": {"lambda": 90, "mu": 1000}}
        ) == fingerprint_of(
            {"kind": "renewal",
             "params": {"service_rate": 1000.0, "arrival_rate": 90.0}}
        )
        # phase-type default stages spelled out
        assert fingerprint_of({"kind": "phase-type"}) == fingerprint_of(
            {"kind": "phase-type", "stages": 32}
        )

    @given(
        buffer_a=st.integers(2, 40),
        buffer_b=st.integers(2, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_buffer_injective_over_range(self, buffer_a, buffer_b):
        fp_a = fingerprint_of(
            {"kind": "gspn", "net": "mm1k", "buffer": buffer_a}
        )
        fp_b = fingerprint_of(
            {"kind": "gspn", "net": "mm1k", "buffer": buffer_b}
        )
        assert (fp_a == fp_b) == (buffer_a == buffer_b)

    @given(
        stages=st.integers(1, 64),
        rate=st.floats(1.0, 1000.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_canonicalisation_is_idempotent(self, stages, rate):
        """canonical(canonical(spec)) == canonical(spec) — the canonical
        form is a fixed point, so re-submitting a canonical spec can
        never re-key the cache."""
        spec = {
            "kind": "phase-type",
            "stages": stages,
            "params": {"lambda": rate},
        }
        once = canonical_model_spec(spec)
        assert canonical_model_spec(once) == once
        assert spec_fingerprint(canonical_model_spec(once)) == (
            spec_fingerprint(once)
        )
