"""Service-grade fault injection: dead workers, dropped clients, SIGTERM.

The three failure classes the daemon must absorb without dying:

- a **worker shard crashing mid-request** (``die_after_rows`` aborts its
  socket with an RST, then ``os._exit``) — the request's unfinished
  points requeue to a survivor, a replacement is forked, the results
  stay bit-identical, and the *next* request works;
- a **client vanishing mid-stream** (socket dropped after sending, or
  mid-frame) — the handler ends quietly and the daemon keeps serving;
- **SIGTERM mid-sweep** (forked daemon) — in-flight work finishes, new
  work is refused with ``busy {draining: true}``, the journal closes
  with a drain record, the trace validates, and the process exits 0.
"""

import json
import os
import signal
import struct
import time

import numpy as np
import pytest

from repro.sweep import SweepGrid, SweepRunner, build_mm1k_net
from tests.sweep.service.fixture import (
    MM1K_METRICS,
    ForkedService,
    ServiceFixture,
    mm1k_sweep_payload,
)


class TestWorkerDeath:
    def test_worker_killed_mid_request_bit_identical_result(self):
        payload = mm1k_sweep_payload(8)
        reference = SweepRunner(build_mm1k_net(K=10), MM1K_METRICS).run(
            SweepGrid.from_specs(payload["axes"])
        )
        svc = ServiceFixture(
            n_workers=2,
            worker_fault={"die_after_rows": 3, "die_worker": 0},
        )
        with svc:
            reply = svc.request(payload)
            stats = svc.stats()
            # the daemon is still able to serve the next request
            again = svc.request(payload)
        assert reply["kind"] == "result"
        assert reply["errors"] == []
        for i, name in enumerate(MM1K_METRICS):
            got = np.array([row[i] for row in reply["rows"]])
            assert np.array_equal(got, reference.column(name)), name
        assert stats["workers"]["deaths"] >= 1
        assert stats["workers"]["respawns"] >= 1
        assert again["kind"] == "result"
        assert again["rows"] == reply["rows"]

    def test_idle_worker_sigkill_respawned(self):
        svc = ServiceFixture(telemetry=False, n_workers=2)
        with svc:
            before = svc.stats()["workers"]
            victim = before["pids"][0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                workers = svc.stats()["workers"]
                if workers["respawns"] >= 1 and workers["connected"] >= 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail(f"no respawn after SIGKILL: {workers}")
            assert victim not in workers["pids"]
            # and the pool still solves correctly on the survivors
            reply = svc.request(mm1k_sweep_payload(4))
        assert reply["kind"] == "result"
        assert reply["errors"] == []

    def test_retry_budget_exhaustion_fails_request_not_daemon(self):
        # every worker is armed: each task attempt dies after 0 rows, so
        # one request burns through the whole retry budget
        svc = ServiceFixture(
            telemetry=False,
            n_workers=1,
            max_retries=1,
            worker_fault={"die_after_rows": 0, "die_worker": 0},
        )
        with svc:
            reply = svc.request(mm1k_sweep_payload(4), timeout=120)
            # respawned replacements are unarmed, so the daemon recovers
            again = svc.request(mm1k_sweep_payload(4), timeout=120)
        # either the armed worker exhausted the budget (error reply) or a
        # clean respawn completed the request after the armed one died —
        # both leave the daemon serving; what may NOT happen is a hang or
        # a dead daemon
        assert reply["kind"] in ("error", "result")
        assert again["kind"] == "result"


class TestClientDrop:
    def test_client_drops_connection_mid_frame(self):
        svc = ServiceFixture(telemetry=False)
        with svc:
            baseline = svc.stats()["open_connections"]
            with svc.open_socket() as sock:
                # promise a 1 KiB frame, send half of it, vanish
                sock.sendall(struct.pack(">Q", 1024) + b"x" * 512)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if svc.stats()["open_connections"] <= baseline:
                    break
                time.sleep(0.05)
            # no orphaned socket, and the daemon still serves
            assert svc.stats()["open_connections"] <= baseline
            reply = svc.request(mm1k_sweep_payload(3))
        assert reply["kind"] == "result"

    def test_client_drops_while_request_in_flight(self):
        svc = ServiceFixture(telemetry=False, solve_delay=0.05)
        with svc:
            sock = svc.open_socket()
            from tests.sweep.service.fixture import send_frame
            from repro.sweep.distributed.protocol import PROTOCOL_VERSION

            send_frame(sock, {
                "kind": "request", "version": PROTOCOL_VERSION,
                **mm1k_sweep_payload(8),
            })
            # give the request time to be admitted, then vanish
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if svc.stats()["inflight"] >= 1:
                    break
                time.sleep(0.01)
            sock.close()
            # the abandoned request still completes server-side and the
            # slot is released — the daemon is not leaked into a stuck
            # inflight state
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = svc.stats()
                if stats["inflight"] == 0:
                    break
                time.sleep(0.05)
            assert stats["inflight"] == 0
            assert svc.request(mm1k_sweep_payload(2))["kind"] == "result"


class TestSigtermDrain:
    def test_sigterm_mid_sweep_finishes_in_flight_and_exits_zero(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        trace = tmp_path / "trace.jsonl"
        with ForkedService(
            "--solve-delay", "0.1",
            "--max-inflight", "1",
            "--journal", str(journal),
            "--trace", str(trace),
        ) as daemon:
            import threading

            slow_reply = {}
            payload = mm1k_sweep_payload(15)

            def slow():
                slow_reply.update(daemon.request(payload, timeout=120))

            thread = threading.Thread(target=slow)
            thread.start()
            # wait until the sweep is actually in flight, then SIGTERM
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                stats = daemon.request({"op": "stats"})["stats"]
                if stats["inflight"] >= 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("sweep never became in-flight")
            daemon.sigterm()
            # new work is refused while draining (listeners stay up
            # until the in-flight sweep finishes)
            refused = None
            try:
                refused = daemon.request(mm1k_sweep_payload(2), timeout=30)
            except (ConnectionError, OSError):
                pass  # listeners already closed — equally acceptable
            thread.join(timeout=60)
            rc = daemon.wait(timeout=60)
        # the in-flight sweep finished completely
        assert slow_reply.get("kind") == "result"
        assert len(slow_reply["rows"]) == 15
        assert slow_reply["errors"] == []
        if refused is not None:
            assert refused["kind"] == "busy"
            assert refused["draining"] is True
        assert rc == 0
        # journal is complete: start … request … drain
        records = [json.loads(x) for x in journal.read_text().splitlines()]
        assert records[0]["event"] == "start"
        assert records[-1]["event"] == "drain"
        assert any(r.get("op") == "sweep" for r in records)
        # trace artifact survives and validates against the schema
        from repro import obs

        recorded = obs.Trace.read_jsonl(str(trace))
        assert any(sp.name == "service.request" for sp in recorded.spans)

    def test_sigterm_idle_daemon_exits_zero(self):
        with ForkedService() as daemon:
            assert daemon.request({"op": "ping"})["ok"] is True
            daemon.sigterm()
            rc = daemon.wait(timeout=60)
        assert rc == 0

    def test_sigterm_with_workers_reaps_children(self, tmp_path):
        with ForkedService("--workers", "2") as daemon:
            stats = daemon.request({"op": "stats"})["stats"]
            pids = stats["workers"]["pids"]
            assert len(pids) == 2
            reply = daemon.request(mm1k_sweep_payload(4))
            assert reply["kind"] == "result"
            daemon.sigterm()
            rc = daemon.wait(timeout=60)
        assert rc == 0
        for pid in pids:  # shards did not outlive the daemon
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
