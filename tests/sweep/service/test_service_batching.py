"""Cross-request micro-batching: coalescing, isolation, exactly-once.

The batching window replaces the per-template inline lock: concurrent
same-fingerprint requests must coalesce into fewer solve flights (one
stacked solve on a batch-capable backend), every request must still get
exactly its own rows bit-for-bit, a misconfigured request must fail
alone, and the per-point span accounting must stay exactly-once however
many requests shared a flight.
"""

import numpy as np

from repro.core.params import CPUModelParams
from repro.sweep import BatchedPhaseTypeBackend, SweepGrid, SweepRunner
from tests.sweep.service.fixture import (
    ServiceFixture,
    mm1k_sweep_payload,
)
from tests.sweep.service.test_service_concurrency import _fan_out

N_CLIENTS = 8
N_POINTS = 5

#: generous enough that all the fan-out threads land inside one window
WINDOW_MS = 100.0


def batched_payload(metrics=("power", "fraction:standby"), axes=None):
    return {
        "op": "sweep",
        "model": {"kind": "phase-type-batched", "stages": 2, "n_max": 10},
        "axes": list(axes or ["T=0.1:1.0:4"]),
        "metrics": list(metrics),
    }


class TestCoalescing:
    def test_window_coalesces_concurrent_requests(self):
        svc = ServiceFixture(
            max_inflight=N_CLIENTS,
            max_pending=N_CLIENTS,
            batch_window_ms=WINDOW_MS,
        )
        with svc:
            replies = _fan_out(
                svc, [mm1k_sweep_payload(N_POINTS)] * N_CLIENTS
            )
            stats = svc.stats()
        assert all(r["kind"] == "result" for r in replies)
        for reply in replies[1:]:
            assert reply["rows"] == replies[0]["rows"]
        batching = stats["batching"]
        assert batching["window_ms"] == WINDOW_MS
        assert batching["flights"] < N_CLIENTS
        assert batching["coalesced"] == N_CLIENTS - batching["flights"]
        # one service.batch span per flight...
        assert len(svc.spans("service.batch")) == batching["flights"]
        # ...and the per-point accounting stays exactly-once per request
        assert len(svc.spans("sweep.point")) == N_CLIENTS * N_POINTS

    def test_window_zero_still_coalesces_backlog(self):
        """With no window at all, requests that queue while a flight is
        solving depart together on the next one."""
        svc = ServiceFixture(
            telemetry=False,
            max_inflight=N_CLIENTS,
            max_pending=N_CLIENTS,
            batch_window_ms=0.0,
            solve_delay=0.02,
        )
        with svc:
            replies = _fan_out(
                svc, [mm1k_sweep_payload(N_POINTS)] * N_CLIENTS
            )
            stats = svc.stats()
        assert all(r["kind"] == "result" for r in replies)
        batching = stats["batching"]
        assert batching["flights"] < N_CLIENTS
        assert batching["coalesced"] == N_CLIENTS - batching["flights"]

    def test_stacked_flight_matches_serial_bitwise(self):
        """Coalesced batch-capable requests are solved as one stacked
        run; every request's rows must equal a solo serial sweep of the
        same grid, bit for bit."""
        metrics = ["power", "fraction:standby"]
        grid = SweepGrid.from_specs(["T=0.1:1.0:4"])
        reference = SweepRunner(
            BatchedPhaseTypeBackend(
                CPUModelParams.paper_defaults(), stages=2, n_max=10
            ),
            metrics,
        ).run(grid)
        want = [
            [row[m] for m in metrics] for row in reference.rows()
        ]
        svc = ServiceFixture(
            max_inflight=4, max_pending=4, batch_window_ms=WINDOW_MS
        )
        with svc:
            replies = _fan_out(svc, [batched_payload(metrics)] * 4)
            stats = svc.stats()
        assert all(r["kind"] == "result" for r in replies)
        for reply in replies:
            assert reply["errors"] == []
            np.testing.assert_array_equal(
                np.array(reply["rows"]), np.array(want)
            )
        assert stats["batching"]["flights"] < 4


class TestFlightIsolation:
    def test_failing_request_leaves_coalesced_siblings_intact(self):
        """One misconfigured request inside a flight fails alone with
        bad-request; its siblings still get complete results."""
        good = batched_payload()
        bad = batched_payload(metrics=["power", "fraction:nosuchstate"])
        svc = ServiceFixture(
            telemetry=False,
            max_inflight=4,
            max_pending=4,
            batch_window_ms=WINDOW_MS,
        )
        with svc:
            replies = _fan_out(svc, [good, bad, good, good])
        assert [r["kind"] for r in replies] == [
            "result", "error", "result", "result",
        ]
        assert replies[1]["code"] == "bad-request"
        assert "nosuchstate" in replies[1]["message"]
        for reply in (replies[0], replies[2], replies[3]):
            assert reply["errors"] == []
            assert reply["rows"] == replies[0]["rows"]

    def test_gspn_sibling_isolation_without_batch_support(self):
        """The same isolation on a non-batch backend (per-request loop)."""
        good = mm1k_sweep_payload(3)
        bad = dict(
            mm1k_sweep_payload(3), metrics=["mean_tokens:nosuchplace"]
        )
        svc = ServiceFixture(
            telemetry=False,
            max_inflight=4,
            max_pending=4,
            batch_window_ms=WINDOW_MS,
        )
        with svc:
            replies = _fan_out(svc, [good, bad, good])
        assert [r["kind"] for r in replies] == ["result", "error", "result"]
        assert replies[1]["code"] == "bad-request"
        assert replies[0]["rows"] == replies[2]["rows"]
