"""Concurrency regressions: single-flight preparation and span accounting.

The issue's acceptance test lives here: N concurrent clients sweeping
the *same* model must trigger exactly one ``prepare.explore`` (the
template is prepared once and shared), while different models prepare
independently.  The assertions read the fixture trace after drain, which
is only well-defined because every thread-side piece of work records
into a private trace whose segment is merged on the event loop exactly
once.
"""

import threading

import numpy as np

from tests.sweep.service.fixture import (
    MM1K_METRICS,
    ServiceFixture,
    mm1k_sweep_payload,
)

N_CLIENTS = 8
N_POINTS = 5


def _fan_out(svc, payloads):
    replies = [None] * len(payloads)

    def call(i, payload):
        replies[i] = svc.request(payload)

    threads = [
        threading.Thread(target=call, args=(i, p))
        for i, p in enumerate(payloads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return replies


class TestSingleFlightPreparation:
    def test_eight_clients_same_model_one_explore(self):
        svc = ServiceFixture(max_inflight=N_CLIENTS, max_pending=N_CLIENTS)
        with svc:
            replies = _fan_out(
                svc, [mm1k_sweep_payload(N_POINTS)] * N_CLIENTS
            )
            stats = svc.stats()
        assert all(r["kind"] == "result" for r in replies)
        # every reply is the same table (same model, same grid)
        for reply in replies[1:]:
            assert reply["rows"] == replies[0]["rows"]
        # the tentpole acceptance: one explore, however many clients
        assert len(svc.spans("prepare.explore")) == 1
        assert len(svc.spans("service.prepare")) == 1
        # all eight requests landed a request span with the fingerprint
        request_spans = svc.spans("service.request")
        assert len(request_spans) == N_CLIENTS
        fingerprints = {sp.attrs["fingerprint"] for sp in request_spans}
        assert fingerprints == {replies[0]["fingerprint"]}
        assert all(sp.attrs["status"] == "ok" for sp in request_spans)
        # every point of every request was solved (none skipped, none
        # double-merged): 8 requests x 5 points
        assert len(svc.spans("sweep.point")) == N_CLIENTS * N_POINTS
        # cache accounting agrees: one build, everyone else hit or shared
        assert stats["cache"]["builds"] == 1
        assert stats["cache"]["hits"] + stats["cache"]["shared"] == (
            N_CLIENTS - 1
        )

    def test_two_models_prepare_independently(self):
        svc = ServiceFixture(max_inflight=4, max_pending=8)
        with svc:
            replies = _fan_out(
                svc,
                [mm1k_sweep_payload(3, buffer=10)] * 2
                + [mm1k_sweep_payload(3, buffer=15)] * 2,
            )
        assert all(r["kind"] == "result" for r in replies)
        assert replies[0]["fingerprint"] != replies[2]["fingerprint"]
        assert len(svc.spans("prepare.explore")) == 2
        assert len(svc.spans("service.prepare")) == 2

    def test_concurrent_requests_share_one_build_in_flight(self):
        """The sharing must happen *while* the build is in flight, not
        just via the LRU afterwards — solve_delay can't produce this
        interleaving, so assert via the shared counter under real
        concurrency."""
        svc = ServiceFixture(
            telemetry=False, max_inflight=N_CLIENTS, max_pending=N_CLIENTS
        )
        with svc:
            _fan_out(svc, [mm1k_sweep_payload(2)] * N_CLIENTS)
            stats = svc.stats()
        assert stats["cache"]["builds"] == 1
        # hits + shared covers the other seven, whatever the interleaving
        assert stats["cache"]["hits"] + stats["cache"]["shared"] == 7


class TestQueueTelemetry:
    def test_queue_depth_gauge_high_water_mark(self):
        svc = ServiceFixture(
            max_inflight=1, max_pending=4, solve_delay=0.05
        )
        with svc:
            replies = _fan_out(svc, [mm1k_sweep_payload(3)] * 4)
        assert all(r["kind"] == "result" for r in replies)
        assert svc.trace is not None
        depth_max = svc.trace.gauges.get("service.queue.depth.max", 0)
        assert depth_max >= 1  # somebody actually queued
        # the instantaneous gauge drained back to zero
        assert svc.trace.gauges.get("service.queue.depth") == 0


class TestPoolModeAccounting:
    def test_pool_mode_exactly_once_telemetry(self):
        """Worker mode: rows and spans merge exactly once per point even
        with concurrent requests sharing two workers."""
        svc = ServiceFixture(n_workers=2, max_inflight=2, max_pending=4)
        with svc:
            replies = _fan_out(svc, [mm1k_sweep_payload(N_POINTS)] * 4)
        assert all(r["kind"] == "result" for r in replies)
        rows = np.array(replies[0]["rows"])
        for reply in replies[1:]:
            assert np.array_equal(np.array(reply["rows"]), rows)
        # template was prepared once per *worker* at most (shipped on
        # demand), and exactly once in the service itself
        assert len(svc.spans("service.prepare")) == 1
        worker_prepares = svc.spans("service.worker.template")
        assert 1 <= len(worker_prepares) <= 2
        # one sweep.point span per stored row, never double-merged
        assert len(svc.spans("sweep.point")) == 4 * N_POINTS
        assert len(svc.spans("service.request")) == 4
