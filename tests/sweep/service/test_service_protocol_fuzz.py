"""Protocol fuzz & negative tests: garbage in, clean rejects out.

Every case feeds the daemon malformed input — truncated frames, absurd
length prefixes, non-pickle bytes, bad HTTP — and asserts the *same two
things*: the offending connection gets a clean reject (an ``error``
reply or a 4xx) or a clean close, and the daemon still serves a
well-formed request afterwards.  No tracebacks, no dead event loop.

One daemon instance serves the whole module (class-scoped fixtures):
surviving the previous case *is* part of the next case's setup.
"""

import socket
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sweep.distributed.protocol import MAX_FRAME_BYTES
from tests.sweep.service.fixture import (
    ServiceFixture,
    exchange_on,
    mm1k_sweep_payload,
    recv_frame,
    send_frame,
)


@pytest.fixture(scope="module")
def svc():
    with ServiceFixture(telemetry=False) as fixture:
        yield fixture


def assert_connection_closed(sock: socket.socket) -> None:
    """The peer must close; give it a moment, then expect EOF."""
    sock.settimeout(10)
    try:
        data = sock.recv(1 << 16)
    except (ConnectionError, socket.timeout):
        return
    assert data == b"", f"expected EOF, got {len(data)} byte(s)"


def assert_still_serving(svc: ServiceFixture) -> None:
    assert svc.request({"op": "ping"})["ok"] is True


class TestPickleChannelFuzz:
    def test_truncated_frame(self, svc):
        with svc.open_socket() as sock:
            sock.sendall(struct.pack(">Q", 4096) + b"y" * 100)
            sock.shutdown(socket.SHUT_WR)
            assert_connection_closed(sock)
        assert_still_serving(svc)

    def test_oversized_length_prefix(self, svc):
        with svc.open_socket() as sock:
            sock.sendall(struct.pack(">Q", MAX_FRAME_BYTES + 1))
            reply = recv_frame(sock)
            assert reply["kind"] == "error"
            assert reply["code"] == "bad-request"
            assert_connection_closed(sock)
        assert_still_serving(svc)

    def test_ludicrous_length_prefix(self, svc):
        with svc.open_socket() as sock:
            sock.sendall(struct.pack(">Q", 1 << 40))
            reply = recv_frame(sock)
            assert reply["kind"] == "error"
        assert_still_serving(svc)

    def test_non_pickle_payload(self, svc):
        junk = b"GET / HTTP/1.1\r\n\r\n"  # speaking HTTP at the pickle port
        with svc.open_socket() as sock:
            sock.sendall(struct.pack(">Q", len(junk)) + junk)
            reply = recv_frame(sock)
            assert reply["kind"] == "error"
            assert reply["code"] == "bad-request"
        assert_still_serving(svc)

    def test_pickled_non_dict(self, svc):
        import pickle

        payload = pickle.dumps([1, 2, 3])
        with svc.open_socket() as sock:
            sock.sendall(struct.pack(">Q", len(payload)) + payload)
            reply = recv_frame(sock)
            assert reply["kind"] == "error"
        assert_still_serving(svc)

    def test_well_formed_frame_wrong_kind(self, svc):
        with svc.open_socket() as sock:
            send_frame(sock, {"kind": "chunk", "indices": [0]})
            reply = recv_frame(sock)
            assert reply["kind"] == "error"
            assert "expected a request" in reply["message"]
        assert_still_serving(svc)

    def test_one_shot_worker_hello_rejected(self, svc):
        from repro.sweep.distributed.protocol import PROTOCOL_VERSION

        with svc.open_socket() as sock:
            send_frame(sock, {
                "kind": "hello", "version": PROTOCOL_VERSION,
                "worker": "host:1",
            })
            reply = recv_frame(sock)
            assert reply["kind"] == "reject"
            assert "coordinator" in reply["message"]
        assert_still_serving(svc)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(junk=st.binary(min_size=1, max_size=256))
    def test_random_bytes_never_kill_the_daemon(self, svc, junk):
        with svc.open_socket() as sock:
            sock.sendall(junk)
            sock.shutdown(socket.SHUT_WR)
            # whatever happens — error reply, EOF — the socket must end
            sock.settimeout(10)
            try:
                while sock.recv(1 << 16):
                    pass
            except (ConnectionError, socket.timeout):
                pass
        assert_still_serving(svc)


class TestHttpFuzz:
    def test_unknown_route_404(self, svc):
        status, body = svc.http("GET", "/v1/teleport")
        assert status == 404
        assert "error" in body

    def test_wrong_verb_405_with_allow(self, svc):
        import http.client

        host, port = svc.http_address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("GET", "/v1/sweep")
            resp = conn.getresponse()
            assert resp.status == 405
            assert resp.getheader("Allow") == "POST"
            resp.read()
        finally:
            conn.close()
        status, _ = svc.http("POST", "/healthz", {})
        assert status == 405

    def test_invalid_json_body_400(self, svc):
        import http.client

        host, port = svc.http_address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("POST", "/v1/sweep", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            assert resp.status == 400
            resp.read()
        finally:
            conn.close()
        assert_still_serving(svc)

    def test_oversized_body_413(self, svc):
        host, port = svc.http_address
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(
                b"POST /v1/sweep HTTP/1.1\r\n"
                b"Content-Length: 99999999\r\n\r\n"
            )
            data = sock.recv(1 << 16)
        assert b"413" in data.split(b"\r\n", 1)[0]
        assert_still_serving(svc)

    def test_garbage_request_line_400(self, svc):
        host, port = svc.http_address
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(b"\x00\x01\x02 garbage\r\n\r\n")
            data = sock.recv(1 << 16)
        assert b"400" in data.split(b"\r\n", 1)[0]
        assert_still_serving(svc)

    def test_chunked_encoding_unsupported_400(self, svc):
        host, port = svc.http_address
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(
                b"POST /v1/sweep HTTP/1.1\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
            )
            data = sock.recv(1 << 16)
        assert b"400" in data.split(b"\r\n", 1)[0]

    def test_bad_op_in_body_mismatch_400(self, svc):
        status, body = svc.http("POST", "/v1/sweep", {"op": "steady"})
        assert status == 400
        assert "does not match route" in body["error"]

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(junk=st.binary(min_size=1, max_size=200))
    def test_random_bytes_at_http_port(self, svc, junk):
        host, port = svc.http_address
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(junk)
            sock.shutdown(socket.SHUT_WR)
            sock.settimeout(10)
            try:
                while sock.recv(1 << 16):
                    pass
            except (ConnectionError, socket.timeout):
                pass
        assert_still_serving(svc)


class TestDaemonSurvivedItAll:
    def test_full_request_still_works_after_the_gauntlet(self, svc):
        reply = svc.request(mm1k_sweep_payload(3))
        assert reply["kind"] == "result"
        assert len(reply["rows"]) == 3
        with svc.open_socket() as sock:
            assert exchange_on(sock, {"op": "ping"})["ok"] is True
