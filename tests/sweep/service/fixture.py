"""Reusable harness for service tests: in-process and forked daemons.

:class:`ServiceFixture` runs a :class:`~repro.sweep.service.SweepService`
on a background thread (its own event loop) and gives tests synchronous
helpers: pickle requests, raw sockets for protocol fuzzing, HTTP calls,
and a deterministic drain.  The thread activates the fixture's trace
*before* ``asyncio.run`` so every handler task on the loop records into
it — the same contract the CLI establishes — which is what lets tests
assert span counts (``prepare.explore == 1``) after drain.

:class:`ForkedService` runs the real ``python -m repro serve`` CLI in a
subprocess for the tests that need true process semantics: SIGTERM
delivery, exit codes, journal/trace files surviving the process.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.sweep.service import SweepService, request_over_socket
from repro.sweep.service.session import recv_frame, send_frame

REPO_ROOT = Path(__file__).resolve().parents[3]

#: a small model every test can share: 11 states, solves in microseconds
MM1K_MODEL = {"net": "mm1k", "buffer": 10}
MM1K_METRICS = ["mean_tokens:queue", "throughput:serve"]


def mm1k_sweep_payload(n_points: int = 4, **model_extra: Any) -> Dict[str, Any]:
    return {
        "op": "sweep",
        "model": {**MM1K_MODEL, **model_extra},
        "axes": [f"arrive=0.2:1.6:{n_points}"],
        "metrics": list(MM1K_METRICS),
    }


class ServiceFixture:
    """One in-process service daemon on a background thread."""

    def __init__(self, telemetry: bool = True, **service_kwargs: Any) -> None:
        self.telemetry = telemetry
        self.trace: Optional[obs.Trace] = None
        self.service = SweepService(**service_kwargs)
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._thread_main, name="service-fixture", daemon=True
        )
        self._error: Optional[BaseException] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ServiceFixture":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError(f"service failed to start: {self._error}")
        if self._error is not None:
            raise RuntimeError(f"service failed to start: {self._error}")
        return self

    def _thread_main(self) -> None:
        token = None
        if self.telemetry:
            self.trace = obs.Trace("service-test")
            token = obs.activate(self.trace)
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surfaced by start()/drain()
            self._error = exc
            self._ready.set()
        finally:
            if token is not None:
                obs.deactivate(token)

    async def _amain(self) -> None:
        self.loop = asyncio.get_running_loop()
        await self.service.start()
        self._ready.set()
        await self.service.serve_until_drained()

    def drain(self) -> None:
        """Graceful drain, as SIGTERM would; joins the service thread."""
        assert self.loop is not None
        self.loop.call_soon_threadsafe(self.service.request_drain)
        self._thread.join(timeout=60)
        if self._thread.is_alive():
            raise RuntimeError("service did not drain within 60 s")
        if self._error is not None:
            raise RuntimeError(f"service thread failed: {self._error}")

    def __enter__(self) -> "ServiceFixture":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        if self._thread.is_alive():
            self.drain()

    # -- client helpers (all synchronous) ----------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self.service.address

    @property
    def http_address(self) -> Tuple[str, int]:
        return self.service.http_address

    def request(self, payload: Dict[str, Any], timeout: float = 60.0) -> Dict[str, Any]:
        host, port = self.service.address
        return request_over_socket(host, port, payload, timeout=timeout)

    def open_socket(self, timeout: float = 30.0) -> socket.socket:
        """A raw connection to the pickle port (for fuzz/multi-request)."""
        return socket.create_connection(self.service.address, timeout=timeout)

    def http(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: float = 60.0,
    ) -> Tuple[int, Dict[str, Any]]:
        host, port = self.service.http_address
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            payload = None if body is None else json.dumps(body)
            conn.request(method, path, body=payload,
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            raw = resp.read()
            try:
                decoded = json.loads(raw)
            except ValueError:
                decoded = {"raw": raw.decode(errors="replace")}
            return resp.status, decoded
        finally:
            conn.close()

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})["stats"]

    def spans(self, name: str) -> List[Any]:
        assert self.trace is not None, "fixture started with telemetry=False"
        return [sp for sp in self.trace.spans if sp.name == name]


def exchange_on(sock: socket.socket, payload: Dict[str, Any]) -> Dict[str, Any]:
    """One request/reply cycle on an already-open pickle socket."""
    from repro.sweep.distributed.protocol import PROTOCOL_VERSION

    send_frame(sock, {"kind": "request", "version": PROTOCOL_VERSION, **payload})
    return recv_frame(sock)


class ForkedService:
    """The real ``python -m repro serve`` CLI in a subprocess."""

    _ADDRESS_RE = re.compile(
        r"\[service listening on (\S+):(\d+) \(pickle\) and "
        r"http://(\S+):(\d+)"
    )

    def __init__(self, *extra_args: str) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--bind", "127.0.0.1:0", *extra_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            cwd=str(REPO_ROOT),
            env=env,
        )
        self.host = self.http_host = ""
        self.port = self.http_port = 0

    def start(self) -> "ForkedService":
        assert self.proc.stdout is not None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"serve exited early (rc={self.proc.poll()})"
                )
            match = self._ADDRESS_RE.search(line)
            if match:
                self.host, self.port = match.group(1), int(match.group(2))
                self.http_host, self.http_port = (
                    match.group(3), int(match.group(4))
                )
                return self
        raise RuntimeError("serve never printed its listen address")

    def request(self, payload: Dict[str, Any], timeout: float = 60.0) -> Dict[str, Any]:
        return request_over_socket(self.host, self.port, payload, timeout=timeout)

    def sigterm(self) -> None:
        self.proc.send_signal(signal.SIGTERM)

    def wait(self, timeout: float = 60.0) -> int:
        rc = self.proc.wait(timeout=timeout)
        if self.proc.stdout is not None:
            self.proc.stdout.read()  # drain to let the pipe close
        return rc

    def __enter__(self) -> "ForkedService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        if self.proc.poll() is None:
            self.sigterm()
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)
