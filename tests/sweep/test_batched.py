"""Batched phase-type sweeps: stacked assembly, parity, isolation.

The batched backend must be *invisible* in the results: every regime
(dense LAPACK, pre-permuted block-diagonal LU, batched GMRES) agrees
with the pointwise backend to 1e-9 or better, chunk boundaries never
change which systems are solved, and a bad point fails alone — whether
it dies at parameter binding, inside the stacked factorisation, or at
normalisation time.
"""

import pickle

import numpy as np
import pytest
from scipy import sparse

from repro import obs
from repro.core.params import CPUModelParams
from repro.core.phase_type import stacked_rate_data
from repro.markov.ctmc import (
    NumericalSolveError,
    SolverCache,
    batched_dense_solve,
    batched_gmres_solve,
    batched_lu_solve,
    block_diag_pattern,
    stacked_block_diag,
)
from repro.sweep import (
    BatchedPhaseTypeBackend,
    PhaseTypeBackend,
    SweepGrid,
    SweepRunner,
    make_backend,
)
from repro.sweep.backends.batched import (
    BATCH_MEMORY_BUDGET,
    DENSE_BLOCK_LIMIT,
    LU_FILL_FUDGE,
    _finalize_pi_stack,
)

PARAMS = CPUModelParams.paper_defaults(T=0.3, D=0.05)
METRICS = ["power", "fraction:standby", "mean_jobs", "truncation_mass"]
GRID_24 = SweepGrid.from_specs(["T=0.05:2.0:24"])
GRID_200 = SweepGrid.from_specs(["T=0.05:2.0:200"])


def metric_matrix(result, metrics=METRICS):
    return np.array([[row[m] for m in metrics] for row in result.rows()])


def random_block_stack(rng, n=6, n_blocks=5, density=0.6):
    """A random well-conditioned CSC pattern + per-block data stack."""
    mask = rng.random((n, n)) < density
    np.fill_diagonal(mask, True)  # keep blocks comfortably non-singular
    base = sparse.csc_matrix(mask.astype(float))
    data_stack = rng.standard_normal((n_blocks, base.nnz))
    data_stack[:, np.asarray(base.indices) == np.arange(n).repeat(
        np.diff(base.indptr)
    )] += 4.0 * n  # diagonal dominance
    return base, data_stack


class TestStackedKernels:
    """The ctmc-level batched primitives against scipy references."""

    def test_block_diag_pattern_matches_scipy(self):
        rng = np.random.default_rng(7)
        base, data_stack = random_block_stack(rng)
        bd = stacked_block_diag(base.indptr, base.indices, data_stack)
        blocks = [
            sparse.csc_matrix(
                (data_stack[k], base.indices, base.indptr),
                shape=base.shape,
            )
            for k in range(len(data_stack))
        ]
        ref = sparse.block_diag(blocks, format="csc")
        assert (bd != ref).nnz == 0

    def test_precomputed_pattern_round_trips(self):
        rng = np.random.default_rng(8)
        base, data_stack = random_block_stack(rng, n_blocks=3)
        pattern = block_diag_pattern(base.indptr, base.indices, 3)
        bd = stacked_block_diag(
            base.indptr, base.indices, data_stack, pattern=pattern
        )
        assert bd.shape == (3 * base.shape[0], 3 * base.shape[0])
        assert bd.nnz == 3 * base.nnz

    def test_stacked_block_diag_rejects_bad_stack(self):
        rng = np.random.default_rng(9)
        base, data_stack = random_block_stack(rng)
        with pytest.raises(ValueError, match="2-D"):
            stacked_block_diag(base.indptr, base.indices, data_stack[0])
        with pytest.raises(ValueError, match="entries per block"):
            stacked_block_diag(
                base.indptr, base.indices, data_stack[:, :-1]
            )

    def test_batched_lu_matches_per_block_solves(self):
        rng = np.random.default_rng(10)
        base, data_stack = random_block_stack(rng, n=8, n_blocks=6)
        n = base.shape[0]
        b_stack = rng.standard_normal((6, n))
        bd = stacked_block_diag(base.indptr, base.indices, data_stack)
        x_stack = batched_lu_solve(bd, b_stack)
        for k in range(6):
            A_k = sparse.csc_matrix(
                (data_stack[k], base.indices, base.indptr), shape=(n, n)
            )
            np.testing.assert_allclose(
                A_k @ x_stack[k], b_stack[k], atol=1e-10
            )

    def test_batched_dense_matches_per_block_solves(self):
        rng = np.random.default_rng(11)
        A_stack = rng.standard_normal((5, 7, 7))
        A_stack += 7.0 * np.eye(7)
        b_stack = rng.standard_normal((5, 7))
        x_stack = batched_dense_solve(A_stack, b_stack)
        for k in range(5):
            np.testing.assert_allclose(
                np.linalg.solve(A_stack[k], b_stack[k]), x_stack[k]
            )

    def test_batched_dense_singular_raises_solve_error(self):
        A_stack = np.zeros((2, 3, 3))
        A_stack[0] = np.eye(3)  # block 1 stays all-zero: singular
        with pytest.raises(NumericalSolveError):
            batched_dense_solve(A_stack, np.ones((2, 3)))

    def test_batched_gmres_matches_direct(self):
        rng = np.random.default_rng(12)
        base, data_stack = random_block_stack(rng, n=10, n_blocks=4)
        n = base.shape[0]
        b_stack = rng.standard_normal((4, n))
        bd = stacked_block_diag(base.indptr, base.indices, data_stack)
        A_mid = sparse.csc_matrix(
            (data_stack[2], base.indices, base.indptr), shape=(n, n)
        )
        x_stack, iterations = batched_gmres_solve(
            bd, b_stack, A_block=A_mid, tol=1e-12, cache=SolverCache()
        )
        assert iterations >= 1
        direct = sparse.linalg.spsolve(bd.tocsc(), b_stack.ravel())
        np.testing.assert_allclose(
            x_stack.ravel(), direct, atol=1e-8
        )

    def test_stacked_rate_data_is_rowwise_affine_template(self):
        backend = PhaseTypeBackend(PARAMS, stages=2, n_max=6)
        tpl = backend.prepare()
        rate_stack = np.vstack(
            [
                backend._rate_vector(backend._point_params({"T": t}))
                for t in (0.1, 0.5, 1.3)
            ]
        )
        stack = stacked_rate_data(tpl.A_G, tpl.A_c0, rate_stack)
        for k in range(3):
            np.testing.assert_array_equal(
                stack[k], tpl.A_G @ rate_stack[k] + tpl.A_c0
            )

    def test_stacked_rate_data_rejects_bad_shapes(self):
        backend = PhaseTypeBackend(PARAMS, stages=2, n_max=6)
        tpl = backend.prepare()
        with pytest.raises(ValueError, match="rate_stack"):
            stacked_rate_data(tpl.A_G, tpl.A_c0, np.ones(4))
        with pytest.raises(ValueError, match="rate_stack"):
            stacked_rate_data(tpl.A_G, tpl.A_c0, np.ones((3, 5)))


class TestBatchedParity:
    """Acceptance: batched rows == pointwise rows, every solve regime."""

    @pytest.mark.parametrize("grid", [GRID_24, GRID_200], ids=["24pt", "200pt"])
    def test_dense_regime_parity(self, grid):
        """stages=2/n_max=10 -> n=33: the batched-LAPACK small-block path."""
        kwargs = dict(stages=2, n_max=10)
        pointwise = SweepRunner(
            PhaseTypeBackend(PARAMS, **kwargs), METRICS
        ).run(grid)
        batched = SweepRunner(
            BatchedPhaseTypeBackend(PARAMS, **kwargs), METRICS
        ).run(grid)
        assert batched.n_failed == pointwise.n_failed == 0
        np.testing.assert_allclose(
            metric_matrix(batched), metric_matrix(pointwise), atol=1e-9
        )

    def test_sparse_lu_regime_parity(self):
        """stages=8/n_max=30 -> n=279: the block-diagonal splu path."""
        kwargs = dict(stages=8, n_max=30)
        assert PhaseTypeBackend(PARAMS, **kwargs).n_states > DENSE_BLOCK_LIMIT
        pointwise = SweepRunner(
            PhaseTypeBackend(PARAMS, **kwargs), METRICS
        ).run(GRID_24)
        batched = SweepRunner(
            BatchedPhaseTypeBackend(PARAMS, **kwargs), METRICS
        ).run(GRID_24)
        np.testing.assert_allclose(
            metric_matrix(batched), metric_matrix(pointwise), atol=1e-9
        )

    def test_gmres_regime_parity(self):
        """Forced iterative method: batched GMRES with shared ILU."""
        kwargs = dict(stages=8, n_max=30, method="gmres")
        pointwise = SweepRunner(
            PhaseTypeBackend(PARAMS, **kwargs), METRICS
        ).run(GRID_24)
        batched = SweepRunner(
            BatchedPhaseTypeBackend(PARAMS, **kwargs), METRICS
        ).run(GRID_24)
        np.testing.assert_allclose(
            metric_matrix(batched), metric_matrix(pointwise), atol=1e-9
        )

    def test_power_method_falls_back_pointwise(self):
        """``power`` has no stacked form; results still match exactly."""
        kwargs = dict(stages=2, n_max=8, method="power")
        pointwise = SweepRunner(
            PhaseTypeBackend(PARAMS, **kwargs), ["power"]
        ).run(SweepGrid({"T": [0.2, 0.6, 1.0]}))
        batched = SweepRunner(
            BatchedPhaseTypeBackend(PARAMS, **kwargs), ["power"]
        ).run(SweepGrid({"T": [0.2, 0.6, 1.0]}))
        np.testing.assert_array_equal(
            metric_matrix(batched, ["power"]),
            metric_matrix(pointwise, ["power"]),
        )

    def test_pool_path_matches_serial_bitwise(self):
        serial = SweepRunner(
            BatchedPhaseTypeBackend(PARAMS, stages=2, n_max=10), METRICS
        ).run(GRID_24)
        pooled = SweepRunner(
            BatchedPhaseTypeBackend(PARAMS, stages=2, n_max=10),
            METRICS,
            backend="pool",
            n_workers=2,
        ).run(GRID_24)
        np.testing.assert_array_equal(
            metric_matrix(pooled), metric_matrix(serial)
        )


class TestBatchSizing:
    """``--batch-size`` chunking: boundaries shift, results don't."""

    @pytest.mark.parametrize("batch_size", [5, 7, 24, 1000])
    def test_chunk_boundaries_are_bit_invisible(self, batch_size):
        """24 points under uneven/oversized batches == auto, bit for bit."""
        auto = SweepRunner(
            BatchedPhaseTypeBackend(PARAMS, stages=2, n_max=10), METRICS
        ).run(GRID_24)
        chunked = SweepRunner(
            BatchedPhaseTypeBackend(
                PARAMS, stages=2, n_max=10, batch_size=batch_size
            ),
            METRICS,
        ).run(GRID_24)
        np.testing.assert_array_equal(
            metric_matrix(chunked), metric_matrix(auto)
        )

    def test_batch_size_one_is_the_pointwise_path(self):
        """``--batch-size 1`` degrades to per-point solves, bit-identical
        to the plain pointwise backend."""
        pointwise = SweepRunner(
            PhaseTypeBackend(PARAMS, stages=2, n_max=10), METRICS
        ).run(GRID_24)
        single = SweepRunner(
            BatchedPhaseTypeBackend(
                PARAMS, stages=2, n_max=10, batch_size=1
            ),
            METRICS,
        ).run(GRID_24)
        np.testing.assert_array_equal(
            metric_matrix(single), metric_matrix(pointwise)
        )

    def test_explicit_batch_size_clamps_to_grid(self):
        backend = BatchedPhaseTypeBackend(
            PARAMS, stages=2, n_max=10, batch_size=1000
        )
        assert backend.resolve_batch_size(24) == 24
        assert backend.resolve_batch_size(0) == 1

    def test_auto_policy_is_memory_budgeted(self):
        backend = BatchedPhaseTypeBackend(PARAMS, stages=8, n_max=30)
        tpl = backend.prepare()
        assert tpl.n_states > DENSE_BLOCK_LIMIT
        per_point = len(tpl.A_c0) * 8 * LU_FILL_FUDGE
        expected = BATCH_MEMORY_BUDGET // per_point
        assert backend.resolve_batch_size(10**9) == expected
        # a small grid is never padded, a huge template never starves
        assert backend.resolve_batch_size(24) == 24

    def test_auto_policy_accounts_for_dense_cube(self):
        """Small blocks budget the (B, n, n) dense stack, not just nnz."""
        backend = BatchedPhaseTypeBackend(PARAMS, stages=2, n_max=10)
        tpl = backend.prepare()
        assert tpl.n_states <= DENSE_BLOCK_LIMIT
        per_point = max(
            len(tpl.A_c0) * 8 * LU_FILL_FUDGE,
            tpl.n_states**2 * 8 * 3,
        )
        assert backend.resolve_batch_size(10**9) == (
            BATCH_MEMORY_BUDGET // per_point
        )

    @pytest.mark.parametrize("bad", [0, -3, 2.5, True, "huge"])
    def test_bad_batch_size_rejected_at_construction(self, bad):
        with pytest.raises(ValueError, match="batch_size"):
            BatchedPhaseTypeBackend(PARAMS, batch_size=bad)

    def test_base_backend_defaults_to_pointwise(self):
        backend = PhaseTypeBackend(PARAMS, stages=2, n_max=8)
        assert not backend.batch_capable
        assert backend.resolve_batch_size(500) == 1
        with pytest.raises(NotImplementedError):
            backend.solve_batch([{"T": 0.3}])


class _NaNRateBackend(BatchedPhaseTypeBackend):
    """Poisons the rate vector of chosen thresholds: the block assembles,
    enters the stack, and must fail *alone* at normalisation time."""

    def __init__(self, *args, poison=(), **kwargs):
        super().__init__(*args, **kwargs)
        self.poison = tuple(poison)

    def _point_params(self, point):
        params = super()._point_params(point)
        self._last_T = float(point.get("T", params.power_down_threshold))
        return params

    def _rate_vector(self, params):
        vec = super()._rate_vector(params)
        if self._last_T in self.poison:
            vec = np.full_like(vec, np.nan)
        return vec


class TestFailureIsolation:
    """One bad point in a batch: NaN row + record, neighbours solve."""

    def test_binding_failures_never_enter_the_stack(self):
        """Zero rates / zero delays fail at parameter binding, alone."""
        points = [{"AR": 2.0}, {"AR": 0.0}, {"AR": 3.0}, {"T": 0.0}]
        result = SweepRunner(
            BatchedPhaseTypeBackend(PARAMS, stages=2, n_max=10),
            ["power"],
            preflight=False,
        ).run(points)
        assert result.failed_indices() == [1, 3]
        rows = result.rows()
        assert np.isnan(rows[1]["power"]) and np.isnan(rows[3]["power"])
        assert np.isfinite(rows[0]["power"])
        assert np.isfinite(rows[2]["power"])
        by_index = {e.index: e for e in result.errors}
        assert by_index[1].stage == "solve"
        assert by_index[1].error_type == "ValueError"
        assert "arrival_rate" in by_index[1].message
        assert "power_up_delay" in by_index[3].message

    def test_nan_block_fails_alone_in_the_stack(self):
        """A non-finite block inside the stacked solve poisons only its
        own row; ``_finalize_pi_stack`` isolates it block-by-block."""
        grid = SweepGrid({"T": [0.2, 0.5, 0.8, 1.1]})
        backend = _NaNRateBackend(
            PARAMS, stages=2, n_max=10, poison=(0.5,)
        )
        result = SweepRunner(backend, ["power"]).run(grid)
        assert result.failed_indices() == [1]
        assert result.errors[0].stage == "solve"
        rows = result.rows()
        assert np.isnan(rows[1]["power"])
        clean = SweepRunner(
            BatchedPhaseTypeBackend(PARAMS, stages=2, n_max=10), ["power"]
        ).run(grid)
        for i in (0, 2, 3):
            assert rows[i]["power"] == clean.rows()[i]["power"]

    def test_stack_solver_crash_falls_back_to_pointwise(self, monkeypatch):
        """If the stacked factorisation itself raises, every point is
        retried pointwise and the sweep still completes clean."""
        backend = BatchedPhaseTypeBackend(PARAMS, stages=2, n_max=10)

        def boom(*args, **kwargs):
            raise NumericalSolveError("stacked factorisation exploded")

        monkeypatch.setattr(backend, "_dense_stack", boom)
        with obs.tracing() as trace:
            result = SweepRunner(backend, ["power"]).run(GRID_24)
        assert result.n_failed == 0
        assert trace.counters["solver.batch.isolation_fallbacks"] >= 1
        clean = SweepRunner(
            PhaseTypeBackend(PARAMS, stages=2, n_max=10), ["power"]
        ).run(GRID_24)
        np.testing.assert_array_equal(
            metric_matrix(result, ["power"]),
            metric_matrix(clean, ["power"]),
        )

    def test_finalize_pi_stack_fast_and_slow_paths(self):
        good = np.array([[0.25, 0.75], [0.5, 1.5]])
        out = _finalize_pi_stack(good)
        np.testing.assert_allclose(out[0], [0.25, 0.75])
        np.testing.assert_allclose(out[1], [0.25, 0.75])
        mixed = np.array([[0.25, 0.75], [np.nan, 1.0], [-0.5, 1.0]])
        out = _finalize_pi_stack(mixed)
        np.testing.assert_allclose(out[0], [0.25, 0.75])
        assert isinstance(out[1], Exception)
        assert isinstance(out[2], Exception)


class TestRunnerIntegration:
    """Spans, counters, registry, pickling: the batch path is observable
    and interchangeable."""

    def test_trace_invariant_one_point_span_per_point(self):
        with obs.tracing() as trace:
            SweepRunner(
                BatchedPhaseTypeBackend(
                    PARAMS, stages=2, n_max=10, batch_size=7
                ),
                ["power"],
            ).run(GRID_24)
        names = [s.name for s in trace.spans]
        assert names.count("sweep.point") == 24
        assert names.count("sweep.batch") == 4  # ceil(24 / 7)
        assert names.count("sweep.assemble") == 4
        assert names.count("solve.batch_dense") == 4
        assert trace.counters["solver.batch.points"] == 24
        assert trace.counters["solver.batch.dense_solves"] == 4

    def test_lu_regime_counters(self):
        with obs.tracing() as trace:
            SweepRunner(
                BatchedPhaseTypeBackend(PARAMS, stages=8, n_max=30),
                ["power"],
            ).run(SweepGrid({"T": [0.2, 0.6]}))
        assert trace.counters["solver.batch.lu_solves"] == 1
        assert trace.counters["solver.batch.points"] == 2

    def test_registry_and_describe(self):
        backend = make_backend(
            "phase-type-batched", params=PARAMS, stages=2, n_max=10
        )
        assert backend.name == "phase-type-batched"
        assert "auto-sized batches" in backend.describe()
        pinned = BatchedPhaseTypeBackend(PARAMS, batch_size=50)
        assert "batches of 50" in pinned.describe()

    def test_backend_survives_pickling_with_warm_cache(self):
        backend = BatchedPhaseTypeBackend(PARAMS, stages=2, n_max=10)
        SweepRunner(backend, ["power"]).run(SweepGrid({"T": [0.2, 0.4]}))
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.name == "phase-type-batched"
        result = SweepRunner(clone, ["power"]).run(
            SweepGrid({"T": [0.2, 0.4]})
        )
        assert result.n_failed == 0

    def test_reset_solver_state_clears_batch_caches(self):
        backend = BatchedPhaseTypeBackend(PARAMS, stages=2, n_max=10)
        SweepRunner(backend, ["power"]).run(GRID_24)
        assert backend._dense_scatter is not None
        backend.reset_solver_state()
        assert backend._dense_scatter is None
        assert backend._bd_patterns == {}


class TestBatchedCLI:
    def test_batched_sweep_runs(self, capsys):
        from repro.experiments.cli import main

        assert main([
            "sweep", "--model", "phase-type", "--batched",
            "--rate", "T=0.2,0.4,0.6", "--stages", "2", "--n-max", "8",
            "--metric", "power",
        ]) == 0
        out = capsys.readouterr().out
        assert "stacked block-diagonal" in out

    def test_explicit_batch_size_flag(self, capsys):
        from repro.experiments.cli import main

        assert main([
            "sweep", "--model", "phase-type", "--batched",
            "--batch-size", "2",
            "--rate", "T=0.2,0.4,0.6", "--stages", "2", "--n-max", "8",
            "--metric", "power",
        ]) == 0
        assert "batches of 2" in capsys.readouterr().out

    def test_batch_size_requires_batched(self, capsys):
        from repro.experiments.cli import main

        assert main([
            "sweep", "--model", "phase-type", "--batch-size", "4",
            "--rate", "T=0.2,0.4",
        ]) == 2
        assert "--batch-size requires --batched" in capsys.readouterr().err

    def test_batched_rejected_off_phase_type(self, capsys):
        from repro.experiments.cli import main

        assert main([
            "sweep", "--model", "renewal", "--batched",
            "--rate", "T=0.2,0.4",
        ]) == 2
        err = capsys.readouterr().err
        assert "--batched" in err and "renewal" in err

    def test_bad_batch_size_value(self, capsys):
        from repro.experiments.cli import main

        assert main([
            "sweep", "--model", "phase-type", "--batched",
            "--batch-size", "zero", "--rate", "T=0.2,0.4",
        ]) == 2
        assert "--batch-size" in capsys.readouterr().err
