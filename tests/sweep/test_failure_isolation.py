"""Per-point failure isolation and chunked fan-out in the sweep runner.

One stiff grid point must never abort a sweep: its row goes NaN, an
error record lands on the result, and the rest of the grid keeps
solving — identically in the serial and pool paths.  The pool hands out
contiguous, axis-ordered chunks (warm starts reset at every boundary)
and a broken pool resumes serially from the unfinished points only.
"""

import math
import pickle
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from typing import List, Mapping

import numpy as np
import pytest

from repro.markov.ctmc import ConvergenceError, SolverCache
from repro.sweep import (
    PointFailure,
    SweepGrid,
    SweepResult,
    SweepRunner,
    build_mm1k_net,
    contiguous_chunks,
    solve_point_row,
)
from repro.sweep.backends import PhaseTypeBackend
from repro.sweep.backends.base import MetricSpec, SweepBackend


class FlakyBackend(SweepBackend):
    """Doubles the ``x`` axis; configurable per-point failures.

    Module-level (hence picklable) so the pool path can ship it.
    """

    name = "flaky"
    steady_kinds = ("value",)

    def __init__(self, fail_at=(), exception="convergence"):
        self.fail_at = tuple(float(v) for v in fail_at)
        self.exception = exception
        self.solved: List[float] = []  # meaningful in-process only

    def _prepare(self):
        return "template"

    def axis_names(self):
        return ["x"]

    def solve(self, point: Mapping[str, float]):
        x = float(point["x"])
        if x in self.fail_at:
            if self.exception == "convergence":
                raise ConvergenceError("gmres", 17, 0.5, 1e-10)
            if self.exception == "singular":
                raise ValueError("steady-state solve produced non-finite entries")
            raise KeyError("configuration bug")
        self.solved.append(x)
        return x

    def _steady_metric(self, solution, spec: MetricSpec) -> float:
        return float(solution) * 2.0


def metric_boom(solution):
    """Callable metric that dies on one specific solution value."""
    if solution == 3.0:
        raise ZeroDivisionError("reward 1/0")
    return float(solution)


class TestSolvePointRow:
    def test_success(self):
        row, failure = solve_point_row(FlakyBackend(), ["value"], {"x": 2.0}, 0)
        assert row == [4.0]
        assert failure is None

    @pytest.mark.parametrize("exception, error_type", [
        ("convergence", "ConvergenceError"),
        ("singular", "ValueError"),
    ])
    def test_solve_failures_isolated(self, exception, error_type):
        model = FlakyBackend(fail_at=[2.0], exception=exception)
        row, failure = solve_point_row(model, ["value"], {"x": 2.0}, 7)
        assert math.isnan(row[0])
        assert failure is not None
        assert failure.index == 7
        assert failure.stage == "solve"
        assert failure.error_type == error_type
        assert failure.point == {"x": 2.0}

    def test_configuration_errors_propagate(self):
        model = FlakyBackend(fail_at=[2.0], exception="config")
        with pytest.raises(KeyError, match="configuration bug"):
            solve_point_row(model, ["value"], {"x": 2.0}, 0)

    def test_metric_failure_isolated_with_metric_name(self):
        row, failure = solve_point_row(
            FlakyBackend(), [metric_boom], {"x": 3.0}, 4
        )
        assert math.isnan(row[0])
        assert failure.stage == "metric"
        assert failure.metric == "metric_boom"
        assert failure.error_type == "ZeroDivisionError"

    def test_metric_grammar_error_still_raises(self):
        with pytest.raises(ValueError, match="supports"):
            solve_point_row(FlakyBackend(), ["bogus:spec"], {"x": 1.0}, 0)


class TestRunnerIsolation:
    GRID = SweepGrid({"x": [1.0, 2.0, 3.0, 4.0, 5.0]})

    def expected(self):
        return [2.0, 4.0, math.nan, 8.0, 10.0]

    def check(self, result: SweepResult):
        got = result.column("value")
        assert np.isnan(got[2])
        np.testing.assert_allclose(np.delete(got, 2), [2.0, 4.0, 8.0, 10.0])
        assert result.n_failed == 1
        assert result.failed_indices() == [2]
        (failure,) = result.errors
        assert failure.error_type == "ConvergenceError"
        assert "did not converge" in failure.message

    def test_serial_keeps_solving(self):
        runner = SweepRunner(FlakyBackend(fail_at=[3.0]), ["value"])
        self.check(runner.run(self.GRID))

    def test_pool_keeps_solving(self):
        runner = SweepRunner(FlakyBackend(fail_at=[3.0]), ["value"], n_workers=2)
        self.check(runner.run(self.GRID))

    def test_render_footers_failures(self):
        runner = SweepRunner(FlakyBackend(fail_at=[3.0]), ["value"])
        text = runner.run(self.GRID).render(title="flaky")
        assert "1 of 5 point(s) failed" in text
        assert "ConvergenceError" in text

    def test_gspn_reducible_chain_is_isolated(self):
        """GSPN steady states solve lazily at metric time; a reducible
        chain (two absorbing components) surfaces there as a
        NumericalSolveError and must be a NaN row, not an abort.

        ``preflight=False``: with the default preflight on, this chain
        never reaches the solver — it is rejected up front with CH001/
        CH002 diagnostics (tests/sweep/test_preflight.py); this test
        covers the opt-out path where the failure surfaces per point."""
        from repro.des.distributions import Exponential
        from repro.petri.net import PetriNet

        net = PetriNet("forked-absorbing")
        net.add_place("start", initial=1)
        net.add_place("left")
        net.add_place("right")
        net.add_timed_transition("go_left", Exponential(1.0))
        net.add_input_arc("start", "go_left")
        net.add_output_arc("go_left", "left")
        net.add_timed_transition("go_right", Exponential(1.0))
        net.add_input_arc("start", "go_right")
        net.add_output_arc("go_right", "right")

        runner = SweepRunner(net, ["mean_tokens:left"], preflight=False)
        result = runner.run(SweepGrid({"go_left": [0.5, 1.5]}))
        assert np.all(np.isnan(result.column("mean_tokens:left")))
        assert result.failed_indices() == [0, 1]
        assert all(e.error_type == "NumericalSolveError" for e in result.errors)
        assert all(e.stage == "metric" for e in result.errors)

    def test_phase_type_stiff_corner_is_isolated(self):
        """A real backend: an impossible iteration budget stalls GMRES on
        every point — the sweep still returns, all rows NaN + errors."""
        backend = PhaseTypeBackend(stages=4, method="gmres", max_iter=1, tol=1e-14)
        runner = SweepRunner(backend, ["fraction:standby"])
        result = runner.run(SweepGrid({"T": [0.2, 0.4]}))
        assert np.all(np.isnan(result.column("fraction:standby")))
        assert result.failed_indices() == [0, 1]
        assert {e.error_type for e in result.errors} == {"ConvergenceError"}


class TestContiguousChunks:
    @pytest.mark.parametrize("n, k", [(1, 1), (5, 2), (10, 3), (7, 7), (3, 9), (64, 16)])
    def test_cover_disjoint_ordered_balanced(self, n, k):
        spans = contiguous_chunks(n, k)
        assert spans[0][0] == 0 and spans[-1][1] == n
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 == b0  # contiguous, ordered, disjoint
        sizes = [stop - start for start, stop in spans]
        assert max(sizes) - min(sizes) <= 1
        assert len(spans) == min(n, k)

    def test_empty(self):
        assert contiguous_chunks(0, 4) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            contiguous_chunks(-1, 4)


class TestWarmStartReset:
    def test_solver_cache_drop_keeps_pattern_state(self):
        cache = SolverCache(pi0=np.ones(3), perm_c=np.arange(3), ilu="handle")
        cache.drop_warm_start()
        assert "pi0" not in cache
        assert "perm_c" in cache and "ilu" in cache

    def test_gspn_backend_reset(self):
        runner = SweepRunner(build_mm1k_net(), ["mean_tokens:queue"])
        runner.model.solve({"arrive": 1.0})
        runner.model.solver._factor_cache["pi0"] = np.ones(3)
        runner.model.reset_point_state()
        assert "pi0" not in runner.model.solver._factor_cache

    def test_phase_type_backend_reset(self):
        backend = PhaseTypeBackend(stages=4)
        backend.solve({"T": 0.4})
        backend._factor_cache["pi0"] = np.ones(3)
        backend.reset_point_state()
        assert "pi0" not in backend._factor_cache
        # pattern-level state survives
        assert "perm_c" in backend._factor_cache


class _OneChunkThenBroken:
    """Stand-in pool: first chunk succeeds, the rest break the pool."""

    def __init__(self, max_workers=None, initializer=None, initargs=()):
        initializer(*initargs)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def submit(self, fn, start, chunk_points):
        future: Future = Future()
        if start == 0:
            future.set_result(fn(start, chunk_points))
        else:
            future.set_exception(BrokenProcessPool("a worker died abruptly"))
        return future


class TestBrokenPoolResume:
    def test_resume_solves_only_unfinished_points(self, monkeypatch, caplog):
        """After the pool breaks, the serial fallback must pick up from the
        unfinished points — completed chunks are never re-solved."""
        import repro.sweep.runner as runner_module

        monkeypatch.setattr(
            runner_module, "ProcessPoolExecutor", _OneChunkThenBroken
        )
        model = FlakyBackend()
        runner = SweepRunner(model, ["value"], n_workers=2)
        grid = SweepGrid({"x": [float(i) for i in range(1, 17)]})
        with caplog.at_level("WARNING", logger="repro.sweep.runner"):
            result = runner.run(grid)
        np.testing.assert_allclose(
            result.column("value"), [2.0 * i for i in range(1, 17)]
        )
        # the fake pool shares this process, so `model.solved` saw both the
        # pool half and the serial resume: every point exactly once
        assert sorted(model.solved) == [float(i) for i in range(1, 17)]
        assert "resuming" in caplog.text
        n_first_chunk = len(contiguous_chunks(16, 8)[0])
        assert f"resuming {16 - n_first_chunk} of 16 points" in caplog.text


class TestResultErrors:
    def test_assemble_fills_missing_rows_with_nan(self):
        points = [{"x": 1.0}, {"x": 2.0}, {"x": 3.0}]
        result = SweepResult.assemble(
            ["x"], ["m"], points, rows={0: [5.0], 2: [7.0]}
        )
        assert math.isnan(result.values[1]["m"])
        (failure,) = result.errors
        assert failure.index == 1 and failure.stage == "merge"
        np.testing.assert_allclose(result.column("x"), [1.0, 2.0, 3.0])

    def test_assemble_complete_has_no_errors(self):
        result = SweepResult.assemble(
            ["x"], ["m"], [{"x": 1.0}], rows={0: [2.0]}
        )
        assert result.errors == []

    def test_assemble_row_width_checked(self):
        with pytest.raises(ValueError, match="2 values for 1 metrics"):
            SweepResult.assemble(["x"], ["m"], [{"x": 1.0}], rows={0: [1.0, 2.0]})

    def test_error_index_out_of_range_rejected(self):
        failure = PointFailure(5, {"x": 1.0}, "solve", "E", "boom")
        with pytest.raises(ValueError, match="outside the table"):
            SweepResult(["x"], ["m"], [{"x": 1.0}], [{"m": 1.0}], [failure])

    def test_best_skips_nan_rows(self):
        result = SweepResult.assemble(
            ["x"], ["m"], [{"x": 1.0}, {"x": 2.0}], rows={0: [4.0]}
        )
        assert result.best("m")["x"] == 1.0

    def test_point_failure_dict_round_trip(self):
        failure = PointFailure(
            3, {"x": 0.5}, "metric", "ZeroDivisionError", "1/0", metric="m"
        )
        assert PointFailure.from_dict(failure.to_dict()) == failure

    def test_errors_survive_pickling(self):
        failure = PointFailure(0, {"x": 1.0}, "solve", "E", "boom")
        assert pickle.loads(pickle.dumps(failure)) == failure
