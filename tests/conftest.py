"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.params import CPUModelParams
from repro.des.random_streams import StreamManager


@pytest.fixture
def rng() -> np.random.Generator:
    """A reproducible generator for statistical tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def streams() -> StreamManager:
    """A reproducible stream manager."""
    return StreamManager(seed=777)


@pytest.fixture
def paper_params() -> CPUModelParams:
    """The paper's Table 2 parameters at T = 0.3 s, D = 0.001 s."""
    return CPUModelParams.paper_defaults(T=0.3, D=0.001)
