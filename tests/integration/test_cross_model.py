"""Cross-model integration: all five models agree on the same physics.

These are the tests that make the reproduction trustworthy: five
independently implemented models (closed-form exact, closed-form
approximate, sparse CTMC, event-driven DES, Petri net token game) are
evaluated on identical parameters and checked against each other.
"""

import numpy as np
import pytest

from repro.core.exact_renewal import ExactRenewalModel
from repro.core.markov_supplementary import MarkovSupplementaryModel
from repro.core.params import CPUModelParams
from repro.core.petri_cpu import PetriCPUModel
from repro.core.phase_type import PhaseTypeModel
from repro.core.simulation_cpu import CPUEventSimulator, simulate_job_scan

HORIZON = 25_000.0
WARMUP = 500.0


@pytest.mark.parametrize(
    "T,D",
    [(0.1, 0.001), (0.5, 0.3), (0.2, 2.0)],
    ids=["paper-D0.001", "mid-D0.3", "large-D2"],
)
class TestFiveWayAgreement:
    def test_all_models_within_tolerance_of_exact(self, T, D):
        p = CPUModelParams.paper_defaults(T=T, D=D)
        exact = ExactRenewalModel(p).solve().fractions()

        phase = PhaseTypeModel(p, stages=64).solve().fractions
        event = CPUEventSimulator(p, seed=77).run(HORIZON, WARMUP).fractions
        petri = PetriCPUModel(p, seed=78).run(HORIZON, WARMUP).fractions
        scan = simulate_job_scan(p, 25_000, np.random.default_rng(79)).fractions

        assert phase.l1_distance(exact) < 5e-3, "phase-type vs exact"
        assert event.l1_distance(exact) < 0.025, "event sim vs exact"
        assert petri.l1_distance(exact) < 0.025, "petri vs exact"
        assert scan.l1_distance(exact) < 0.025, "job scan vs exact"

    def test_stochastic_models_agree_pairwise(self, T, D):
        p = CPUModelParams.paper_defaults(T=T, D=D)
        event = CPUEventSimulator(p, seed=101).run(HORIZON, WARMUP).fractions
        petri = PetriCPUModel(p, seed=102).run(HORIZON, WARMUP).fractions
        assert event.l1_distance(petri) < 0.04


class TestPaperNarrative:
    """The qualitative claims of the paper's Section 5, as assertions."""

    def test_markov_fine_at_small_d(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.001)
        markov = MarkovSupplementaryModel(p).solve().fractions()
        exact = ExactRenewalModel(p).solve().fractions()
        assert 100.0 * markov.l1_distance(exact) < 0.1  # percentage points

    def test_markov_degrades_at_moderate_d(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.3)
        markov = MarkovSupplementaryModel(p).solve().fractions()
        exact = ExactRenewalModel(p).solve().fractions()
        delta = 100.0 * markov.l1_distance(exact)
        assert 1.0 < delta < 20.0

    def test_markov_collapses_at_large_d(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=10.0)
        markov = MarkovSupplementaryModel(p).solve().fractions()
        exact = ExactRenewalModel(p).solve().fractions()
        assert 100.0 * markov.l1_distance(exact) > 50.0

    def test_petri_does_not_collapse_at_large_d(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=10.0)
        petri = PetriCPUModel(p, seed=5).run(HORIZON, WARMUP).fractions
        exact = ExactRenewalModel(p).solve().fractions()
        assert 100.0 * petri.l1_distance(exact) < 5.0

    def test_energy_ordering_monotone_in_threshold(self):
        # Figure 5: more idle time = more energy, for every model
        from repro.core.energy import energy_joules

        for model_fn in (
            lambda p: MarkovSupplementaryModel(p).solve().fractions(),
            lambda p: ExactRenewalModel(p).solve().fractions(),
        ):
            energies = []
            for T in (0.0, 0.25, 0.5, 0.75, 1.0):
                p = CPUModelParams.paper_defaults(T=T, D=0.001)
                energies.append(energy_joules(model_fn(p), p.profile, 1000.0))
            assert all(a < b for a, b in zip(energies, energies[1:]))

    def test_phase_type_answers_paper_conclusion(self):
        """'If an effective method of modeling constant delays in Markov
        chains can be derived, the Markov model may very well become the
        modeling method of choice' — Erlang-64 stages are that method."""
        p = CPUModelParams.paper_defaults(T=0.3, D=10.0)
        exact = ExactRenewalModel(p).solve().fractions()
        supp = MarkovSupplementaryModel(p).solve().fractions()
        phase = PhaseTypeModel(p, stages=64).solve().fractions
        assert phase.l1_distance(exact) < supp.l1_distance(exact) / 100.0
