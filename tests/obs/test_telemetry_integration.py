"""Telemetry end to end: sweeps (serial/pool/distributed), solver residual
histories, and the CLI flags."""

import collections
import json
import math
import pickle

import numpy as np
import pytest

from repro import obs
from repro.experiments.cli import main as cli_main
from repro.markov.ctmc import (
    RESIDUAL_HISTORY_LIMIT,
    ConvergenceError,
    SolverCache,
    gmres_steady_state,
    power_steady_state,
)
from repro.obs import Trace
from repro.sweep import SweepGrid, SweepRunner, build_mm1k_net
from repro.sweep.distributed import DistributedSweepRunner

GRID = SweepGrid({"arrive": [0.2 * i + 0.2 for i in range(8)]})


def point_span_indices(trace: Trace) -> collections.Counter:
    return collections.Counter(
        sp.attrs["index"] for sp in trace.spans if sp.name == "sweep.point"
    )


def mm1k_generator(K: int = 40, lam: float = 1.0, mu: float = 1.4) -> np.ndarray:
    Q = np.zeros((K + 1, K + 1))
    for i in range(K):
        Q[i, i + 1] = lam
        Q[i + 1, i] = mu
    np.fill_diagonal(Q, -Q.sum(axis=1))
    return Q


class TestSerialSweepTelemetry:
    def test_result_carries_trace_with_per_point_spans(self):
        with obs.tracing("sweep") as trace:
            result = SweepRunner(build_mm1k_net(), ["mean_tokens:queue"]).run(GRID)
        assert result.telemetry is trace
        counts = point_span_indices(trace)
        assert sorted(counts) == list(range(len(GRID.points())))
        assert all(n == 1 for n in counts.values())
        assert trace.counters["sweep.rows.completed"] == len(result)
        names = {sp.name for sp in trace.spans}
        assert {"sweep.preflight", "sweep.run", "sweep.solve"} <= names

    def test_no_trace_means_no_telemetry(self):
        result = SweepRunner(build_mm1k_net(), ["mean_tokens:queue"]).run(GRID)
        assert result.telemetry is None

    def test_failed_point_span_records_error(self):
        # an impossible tolerance stalls the power iteration: the point
        # fails, the sweep survives, and the span records the stage/error
        with obs.tracing("sweep") as trace:
            result = SweepRunner(
                build_mm1k_net(),
                ["mean_tokens:queue"],
                method="power",
                tol=1e-300,
                max_iter=2,
                preflight=False,
            ).run(SweepGrid({"arrive": [0.5]}))
        assert result.n_failed == 1
        (span,) = [sp for sp in trace.spans if sp.name == "sweep.point"]
        # the CTMC solve runs lazily at metric-evaluation time, so the
        # failure is attributed to whichever stage actually triggered it
        assert span.attrs.get("stage") in ("solve", "metric")
        assert span.attrs.get("error") == "ConvergenceError"
        assert trace.counters["sweep.rows.failed"] == 1


class TestPoolSweepTelemetry:
    def test_pool_merge_covers_every_point_once(self):
        with obs.tracing("sweep") as trace:
            result = SweepRunner(
                build_mm1k_net(), ["mean_tokens:queue"], n_workers=2
            ).run(GRID)
        assert result.telemetry is trace
        counts = point_span_indices(trace)
        assert sorted(counts) == list(range(8))
        assert all(n == 1 for n in counts.values())
        assert trace.counters["sweep.rows.completed"] == 8
        # worker spans really came from other processes
        workers = {
            sp.worker for sp in trace.spans if sp.name == "sweep.point"
        }
        assert workers and trace.worker not in workers

    def test_pool_worker_spans_monotonic_per_worker(self):
        with obs.tracing("sweep") as trace:
            SweepRunner(
                build_mm1k_net(), ["mean_tokens:queue"], n_workers=2
            ).run(GRID)
        by_worker = collections.defaultdict(list)
        for sp in trace.spans:
            if sp.worker != trace.worker:
                by_worker[sp.worker].append(sp.t0)
        assert by_worker
        for t0s in by_worker.values():
            assert t0s == sorted(t0s)


class TestDistributedSweepTelemetry:
    def test_inline_merge_covers_every_point_once(self):
        with obs.tracing("sweep") as trace:
            result = DistributedSweepRunner(
                build_mm1k_net(), ["mean_tokens:queue"], n_shards=2,
                worker_mode="inline",
            ).run(GRID)
        assert result.telemetry is trace
        counts = point_span_indices(trace)
        assert sorted(counts) == list(range(8))
        assert all(n == 1 for n in counts.values())
        names = collections.Counter(sp.name for sp in trace.spans)
        assert names["dist.worker"] == 2
        assert names["dist.chunk"] == trace.counters["dist.chunks.dispatched"]
        assert trace.counters["sweep.rows.completed"] == 8

    def test_worker_death_and_poison_keep_exactly_once_coverage(self):
        grid = SweepGrid({"arrive": [0.1 * i + 0.1 for i in range(16)]})
        with obs.tracing("sweep") as trace:
            result = DistributedSweepRunner(
                build_mm1k_net(), ["mean_tokens:queue"], n_shards=2,
                worker_mode="inline", max_requeues=0, n_chunks=2,
                _fault_injection={"die_worker": -1, "die_at_index": 9},
            ).run(grid)
        assert math.isnan(result.column("mean_tokens:queue")[9])
        counts = point_span_indices(trace)
        assert sorted(counts) == list(range(16))
        assert all(n == 1 for n in counts.values())
        (poisoned,) = [
            sp for sp in trace.spans
            if sp.name == "sweep.point" and sp.attrs.get("poisoned")
        ]
        assert poisoned.attrs["index"] == 9
        assert trace.counters["dist.points.poisoned"] == 1
        assert trace.counters["dist.requeues"] >= 1
        assert trace.counters["sweep.rows.failed"] == 1

    def test_process_workers_ship_segments(self):
        with obs.tracing("sweep") as trace:
            DistributedSweepRunner(
                build_mm1k_net(), ["mean_tokens:queue"], n_shards=2,
                worker_mode="process",
            ).run(GRID)
        counts = point_span_indices(trace)
        assert sorted(counts) == list(range(8))
        assert all(n == 1 for n in counts.values())
        # shipped spans kept their worker identity and per-worker order
        shipped = collections.defaultdict(list)
        for sp in trace.spans:
            if sp.worker != trace.worker:
                shipped[sp.worker].append(sp.t0)
        assert shipped
        for t0s in shipped.values():
            assert t0s == sorted(t0s)

    def test_checkpoint_resume_seeds_completed_counter(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        grid = SweepGrid({"arrive": [0.1 * i + 0.1 for i in range(16)]})

        def attempt():
            with obs.tracing("sweep") as trace:
                DistributedSweepRunner(
                    build_mm1k_net(), ["mean_tokens:queue"], n_shards=1,
                    worker_mode="inline", checkpoint=path,
                    _fault_injection={"die_worker": -1, "die_after_rows": 6},
                ).run(grid)
            return trace

        from repro.sweep.distributed import DistributedSweepError

        with pytest.raises(DistributedSweepError):
            attempt()
        with obs.tracing("resume") as trace:
            DistributedSweepRunner(
                build_mm1k_net(), ["mean_tokens:queue"], n_shards=1,
                worker_mode="inline", checkpoint=path,
            ).run(grid)
        assert trace.counters["sweep.rows.completed"] == 16
        # only the un-checkpointed points were re-solved (and traced)
        assert len(point_span_indices(trace)) < 16


class TestResidualHistory:
    def test_gmres_success_stores_history_in_cache(self):
        cache = SolverCache()
        pi = gmres_steady_state(mm1k_generator(), cache=cache)
        assert pi.sum() == pytest.approx(1.0)
        history = cache["residual_history"]
        assert isinstance(history, tuple) and history
        # the ILU preconditioner is near-exact on this tridiagonal chain,
        # so the history can be a single (tiny) entry — just require decay
        assert history[-1] <= history[0]

    def test_gmres_stall_carries_history_on_error(self):
        with pytest.raises(ConvergenceError) as excinfo:
            gmres_steady_state(mm1k_generator(200), tol=1e-300, max_iter=3)
        err = excinfo.value
        assert err.residual_history
        assert err.iterations == len(err.residual_history)

    def test_convergence_error_pickle_round_trip(self):
        err = ConvergenceError("gmres", 7, 1e-3, 1e-10, (0.5, 0.1, 1e-3))
        back = pickle.loads(pickle.dumps(err))
        assert back.method == "gmres"
        assert back.iterations == 7
        assert back.residual_history == (0.5, 0.1, 1e-3)
        plain = pickle.loads(pickle.dumps(ConvergenceError("power", 1, 1.0, 0.1)))
        assert plain.residual_history is None

    def test_power_history_capped(self):
        with pytest.raises(ConvergenceError) as excinfo:
            power_steady_state(
                mm1k_generator(8, lam=1.0, mu=1.01),
                tol=1e-300,
                max_iter=RESIDUAL_HISTORY_LIMIT + 500,
            )
        history = excinfo.value.residual_history
        assert len(history) == RESIDUAL_HISTORY_LIMIT

    def test_power_success_stores_history(self):
        cache = SolverCache()
        pi = power_steady_state(mm1k_generator(10), cache=cache)
        assert pi.sum() == pytest.approx(1.0)
        assert cache["residual_history"]

    def test_solver_cache_pickle_drops_history_safely(self):
        cache = SolverCache()
        gmres_steady_state(mm1k_generator(), cache=cache)
        back = pickle.loads(pickle.dumps(cache))
        assert "ilu" not in back  # process-local keys dropped
        assert isinstance(back.get("residual_history", ()), tuple)


class TestCLITelemetry:
    SWEEP = [
        "sweep", "--model", "phase-type", "--rate", "T=0.2:1.0:4",
        "--metric", "power",
    ]

    def test_sweep_trace_flag_writes_valid_jsonl(self, tmp_path, capsys):
        path = tmp_path / "run.trace.jsonl"
        assert cli_main([*self.SWEEP, "--trace", str(path)]) == 0
        captured = capsys.readouterr()
        assert f"[wrote trace {path}]" in captured.err
        trace = Trace.read_jsonl(str(path))
        assert point_span_indices(trace)
        assert trace.counters["sweep.rows.completed"] == 4

    def test_sweep_profile_flag_prints_breakdown(self, capsys):
        assert cli_main([*self.SWEEP, "--profile"]) == 0
        err = capsys.readouterr().err
        assert "sweep profile" in err
        assert "sweep.point" in err
        assert "attributed to named phases" in err

    def test_sweep_profile_attribution_is_high(self, capsys):
        # acceptance bound: >= 95% of wall-clock attributed to named phases
        assert cli_main([*self.SWEEP, "--profile"]) == 0
        err = capsys.readouterr().err
        (line,) = [
            ln for ln in err.splitlines() if ln.startswith("attributed")
        ]
        pct = float(line.rsplit(" ", 1)[1].rstrip("%"))
        assert pct >= 95.0

    def test_sweep_without_flags_prints_no_progress(self, capsys):
        # stderr is not a tty under pytest: no progress line, no trace noise
        assert cli_main([*self.SWEEP]) == 0
        assert capsys.readouterr().err == ""

    def test_quiet_flag_accepted(self, capsys):
        assert cli_main([*self.SWEEP, "--quiet"]) == 0

    def test_distributed_sweep_trace_merges_workers(self, tmp_path, capsys):
        path = tmp_path / "dist.trace.jsonl"
        args = [
            "sweep", "--net", "mm1k", "--rate", "arrive=0.2:1.2:6",
            "--metric", "mean_tokens:queue", "--distributed", "--shards", "2",
            "--trace", str(path),
        ]
        assert cli_main(args) == 0
        trace = Trace.read_jsonl(str(path))
        counts = point_span_indices(trace)
        assert sorted(counts) == list(range(6))
        assert all(n == 1 for n in counts.values())
        assert {sp.name for sp in trace.spans} >= {"dist.chunk", "dist.worker"}

    def test_steady_profile_flag(self, capsys):
        args = [
            "steady", "--model", "phase-type", "--solver", "gmres", "--profile",
        ]
        assert cli_main(args) == 0
        captured = capsys.readouterr()
        assert "steady profile" in captured.err
        assert "solver.gmres.iterations" in captured.err
        assert "steady.solve" in captured.err

    def test_steady_trace_file(self, tmp_path, capsys):
        path = tmp_path / "steady.trace.jsonl"
        args = ["steady", "--model", "phase-type", "--trace", str(path)]
        assert cli_main(args) == 0
        trace = Trace.read_jsonl(str(path))
        assert {sp.name for sp in trace.spans} >= {
            "cli.steady", "steady.prepare", "steady.solve", "steady.metrics",
        }

    def test_worker_accepts_trace_flag(self, tmp_path, capsys):
        # no coordinator: the worker fails to connect, but the flag parses
        # and the (empty) trace file is still written
        path = tmp_path / "worker.trace.jsonl"
        args = [
            "worker", "--connect", "127.0.0.1:1", "--trace", str(path),
        ]
        rc = cli_main(args)
        assert rc == 2
        assert path.exists()


class TestTraceJSONShape:
    def test_written_records_are_flat_json(self, tmp_path):
        with obs.tracing("sweep") as trace:
            SweepRunner(build_mm1k_net(), ["mean_tokens:queue"]).run(
                SweepGrid({"arrive": [0.5, 1.0]})
            )
        path = tmp_path / "t.jsonl"
        trace.write_jsonl(str(path))
        kinds = collections.Counter(
            json.loads(line)["type"] for line in path.read_text().splitlines()
        )
        assert kinds["meta"] == 1
        assert kinds["span"] == len(trace.spans)
        assert kinds["counter"] == len(trace.counters)
