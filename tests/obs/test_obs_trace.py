"""Core telemetry layer: spans, counters, segments, schemas, rendering."""

import io
import json
import time

import pytest

from repro import obs
from repro.obs import (
    SCHEMA_SUMMARY,
    SCHEMA_TRACE,
    ProgressLine,
    Trace,
    attribution_fraction,
    build_summary,
    render_profile,
    validate_summary,
    validate_telemetry_file,
    write_summary,
)
from repro.obs.__main__ import main as obs_main


class TestTraceRecording:
    def test_span_nesting_records_parent_indices(self):
        trace = Trace("t")
        with trace.span("outer"):
            with trace.span("inner") as sp:
                sp.set("k", 1)
        outer, inner = trace.spans
        assert outer.parent is None
        assert inner.parent == 0
        assert inner.attrs == {"k": 1}
        assert outer.t1 >= inner.t1 >= inner.t0 >= outer.t0

    def test_span_records_error_attr_on_exception(self):
        trace = Trace("t")
        with pytest.raises(ValueError):
            with trace.span("boom"):
                raise ValueError("x")
        assert trace.spans[0].attrs["error"] == "ValueError"

    def test_event_and_add_span(self):
        trace = Trace("t")
        trace.event("tick", index=3)
        trace.add_span("book", 10.0, 12.5, label="w")
        assert trace.spans[0].duration == 0.0
        assert trace.spans[1].duration == 2.5

    def test_counters_fire_observer_hook(self):
        trace = Trace("t")
        seen = []
        trace.on_counter = lambda name, value: seen.append((name, value))
        trace.incr("a")
        trace.incr("a", 2)
        assert trace.counters["a"] == 3
        assert seen == [("a", 1), ("a", 3)]

    def test_timestamps_monotonic_within_process(self):
        trace = Trace("t")
        stamps = [trace.now() for _ in range(100)]
        assert stamps == sorted(stamps)


class TestModuleAPI:
    def test_disabled_helpers_are_noops(self):
        assert not obs.enabled()
        assert obs.current_trace() is None
        with obs.span("x") as sp:
            sp.set("k", 1)  # must not raise
        obs.incr("c")
        obs.gauge("g", 1.0)
        obs.event("e")

    def test_tracing_installs_and_removes(self):
        with obs.tracing("t") as trace:
            assert obs.enabled()
            assert obs.current_trace() is trace
            with obs.span("x"):
                obs.incr("c")
        assert not obs.enabled()
        assert [sp.name for sp in trace.spans] == ["x"]
        assert trace.counters == {"c": 1}

    def test_disabled_span_is_shared_noop(self):
        # the fast path must not allocate per call
        assert obs.span("a") is obs.span("b")

    def test_disabled_mode_overhead_bound(self):
        # one contextvar read per call; generous CI bound (actual ~0.2us)
        n = 100_000
        t0 = time.perf_counter()
        for _ in range(n):
            with obs.span("x"):
                pass
            obs.incr("c")
        per_call = (time.perf_counter() - t0) / (2 * n)
        assert per_call < 5e-6


class TestSegments:
    def test_slice_spans_rebases_parents(self):
        trace = Trace("t")
        with trace.span("early"):
            pass
        mark = trace.mark()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        sliced = trace.slice_spans(mark)
        assert [d["name"] for d in sliced] == ["outer", "inner"]
        assert sliced[0]["parent"] is None  # parent outside slice dropped
        assert sliced[1]["parent"] == 0  # rebased onto the slice

    def test_drain_counters_ships_each_increment_once(self):
        trace = Trace("t")
        trace.incr("a", 2)
        assert trace.drain_counters() == {"a": 2}
        assert trace.drain_counters() == {}
        trace.incr("a")
        trace.incr("b")
        assert trace.drain_counters() == {"a": 1, "b": 1}

    def test_merge_segment_round_trip(self):
        worker = Trace("w", worker="w1")
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        worker.incr("c", 3)
        parent = Trace("p")
        with parent.span("root"):
            pass
        parent.merge_segment(
            spans=worker.slice_spans(0),
            counters=worker.drain_counters(),
            gauges={"g": 7.0},
        )
        assert [sp.name for sp in parent.spans] == ["root", "outer", "inner"]
        assert parent.spans[2].parent == 1  # offset by the existing span
        assert parent.spans[1].worker == "w1"
        assert parent.counters == {"c": 3}
        assert parent.gauges == {"g": 7.0}


class TestPersistence:
    def test_jsonl_round_trip(self, tmp_path):
        trace = Trace("run", worker="w0")
        with trace.span("outer", n=3):
            with trace.span("inner"):
                pass
        trace.incr("c", 2)
        trace.gauge("g", 1.5)
        path = tmp_path / "t.jsonl"
        trace.write_jsonl(str(path))
        back = Trace.read_jsonl(str(path))
        assert back.name == "run"
        assert back.worker == "w0"
        assert [sp.name for sp in back.spans] == ["outer", "inner"]
        assert back.spans[1].parent == 0
        assert back.spans[0].attrs == {"n": 3}
        assert back.counters == {"c": 2}
        assert back.gauges == {"g": 1.5}
        assert back.spans[0].t0 == pytest.approx(trace.spans[0].t0)

    def test_jsonl_schema_tag_checked(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "meta", "schema": "nope/9"}) + "\n")
        with pytest.raises(ValueError, match="schema"):
            Trace.read_jsonl(str(path))

    def test_non_json_safe_attrs_coerced(self, tmp_path):
        trace = Trace("t")
        trace.event("e", obj=object(), seq=(1, 2))
        path = tmp_path / "t.jsonl"
        trace.write_jsonl(str(path))
        back = Trace.read_jsonl(str(path))
        assert isinstance(back.spans[0].attrs["obj"], str)
        assert back.spans[0].attrs["seq"] == [1, 2]


class TestSummary:
    def _trace(self) -> Trace:
        trace = Trace("t")
        with trace.span("a"):
            with trace.span("b"):
                pass
        trace.incr("c")
        trace.gauge("g", 2.0)
        return trace

    def test_build_summary_shape(self):
        summary = build_summary(self._trace())
        assert summary["schema"] == SCHEMA_SUMMARY
        assert summary["spans"] == 2
        assert set(summary["phases"]) == {"a", "b"}
        for ph in summary["phases"].values():
            assert set(ph) == {"count", "total_s", "self_s", "max_s"}
        assert validate_summary(summary) == []

    def test_validate_summary_reports_problems(self):
        assert validate_summary([]) == ["summary is not a JSON object"]
        problems = validate_summary({"schema": "x", "phases": {"p": {"count": -1}}})
        assert any("schema" in p for p in problems)
        assert any("count" in p for p in problems)

    def test_validate_telemetry_file_both_formats(self, tmp_path):
        trace = self._trace()
        jsonl = tmp_path / "t.jsonl"
        trace.write_jsonl(str(jsonl))
        assert validate_telemetry_file(str(jsonl)) == []
        summary = tmp_path / "s.json"
        write_summary(trace, str(summary))
        assert validate_telemetry_file(str(summary)) == []
        bad = tmp_path / "bad.json"
        bad.write_text("{}\n")
        assert validate_telemetry_file(str(bad)) != []

    def test_module_validator_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "ok.json"
        write_summary(self._trace(), str(good))
        assert obs_main([str(good)]) == 0
        assert "ok" in capsys.readouterr().out
        bad = tmp_path / "bad.json"
        bad.write_text("{}\n")
        assert obs_main([str(bad)]) == 2

    def test_schema_tags_are_versioned(self):
        assert SCHEMA_TRACE.endswith("/1")
        assert SCHEMA_SUMMARY.endswith("/1")


class TestProfile:
    def test_render_profile_lists_phases_and_counters(self):
        trace = Trace("t")
        with trace.span("root"):
            with trace.span("work"):
                pass
        trace.incr("solver.gmres.iterations", 42)
        text = render_profile(trace, title="demo")
        assert "demo" in text
        assert "work" in text
        assert "solver.gmres.iterations = 42" in text
        assert "attributed to named phases" in text

    def test_attribution_full_coverage(self):
        trace = Trace("t")
        with trace.span("root"):
            with trace.span("all-of-it"):
                time.sleep(0.01)
        assert attribution_fraction(trace) > 0.9

    def test_attribution_empty_trace(self):
        assert attribution_fraction(Trace("t")) == 1.0


class TestProgressLine:
    def test_renders_progress_and_rate(self):
        buf = io.StringIO()
        p = ProgressLine(total=10, stream=buf, enabled=True, min_interval=0.0)
        p.on_counter("sweep.rows.completed", 3)
        out = buf.getvalue()
        assert "[3/10]" in out
        assert "pts/s" in out
        p.finish()
        assert buf.getvalue().endswith("\r" + " " * (len(out) - 1) + "\r")

    def test_ignores_other_counters(self):
        buf = io.StringIO()
        p = ProgressLine(total=10, stream=buf, enabled=True, min_interval=0.0)
        p.on_counter("solver.gmres.solves", 5)
        assert buf.getvalue() == ""

    def test_disabled_on_non_tty(self):
        buf = io.StringIO()  # StringIO has no tty
        p = ProgressLine(total=10, stream=buf)
        assert p.enabled is False
        p.update(5)
        assert buf.getvalue() == ""

    def test_rate_limit_skips_intermediate_draws(self):
        buf = io.StringIO()
        p = ProgressLine(total=100, stream=buf, enabled=True, min_interval=3600)
        p.update(1)  # first draw goes through (last_draw starts at 0)
        first = buf.getvalue()
        p.update(2)
        p.update(3)
        assert buf.getvalue() == first  # throttled
        p.update(100)  # completion always draws
        assert "[100/100]" in buf.getvalue()
