"""Closed workload: population dynamics and CPU coupling."""

import pytest

from repro.core.params import CPUModelParams
from repro.des.distributions import Deterministic, Exponential
from repro.workload.closed_workload import ClosedCPUSimulator, ClosedWorkload


class TestClosedWorkload:
    def test_nominal_rate(self):
        # Exponential(rate=2) has mean think time 0.5 s -> 4 / 0.5 = 8 jobs/s
        w = ClosedWorkload(n_clients=4, think_time=Exponential(2.0))
        assert w.nominal_rate() == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClosedWorkload(n_clients=0, think_time=Exponential(1.0))


class TestClosedCPUSimulator:
    def test_fractions_sum_to_one(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.001)
        w = ClosedWorkload(n_clients=2, think_time=Exponential(1.0))
        res = ClosedCPUSimulator(p, w, seed=1).run(horizon=2_000.0)
        assert res.fractions.total() == pytest.approx(1.0, abs=1e-9)

    def test_throughput_bounded_by_nominal(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.001)
        w = ClosedWorkload(n_clients=3, think_time=Exponential(1.0))
        res = ClosedCPUSimulator(p, w, seed=2).run(horizon=5_000.0, warmup=100.0)
        assert res.effective_arrival_rate < w.nominal_rate()
        assert res.effective_arrival_rate > 0.0

    def test_machine_repair_interactive_response_time(self):
        # closed queueing theory: X = N / (E[think] + R); verify consistency
        p = CPUModelParams.paper_defaults(T=50.0, D=0.001)  # never sleeps
        n, think = 5, 2.0
        w = ClosedWorkload(n_clients=n, think_time=Exponential(1.0 / think * 1.0))
        w = ClosedWorkload(n_clients=n, think_time=Exponential(0.5))
        res = ClosedCPUSimulator(p, w, seed=3).run(horizon=20_000.0, warmup=500.0)
        x = res.effective_arrival_rate
        r = res.mean_latency
        think_mean = w.think_time.mean()
        assert n / (think_mean + r) == pytest.approx(x, rel=0.05)

    def test_single_client_never_queues(self):
        # one client: latency = service (+ possible power-up)
        p = CPUModelParams.paper_defaults(T=50.0, D=0.0)
        w = ClosedWorkload(n_clients=1, think_time=Exponential(1.0))
        res = ClosedCPUSimulator(p, w, seed=4).run(horizon=20_000.0, warmup=500.0)
        assert res.mean_latency == pytest.approx(p.mean_service_time, rel=0.1)

    def test_utilization_grows_with_population(self):
        p = CPUModelParams.paper_defaults(T=0.3, D=0.001)

        def active(n):
            w = ClosedWorkload(n_clients=n, think_time=Exponential(2.0))
            return (
                ClosedCPUSimulator(p, w, seed=5)
                .run(horizon=5_000.0, warmup=100.0)
                .fractions.active
            )

        assert active(8) > active(1)

    def test_deterministic_think_time(self):
        p = CPUModelParams.paper_defaults(T=0.05, D=0.01)
        w = ClosedWorkload(n_clients=1, think_time=Deterministic(1.0))
        res = ClosedCPUSimulator(p, w, seed=6).run(horizon=5_000.0, warmup=100.0)
        # gap between jobs ~1s > T: the CPU sleeps every cycle and pays D
        assert res.fractions.standby > 0.5
        assert res.fractions.powerup > 0.0

    def test_argument_validation(self):
        p = CPUModelParams.paper_defaults()
        w = ClosedWorkload(n_clients=1, think_time=Exponential(1.0))
        sim = ClosedCPUSimulator(p, w, seed=1)
        with pytest.raises(ValueError):
            sim.run(horizon=0.0)
        with pytest.raises(ValueError):
            sim.run(horizon=1.0, warmup=2.0)
