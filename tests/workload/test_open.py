"""Open workloads: Poisson, MMPP, batch arrivals."""

import numpy as np
import pytest

from repro.workload.open_workload import (
    BatchPoissonProcess,
    MMPPProcess,
    PoissonProcess,
)


class TestPoisson:
    def test_rate_estimate(self, rng):
        p = PoissonProcess(3.0)
        times = p.arrival_times(rng, horizon=2000.0)
        assert times.size / 2000.0 == pytest.approx(3.0, rel=0.05)


class TestMMPP:
    def test_mean_rate_weighted_by_phases(self):
        # symmetric switching: stationary = [0.5, 0.5]
        p = MMPPProcess(rates=[1.0, 9.0], switch_rates=[2.0, 2.0])
        assert p.mean_rate() == pytest.approx(5.0)

    def test_asymmetric_switching_weights(self):
        # exit rates 1 and 4: stationary ~ [4/5, 1/5]
        p = MMPPProcess(rates=[10.0, 0.0], switch_rates=[1.0, 4.0])
        assert p.mean_rate() == pytest.approx(8.0)

    def test_long_run_rate_statistical(self, rng):
        p = MMPPProcess(rates=[0.5, 8.0], switch_rates=[0.3, 0.3])
        times = p.arrival_times(rng, horizon=20_000.0)
        assert times.size / 20_000.0 == pytest.approx(p.mean_rate(), rel=0.1)

    def test_burstier_than_poisson(self, rng):
        # MMPP inter-arrival cv^2 > 1
        p = MMPPProcess(rates=[0.2, 10.0], switch_rates=[0.1, 0.1])
        gaps = np.array([p.next_interarrival(rng) for _ in range(50_000)])
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.5

    def test_reset_restores_phase(self, rng):
        p = MMPPProcess(rates=[1.0, 5.0], switch_rates=[1.0, 1.0], start_phase=1)
        for _ in range(100):
            p.next_interarrival(rng)
        p.reset()
        assert p.phase == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MMPPProcess(rates=[1.0], switch_rates=[1.0])
        with pytest.raises(ValueError):
            MMPPProcess(rates=[0.0, 0.0], switch_rates=[1.0, 1.0])
        with pytest.raises(ValueError):
            MMPPProcess(rates=[1.0, 2.0], switch_rates=[0.0, 1.0])
        with pytest.raises(ValueError):
            MMPPProcess(rates=[1.0, 2.0], switch_rates=[1.0, 1.0], start_phase=5)

    def test_three_phase_switching(self, rng):
        p = MMPPProcess(rates=[1.0, 2.0, 3.0], switch_rates=[1.0, 1.0, 1.0])
        gaps = [p.next_interarrival(rng) for _ in range(1000)]
        assert all(g > 0 for g in gaps)


class TestBatchPoisson:
    def test_mean_rate(self):
        p = BatchPoissonProcess(batch_rate=2.0, mean_batch_size=3.0)
        assert p.mean_rate() == pytest.approx(6.0)

    def test_zero_gaps_within_batches(self, rng):
        p = BatchPoissonProcess(batch_rate=1.0, mean_batch_size=5.0)
        gaps = np.array([p.next_interarrival(rng) for _ in range(10_000)])
        zero_fraction = np.mean(gaps == 0.0)
        # mean batch 5 -> 4 of 5 arrivals are intra-batch
        assert zero_fraction == pytest.approx(0.8, abs=0.05)

    def test_long_run_rate(self, rng):
        p = BatchPoissonProcess(batch_rate=1.0, mean_batch_size=4.0)
        times = p.arrival_times(rng, horizon=10_000.0)
        assert times.size / 10_000.0 == pytest.approx(4.0, rel=0.1)

    def test_reset_clears_pending_batch(self, rng):
        p = BatchPoissonProcess(batch_rate=1.0, mean_batch_size=10.0)
        p.next_interarrival(rng)
        p.reset()
        assert p._remaining == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPoissonProcess(0.0, 2.0)
        with pytest.raises(ValueError):
            BatchPoissonProcess(1.0, 0.5)

    def test_batch_size_one_is_poisson(self, rng):
        p = BatchPoissonProcess(batch_rate=2.0, mean_batch_size=1.0)
        gaps = np.array([p.next_interarrival(rng) for _ in range(20_000)])
        assert np.mean(gaps == 0.0) < 0.001
        assert gaps.mean() == pytest.approx(0.5, rel=0.05)
