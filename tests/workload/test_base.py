"""Arrival-process interface: renewal processes and time materialisation."""

import numpy as np
import pytest

from repro.des.distributions import Deterministic, Exponential, Weibull
from repro.workload.base import RenewalProcess, poisson


class TestRenewalProcess:
    def test_poisson_rate(self):
        assert poisson(2.5).mean_rate() == pytest.approx(2.5)

    def test_deterministic_gaps(self, rng):
        p = RenewalProcess(Deterministic(0.5))
        assert p.next_interarrival(rng) == 0.5
        assert p.mean_rate() == pytest.approx(2.0)
        assert p.cv2() == 0.0

    def test_poisson_cv2_is_one(self):
        assert poisson(1.0).cv2() == pytest.approx(1.0)

    def test_weibull_renewal(self, rng):
        p = RenewalProcess(Weibull(0.8, 1.0))
        gaps = [p.next_interarrival(rng) for _ in range(5000)]
        assert np.mean(gaps) == pytest.approx(p.interarrival.mean(), rel=0.1)

    def test_non_distribution_rejected(self):
        with pytest.raises(TypeError):
            RenewalProcess(1.0)


class TestArrivalTimes:
    def test_by_count(self, rng):
        times = poisson(1.0).arrival_times(rng, n=100)
        assert times.shape == (100,)
        assert np.all(np.diff(times) >= 0.0)

    def test_by_horizon(self, rng):
        times = poisson(2.0).arrival_times(rng, horizon=500.0)
        assert times.size == pytest.approx(1000, rel=0.15)
        assert times[-1] <= 500.0

    def test_exactly_one_mode_required(self, rng):
        p = poisson(1.0)
        with pytest.raises(ValueError):
            p.arrival_times(rng)
        with pytest.raises(ValueError):
            p.arrival_times(rng, horizon=10.0, n=10)

    def test_zero_count(self, rng):
        assert poisson(1.0).arrival_times(rng, n=0).size == 0

    def test_poisson_counts_have_poisson_variance(self, rng):
        # index of dispersion of counts ~ 1 for a Poisson process
        lam = 5.0
        counts = [
            poisson(lam).arrival_times(rng, horizon=10.0).size
            for _ in range(300)
        ]
        mean, var = np.mean(counts), np.var(counts)
        assert var / mean == pytest.approx(1.0, abs=0.35)
