"""Trace workloads: recording, persistence, replay."""

import math

import numpy as np
import pytest

from repro.workload.open_workload import PoissonProcess
from repro.workload.trace import ArrivalTrace, TraceProcess


class TestArrivalTrace:
    def test_from_process(self, rng):
        trace = ArrivalTrace.from_process(PoissonProcess(2.0), rng, n=500)
        assert len(trace) == 500
        assert trace.mean_rate() == pytest.approx(2.0, rel=0.15)

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            ArrivalTrace(np.array([1.0, 0.5]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ArrivalTrace(np.array([-1.0, 0.5]))

    def test_interarrivals_prepend_zero(self):
        trace = ArrivalTrace(np.array([1.0, 3.0, 6.0]))
        assert list(trace.interarrivals()) == [1.0, 2.0, 3.0]

    def test_cv2_poisson_near_one(self, rng):
        trace = ArrivalTrace.from_process(PoissonProcess(1.0), rng, n=50_000)
        assert trace.interarrival_cv2() == pytest.approx(1.0, abs=0.1)

    def test_save_load_roundtrip(self, tmp_path, rng):
        trace = ArrivalTrace.from_process(PoissonProcess(1.0), rng, n=50)
        path = tmp_path / "trace.txt"
        trace.save(path, header="test trace\nline two")
        loaded = ArrivalTrace.load(path)
        assert np.allclose(loaded.times, trace.times)

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# header\n1.0\n\n2.0  # inline comment\n")
        trace = ArrivalTrace.load(path)
        assert list(trace.times) == [1.0, 2.0]

    def test_thin_keeps_subset(self, rng):
        trace = ArrivalTrace.from_process(PoissonProcess(1.0), rng, n=10_000)
        thinned = trace.thin(0.3, rng)
        assert len(thinned) == pytest.approx(3000, rel=0.15)
        assert set(thinned.times) <= set(trace.times)

    def test_thin_validation(self, rng):
        trace = ArrivalTrace(np.array([1.0]))
        with pytest.raises(ValueError):
            trace.thin(0.0, rng)

    def test_shift(self):
        trace = ArrivalTrace(np.array([1.0, 2.0]))
        shifted = trace.shifted(0.5)
        assert list(shifted.times) == [1.5, 2.5]
        with pytest.raises(ValueError):
            trace.shifted(-2.0)

    def test_empty_trace_stats(self):
        trace = ArrivalTrace(np.array([]))
        assert trace.mean_rate() == 0.0
        assert trace.horizon == 0.0


class TestTraceProcess:
    def test_replays_exact_gaps(self, rng):
        trace = ArrivalTrace(np.array([0.5, 1.5, 4.0]))
        proc = TraceProcess(trace)
        gaps = [proc.next_interarrival(rng) for _ in range(3)]
        assert gaps == [0.5, 1.0, 2.5]

    def test_exhaustion_returns_inf(self, rng):
        proc = TraceProcess(ArrivalTrace(np.array([1.0])))
        proc.next_interarrival(rng)
        assert math.isinf(proc.next_interarrival(rng))
        assert proc.exhausted

    def test_reset_replays_from_start(self, rng):
        proc = TraceProcess(ArrivalTrace(np.array([1.0, 2.0])))
        first = proc.next_interarrival(rng)
        proc.reset()
        assert proc.next_interarrival(rng) == first

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceProcess(ArrivalTrace(np.array([])))

    def test_drives_cpu_simulator(self, rng):
        from repro.core.params import CPUModelParams
        from repro.core.simulation_cpu import CPUEventSimulator

        trace = ArrivalTrace.from_process(PoissonProcess(1.0), rng, n=2000)
        p = CPUModelParams.paper_defaults(T=0.3, D=0.001)
        res = CPUEventSimulator(
            p, seed=1, arrival_process=TraceProcess(trace)
        ).run(horizon=trace.horizon)
        assert res.jobs_arrived == pytest.approx(2000, abs=5)
        assert res.fractions.active == pytest.approx(0.1, abs=0.03)
