"""Property-based tests for the analytical CPU models and CTMC substrate."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact_renewal import ExactRenewalModel
from repro.core.markov_supplementary import MarkovSupplementaryModel
from repro.core.params import CPUModelParams
from repro.markov.birth_death import BirthDeathChain

# parameter strategies covering several orders of magnitude but keeping
# rho < 1 (enforced by construction: mu = lam / rho)
lams = st.floats(min_value=0.01, max_value=50.0, allow_nan=False)
rhos = st.floats(min_value=0.001, max_value=0.95, allow_nan=False)
thresholds = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
delays = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


def make_params(lam: float, rho: float, T: float, D: float) -> CPUModelParams:
    return CPUModelParams(
        arrival_rate=lam,
        service_rate=lam / rho,
        power_down_threshold=T,
        power_up_delay=D,
    )


class TestClosedFormProperties:
    @given(lams, rhos, thresholds, delays)
    @settings(max_examples=300)
    def test_markov_fractions_valid_distribution(self, lam, rho, T, D):
        f = MarkovSupplementaryModel(make_params(lam, rho, T, D)).solve().fractions()
        for v in f.as_dict().values():
            assert -1e-12 <= v <= 1.0 + 1e-12
        assert math.isclose(f.total(), 1.0, abs_tol=1e-9)

    @given(lams, rhos, thresholds, delays)
    @settings(max_examples=300)
    def test_exact_fractions_valid_distribution(self, lam, rho, T, D):
        f = ExactRenewalModel(make_params(lam, rho, T, D)).solve().fractions()
        for v in f.as_dict().values():
            assert -1e-12 <= v <= 1.0 + 1e-12
        assert math.isclose(f.total(), 1.0, abs_tol=1e-9)

    @given(lams, rhos, thresholds, delays)
    @settings(max_examples=200)
    def test_exact_active_is_rho(self, lam, rho, T, D):
        st_exact = ExactRenewalModel(make_params(lam, rho, T, D)).solve()
        assert math.isclose(st_exact.utilization, rho, rel_tol=1e-12)

    @given(lams, rhos, delays)
    @settings(max_examples=200)
    def test_standby_decreases_with_threshold(self, lam, rho, D):
        """Longer thresholds mean strictly less standby time (exact model)."""
        p1 = make_params(lam, rho, 0.1, D)
        p2 = make_params(lam, rho, 1.0, D)
        s1 = ExactRenewalModel(p1).solve().p_standby
        s2 = ExactRenewalModel(p2).solve().p_standby
        assert s2 <= s1 + 1e-12

    @given(lams, rhos, thresholds)
    @settings(max_examples=200)
    def test_powerup_increases_with_delay(self, lam, rho, T):
        p1 = make_params(lam, rho, T, 0.01)
        p2 = make_params(lam, rho, T, 1.0)
        u1 = ExactRenewalModel(p1).solve().p_powerup
        u2 = ExactRenewalModel(p2).solve().p_powerup
        assert u2 >= u1 - 1e-12

    @given(lams, rhos, thresholds, st.floats(min_value=0.0, max_value=0.01))
    @settings(max_examples=200)
    def test_markov_close_to_exact_for_small_d(self, lam, rho, T, D):
        """The supplementary-variable approximation is first-order in λD."""
        params = make_params(lam, rho, T, D)
        approx = MarkovSupplementaryModel(params).solve().fractions()
        exact = ExactRenewalModel(params).solve().fractions()
        assert approx.l1_distance(exact) <= 4.0 * (lam * D) ** 2 + 1e-9

    @given(lams, rhos, thresholds, delays)
    @settings(max_examples=200)
    def test_markov_utilization_at_least_rho(self, lam, rho, T, D):
        """The approximation's bias direction: never below work conservation."""
        st_markov = MarkovSupplementaryModel(make_params(lam, rho, T, D)).solve()
        assert st_markov.utilization >= rho - 1e-9


class TestBirthDeathProperties:
    @given(
        st.integers(min_value=1, max_value=40),
        st.floats(min_value=0.01, max_value=20.0, allow_nan=False),
        st.floats(min_value=0.01, max_value=20.0, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_closed_form_equals_linear_algebra(self, K, lam, mu):
        chain = BirthDeathChain(K, lam, mu)
        pi_closed = chain.stationary_distribution()
        pi_solve = chain.to_ctmc().steady_state()
        assert np.allclose(pi_closed, pi_solve, atol=1e-8)

    @given(
        st.integers(min_value=1, max_value=40),
        st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=41,
            max_size=41,
        ),
    )
    @settings(max_examples=100)
    def test_detailed_balance(self, K, rates):
        birth = rates[:K]
        death = rates[1 : K + 1]
        chain = BirthDeathChain(K, birth, death)
        pi = chain.stationary_distribution()
        for n in range(K):
            flow_up = pi[n] * birth[n]
            flow_down = pi[n + 1] * death[n]
            assert math.isclose(flow_up, flow_down, rel_tol=1e-8, abs_tol=1e-12)
