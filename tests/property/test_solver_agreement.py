"""Property tests: the steady-state solver family agrees on ergodic chains,
and the ``auto`` selection policy is a deterministic function of size."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.ctmc import (
    CTMC,
    ITERATIVE_AUTO_THRESHOLD,
    SPARSE_AUTO_THRESHOLD,
    resolve_steady_state_method,
)

rate_values = st.floats(min_value=0.1, max_value=5.0)


@st.composite
def ergodic_generators(draw):
    """Random dense generators with strictly positive off-diagonals.

    Every state reaches every other in one jump, so the chain is
    irreducible (hence ergodic: finite + irreducible) by construction.
    """
    n = draw(st.integers(min_value=2, max_value=10))
    flat = draw(
        st.lists(rate_values, min_size=n * (n - 1), max_size=n * (n - 1))
    )
    Q = np.zeros((n, n))
    k = 0
    for i in range(n):
        for j in range(n):
            if i != j:
                Q[i, j] = flat[k]
                k += 1
    np.fill_diagonal(Q, -Q.sum(axis=1))
    return Q


class TestSolverAgreement:
    @settings(max_examples=40, deadline=None)
    @given(ergodic_generators())
    def test_all_methods_agree_on_random_ergodic_chains(self, Q):
        pi_lu = CTMC(Q).steady_state(method="lu")
        pi_gmres = CTMC(Q).steady_state(method="gmres", tol=1e-12)
        pi_power = CTMC(Q).steady_state(method="power", tol=1e-13)
        np.testing.assert_allclose(pi_gmres, pi_lu, rtol=0, atol=1e-8)
        np.testing.assert_allclose(pi_power, pi_lu, rtol=0, atol=1e-8)

    @settings(max_examples=40, deadline=None)
    @given(ergodic_generators())
    def test_solutions_are_distributions(self, Q):
        for method in ("lu", "gmres", "power"):
            pi = CTMC(Q).steady_state(method=method)
            assert np.all(pi >= 0.0)
            assert abs(pi.sum() - 1.0) < 1e-9
            # stationarity: pi Q = 0 up to solver precision
            assert np.abs(pi @ Q).max() < 1e-6

    @settings(max_examples=40, deadline=None)
    @given(ergodic_generators())
    def test_warm_start_from_lu_answer_converges_immediately(self, Q):
        chain = CTMC(Q)
        pi_lu = chain.steady_state(method="lu")
        pi_warm = CTMC(Q).steady_state(method="gmres", x0=pi_lu)
        np.testing.assert_allclose(pi_warm, pi_lu, rtol=0, atol=1e-8)


class TestAutoPolicyDeterminism:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=1, max_value=10**7))
    def test_auto_is_a_pure_threshold_function_of_n(self, n):
        # the rule documented in docs/solvers.md: lu up to the threshold,
        # gmres strictly above it — nothing else ever
        expected = "lu" if n <= ITERATIVE_AUTO_THRESHOLD else "gmres"
        assert resolve_steady_state_method(n) == expected
        # repeated calls agree (no hidden state)
        assert resolve_steady_state_method(n) == resolve_steady_state_method(n)

    def test_documented_thresholds(self):
        # the numbers cited in docs/solvers.md; a change here must update
        # the guide (and vice versa)
        assert ITERATIVE_AUTO_THRESHOLD == 20_000
        assert SPARSE_AUTO_THRESHOLD == 500

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=10**7),
        st.sampled_from(["lu", "gmres", "power"]),
    )
    def test_explicit_methods_ignore_size(self, n, method):
        assert resolve_steady_state_method(n, method) == method
