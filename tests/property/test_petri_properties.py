"""Property-based tests for the Petri net engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import CPUModelParams
from repro.core.petri_cpu import build_cpu_net
from repro.des.distributions import Exponential
from repro.petri.analysis import ReachabilityOptions, explore_reachability
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.simulator import PetriNetSimulator

token_counts = st.lists(
    st.integers(min_value=0, max_value=50), min_size=1, max_size=10
)


class TestMarkingProperties:
    @given(token_counts)
    def test_roundtrip_through_dict(self, counts):
        names = [f"p{i}" for i in range(len(counts))]
        m = Marking(counts, names)
        again = Marking.from_dict(m.as_dict(), names)
        assert m == again
        assert hash(m) == hash(again)

    @given(token_counts)
    def test_total_is_sum(self, counts):
        names = [f"p{i}" for i in range(len(counts))]
        assert Marking(counts, names).total_tokens() == sum(counts)

    @given(token_counts, token_counts)
    def test_equality_iff_same_counts(self, a, b):
        n = min(len(a), len(b))
        names = [f"p{i}" for i in range(n)]
        ma, mb = Marking(a[:n], names), Marking(b[:n], names)
        assert (ma == mb) == (a[:n] == b[:n])


class TestTokenConservation:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=100),
        st.floats(min_value=10.0, max_value=500.0, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_ring_net_conserves_tokens(self, n_places, tokens, horizon):
        """A closed ring of exponential transitions moves tokens around but
        never creates or destroys them."""
        net = PetriNet("ring")
        for i in range(n_places):
            net.add_place(f"p{i}", initial=tokens if i == 0 else 0)
        for i in range(n_places):
            net.add_timed_transition(f"t{i}", Exponential(1.0))
            net.add_input_arc(f"p{i}", f"t{i}")
            net.add_output_arc(f"t{i}", f"p{(i + 1) % n_places}")
        res = PetriNetSimulator(net, seed=5).run(horizon=horizon)
        assert res.final_marking.total_tokens() == tokens
        # time-averaged totals conserve too
        assert float(res.mean_tokens_vector.sum()) == pytest.approx(
            tokens, rel=1e-9
        )

    @given(
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_cpu_net_invariants_hold_throughout(self, T, D, seed):
        params = CPUModelParams.paper_defaults(T=T, D=D)
        net = build_cpu_net(params)
        res = PetriNetSimulator(net, seed=seed).run(horizon=200.0)
        m = res.final_marking
        assert m["Stand_By"] + m["Power_Up"] + m["CPU_ON"] == 1
        assert m["Idle"] + m["Active"] == 1
        assert m["P0"] + m["P1"] == 1
        # time averages respect the invariants too
        on_family = (
            res.mean_tokens("Stand_By")
            + res.mean_tokens("Power_Up")
            + res.mean_tokens("CPU_ON")
        )
        assert abs(on_family - 1.0) < 1e-9


class TestReachabilityProperties:
    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_mm1k_reachability_size(self, K):
        net = PetriNet("mm1k")
        net.add_place("free", initial=K)
        net.add_place("queue")
        net.add_timed_transition("arrive", Exponential(1.0))
        net.add_input_arc("free", "arrive")
        net.add_output_arc("arrive", "queue")
        net.add_timed_transition("serve", Exponential(2.0))
        net.add_input_arc("queue", "serve")
        net.add_output_arc("serve", "free")
        g = explore_reachability(net)
        assert g.n_markings == K + 1
        assert g.complete
        # free + queue = K is an invariant of every reachable marking
        for m in g.markings:
            assert m["free"] + m["queue"] == K

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_fork_join_conservation(self, width, tokens):
        """fork splits a token into `width` branch tokens; join reassembles:
        the weighted token count is invariant."""
        net = PetriNet("forkjoin")
        net.add_place("start", initial=tokens)
        for i in range(width):
            net.add_place(f"branch{i}")
        net.add_place("done")
        net.add_timed_transition("fork", Exponential(1.0))
        net.add_input_arc("start", "fork")
        for i in range(width):
            net.add_output_arc("fork", f"branch{i}")
        net.add_timed_transition("join", Exponential(1.0))
        for i in range(width):
            net.add_input_arc(f"branch{i}", "join")
        net.add_output_arc("join", "done")
        net.add_timed_transition("reset", Exponential(1.0))
        net.add_input_arc("done", "reset")
        net.add_output_arc("reset", "start")
        res = PetriNetSimulator(net, seed=3).run(horizon=300.0)
        m = res.final_marking
        # invariant: start + branch_i (any single branch) + done == tokens
        for i in range(width):
            assert m["start"] + m[f"branch{i}"] + m["done"] == tokens
