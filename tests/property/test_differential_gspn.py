"""Differential testing: random GSPNs solved two independent ways.

For randomly generated *closed* nets (a fixed token population circulating
through a strongly connected structure of exponential transitions, with
optional immediate stages), the token-game simulator's long-run averages
must agree with the exact CTMC solution obtained via reachability analysis
and vanishing-marking elimination.  Any divergence indicates a semantics
bug in one of two completely independent code paths.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.des.distributions import Exponential
from repro.petri.ctmc_export import ctmc_from_net
from repro.petri.net import PetriNet
from repro.petri.simulator import PetriNetSimulator


def build_random_closed_net(
    n_places: int,
    tokens: int,
    rates: list,
    extra_arcs: list,
    immediate_stage: bool,
) -> PetriNet:
    """A ring of exponential transitions (guaranteeing strong connectivity)
    plus optional chords and an optional immediate relay stage."""
    net = PetriNet("random_closed")
    for i in range(n_places):
        net.add_place(f"p{i}", initial=tokens if i == 0 else 0)
    for i in range(n_places):
        net.add_timed_transition(f"ring{i}", Exponential(rates[i]))
        net.add_input_arc(f"p{i}", f"ring{i}")
        net.add_output_arc(f"ring{i}", f"p{(i + 1) % n_places}")
    for j, (src, dst, rate) in enumerate(extra_arcs):
        if src == dst:
            continue
        net.add_timed_transition(f"chord{j}", Exponential(rate))
        net.add_input_arc(f"p{src}", f"chord{j}")
        net.add_output_arc(f"chord{j}", f"p{dst}")
    if immediate_stage:
        # interpose an immediate relay on the ring's return edge:
        # p_last -> relay_in (timed) then relay_in -> p0 (immediate)
        net.add_place("relay_in")
        net.add_timed_transition("to_relay", Exponential(rates[0] + 0.5))
        net.add_input_arc(f"p{n_places - 1}", "to_relay")
        net.add_output_arc("to_relay", "relay_in")
        net.add_immediate_transition("relay_out")
        net.add_input_arc("relay_in", "relay_out")
        net.add_output_arc("relay_out", "p0")
    return net


@st.composite
def closed_net_specs(draw):
    n_places = draw(st.integers(min_value=2, max_value=4))
    tokens = draw(st.integers(min_value=1, max_value=2))
    rates = [
        draw(st.floats(min_value=0.2, max_value=5.0, allow_nan=False))
        for _ in range(n_places)
    ]
    n_extra = draw(st.integers(min_value=0, max_value=2))
    extra = [
        (
            draw(st.integers(min_value=0, max_value=n_places - 1)),
            draw(st.integers(min_value=0, max_value=n_places - 1)),
            draw(st.floats(min_value=0.2, max_value=5.0, allow_nan=False)),
        )
        for _ in range(n_extra)
    ]
    immediate = draw(st.booleans())
    return n_places, tokens, rates, extra, immediate


class TestSimulatorAgainstCTMC:
    @given(closed_net_specs(), st.integers(min_value=0, max_value=10_000))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_long_run_token_averages_agree(self, spec, seed):
        n_places, tokens, rates, extra, immediate = spec
        net = build_random_closed_net(n_places, tokens, rates, extra, immediate)

        solution = ctmc_from_net(net)
        horizon, warmup = 4_000.0, 100.0
        result = PetriNetSimulator(net, seed=seed).run(
            horizon=horizon, warmup=warmup
        )
        # CLT bound for Markov time averages: the estimator's std scales
        # like sqrt(tokens * tau / T) with tau ~ 1/min_rate the slowest
        # relaxation time.  A fixed 0.06 sits at ~3 sigma for the
        # slowest admissible nets (rates 0.2-0.25), which hypothesis
        # *will* eventually sample; keep 0.06 as the floor for fast nets
        # and widen to ~5 sigma for slowly mixing ones.
        tau = 1.0 / min(rates)
        tol = max(0.06, 5.0 * np.sqrt(tokens * tau / (horizon - warmup)))
        for place in net.place_names:
            want = solution.mean_tokens(place)
            got = result.mean_tokens(place)
            assert got == pytest.approx(want, abs=tol), (
                f"{place}: simulator {got:.4f} vs CTMC {want:.4f} "
                f"(tol {tol:.3f})"
            )

    @given(closed_net_specs())
    @settings(max_examples=25, deadline=None)
    def test_ctmc_probabilities_normalised(self, spec):
        n_places, tokens, rates, extra, immediate = spec
        net = build_random_closed_net(n_places, tokens, rates, extra, immediate)
        solution = ctmc_from_net(net)
        pi = solution.ctmc.steady_state()
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi >= 0.0)
        # token conservation: expected total tokens == initial population
        total = sum(solution.mean_tokens(p) for p in net.place_names)
        assert total == pytest.approx(float(tokens), rel=1e-9)
