"""Property-based tests (hypothesis) for the DES kernel."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.events import Event, EventQueue
from repro.des.statistics import TallyStatistic, TimeWeightedStatistic

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
times = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)


def _noop() -> None:
    pass


class TestEventQueueProperties:
    @given(st.lists(times, min_size=1, max_size=200))
    def test_pop_order_is_sorted(self, event_times):
        q = EventQueue()
        for t in event_times:
            q.push(Event(t, _noop))
        popped = []
        while True:
            ev = q.pop()
            if ev is None:
                break
            popped.append(ev.time)
        assert popped == sorted(event_times)

    @given(
        st.lists(times, min_size=1, max_size=100),
        st.data(),
    )
    def test_cancellation_preserves_remaining_order(self, event_times, data):
        q = EventQueue()
        events = [q.push(Event(t, _noop)) for t in event_times]
        to_cancel = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(events) - 1),
                max_size=len(events),
                unique=True,
            )
        )
        for i in to_cancel:
            q.cancel(events[i])
        kept = sorted(
            ev.time for i, ev in enumerate(events) if i not in set(to_cancel)
        )
        popped = []
        while True:
            ev = q.pop()
            if ev is None:
                break
            popped.append(ev.time)
        assert popped == kept

    @given(st.lists(times, max_size=100))
    def test_len_matches_live_events(self, event_times):
        q = EventQueue()
        events = [q.push(Event(t, _noop)) for t in event_times]
        for ev in events[::2]:
            q.cancel(ev)
        assert len(q) == len(events) - len(events[::2])


class TestTallyProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=300))
    def test_matches_numpy(self, xs):
        t = TallyStatistic()
        t.record_many(xs)
        assert math.isclose(
            t.mean, float(np.mean(xs)), rel_tol=1e-9, abs_tol=1e-6
        )
        if len(xs) >= 2:
            assert math.isclose(
                t.variance,
                float(np.var(xs, ddof=1)),
                rel_tol=1e-6,
                abs_tol=1e-5,
            )
        assert t.minimum == min(xs)
        assert t.maximum == max(xs)

    @given(
        st.lists(finite_floats, min_size=1, max_size=100),
        st.lists(finite_floats, min_size=1, max_size=100),
    )
    def test_merge_equals_concatenation(self, a_data, b_data):
        a, b, c = TallyStatistic(), TallyStatistic(), TallyStatistic()
        a.record_many(a_data)
        b.record_many(b_data)
        c.record_many(a_data + b_data)
        merged = a.merge(b)
        assert math.isclose(merged.mean, c.mean, rel_tol=1e-9, abs_tol=1e-6)
        assert merged.count == c.count


class TestTimeWeightedProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1e-6, max_value=100.0, allow_nan=False),
                st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
            ),
            min_size=1,
            max_size=100,
        )
    )
    def test_average_within_value_bounds(self, segments):
        s = TimeWeightedStatistic(segments[0][1])
        t = 0.0
        values = [segments[0][1]]
        for dt, v in segments:
            t += dt
            s.update(t, v)
            values.append(v)
        avg = s.time_average(t + 1.0)
        assert min(values) - 1e-9 <= avg <= max(values) + 1e-9

    @given(
        st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    )
    def test_constant_signal_average_is_value(self, value, duration):
        s = TimeWeightedStatistic(value)
        assert math.isclose(
            s.time_average(duration), value, rel_tol=1e-12, abs_tol=1e-12
        )
        assert s.time_variance(duration) <= 1e-12

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            ),
            min_size=2,
            max_size=50,
        )
    )
    def test_shift_invariance(self, segments):
        """Shifting the whole trajectory in time leaves the average unchanged."""
        def build(offset: float) -> float:
            s = TimeWeightedStatistic(segments[0][1], start_time=offset)
            t = offset
            for dt, v in segments:
                t += dt
                s.update(t, v)
            return s.time_average(t)

        assert math.isclose(build(0.0), build(123.0), rel_tol=1e-9, abs_tol=1e-9)
