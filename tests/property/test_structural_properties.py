"""Property-based tests for the structural analyzers.

The verifier's promises are universally quantified ("every invariant-
covered net is bounded", "a siphon stays empty"), which makes them the
natural target for random-net generation: build arbitrary conservative
nets, let the analyzers make their structural claims, then check the
claims against brute force or actual exploration.
"""

from itertools import chain, combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.distributions import Exponential
from repro.petri import (
    PetriNet,
    commoner_check,
    minimal_siphons,
    minimal_traps,
    p_invariants_detailed,
    structural_bounds,
)
from repro.petri.analysis import ReachabilityOptions, explore_reachability


# --------------------------------------------------------------------- #
# generators
# --------------------------------------------------------------------- #
def conservative_net(n_places, tokens, arcs):
    """A net whose every transition moves one token place-to-place, so
    the all-ones vector is a P-invariant by construction."""
    net = PetriNet("conservative")
    for i in range(n_places):
        net.add_place(f"p{i}", initial=tokens if i == 0 else 0)
    for ti, (src, dst) in enumerate(arcs):
        net.add_timed_transition(f"t{ti}", Exponential(1.0))
        net.add_input_arc(f"p{src % n_places}", f"t{ti}")
        net.add_output_arc(f"t{ti}", f"p{dst % n_places}")
    return net


@st.composite
def conservative_nets(draw):
    n_places = draw(st.integers(min_value=1, max_value=6))
    tokens = draw(st.integers(min_value=1, max_value=4))
    arcs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_places - 1),
                st.integers(min_value=0, max_value=n_places - 1),
            ),
            min_size=1,
            max_size=8,
        )
    )
    # a transition with identical input and output place conserves
    # trivially but adds a self-loop; keep those, they are legal
    return conservative_net(n_places, tokens, arcs)


@st.composite
def small_nets(draw):
    """Arbitrary small ordinary nets (single-weight arcs, exponential
    transitions) for brute-force parity checks."""
    n_places = draw(st.integers(min_value=1, max_value=5))
    n_trans = draw(st.integers(min_value=1, max_value=5))
    net = PetriNet("random")
    marked = draw(
        st.lists(
            st.integers(min_value=0, max_value=1),
            min_size=n_places,
            max_size=n_places,
        )
    )
    for i in range(n_places):
        net.add_place(f"p{i}", initial=marked[i])
    subset = st.lists(
        st.integers(min_value=0, max_value=n_places - 1),
        min_size=0,
        max_size=n_places,
        unique=True,
    )
    for t in range(n_trans):
        net.add_timed_transition(f"t{t}", Exponential(1.0))
        for p in draw(subset):
            net.add_input_arc(f"p{p}", f"t{t}")
        for p in draw(subset):
            net.add_output_arc(f"t{t}", f"p{p}")
    return net


def brute_force_siphons(net):
    """Every non-empty place subset S with pre(S) ⊆ post(S)."""
    compiled = net.compile()
    names = compiled.place_names
    pre = {p: set() for p in names}  # transitions consuming from p
    post = {p: set() for p in names}  # transitions producing into p
    for ti, _ in enumerate(compiled.transitions):
        for pi, _ in compiled.inputs[ti]:
            pre[names[pi]].add(ti)
        for pi, _ in compiled.outputs[ti]:
            post[names[pi]].add(ti)
    siphons = []
    subsets = chain.from_iterable(
        combinations(names, k) for k in range(1, len(names) + 1)
    )
    for subset in subsets:
        s = set(subset)
        consumers = set().union(*(post[p] for p in s))  # •S
        producers = set().union(*(pre[p] for p in s))  # S•
        if consumers <= producers:
            siphons.append(frozenset(s))
    return siphons


def minimal_of(sets):
    return {s for s in sets if not any(o < s for o in sets)}


# --------------------------------------------------------------------- #
# properties
# --------------------------------------------------------------------- #
class TestInvariantCoverageImpliesBoundedness:
    @given(conservative_nets())
    @settings(max_examples=40, deadline=None)
    def test_all_ones_invariant_found_and_bounds_hold(self, net):
        """Token-conserving nets: the invariant search finds a cover, the
        claimed bounds are real upper bounds on every reachable marking."""
        search = p_invariants_detailed(net)
        bounds = structural_bounds(net)
        assert all(b is not None for b in bounds.values()), (
            "a conservative net must be fully covered"
        )
        graph = explore_reachability(
            net, ReachabilityOptions(max_markings=5_000)
        )
        assert graph.complete, "structurally bounded => finite state space"
        names = graph.markings[0].place_names
        for marking in graph.markings:
            for i, name in enumerate(names):
                assert int(marking.counts[i]) <= bounds[name], (
                    f"claimed bound violated at {marking!r}"
                )
        del search  # coverage asserted through bounds


class TestSiphonTrapBruteForceParity:
    @given(small_nets())
    @settings(max_examples=60, deadline=None)
    def test_minimal_siphons_match_brute_force(self, net):
        result = minimal_siphons(net)
        assert result.complete, "tiny nets must never hit the budget"
        assert set(result.sets) == minimal_of(set(brute_force_siphons(net)))

    @given(small_nets())
    @settings(max_examples=60, deadline=None)
    def test_traps_are_siphons_of_the_reversed_net(self, net):
        """Duality oracle: reverse every arc and the traps become the
        siphons."""
        compiled = net.compile()
        names = compiled.place_names
        reversed_net = PetriNet("reversed")
        for i, name in enumerate(names):
            reversed_net.add_place(name, initial=int(compiled.initial_marking[i]))
        for ti, trans in enumerate(compiled.transitions):
            reversed_net.add_timed_transition(trans.name, Exponential(1.0))
            for pi, mult in compiled.inputs[ti]:
                reversed_net.add_output_arc(trans.name, names[pi], multiplicity=mult)
            for pi, mult in compiled.outputs[ti]:
                reversed_net.add_input_arc(names[pi], trans.name, multiplicity=mult)
        traps = minimal_traps(net)
        siphons_rev = minimal_siphons(reversed_net)
        assert set(traps.sets) == set(siphons_rev.sets)


class TestCommonerSoundness:
    @given(small_nets())
    @settings(max_examples=60, deadline=None)
    def test_commoner_holds_implies_no_dead_marking(self, net):
        """Soundness of the deadlock-freedom verdict on ordinary nets:
        when Commoner holds, exploration finds no marking where every
        transition is disabled."""
        result = commoner_check(net)
        if not result.holds or result.qualifications:
            return  # no claim made; nothing to falsify
        graph = explore_reachability(
            net, ReachabilityOptions(max_markings=2_000)
        )
        if not graph.complete:
            return
        for mi, edges in enumerate(graph.edges_out):
            assert edges, (
                f"Commoner claimed deadlock-freedom but "
                f"{graph.markings[mi]!r} is dead"
            )

    @given(small_nets())
    @settings(max_examples=40, deadline=None)
    def test_empty_siphon_stays_empty(self, net):
        """The defining siphon property, checked behaviourally: a siphon
        empty in the initial marking is empty in every reachable one."""
        compiled = net.compile()
        names = compiled.place_names
        empty_siphons = [
            s
            for s in minimal_siphons(net).sets
            if all(compiled.initial_marking[names.index(p)] == 0 for p in s)
        ]
        if not empty_siphons:
            return
        graph = explore_reachability(
            net, ReachabilityOptions(max_markings=2_000)
        )
        if not graph.complete:
            return
        for marking in graph.markings:
            for siphon in empty_siphons:
                assert all(
                    int(marking.counts[names.index(p)]) == 0 for p in siphon
                )
