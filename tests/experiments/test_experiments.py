"""Paper experiments: structure of every artifact and CI-speed shape checks."""

import numpy as np
import pytest

from repro.experiments.paper_experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    run_figure4,
    run_figure5,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)

# extra-small config shared by the expensive experiments in this module
TINY = ExperimentConfig(fast=True, seed=7, models=("markov", "exact", "petri"))


@pytest.fixture(scope="module")
def fig4_result():
    return run_figure4(TINY)


@pytest.fixture(scope="module")
def fig5_result():
    return run_figure5(TINY)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "fig4", "fig5", "table1", "table2", "table3", "table4", "table5",
            "accuracy",
        }

    def test_results_render_and_export(self, tmp_path):
        res = run_table3(ExperimentConfig())
        assert res.render()
        path = res.write_csv(tmp_path)
        assert path.exists()


class TestFigure4(object):
    def test_csv_columns_cover_models_and_states(self, fig4_result):
        headers = fig4_result.csv_headers
        assert headers[0] == "threshold_s"
        for model in TINY.models:
            for state in ("idle", "standby", "powerup", "active"):
                assert f"{model}_{state}_pct" in headers

    def test_row_per_threshold(self, fig4_result):
        assert len(fig4_result.csv_rows) == len(TINY.thresholds())

    def test_standby_falls_idle_rises(self, fig4_result):
        sweep = fig4_result.extra["sweep"]
        standby = sweep.series_percent("exact", "standby")
        idle = sweep.series_percent("exact", "idle")
        assert np.all(np.diff(standby) < 0)
        assert np.all(np.diff(idle) > 0)

    def test_active_flat_at_rho(self, fig4_result):
        sweep = fig4_result.extra["sweep"]
        active = sweep.series_percent("exact", "active")
        assert np.allclose(active, 10.0, atol=0.01)

    def test_renders_all_states(self, fig4_result):
        text = fig4_result.render()
        for state in ("idle", "standby", "powerup", "active"):
            assert f"[{state}]" in text


class TestFigure5:
    def test_energy_monotone_increasing(self, fig5_result):
        sweep = fig5_result.extra["sweep"]
        for model in ("markov", "exact"):
            e = sweep.energies_joules(model)
            assert np.all(np.diff(e) > 0)

    def test_energy_within_physical_bounds(self, fig5_result):
        # 17 mW (pure standby) to 193 mW (pure active) over 1000 s
        for row in fig5_result.csv_rows:
            for e in row[1:]:
                assert 17.0 <= e <= 193.0

    def test_models_close_at_small_delay(self, fig5_result):
        sweep = fig5_result.extra["sweep"]
        markov = sweep.energies_joules("markov")
        petri = sweep.energies_joules("petri")
        assert np.max(np.abs(markov - petri)) < 5.0


class TestStructuralTables:
    def test_table1_lists_all_transitions(self):
        res = run_table1(ExperimentConfig())
        names = {row[0] for row in res.csv_rows}
        assert names == {"AR", "T1", "T2", "SR", "PDT", "T5", "T6", "PUT"}

    def test_table2_documents_interpretation(self):
        res = run_table2(ExperimentConfig())
        assert "0.1 s" in res.render() or ".1 per sec" in res.render()

    def test_table3_paper_values(self):
        res = run_table3(ExperimentConfig())
        values = {row[0]: row[1] for row in res.csv_rows}
        assert values["Standby"] == 17.0
        assert values["Powering Up"] == 192.442


class TestDeltaTables:
    @pytest.fixture(scope="class")
    def tables(self):
        config = ExperimentConfig(
            fast=True, seed=3, models=("simulation", "markov", "petri")
        )
        return run_table4(config), run_table5(config)

    def test_table4_shape_matches_paper(self, tables):
        t4, _ = tables
        rows = {r[0]: r for r in t4.csv_rows}
        assert set(rows) == {0.001, 0.3, 10.0}
        sim_markov = {d: rows[d][1] for d in rows}
        sim_pn = {d: rows[d][2] for d in rows}
        # the paper's headline: Markov error explodes with D, PN stays flat
        assert sim_markov[10.0] > 50.0
        assert sim_markov[10.0] > 10.0 * sim_markov[0.001]
        assert sim_pn[10.0] < 20.0

    def test_table5_shape_matches_paper(self, tables):
        _, t5 = tables
        rows = {r[0]: r for r in t5.csv_rows}
        sim_markov = {d: rows[d][1] for d in rows}
        sim_pn = {d: rows[d][2] for d in rows}
        assert sim_markov[10.0] > 10.0
        assert sim_pn[10.0] < 5.0
        assert sim_markov[0.001] < 1.0

    def test_tables_cite_paper_reference_values(self, tables):
        t4, t5 = tables
        assert "116.788" in t4.render()
        assert "24.866" in t5.render()
