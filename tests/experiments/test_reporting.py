"""Reporting: tables, plots, CSV."""

import csv

import numpy as np
import pytest

from repro.experiments.reporting import ascii_plot, csv_text, format_table, write_csv


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1.0, 2.0], [3.0, 4.5]])
        lines = text.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "-" in lines[1]
        assert "4.500" in text

    def test_title_rendered(self):
        text = format_table(["x"], [[1.0]], title="My Table")
        assert text.startswith("My Table")

    def test_mixed_types(self):
        text = format_table(["name", "v"], [["markov", 0.123456]])
        assert "markov" in text
        assert "0.123" in text

    def test_column_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1.0]])

    def test_custom_float_format(self):
        text = format_table(["v"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in text
        assert "1.23" not in text


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        x = np.linspace(0, 1, 11)
        text = ascii_plot(x, {"up": x, "down": 1 - x}, title="T")
        assert "legend:" in text
        assert "* up" in text
        assert "o down" in text
        assert text.startswith("T")

    def test_axis_labels(self):
        x = [0.0, 1.0]
        text = ascii_plot(x, {"s": [0.0, 5.0]}, x_label="threshold")
        assert "threshold" in text
        assert "5" in text  # y max label

    def test_flat_series_does_not_crash(self):
        text = ascii_plot([0.0, 1.0], {"flat": [2.0, 2.0]})
        assert "flat" in text

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([0.0, 1.0], {"bad": [1.0]})

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([0.0], {})


class TestCSV:
    def test_write_and_read_back(self, tmp_path):
        path = write_csv(
            tmp_path / "sub" / "out.csv",
            ["a", "b"],
            [[1, 2], [3, 4]],
        )
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_csv_text(self):
        text = csv_text(["x"], [[1.5]])
        assert text.splitlines()[0] == "x"
        assert "1.5" in text
