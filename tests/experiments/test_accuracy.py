"""Cost-of-accuracy experiment (Section 6 quantified)."""

import pytest

from repro.experiments.accuracy import (
    AccuracyRow,
    render_cost_of_accuracy,
    run_cost_of_accuracy,
)


@pytest.fixture(scope="module")
def rows():
    return run_cost_of_accuracy(
        delays=(0.001, 10.0), target_pct=2.0, seed=5
    )


class TestCostOfAccuracy:
    def test_all_models_present_per_delay(self, rows):
        by_delay = {}
        for r in rows:
            by_delay.setdefault(r.power_up_delay, []).append(r.model)
        for delay, models in by_delay.items():
            assert len(models) == 4, delay

    def test_markov_fast_and_valid_at_small_d(self, rows):
        markov = next(
            r for r in rows
            if r.model.startswith("markov") and r.power_up_delay == 0.001
        )
        assert markov.reached_target
        assert markov.wall_clock_s < 0.01  # analytical evaluation

    def test_markov_cannot_meet_target_at_large_d(self, rows):
        markov = next(
            r for r in rows
            if r.model.startswith("markov") and r.power_up_delay == 10.0
        )
        assert not markov.reached_target
        assert markov.achieved_error_pct > 50.0

    def test_stochastic_models_meet_target_everywhere(self, rows):
        for r in rows:
            if r.model in ("event simulation", "petri net"):
                assert r.reached_target, (r.model, r.power_up_delay)

    def test_phase_type_meets_target_everywhere(self, rows):
        for r in rows:
            if r.model.startswith("phase-type"):
                assert r.reached_target

    def test_markov_cheaper_than_simulation_where_valid(self, rows):
        at_small = {r.model: r for r in rows if r.power_up_delay == 0.001}
        assert (
            at_small["markov (eqs. 17-19)"].wall_clock_s
            < at_small["event simulation"].wall_clock_s / 10.0
        )

    def test_render_contains_all_rows(self, rows):
        text = render_cost_of_accuracy(rows, 2.0)
        assert "petri net" in text
        assert "bias exceeds target" in text

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            run_cost_of_accuracy(target_pct=0.0)
