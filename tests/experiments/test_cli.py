"""CLI: argument parsing and end-to-end runs of the cheap experiments."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig4", "fig5", "table4", "table5"):
            assert name in out

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope"])

    def test_run_table3(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "192.442" in out
        assert "finished in" in out

    def test_run_table1_with_csv(self, tmp_path, capsys):
        assert main(["run", "table1", "--csv-dir", str(tmp_path)]) == 0
        assert (tmp_path / "table1.csv").exists()
        assert "wrote" in capsys.readouterr().out

    def test_seed_flag_accepted(self, capsys):
        assert main(["run", "table2", "--seed", "99"]) == 0

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestSolverFlags:
    def test_sweep_accepts_solver_flags(self, capsys):
        assert main([
            "sweep", "--net", "mm1k", "--rate", "arrive=0.5,1.0",
            "--solver", "gmres", "--tol", "1e-9", "--max-iter", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "gmres steady state" in out

    def test_sweep_solver_rejected_for_renewal(self, capsys):
        assert main([
            "sweep", "--model", "renewal", "--rate", "T=0.2,0.4",
            "--solver", "gmres",
        ]) == 2
        err = capsys.readouterr().err
        assert "--solver" in err and "renewal" in err

    def test_sweep_phase_type_solver_threading(self, capsys):
        assert main([
            "sweep", "--model", "phase-type", "--rate", "T=0.2,0.4",
            "--stages", "4", "--n-max", "8", "--solver", "power",
            "--metric", "power",
        ]) == 0
        assert "power steady state" in capsys.readouterr().out

    def test_unknown_solver_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--rate", "AR=1", "--solver", "qr"]
            )


class TestSteadyCommand:
    def test_default_wsn_cluster(self, capsys):
        assert main(["steady", "--buffer", "2", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "wsn-cluster steady state" in out
        assert "mean_tokens:buf0" in out
        assert "states solved with" in out

    def test_explicit_solver_and_net(self, capsys):
        assert main([
            "steady", "--net", "mm1k", "--buffer", "12",
            "--solver", "gmres", "--tol", "1e-9",
        ]) == 0
        out = capsys.readouterr().out
        assert "mm1k steady state" in out
        assert "solved with gmres" in out

    def test_phase_type_model(self, capsys):
        assert main([
            "steady", "--model", "phase-type", "--stages", "4",
            "--n-max", "8", "--solver", "lu",
        ]) == 0
        out = capsys.readouterr().out
        assert "phase-type steady state" in out
        assert "fraction:standby" in out

    def test_gspn_rejects_phase_type_flags(self, capsys):
        assert main(["steady", "--net", "mm1k", "--n-max", "5"]) == 2
        assert "--n-max" in capsys.readouterr().err

    def test_phase_type_rejects_net_flags(self, capsys):
        assert main(["steady", "--model", "phase-type", "--buffer", "5"]) == 2
        assert "--buffer" in capsys.readouterr().err

    def test_nodes_rejected_for_single_queue_nets(self, capsys):
        assert main(["steady", "--net", "mm1k", "--nodes", "3"]) == 2
        assert "--nodes" in capsys.readouterr().err

    def test_nonconvergence_reported_as_error(self, capsys):
        assert main([
            "steady", "--net", "mm1k", "--buffer", "12",
            "--solver", "power", "--tol", "1e-15", "--max-iter", "2",
        ]) == 2
        err = capsys.readouterr().err
        assert "did not converge" in err


class TestLintCommand:
    def test_default_net_is_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "lint report: cpu-gspn (standard)" in out
        assert "deadlock-free by Commoner's condition" in out
        assert "structurally bounded" in out

    def test_strict_promotes_warnings_to_failure(self, capsys):
        # cpu-gspn carries a PN002 (P6 is not invariant-coverable)
        assert main(["lint", "--strict"]) == 1
        assert "PN002" in capsys.readouterr().out

    def test_deadlock_net_reports_the_siphon(self, capsys):
        assert main(["lint", "--net", "deadlock"]) == 0
        out = capsys.readouterr().out
        assert "PN004" in out
        assert "{lockA, lockB, p_working, q_working}" in out

    def test_deep_level_explores(self, capsys):
        assert main(["lint", "--net", "mm1k", "--level", "deep"]) == 0
        out = capsys.readouterr().out
        assert "state space explored completely" in out

    def test_max_markings_requires_deep(self, capsys):
        assert main(["lint", "--net", "mm1k", "--max-markings", "10"]) == 2
        assert "--level deep" in capsys.readouterr().err

    def test_unknown_net_rejected(self):
        with pytest.raises(SystemExit):
            main(["lint", "--net", "nope"])


class TestSweepPreflight:
    def test_doomed_sweep_aborts_with_named_marking(self, capsys):
        assert main([
            "sweep", "--net", "deadlock", "--rate", "p_get1=0.5,1.0",
        ]) == 2
        err = capsys.readouterr().err
        assert "CH001" in err
        assert "p_has_first=1" in err

    def test_no_preflight_runs_anyway(self, capsys):
        assert main([
            "sweep", "--net", "deadlock", "--rate", "p_get1=0.5,1.0",
            "--no-preflight",
        ]) == 0

    def test_distributed_doomed_sweep_aborts_before_fanout(self, capsys):
        assert main([
            "sweep", "--net", "deadlock", "--rate", "p_get1=0.5,1.0",
            "--distributed", "--shards", "2",
        ]) == 2
        assert "CH001" in capsys.readouterr().err
