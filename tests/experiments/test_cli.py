"""CLI: argument parsing and end-to-end runs of the cheap experiments."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig4", "fig5", "table4", "table5"):
            assert name in out

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope"])

    def test_run_table3(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "192.442" in out
        assert "finished in" in out

    def test_run_table1_with_csv(self, tmp_path, capsys):
        assert main(["run", "table1", "--csv-dir", str(tmp_path)]) == 0
        assert (tmp_path / "table1.csv").exists()
        assert "wrote" in capsys.readouterr().out

    def test_seed_flag_accepted(self, capsys):
        assert main(["run", "table2", "--seed", "99"]) == 0

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
