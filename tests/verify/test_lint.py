"""The lint driver and the sweep preflight, per level and per backend."""

import pytest

from repro.des.distributions import Exponential
from repro.petri import PetriNet
from repro.sweep.backends import GSPNBackend, PhaseTypeBackend
from repro.sweep.nets import (
    build_cpu_gspn_net,
    build_deadlock_net,
    build_mm1k_net,
)
from repro.verify import (
    Severity,
    lint_net,
    preflight_sweep,
    raise_on_errors,
    PreflightError,
)


def forked_net() -> PetriNet:
    """start forks into two absorbing places — reducible, two dead ends."""
    net = PetriNet("forked")
    net.add_place("start", initial=1)
    net.add_place("left")
    net.add_place("right")
    net.add_timed_transition("go_left", Exponential(1.0))
    net.add_input_arc("start", "go_left")
    net.add_output_arc("go_left", "left")
    net.add_timed_transition("go_right", Exponential(1.0))
    net.add_input_arc("start", "go_right")
    net.add_output_arc("go_right", "right")
    return net


class TestLintLevels:
    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="level must be one of"):
            lint_net(build_mm1k_net(), level="exhaustive")

    def test_paper_net_standard_is_structural_proof(self):
        """The acceptance demo: boundedness, unit invariants and deadlock
        freedom of the paper's CPU net, with zero exploration."""
        report = lint_net(build_cpu_gspn_net())
        assert report.ok
        assert report.codes() == ["PN002", "PN010"]
        facts = "\n".join(report.facts)
        assert "P-invariant: P0 + P1 = 1" in facts
        assert "P-invariant: Idle + Active = 1" in facts
        assert "P-invariant: Stand_By + Power_Up + CPU_ON = 1" in facts
        assert "structurally bounded" in facts
        assert "deadlock-free by Commoner's condition" in facts

    def test_quick_level_skips_commoner(self):
        report = lint_net(build_cpu_gspn_net(), level="quick")
        assert "PN010" not in report.codes()
        assert not any("Commoner" in f for f in report.facts)

    def test_mm1k_standard_clean(self):
        report = lint_net(build_mm1k_net())
        assert report.ok
        assert not report.warnings

    def test_deadlock_net_flags_the_siphon(self):
        report = lint_net(build_deadlock_net())
        assert "PN004" in report.codes()
        (pn004,) = [d for d in report if d.code == "PN004"]
        assert pn004.subject == "{lockA, lockB, p_working, q_working}"
        assert pn004.severity is Severity.WARNING
        assert report.ok  # structural risk alone is not an error

    def test_deep_level_proves_cpu_net_irreducible(self):
        report = lint_net(build_cpu_gspn_net(), level="deep")
        facts = "\n".join(report.facts)
        assert "state space explored completely" in facts
        assert "irreducible" in facts
        assert not any(d.code.startswith("CH") for d in report)

    def test_deep_level_names_dead_markings(self):
        report = lint_net(forked_net(), level="deep")
        codes = report.codes()
        assert "CH001" in codes and "CH002" in codes
        assert not report.ok
        ch001 = [d for d in report if d.code == "CH001"]
        assert any("left" in d.subject or "right" in d.subject for d in ch001)

    def test_deep_level_truncation_is_pn005(self):
        report = lint_net(build_mm1k_net(K=40), level="deep", max_markings=5)
        assert "PN005" in report.codes()
        assert not any("explored completely" in f for f in report.facts)


class TestStructureCodes:
    def test_empty_net_is_pn001(self):
        report = lint_net(PetriNet("empty"), level="quick")
        assert report.codes() == ["PN001"]

    def test_immediate_without_inputs_is_pn001(self):
        net = PetriNet("zeno")
        net.add_place("p")
        net.add_immediate_transition("t")
        net.add_output_arc("t", "p")
        report = lint_net(net, level="quick")
        assert any(
            d.code == "PN001" and d.subject == "t"
            and "zero-time" in d.message for d in report
        )

    def test_uncapacitated_source_is_pn001(self):
        net = PetriNet("flood")
        net.add_place("p")
        net.add_timed_transition("src", Exponential(1.0))
        net.add_output_arc("src", "p")
        report = lint_net(net, level="quick")
        assert any(
            d.code == "PN001" and "unbounded" in d.message for d in report
        )

    def test_capacitated_source_is_only_a_note(self):
        net = PetriNet("pump")
        net.add_place("p", capacity=3)
        net.add_timed_transition("src", Exponential(1.0))
        net.add_output_arc("src", "p")
        net.add_timed_transition("drain", Exponential(1.0))
        net.add_input_arc("p", "drain")
        report = lint_net(net, level="quick")
        assert report.ok
        assert any(
            d.code == "PN003" and d.subject == "src" for d in report
        )

    def test_marking_preserving_immediate_is_pn001(self):
        net = PetriNet("noop")
        net.add_place("p", initial=1)
        net.add_immediate_transition("t")
        net.add_input_arc("p", "t")
        net.add_output_arc("t", "p")
        report = lint_net(net, level="quick")
        assert any(
            d.code == "PN001" and "livelock" in d.message for d in report
        )

    def test_token_sink_is_pn003(self):
        net = PetriNet("sink")
        net.add_place("p", initial=1)
        net.add_timed_transition("gone", Exponential(1.0))
        net.add_input_arc("p", "gone")
        report = lint_net(net, level="quick")
        assert any(
            d.code == "PN003" and "sink" in d.message for d in report
        )

    def test_unproven_place_is_pn002(self):
        net = PetriNet("loose")
        net.add_place("a", initial=1)
        net.add_place("b")
        net.add_timed_transition("t", Exponential(1.0))
        net.add_input_arc("a", "t")
        net.add_output_arc("t", "a")
        net.add_output_arc("t", "b")  # b gains tokens, never loses
        report = lint_net(net, level="quick")
        assert any(
            d.code == "PN002" and d.subject == "b" for d in report
        )

    def test_conflict_hygiene_pn007_pn008(self):
        net = PetriNet("confused")
        net.add_place("p", initial=1)
        net.add_place("extra", initial=1)
        net.add_place("a")
        net.add_place("b")
        net.add_immediate_transition("t1")
        net.add_immediate_transition("t2")
        net.add_input_arc("p", "t1")
        net.add_output_arc("t1", "a")
        net.add_input_arc("p", "t2")
        net.add_input_arc("extra", "t2")
        net.add_output_arc("t2", "b")
        codes = lint_net(net, level="quick").codes()
        assert "PN007" in codes and "PN008" in codes

    def test_dead_transition_is_pn009(self):
        net = build_mm1k_net(K=3)
        net.add_place("never")
        net.add_timed_transition("stuck", Exponential(1.0))
        net.add_input_arc("never", "stuck")
        net.add_output_arc("stuck", "queue")
        report = lint_net(net, level="quick")
        assert any(
            d.code == "PN009" and d.subject == "stuck" for d in report
        )


class TestPreflightSweep:
    POINTS = [{"p_get1": 0.5}, {"p_get1": 1.5}]
    STEADY = ["mean_tokens:p_working"]

    def test_gspn_deadlock_steady_sweep_errors(self):
        backend = GSPNBackend(build_deadlock_net())
        report = preflight_sweep(backend, self.POINTS, self.STEADY)
        assert not report.ok
        # the dead marking is the chain's only closed class, so every
        # live marking is transient: CH001 + CH003, no CH002
        assert report.codes() == ["CH001", "CH003"]
        (ch001,) = [d for d in report.errors if d.code == "CH001"]
        # the diagnosis names the hold-and-wait marking
        assert "p_has_first=1" in ch001.subject
        assert "q_has_first=1" in ch001.subject

    def test_transient_only_sweep_not_blocked(self):
        backend = GSPNBackend(build_deadlock_net())
        report = preflight_sweep(
            backend, self.POINTS, ["mean_tokens:p_working@5.0"]
        )
        assert report.ok  # CH findings degrade to warnings
        assert "CH001" in report.codes()

    def test_callable_metrics_are_permissive(self):
        backend = GSPNBackend(build_deadlock_net())
        report = preflight_sweep(backend, self.POINTS, [lambda sol: 0.0])
        assert report.ok

    def test_healthy_gspn_is_clean(self):
        backend = GSPNBackend(build_mm1k_net(K=3))
        report = preflight_sweep(
            backend, [{"arrive": 1.0}], ["mean_tokens:queue"]
        )
        assert report.ok and not report.warnings

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_sw001_bad_rate(self, bad):
        backend = GSPNBackend(build_mm1k_net(K=3))
        report = preflight_sweep(
            backend, [{"arrive": 1.0}, {"arrive": bad}], ["mean_tokens:queue"]
        )
        assert [d.code for d in report.errors] == ["SW001"]
        assert report.errors[0].subject == "arrive"

    def test_sw001_flagged_once_per_axis(self):
        backend = GSPNBackend(build_mm1k_net(K=3))
        report = preflight_sweep(
            backend,
            [{"arrive": -1.0}, {"arrive": -2.0}, {"arrive": -3.0}],
            ["mean_tokens:queue"],
        )
        assert len(report.errors) == 1

    def test_phase_type_sw002_warning_on_arrival_sweep(self):
        backend = PhaseTypeBackend(stages=4)
        report = preflight_sweep(
            backend, [{"lambda": 0.5}], ["fraction:standby"]
        )
        (sw002,) = [d for d in report if d.code == "SW002"]
        assert sw002.severity is Severity.WARNING
        assert "arrival rate grows it" in sw002.message

    def test_phase_type_sw002_info_on_other_axes(self):
        backend = PhaseTypeBackend(stages=4)
        report = preflight_sweep(backend, [{"T": 0.4}], ["fraction:standby"])
        (sw002,) = [d for d in report if d.code == "SW002"]
        assert sw002.severity is Severity.INFO

    def test_phase_type_monitored_truncation_is_silent(self):
        backend = PhaseTypeBackend(stages=4)
        report = preflight_sweep(
            backend, [{"lambda": 0.5}], ["fraction:standby", "truncation_mass"]
        )
        assert "SW002" not in report.codes()

    def test_unknown_backend_gets_no_opinion(self):
        class Opaque:
            pass

        report = preflight_sweep(Opaque(), [{"x": -1.0}], ["whatever"])
        assert len(report) == 0 and report.ok

    def test_raise_on_errors(self):
        backend = GSPNBackend(build_deadlock_net())
        report = preflight_sweep(backend, self.POINTS, self.STEADY)
        with pytest.raises(PreflightError) as exc_info:
            raise_on_errors(report)
        assert exc_info.value.report is report
        clean = preflight_sweep(backend, self.POINTS, [lambda s: 0.0])
        raise_on_errors(clean)  # no raise
