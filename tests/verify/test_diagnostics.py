"""Diagnostic records, reports, and the preflight error."""

import pytest

from repro.verify import (
    CODES,
    Diagnostic,
    LintReport,
    PreflightError,
    Severity,
)


def diag(code="PN002", severity=Severity.WARNING, subject="p", message="m",
         fix_hint=""):
    return Diagnostic(code, severity, subject, message, fix_hint)


class TestDiagnostic:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            diag(code="PN999")

    def test_catalogue_codes_all_valid(self):
        for code in CODES:
            assert diag(code=code).code == code

    def test_catalogue_prefixes(self):
        assert all(c[:2] in ("PN", "CH", "SW") for c in CODES)

    def test_severity_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert max([Severity.INFO, Severity.ERROR]) is Severity.ERROR

    def test_render_contains_code_severity_subject_hint(self):
        line = diag(fix_hint="do the thing").render()
        assert "PN002" in line
        assert "warning" in line
        assert "p: m" in line
        assert "[do the thing]" in line

    def test_render_without_hint_has_no_brackets(self):
        assert "[" not in diag().render()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            diag().severity = Severity.ERROR


class TestLintReport:
    def build(self):
        report = LintReport()
        report.extend([
            diag(code="PN003", severity=Severity.INFO, subject="a"),
            diag(code="SW001", severity=Severity.ERROR, subject="x"),
            diag(code="PN002", severity=Severity.WARNING, subject="b"),
            diag(code="CH001", severity=Severity.ERROR, subject="m"),
        ])
        return report

    def test_sorted_worst_first_then_code(self):
        codes = [d.code for d in self.build().sorted()]
        assert codes == ["CH001", "SW001", "PN002", "PN003"]

    def test_severity_buckets(self):
        report = self.build()
        assert [d.code for d in report.errors] == ["CH001", "SW001"]
        assert [d.code for d in report.warnings] == ["PN002"]
        assert [d.code for d in report.infos] == ["PN003"]

    def test_ok_means_no_errors(self):
        assert not self.build().ok
        clean = LintReport()
        clean.extend([diag(severity=Severity.WARNING)])
        assert clean.ok

    def test_codes_distinct_sorted(self):
        report = self.build()
        report.extend([diag(code="PN002")])
        assert report.codes() == ["CH001", "PN002", "PN003", "SW001"]

    def test_len_and_iter(self):
        report = self.build()
        assert len(report) == 4
        assert [d.code for d in report] == [d.code for d in report.sorted()]

    def test_render_facts_findings_footer(self):
        report = self.build()
        report.facts.append("every place bounded")
        text = report.render(title="demo")
        assert text.startswith("demo\n----")
        assert "proved  every place bounded" in text
        assert "CH001" in text
        assert text.rstrip().endswith("2 error(s), 1 warning(s), 1 note(s)")

    def test_render_empty_says_no_findings(self):
        text = LintReport().render()
        assert "no findings" in text
        assert "0 error(s), 0 warning(s), 0 note(s)" in text


class TestPreflightError:
    def test_carries_report_and_summarises_errors(self):
        report = LintReport()
        report.extend([
            diag(code="CH001", severity=Severity.ERROR, subject="m",
                 message="dead marking"),
        ])
        err = PreflightError(report)
        assert err.report is report
        assert "1 error(s)" in str(err)
        assert "CH001 m: dead marking" in str(err)
        assert "--no-preflight" in str(err)

    def test_is_a_value_error(self):
        report = LintReport()
        report.extend([diag(severity=Severity.ERROR)])
        with pytest.raises(ValueError):
            raise PreflightError(report)

    def test_many_errors_elided(self):
        report = LintReport()
        report.extend([
            diag(code="SW001", severity=Severity.ERROR, subject=f"x{i}")
            for i in range(5)
        ])
        assert "(+2 more)" in str(PreflightError(report))
