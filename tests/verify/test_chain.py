"""State classification on hand-built graphs, and its CH0xx mapping."""

import pytest

from repro.verify import Severity, chain_diagnostics, classify_states


class TestClassifyStates:
    def test_irreducible_cycle(self):
        c = classify_states(3, [0, 1, 2], [1, 2, 0])
        assert c.is_irreducible
        assert c.has_unique_stationary
        assert c.dead_states == ()
        assert c.transient_states == ()

    def test_absorbing_fork(self):
        # 0 -> 1, 0 -> 2; both 1 and 2 absorb
        c = classify_states(3, [0, 0], [1, 2])
        assert not c.has_unique_stationary
        assert len(c.closed_classes) == 2
        assert set(c.dead_states) == {1, 2}
        assert c.transient_states == (0,)
        assert sorted(m[0] for m in c.closed_members()) == [1, 2]

    def test_transient_chain_into_cycle(self):
        # 0 -> 1 -> 2 <-> 3
        c = classify_states(4, [0, 1, 2, 3], [1, 2, 3, 2])
        assert c.has_unique_stationary
        assert not c.is_irreducible
        assert c.transient_states == (0, 1)
        assert c.dead_states == ()

    def test_self_loop_only_state_is_dead(self):
        """A state whose only edge is a self-loop never *leaves*: for a
        CTMC that is an absorbing state, not activity."""
        c = classify_states(2, [0, 1], [1, 1])
        assert c.dead_states == (1,)
        assert c.has_unique_stationary

    def test_duplicate_edges_fine(self):
        c = classify_states(2, [0, 0, 1], [1, 1, 0])
        assert c.is_irreducible

    def test_single_state_no_edges(self):
        c = classify_states(1, [], [])
        assert c.dead_states == (0,)
        assert c.is_irreducible

    def test_zero_states_rejected(self):
        with pytest.raises(ValueError, match="n_states"):
            classify_states(0, [], [])


class TestChainDiagnostics:
    def fork(self):
        return classify_states(3, [0, 0], [1, 2])

    def test_fork_reports_ch001_and_ch002(self):
        diags = chain_diagnostics(self.fork())
        codes = sorted(d.code for d in diags)
        assert codes == ["CH001", "CH001", "CH002"]
        assert all(d.severity is Severity.ERROR for d in diags)

    def test_transient_only_use_degrades_to_warning(self):
        diags = chain_diagnostics(self.fork(), steady=False)
        assert all(d.severity is Severity.WARNING for d in diags)

    def test_labels_name_the_markings(self):
        diags = chain_diagnostics(self.fork(), labels=["start", "left", "right"])
        ch001_subjects = {d.subject for d in diags if d.code == "CH001"}
        assert ch001_subjects == {"'left'", "'right'"}
        (ch002,) = [d for d in diags if d.code == "CH002"]
        assert "'left'" in ch002.message and "'right'" in ch002.message

    def test_unique_closed_class_with_transients_is_info(self):
        c = classify_states(4, [0, 1, 2, 3], [1, 2, 3, 2])
        (diag,) = chain_diagnostics(c)
        assert diag.code == "CH003"
        assert diag.severity is Severity.INFO
        assert "2 transient marking(s)" in diag.message

    def test_irreducible_chain_reports_nothing(self):
        c = classify_states(3, [0, 1, 2], [1, 2, 0])
        assert chain_diagnostics(c) == []

    def test_max_examples_elides_dead_states(self):
        # hub 0 feeds five absorbing states
        c = classify_states(6, [0] * 5, [1, 2, 3, 4, 5])
        diags = [d for d in chain_diagnostics(c, max_examples=2)
                 if d.code == "CH001"]
        assert len(diags) == 2
        assert all("one of 5 dead markings" in d.message for d in diags)
