#!/usr/bin/env python3
"""Batched rate sweeps: solve one GSPN at dozens of operating points.

Run with::

    python examples/rate_sweep.py

Every headline result of the paper is a *sweep* — energy vs. power-down
threshold, latency vs. wake-up delay — over the same net structure.  The
naive way re-explores the reachability graph and re-eliminates vanishing
markings at every point; :class:`repro.sweep.SweepRunner` explores once
and only re-binds the exponential rates per point, which is orders of
magnitude cheaper.

Part 1 sweeps the arrival rate of the exponentialised Figure 3 CPU net and
prints how the standby fraction (the energy-saving opportunity) erodes as
load grows.  Part 2 times the batched sweep against the naive pointwise
reduction on the same grid.
"""

import time

from repro.core.params import CPUModelParams
from repro.petri import ctmc_from_net
from repro.sweep import SweepGrid, SweepRunner, build_cpu_gspn_net


def cpu_load_sweep() -> None:
    """Standby/active fractions across one decade of arrival rates."""
    print("=" * 70)
    print("Part 1 — CPU state fractions vs. arrival rate (analytical)")
    print("=" * 70)

    runner = SweepRunner(
        build_cpu_gspn_net(),
        [
            "mean_tokens:Stand_By",
            "mean_tokens:Power_Up",
            "mean_tokens:Active",
            "throughput:SR",
        ],
    )
    grid = SweepGrid({"AR": [0.25, 0.5, 1.0, 2.0, 4.0, 8.0]})
    result = runner.run(grid)
    print(result.render(title="Figure 3 CPU (exponentialised), lambda sweep"))
    busiest = result.best("mean_tokens:Stand_By", minimize=True)
    print(
        f"\nAt lambda = {busiest['AR']:g}/s the CPU sleeps only "
        f"{100 * busiest['mean_tokens:Stand_By']:.1f}% of the time."
    )


def speedup_demo() -> None:
    """Batched solver vs. naive per-point reduction on one grid."""
    print()
    print("=" * 70)
    print("Part 2 — batched sweep vs. naive pointwise reduction")
    print("=" * 70)

    params = CPUModelParams.paper_defaults(T=0.3, D=0.001)
    rates = [0.2 + 0.15 * i for i in range(24)]

    t0 = time.perf_counter()
    naive = []
    for r in rates:
        point_params = CPUModelParams(
            arrival_rate=r,
            service_rate=params.service_rate,
            power_down_threshold=params.power_down_threshold,
            power_up_delay=params.power_up_delay,
        )
        # re-builds the net and re-explores the reachability graph per point
        naive.append(
            ctmc_from_net(build_cpu_gspn_net(point_params)).mean_tokens("Active")
        )
    t_naive = time.perf_counter() - t0

    t0 = time.perf_counter()
    runner = SweepRunner(build_cpu_gspn_net(params), ["mean_tokens:Active"])
    batched = runner.run(SweepGrid({"AR": rates})).column("mean_tokens:Active")
    t_batched = time.perf_counter() - t0

    worst = max(abs(a - b) for a, b in zip(naive, batched))
    print(f"naive pointwise : {t_naive * 1e3:8.1f} ms for {len(rates)} points")
    print(f"batched sweep   : {t_batched * 1e3:8.1f} ms (same grid)")
    print(f"speedup         : {t_naive / t_batched:8.1f}x")
    print(f"max discrepancy : {worst:.2e}")


if __name__ == "__main__":
    cpu_load_sweep()
    speedup_demo()
