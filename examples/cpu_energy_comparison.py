#!/usr/bin/env python3
"""Reproduce the paper's Section 5 comparison end to end.

Sweeps the Power Down Threshold for each of the paper's three Power Up
Delays (0.001 s, 0.3 s, 10 s), evaluates simulation / Markov / Petri net /
exact models, and prints:

- the Figure 4 state-percentage curves (ASCII),
- the Figure 5 energy curves,
- the Table 4 and Table 5 delta statistics with the paper's own numbers
  alongside for comparison.

Run with::

    python examples/cpu_energy_comparison.py          # fast (~30 s)
    python examples/cpu_energy_comparison.py --full   # paper-fidelity grid
"""

import argparse
import sys

from repro.experiments import (
    ExperimentConfig,
    run_figure4,
    run_figure5,
    run_table4,
    run_table5,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="paper-fidelity grid (slow)"
    )
    args = parser.parse_args(argv)

    config = ExperimentConfig(fast=not args.full)
    for runner in (run_figure4, run_figure5, run_table4, run_table5):
        result = runner(config)
        print(result.render())
        print("\n" + "#" * 78 + "\n")

    print(
        "Reading guide: at D = 0.001 s all models coincide (Fig. 4/5). "
        "Table 4/5 then\nshow the Markov supplementary-variable "
        "approximation degrading as D grows\nwhile the Petri net tracks "
        "the simulation — the paper's central claim."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
