"""Figure 4/5-style threshold sweeps over the deterministic-delay model.

The paper's headline figures sweep the Power Down Threshold of the
*deterministic-delay* CPU model — constant wake-up and idle timers, not
exponentials.  This walkthrough runs that sweep through the batched
model-backend subsystem:

1. a ``phase-type`` backend sweep (stage-expanded CTMC, template built
   once, per-point solves through a shared symbolic LU),
2. the ``renewal`` backend on the same grid (exact closed form) as a
   cross-check of the Erlang approximation error,
3. transient metrics per grid point: energy over a deployment window and
   the settling time after which `power x time` is a valid approximation.

Run with ``PYTHONPATH=src python examples/threshold_sweep_backends.py``.
"""

import numpy as np

from repro.core.params import CPUModelParams
from repro.sweep import PhaseTypeBackend, RenewalBackend, SweepGrid, SweepRunner


def main() -> None:
    # Table 2 parameters with a visible wake-up delay (Tables 4-5 sweep D
    # up to 10 s; 0.05 s keeps the demo chain small)
    params = CPUModelParams.paper_defaults(T=0.3, D=0.05)
    grid = SweepGrid.from_specs(["T=0.1:2.0:20"])  # Figure 4's x-axis

    # -- 1. batched phase-type sweep: the paper's Figure 4, analytically --
    backend = PhaseTypeBackend(params, stages=32)
    metrics = [
        "fraction:standby",
        "fraction:idle",
        "fraction:active",
        "power",
    ]
    result = SweepRunner(backend, metrics).run(grid)
    print(
        result.render(
            title=f"phase-type threshold sweep ({backend.describe()})"
        )
    )

    # -- 2. exact-renewal cross-check: how good is the Erlang expansion? --
    exact = SweepRunner(RenewalBackend(params), ["fraction:standby"]).run(grid)
    gap = np.max(
        np.abs(
            result.column("fraction:standby") - exact.column("fraction:standby")
        )
    )
    print(f"\nmax |phase-type - exact renewal| over the grid: {gap:.2e}")

    # -- 3. transient metrics: what steady state cannot tell you ----------
    transient = SweepRunner(
        backend,
        ["energy@60", "fraction:active@0.5", "time_to_threshold:0.01"],
    ).run(SweepGrid.from_specs(["T=0.1,0.5,2.0"]))
    print()
    print(
        transient.render(
            title="transient view: 60 s energy, early occupancy, settling time"
        )
    )
    print(
        "\nA deployed node starts asleep: until the settling time the "
        "steady-state\npower x time estimate is biased — exactly the "
        "duty-cycle effect the\ntransient metrics quantify per grid point."
    )


if __name__ == "__main__":
    main()
