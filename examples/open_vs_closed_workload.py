#!/usr/bin/env python3
"""Open vs closed workload generators (the paper's Section 4.1 dichotomy).

The paper implements only the open generator; this example builds both and
shows where they diverge.  The same CPU (paper parameters) is driven by:

- an **open Poisson** workload at rate λ (interrupt-driven sensing),
- a **bursty open MMPP** workload with the same long-run rate
  (quiet monitoring punctuated by event storms),
- a **closed** workload whose population/think time produce a comparable
  throughput (fixed-interval duty-cycling per §4.1).

The punchline: with equal average rates, burstiness shifts time from
standby+powerup into queueing, and the closed loop self-throttles (a busy
CPU delays the next submission), so its power state mix is gentler.

Run with::

    python examples/open_vs_closed_workload.py
"""

from repro.core import CPUEventSimulator, CPUModelParams, energy_joules
from repro.experiments import format_table
from repro.workload import ClosedCPUSimulator, ClosedWorkload, MMPPProcess
from repro.des import Exponential

HORIZON = 20_000.0
WARMUP = 500.0


def main() -> None:
    params = CPUModelParams.paper_defaults(T=0.3, D=0.3)
    rows = []

    # 1. open Poisson (the paper's generator)
    poisson_res = CPUEventSimulator(params, seed=11).run(HORIZON, WARMUP)
    rows.append(("open: Poisson(1.0)", poisson_res.fractions,
                 poisson_res.mean_latency))

    # 2. open MMPP with the same mean rate but cv^2 >> 1
    mmpp = MMPPProcess(rates=[0.2, 1.8], switch_rates=[0.05, 0.05])
    assert abs(mmpp.mean_rate() - params.arrival_rate) < 1e-9
    mmpp_res = CPUEventSimulator(
        params, seed=12, arrival_process=mmpp
    ).run(HORIZON, WARMUP)
    rows.append(("open: MMPP (bursty, same rate)", mmpp_res.fractions,
                 mmpp_res.mean_latency))

    # 3. closed population tuned to a similar throughput
    workload = ClosedWorkload(n_clients=1, think_time=Exponential(1.0))
    closed_res = ClosedCPUSimulator(params, workload, seed=13).run(
        HORIZON, WARMUP
    )
    rows.append(
        (f"closed: 1 client, think ~ Exp(1)  "
         f"(throughput {closed_res.effective_arrival_rate:.2f}/s)",
         closed_res.fractions, closed_res.mean_latency)
    )

    table = []
    for name, fractions, latency in rows:
        pct = fractions.as_percent_dict()
        table.append([
            name, pct["idle"], pct["standby"], pct["powerup"], pct["active"],
            latency,
            energy_joules(fractions, params.profile, 1000.0),
        ])
    print(format_table(
        ["workload", "idle %", "standby %", "powerup %", "active %",
         "latency (s)", "energy (J/1000s)"],
        table,
        title="Same CPU (T = 0.3 s, D = 0.3 s), three workload generators",
    ))
    print(
        "\nObservations:\n"
        "- The MMPP's quiet phases push the CPU into standby noticeably more"
        " (and cut\n  power-up time: bursts share one wake-up where Poisson"
        " arrivals each pay\n  their own), so the bursty workload burns ~10%"
        " less energy at the same rate.\n"
        "- The closed generator cannot submit while waiting, so load"
        " self-throttles;\n  with one client there is never queueing —"
        " latency is service plus wake-up,\n  and throughput drops below the"
        " nominal rate.\n"
        "- Energy follows the state mix (eq. 25); none of these differences"
        " are visible\n  to the paper's Markov model, which is wedded to"
        " Poisson arrivals."
    )


if __name__ == "__main__":
    main()
