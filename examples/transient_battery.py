#!/usr/bin/env python3
"""Transient analysis: from cold start to steady state, to battery-empty.

The paper's models are steady-state; a deployed node starts from a known
state (CPU asleep, fresh battery).  This example uses the phase-type
transient solver to show:

1. the state-occupancy trajectory from standby to the stationary mix,
2. how quickly "steady-state power x time" becomes an accurate energy
   estimate (the validity window of the paper's eq. 25),
3. coin-cell time-to-empty for a burst-heavy duty cycle, with the
   transient correction vs the naive steady-state division.

Run with::

    python examples/transient_battery.py
"""

import numpy as np

from repro.core import CPUModelParams, ExactRenewalModel, TransientEnergyModel
from repro.experiments import ascii_plot, format_table
from repro.wsn import Battery


def occupancy_trajectory() -> None:
    print("=" * 70)
    print("1. Cold-start trajectory (T = 0.3 s, D = 0.3 s)")
    print("=" * 70)
    params = CPUModelParams.paper_defaults(T=0.3, D=0.3)
    model = TransientEnergyModel(params, stages=16)
    curve = model.curve(horizon=20.0, n_points=40)
    print(ascii_plot(
        curve.times,
        {
            "standby": 100.0 * curve.occupancy["standby"],
            "idle": 100.0 * curve.occupancy["idle"],
            "powerup": 100.0 * curve.occupancy["powerup"],
            "active": 100.0 * curve.occupancy["active"],
        },
        title="expected state occupancy (%) after a cold start",
        x_label="time since deployment (s)",
        width=56,
        height=12,
    ))
    exact = ExactRenewalModel(params).solve().fractions()
    final = curve.occupancy_at(len(curve.times) - 1)
    print(
        f"\nAt t = 20 s the trajectory sits {100 * final.l1_distance(exact):.2f} "
        "percentage points\n(summed) from the stationary mix — the cold-start "
        "transient lasts a few\nregeneration cycles "
        f"(mean cycle: {ExactRenewalModel(params).solve().mean_cycle_length:.2f} s)."
    )


def eq25_validity_window() -> None:
    print()
    print("=" * 70)
    print("2. When does eq. 25 (steady power x time) become accurate?")
    print("=" * 70)
    params = CPUModelParams.paper_defaults(T=0.3, D=0.3)
    model = TransientEnergyModel(params, stages=16)
    curve = model.curve(horizon=200.0, n_points=80)
    rel = curve.relative_transient_error()
    rows = []
    for target in (0.10, 0.05, 0.01):
        above = np.where(rel > target)[0]
        t_ok = curve.times[above[-1] + 1] if above.size else 0.0
        rows.append([f"{target:.0%}", t_ok])
    print(format_table(
        ["relative energy error below", "after time (s)"],
        rows,
        float_fmt="{:.1f}",
    ))
    print(
        "\nThe paper's 1000 s horizon is comfortably inside the region where "
        "the\nsteady-state energy equation is exact to well under a percent."
    )


def coin_cell_lifetime() -> None:
    print()
    print("=" * 70)
    print("3. Coin-cell time-to-empty, transient-corrected")
    print("=" * 70)
    params = CPUModelParams.paper_defaults(T=0.3, D=0.3)
    model = TransientEnergyModel(params, stages=16)
    battery = Battery.coin_cell()
    budget = battery.energy_joules
    steady_w = ExactRenewalModel(params).energy_rate_mw() / 1000.0
    naive = budget / steady_w
    corrected = model.time_to_empty(budget)
    print(format_table(
        ["method", "lifetime (hours)"],
        [
            ["steady-state division", naive / 3600.0],
            ["transient-corrected", corrected / 3600.0],
        ],
        float_fmt="{:.3f}",
    ))
    print(
        "\nFor realistic budgets the correction is tiny (the transient lasts "
        "seconds,\nthe battery hours) — quantified evidence that the paper's "
        "steady-state\ntreatment is the right tool for lifetime questions."
    )


if __name__ == "__main__":
    occupancy_trajectory()
    eq25_validity_window()
    coin_cell_lifetime()
