#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 net, then the full CPU model three ways.

Run with::

    python examples/quickstart.py

Part 1 builds the two-place/one-transition net of the paper's Figure 1 and
simulates it — the "hello world" of the Petri engine.  Part 2 solves the
actual CPU energy model with the three approaches the paper compares
(simulation, Markov closed forms, Petri net) plus the library's exact
renewal solution, and prints the steady-state percentages side by side.
"""

from repro.core import (
    CPUEventSimulator,
    CPUModelParams,
    ExactRenewalModel,
    MarkovSupplementaryModel,
    PetriCPUModel,
    energy_joules,
)
from repro.des import Exponential
from repro.experiments import format_table
from repro.petri import PetriNet, PetriNetSimulator, to_dot


def figure1_demo() -> None:
    """The paper's Figure 1: one token, one exponential transition."""
    print("=" * 70)
    print("Part 1 — Figure 1: the simplest timed Petri net")
    print("=" * 70)

    net = PetriNet("figure1")
    net.add_place("P0", initial=1)
    net.add_place("P1")
    net.add_timed_transition("T0", Exponential(rate=1.0))
    net.add_input_arc("P0", "T0")
    net.add_output_arc("T0", "P1")

    result = PetriNetSimulator(net, seed=2008).run(horizon=100.0)
    print(f"mean tokens in P0 over 100 s: {result.mean_tokens('P0'):.4f}")
    print(f"mean tokens in P1 over 100 s: {result.mean_tokens('P1'):.4f}")
    print(f"T0 fired {result.firing_counts['T0']} time(s)")
    print("\nGraphviz DOT of the net (paste into any DOT renderer):\n")
    print(to_dot(net))


def cpu_model_demo() -> None:
    """The paper's CPU model, solved four ways."""
    print()
    print("=" * 70)
    print("Part 2 — the CPU energy model (paper Tables 2-3 parameters)")
    print("=" * 70)

    params = CPUModelParams.paper_defaults(T=0.3, D=0.001)
    print(
        f"lambda = {params.arrival_rate}/s, mu = {params.service_rate}/s, "
        f"T = {params.power_down_threshold} s, D = {params.power_up_delay} s\n"
    )

    markov = MarkovSupplementaryModel(params).solve().fractions()
    exact = ExactRenewalModel(params).solve().fractions()
    sim = CPUEventSimulator(params, seed=1).run(horizon=20_000.0, warmup=500.0)
    petri = PetriCPUModel(params, seed=2).run(horizon=20_000.0, warmup=500.0)

    rows = []
    for name, f in [
        ("simulation", sim.fractions),
        ("markov (paper eq. 17-19)", markov),
        ("petri net (paper fig. 3)", petri.fractions),
        ("exact renewal (extension)", exact),
    ]:
        pct = f.as_percent_dict()
        energy = energy_joules(f, params.profile, 1000.0)
        rows.append(
            [name, pct["idle"], pct["standby"], pct["powerup"],
             pct["active"], energy]
        )
    print(
        format_table(
            ["model", "idle %", "standby %", "powerup %", "active %",
             "energy (J/1000s)"],
            rows,
        )
    )
    print(
        "\nAll four agree at D = 0.001 s — exactly the paper's Figure 4/5 "
        "regime.\nRe-run with D = 10.0 in the source to watch the Markov "
        "approximation collapse\nwhile the Petri net stays truthful "
        "(the paper's Table 4)."
    )


if __name__ == "__main__":
    figure1_demo()
    cpu_model_demo()
