#!/usr/bin/env python3
"""WSN node lifetime exploration — the paper's motivating scenario.

A surveillance node senses at a configurable rate; each event costs a CPU
job and a radio report.  This example uses the CPU energy model to answer
the questions a deployment engineer actually asks:

1. How long does a node live on a pair of AA cells, per processor?
2. How does the Power Down Threshold change node lifetime?
3. Where is the lifetime bottleneck in a 8-node collection tree?

Run with::

    python examples/wsn_node_lifetime.py
"""

from repro.core import CPUModelParams
from repro.experiments import format_table
from repro.wsn import (
    Battery,
    CC2420,
    DutyCycledRadio,
    MSP430,
    SensorNetwork,
    SensorNode,
    processor_profiles,
)


def per_processor_lifetimes() -> None:
    print("=" * 70)
    print("1. Node lifetime by processor (sensing 0.1 events/s, 2xAA)")
    print("=" * 70)
    rows = []
    for name, profile in processor_profiles().items():
        params = CPUModelParams(
            arrival_rate=0.1,
            service_rate=10.0,
            power_down_threshold=0.1,
            power_up_delay=0.01,
            profile=profile,
        )
        node = SensorNode(
            cpu_params=params,
            radio=DutyCycledRadio(CC2420, listen_duty_cycle=0.01),
            battery=Battery.aa_pair(),
        )
        r = node.report()
        rows.append(
            [name, r.cpu_power_mw, r.radio_power_mw, r.total_power_mw,
             r.lifetime_days]
        )
    print(format_table(
        ["processor", "cpu mW", "radio mW", "total mW", "lifetime (days)"],
        rows,
    ))
    print(
        "\nThe PXA271 (the paper's processor) is an application-class part; "
        "mote-class\nMCUs live orders of magnitude longer at this duty "
        "cycle — which is why the\npaper's power-down modeling matters "
        "most for beefier processors."
    )


def threshold_tradeoff() -> None:
    print()
    print("=" * 70)
    print("2. Power Down Threshold vs lifetime (PXA271, sensing 0.5/s)")
    print("=" * 70)
    rows = []
    for T in (0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0):
        params = CPUModelParams.paper_defaults(T=T, D=0.001)
        params = CPUModelParams(
            arrival_rate=0.5,
            service_rate=10.0,
            power_down_threshold=T,
            power_up_delay=0.001,
            profile=params.profile,
        )
        node = SensorNode(cpu_params=params, radio=None,
                          battery=Battery.aa_pair())
        r = node.report()
        rows.append([T, r.cpu_power_mw, r.lifetime_days])
    print(format_table(
        ["threshold T (s)", "cpu mW", "lifetime (days)"], rows
    ))
    print(
        "\nIdle burns 88 mW vs 17 mW standby and the wake-up penalty at "
        "D = 1 ms is\nnegligible, so aggressive power-down (small T) "
        "always wins here — the\nquantitative version of the paper's "
        "Figure 5 upward slope."
    )


def collection_tree_bottleneck() -> None:
    print()
    print("=" * 70)
    print("3. 8-node collection tree: who dies first?")
    print("=" * 70)
    params = CPUModelParams(
        arrival_rate=0.05,
        service_rate=10.0,
        power_down_threshold=0.1,
        power_up_delay=0.01,
        profile=MSP430,
    )
    network = SensorNetwork.collection_tree(
        n_nodes=8,
        sensing_rate=0.05,
        cpu_params=params,
        radio=DutyCycledRadio(CC2420, listen_duty_cycle=0.005),
        battery=Battery.aa_pair(),
    )
    report = network.report()
    rows = [
        [name, r.cpu_power_mw, r.radio_power_mw, r.lifetime_days]
        for name, r in sorted(report.node_reports.items())
    ]
    print(format_table(
        ["node (node01 = next to sink)", "cpu mW", "radio mW",
         "lifetime (days)"],
        rows,
    ))
    print(
        f"\nBottleneck: {report.bottleneck_node()} "
        f"(first death after {report.first_death_days:.0f} days; "
        f"the leaf lives {report.last_death_days:.0f})."
        "\nRelay load concentrates drain next to the sink — the classic "
        "WSN energy hole."
    )


if __name__ == "__main__":
    per_processor_lifetimes()
    threshold_tradeoff()
    collection_tree_bottleneck()
