#!/usr/bin/env python3
"""Answering the paper's closing question with phase-type expansion.

The paper concludes: "If an effective method of modeling constant delays in
Markov chains can be derived, the Markov model may very well become the
modeling method of choice."

This example *is* that method: replace each constant delay with an Erlang-k
chain of exponential stages (same mean, variance shrinking as 1/k).  The
resulting CTMC is solved exactly by sparse linear algebra — no simulation —
and converges to the true (renewal-reward) solution as k grows.

The table prints, for each Power Up Delay of the paper's Table 4, the
summed-state error (percentage points, vs the exact solution) of:

- the paper's supplementary-variable closed forms,
- Erlang-k phase-type chains for k = 1, 4, 16, 64,

plus the solve time and chain size, so the accuracy/cost trade-off is
explicit.

Run with::

    python examples/fixing_the_markov_model.py
"""

import time

from repro.core import (
    CPUModelParams,
    ExactRenewalModel,
    MarkovSupplementaryModel,
    PhaseTypeModel,
)
from repro.experiments import format_table


def main() -> None:
    T = 0.3
    stages = (1, 4, 16, 64)
    rows = []
    for D in (0.001, 0.3, 10.0):
        params = CPUModelParams.paper_defaults(T=T, D=D)
        exact = ExactRenewalModel(params).solve().fractions()
        supp = MarkovSupplementaryModel(params).solve().fractions()
        row = [D, 100.0 * supp.l1_distance(exact)]
        for k in stages:
            t0 = time.perf_counter()
            sol = PhaseTypeModel(params, stages=k).solve()
            elapsed = 1000.0 * (time.perf_counter() - t0)
            row.append(100.0 * sol.fractions.l1_distance(exact))
        rows.append(row)

    headers = ["D (s)", "paper eq.17-19"] + [f"Erlang-{k}" for k in stages]
    print(format_table(
        headers,
        rows,
        title=(
            "Summed-state error vs exact solution (percentage points), "
            f"T = {T} s"
        ),
        float_fmt="{:.4f}",
    ))

    sol64 = PhaseTypeModel(
        CPUModelParams.paper_defaults(T=T, D=10.0), stages=64
    ).solve()
    print(
        f"\nErlang-64 chain at D = 10 s: {sol64.n_states} states, "
        f"truncation mass {sol64.truncation_mass:.1e}."
    )
    print(
        "\nEven one exponential stage (Erlang-1) beats the supplementary-"
        "variable\napproximation at large D, and k = 64 is within ~0.01 "
        "points of exact —\nso yes: with stage expansion, a Markov chain "
        "handles the constant delays\nthe paper struggled with, at zero "
        "simulation cost."
    )


if __name__ == "__main__":
    main()
