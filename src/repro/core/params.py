"""Model parameters, power profiles, and the shared result type.

Everything the paper's three models consume lives here:

- :class:`PowerProfile` — per-state power draw (the paper's Table 3, Intel
  PXA271 numbers from Jung et al.),
- :class:`CPUModelParams` — arrival/service rates and the two deterministic
  delays (the paper's Table 2 plus the swept Power Down Threshold / Power
  Up Delay),
- :class:`StateFractions` — one steady-state answer: the fraction of time
  spent in each of the four CPU power states (Figure 4's y-axis, divided
  by 100).

Note on Table 2
---------------
The paper lists "Service Rate .1 per sec" next to "Arrival Rate 1 per sec".
Taken literally that gives utilisation ``rho = 10`` — an unstable queue —
while the paper's own Figure 4 shows the Active percentage flat at ~10 %,
which is exactly ``rho = 0.1``.  We therefore read the entry as *mean
service time 0.1 s*, i.e. a service **rate** of 10 jobs/s, and record the
interpretation here and in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable

__all__ = [
    "PowerProfile",
    "PXA271",
    "CPUModelParams",
    "StateFractions",
    "STATE_NAMES",
]

#: Canonical order of CPU power states used throughout the library.
STATE_NAMES = ("idle", "standby", "powerup", "active")


@dataclass(frozen=True)
class PowerProfile:
    """Per-state power consumption in milliwatts.

    The defaults mirror the paper's Table 3 (Intel PXA271): standby 17 mW,
    idle 88 mW, powering up 192.442 mW, active 193 mW.
    """

    name: str
    standby_mw: float
    idle_mw: float
    powerup_mw: float
    active_mw: float

    def __post_init__(self) -> None:
        for label, value in (
            ("standby_mw", self.standby_mw),
            ("idle_mw", self.idle_mw),
            ("powerup_mw", self.powerup_mw),
            ("active_mw", self.active_mw),
        ):
            if value < 0.0 or not math.isfinite(value):
                raise ValueError(f"{label} must be finite and >= 0, got {value}")

    def as_dict(self) -> Dict[str, float]:
        """Power per state keyed by the canonical state names."""
        return {
            "idle": self.idle_mw,
            "standby": self.standby_mw,
            "powerup": self.powerup_mw,
            "active": self.active_mw,
        }

    def average_power_mw(self, fractions: "StateFractions") -> float:
        """Occupancy-weighted mean power (the bracket of the paper's eq. 25)."""
        return (
            fractions.idle * self.idle_mw
            + fractions.standby * self.standby_mw
            + fractions.powerup * self.powerup_mw
            + fractions.active * self.active_mw
        )


#: The paper's Table 3 — Intel PXA271 power rates.
PXA271 = PowerProfile(
    name="PXA271",
    standby_mw=17.0,
    idle_mw=88.0,
    powerup_mw=192.442,
    active_mw=193.0,
)


@dataclass(frozen=True)
class StateFractions:
    """Steady-state fraction of time in each CPU power state.

    All four fields are in ``[0, 1]`` and (for a consistent model) sum to 1.
    """

    idle: float
    standby: float
    powerup: float
    active: float

    def __post_init__(self) -> None:
        for name in STATE_NAMES:
            v = getattr(self, name)
            if not math.isfinite(v):
                raise ValueError(f"{name} fraction is not finite: {v}")

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in STATE_NAMES}

    def as_percent_dict(self) -> Dict[str, float]:
        """Percent units — what the paper's Figure 4 plots."""
        return {name: 100.0 * getattr(self, name) for name in STATE_NAMES}

    def total(self) -> float:
        return self.idle + self.standby + self.powerup + self.active

    def l1_distance(self, other: "StateFractions") -> float:
        """Sum over states of |difference| (in *fraction* units).

        Multiplied by 100 this is the per-threshold quantity averaged in the
        paper's Table 4.
        """
        return sum(
            abs(getattr(self, n) - getattr(other, n)) for n in STATE_NAMES
        )

    @staticmethod
    def mean(items: Iterable["StateFractions"]) -> "StateFractions":
        """Pointwise average (across replications)."""
        items = list(items)
        if not items:
            raise ValueError("need at least one StateFractions")
        n = len(items)
        return StateFractions(
            idle=sum(f.idle for f in items) / n,
            standby=sum(f.standby for f in items) / n,
            powerup=sum(f.powerup for f in items) / n,
            active=sum(f.active for f in items) / n,
        )


@dataclass(frozen=True)
class CPUModelParams:
    """Full parameterisation of the CPU power-management model.

    Attributes
    ----------
    arrival_rate:
        Poisson job arrival rate λ (jobs/s).  Paper Table 2: 1.0.
    service_rate:
        Exponential service rate μ (jobs/s).  Paper Table 2 (interpreted,
        see module docstring): 10.0.
    power_down_threshold:
        Constant idle time T (s) after which the CPU drops to standby —
        the swept variable of Figures 4–5.
    power_up_delay:
        Constant wake-up time D (s) — 0.001 / 0.3 / 10.0 in Tables 4–5.
    profile:
        Per-state power draw, defaults to the PXA271.
    """

    arrival_rate: float = 1.0
    service_rate: float = 10.0
    power_down_threshold: float = 0.1
    power_up_delay: float = 0.001
    profile: PowerProfile = field(default=PXA271)

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0.0 or not math.isfinite(self.arrival_rate):
            raise ValueError(f"arrival_rate must be > 0, got {self.arrival_rate}")
        if self.service_rate <= 0.0 or not math.isfinite(self.service_rate):
            raise ValueError(f"service_rate must be > 0, got {self.service_rate}")
        if self.utilization >= 1.0:
            raise ValueError(
                f"unstable system: rho = {self.utilization:.4g} >= 1 "
                "(arrival_rate must be < service_rate)"
            )
        if self.power_down_threshold < 0.0 or not math.isfinite(
            self.power_down_threshold
        ):
            raise ValueError("power_down_threshold must be finite and >= 0")
        if self.power_up_delay < 0.0 or not math.isfinite(self.power_up_delay):
            raise ValueError("power_up_delay must be finite and >= 0")

    @property
    def utilization(self) -> float:
        """``rho = lambda / mu``."""
        return self.arrival_rate / self.service_rate

    @property
    def mean_service_time(self) -> float:
        return 1.0 / self.service_rate

    @property
    def mean_interarrival_time(self) -> float:
        return 1.0 / self.arrival_rate

    def with_threshold(self, T: float) -> "CPUModelParams":
        """Copy with a new Power Down Threshold (sweep helper)."""
        return replace(self, power_down_threshold=T)

    def with_powerup_delay(self, D: float) -> "CPUModelParams":
        """Copy with a new Power Up Delay (sweep helper)."""
        return replace(self, power_up_delay=D)

    @classmethod
    def paper_defaults(cls, T: float = 0.1, D: float = 0.001) -> "CPUModelParams":
        """Table 2 parameters: λ = 1/s, mean service 0.1 s (μ = 10/s)."""
        return cls(
            arrival_rate=1.0,
            service_rate=10.0,
            power_down_threshold=T,
            power_up_delay=D,
            profile=PXA271,
        )


#: The paper's Table 2 total simulated time (seconds).
PAPER_TOTAL_SIMULATED_TIME = 1000.0
