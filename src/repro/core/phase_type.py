"""Phase-type (Erlang-k) CTMC approximation of the deterministic delays.

The paper's conclusion wishes for "an effective method of modeling constant
delays in Markov chains".  The classical answer is stage expansion: replace
each deterministic delay by an Erlang-k distribution with the same mean —
a chain of k exponential stages.  The resulting process *is* Markov, so the
whole model becomes a finite CTMC solvable by linear algebra, and as
``k → ∞`` the Erlang delay converges (in distribution) to the constant it
approximates.

This module builds that CTMC over the states

- ``standby``                       (queue empty, CPU asleep)
- ``(powerup, j, n)``               wake-up stage ``j = 1..k_D``, ``n ≥ 1`` jobs
- ``(busy, n)``                     serving, ``n ≥ 1`` jobs in system
- ``(idle, i)``                     queue empty, idle-timer stage ``i = 1..k_T``

with the queue truncated at ``n_max`` (truncation mass is reported so users
can verify it is negligible).  ``k = 1`` is the naive "make everything
exponential" Markov model — a useful baseline showing *why* the paper needed
supplementary variables — and ``k ≈ 64`` is numerically indistinguishable
from the exact renewal solution (a convergence the test suite asserts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
from scipy import sparse

from repro.core.params import CPUModelParams, PowerProfile, StateFractions
from repro.markov.ctmc import sparse_steady_state

__all__ = [
    "PhaseTypeSolution",
    "PhaseTypeModel",
    "RATE_ARRIVAL",
    "RATE_SERVICE",
    "RATE_POWERUP_STAGE",
    "RATE_IDLE_STAGE",
    "build_stage_structure",
    "stacked_rate_data",
    "stage_rate_vector",
    "state_power_vector",
]

State = Tuple

#: Symbolic rate slots of the stage-expanded chain: bind concrete values
#: with ``rate_vec = [lam, mu, k_d / D, k_t / T]`` and ``rate_vec[rate_ids]``.
RATE_ARRIVAL, RATE_SERVICE, RATE_POWERUP_STAGE, RATE_IDLE_STAGE = range(4)


def build_stage_structure(
    k_d: int,
    k_t: int,
    n_max: int,
    has_powerup: bool = True,
    has_idle: bool = True,
) -> Tuple[List[State], Dict[State, int], np.ndarray, np.ndarray, np.ndarray]:
    """Rate-independent skeleton of the Erlang-stage CPU chain.

    Returns ``(states, index, rows, cols, rate_ids)``: the state list, its
    position index, and COO triplets whose data slot is a *symbolic* rate id
    (one of the ``RATE_*`` constants) rather than a number.  The sparsity
    pattern depends only on the stage counts and the truncation level, never
    on the rates, so one structure serves every point of a parameter sweep
    — bind a concrete generator with ``rate_vec[rate_ids]``.
    """
    states: List[State] = [("standby",)]
    if has_powerup:
        for j in range(1, k_d + 1):
            for n in range(1, n_max + 1):
                states.append(("powerup", j, n))
    for n in range(1, n_max + 1):
        states.append(("busy", n))
    if has_idle:
        for i in range(1, k_t + 1):
            states.append(("idle", i))
    index = {s: i for i, s in enumerate(states)}

    rows: List[int] = []
    cols: List[int] = []
    ids: List[int] = []

    def add(src: State, dst: State, rate_id: int) -> None:
        rows.append(index[src])
        cols.append(index[dst])
        ids.append(rate_id)

    # standby: an arrival wakes the CPU
    first_after_sleep: State = ("powerup", 1, 1) if has_powerup else ("busy", 1)
    add(("standby",), first_after_sleep, RATE_ARRIVAL)

    if has_powerup:
        for j in range(1, k_d + 1):
            for n in range(1, n_max + 1):
                if n < n_max:
                    add(("powerup", j, n), ("powerup", j, n + 1), RATE_ARRIVAL)
                if j < k_d:
                    add(("powerup", j, n), ("powerup", j + 1, n), RATE_POWERUP_STAGE)
                else:
                    add(("powerup", j, n), ("busy", n), RATE_POWERUP_STAGE)

    for n in range(1, n_max + 1):
        if n < n_max:
            add(("busy", n), ("busy", n + 1), RATE_ARRIVAL)
        if n >= 2:
            add(("busy", n), ("busy", n - 1), RATE_SERVICE)
        else:
            after_empty: State = ("idle", 1) if has_idle else ("standby",)
            add(("busy", 1), after_empty, RATE_SERVICE)

    if has_idle:
        for i in range(1, k_t + 1):
            add(("idle", i), ("busy", 1), RATE_ARRIVAL)
            if i < k_t:
                add(("idle", i), ("idle", i + 1), RATE_IDLE_STAGE)
            else:
                add(("idle", i), ("standby",), RATE_IDLE_STAGE)

    return (
        states,
        index,
        np.asarray(rows, dtype=np.intp),
        np.asarray(cols, dtype=np.intp),
        np.asarray(ids, dtype=np.intp),
    )


def stage_rate_vector(
    params: CPUModelParams, k_d: int, k_t: int
) -> np.ndarray:
    """Concrete values for the four ``RATE_*`` slots under *params*.

    The single source of truth for how CPU parameters bind to the stage
    structure's symbolic slots (a zero delay zeroes its slot — the
    matching state block is absent from the structure then).
    """
    D, T = params.power_up_delay, params.power_down_threshold
    return np.array(
        [
            params.arrival_rate,
            params.service_rate,
            k_d / D if D > 0.0 else 0.0,
            k_t / T if T > 0.0 else 0.0,
        ]
    )


def stacked_rate_data(
    A_G: np.ndarray, A_c0: np.ndarray, rate_stack: np.ndarray
) -> np.ndarray:
    """Materialise *every* grid point's system numbers in one GEMM.

    The augmented steady-state system of the stage-expanded chain is an
    affine map of the four symbolic rates: for one point,
    ``A.data = A_G @ rate_vec + A_c0`` with ``A_G`` of shape
    ``(nnz, 4)``.  Stacking ``B`` grid points' rate vectors as
    ``rate_stack`` of shape ``(B, 4)`` turns the whole batch's assembly
    into a single matrix product::

        data_stack = rate_stack @ A_G.T + A_c0          # (B, nnz)

    Row ``k`` of the result is exactly the data slot the pointwise path
    would have produced for point ``k`` — same floats, same order — so
    downstream block-diagonal solves are bit-identical per block to the
    pointwise solves.  Cost is one ``(B, 4) x (4, nnz)`` GEMM: the
    per-point Python assembly loop disappears entirely.
    """
    rate_stack = np.ascontiguousarray(rate_stack, dtype=np.float64)
    if rate_stack.ndim != 2 or rate_stack.shape[1] != A_G.shape[1]:
        raise ValueError(
            f"rate_stack must be (B, {A_G.shape[1]}), got {rate_stack.shape}"
        )
    return rate_stack @ A_G.T + A_c0


def state_power_vector(states: List[State], profile: PowerProfile) -> np.ndarray:
    """Per-state power draw (mW) over a stage-structure state list."""
    by_kind = {
        "standby": profile.standby_mw,
        "powerup": profile.powerup_mw,
        "busy": profile.active_mw,
        "idle": profile.idle_mw,
    }
    return np.array([by_kind[s[0]] for s in states])


@dataclass(frozen=True)
class PhaseTypeSolution:
    """Solved phase-type chain."""

    fractions: StateFractions
    mean_jobs: float
    truncation_mass: float  # stationary probability of the clipped top level
    n_states: int
    stages_powerup: int
    stages_idle: int


class PhaseTypeModel:
    """Erlang-stage CTMC for the power-managed CPU.

    Parameters
    ----------
    params:
        Model parameters.
    stages:
        Number of Erlang stages ``k`` for *both* deterministic delays
        (individual overrides via ``stages_powerup`` / ``stages_idle``).
    n_max:
        Queue truncation level; ``None`` picks one from the offered load
        and the expected power-up backlog ``λD``.
    """

    def __init__(
        self,
        params: CPUModelParams,
        stages: int = 32,
        stages_powerup: int | None = None,
        stages_idle: int | None = None,
        n_max: int | None = None,
    ) -> None:
        if stages < 1:
            raise ValueError("stages must be >= 1")
        self.params = params
        self.k_d = int(stages_powerup if stages_powerup is not None else stages)
        self.k_t = int(stages_idle if stages_idle is not None else stages)
        if self.k_d < 1 or self.k_t < 1:
            raise ValueError("stage counts must be >= 1")
        if n_max is None:
            lam = params.arrival_rate
            rho = params.utilization
            backlog = lam * params.power_up_delay
            mm1_tail = int(math.ceil(math.log(1e-10) / math.log(max(rho, 1e-6))))
            n_max = int(backlog + 10.0 * math.sqrt(backlog + 1.0)) + mm1_tail + 10
        if n_max < 2:
            raise ValueError("n_max must be >= 2")
        self.n_max = int(n_max)

    # ------------------------------------------------------------------ #
    @property
    def _has_powerup(self) -> bool:
        return self.params.power_up_delay > 0.0

    @property
    def _has_idle(self) -> bool:
        return self.params.power_down_threshold > 0.0

    def _build_states(self) -> Tuple[List[State], Dict[State, int]]:
        states, index, *_ = build_stage_structure(
            self.k_d, self.k_t, self.n_max, self._has_powerup, self._has_idle
        )
        return states, index

    def rate_vector(self) -> np.ndarray:
        """Concrete rates for the ``RATE_*`` slots of the stage structure."""
        return stage_rate_vector(self.params, self.k_d, self.k_t)

    def build_generator(self) -> Tuple[List[State], sparse.csr_matrix]:
        """The states and sparse generator of the stage-expanded chain."""
        states, _, rows, cols, rate_ids = build_stage_structure(
            self.k_d, self.k_t, self.n_max, self._has_powerup, self._has_idle
        )
        n_states = len(states)
        vals = self.rate_vector()[rate_ids]
        Q = sparse.coo_matrix(
            (vals, (rows, cols)), shape=(n_states, n_states)
        ).tocsr()
        out_rates = np.asarray(Q.sum(axis=1)).ravel()
        return states, (Q - sparse.diags(out_rates)).tocsr()

    def solve(self) -> PhaseTypeSolution:
        """Assemble the sparse generator and solve ``pi Q = 0``."""
        states, Q = self.build_generator()
        n_states = len(states)
        pi, _ = sparse_steady_state(Q)

        idle = standby = powerup = active = 0.0
        mean_jobs = 0.0
        trunc = 0.0
        for s, prob in zip(states, pi):
            kind = s[0]
            if kind == "standby":
                standby += prob
            elif kind == "powerup":
                powerup += prob
                mean_jobs += prob * s[2]
                if s[2] == self.n_max:
                    trunc += prob
            elif kind == "busy":
                active += prob
                mean_jobs += prob * s[1]
                if s[1] == self.n_max:
                    trunc += prob
            else:
                idle += prob

        return PhaseTypeSolution(
            fractions=StateFractions(
                idle=idle, standby=standby, powerup=powerup, active=active
            ),
            mean_jobs=mean_jobs,
            truncation_mass=trunc,
            n_states=n_states,
            stages_powerup=self.k_d if self._has_powerup else 0,
            stages_idle=self.k_t if self._has_idle else 0,
        )

    def mean_latency(self) -> float:
        """Mean time in system via Little's law on the truncated chain."""
        return self.solve().mean_jobs / self.params.arrival_rate
