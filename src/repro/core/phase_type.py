"""Phase-type (Erlang-k) CTMC approximation of the deterministic delays.

The paper's conclusion wishes for "an effective method of modeling constant
delays in Markov chains".  The classical answer is stage expansion: replace
each deterministic delay by an Erlang-k distribution with the same mean —
a chain of k exponential stages.  The resulting process *is* Markov, so the
whole model becomes a finite CTMC solvable by linear algebra, and as
``k → ∞`` the Erlang delay converges (in distribution) to the constant it
approximates.

This module builds that CTMC over the states

- ``standby``                       (queue empty, CPU asleep)
- ``(powerup, j, n)``               wake-up stage ``j = 1..k_D``, ``n ≥ 1`` jobs
- ``(busy, n)``                     serving, ``n ≥ 1`` jobs in system
- ``(idle, i)``                     queue empty, idle-timer stage ``i = 1..k_T``

with the queue truncated at ``n_max`` (truncation mass is reported so users
can verify it is negligible).  ``k = 1`` is the naive "make everything
exponential" Markov model — a useful baseline showing *why* the paper needed
supplementary variables — and ``k ≈ 64`` is numerically indistinguishable
from the exact renewal solution (a convergence the test suite asserts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from repro.core.params import CPUModelParams, StateFractions

__all__ = ["PhaseTypeSolution", "PhaseTypeModel"]

State = Tuple


@dataclass(frozen=True)
class PhaseTypeSolution:
    """Solved phase-type chain."""

    fractions: StateFractions
    mean_jobs: float
    truncation_mass: float  # stationary probability of the clipped top level
    n_states: int
    stages_powerup: int
    stages_idle: int


class PhaseTypeModel:
    """Erlang-stage CTMC for the power-managed CPU.

    Parameters
    ----------
    params:
        Model parameters.
    stages:
        Number of Erlang stages ``k`` for *both* deterministic delays
        (individual overrides via ``stages_powerup`` / ``stages_idle``).
    n_max:
        Queue truncation level; ``None`` picks one from the offered load
        and the expected power-up backlog ``λD``.
    """

    def __init__(
        self,
        params: CPUModelParams,
        stages: int = 32,
        stages_powerup: int | None = None,
        stages_idle: int | None = None,
        n_max: int | None = None,
    ) -> None:
        if stages < 1:
            raise ValueError("stages must be >= 1")
        self.params = params
        self.k_d = int(stages_powerup if stages_powerup is not None else stages)
        self.k_t = int(stages_idle if stages_idle is not None else stages)
        if self.k_d < 1 or self.k_t < 1:
            raise ValueError("stage counts must be >= 1")
        if n_max is None:
            lam = params.arrival_rate
            rho = params.utilization
            backlog = lam * params.power_up_delay
            mm1_tail = int(math.ceil(math.log(1e-10) / math.log(max(rho, 1e-6))))
            n_max = int(backlog + 10.0 * math.sqrt(backlog + 1.0)) + mm1_tail + 10
        if n_max < 2:
            raise ValueError("n_max must be >= 2")
        self.n_max = int(n_max)

    # ------------------------------------------------------------------ #
    def _build_states(self) -> Tuple[List[State], Dict[State, int]]:
        states: List[State] = [("standby",)]
        T = self.params.power_down_threshold
        D = self.params.power_up_delay
        if D > 0.0:
            for j in range(1, self.k_d + 1):
                for n in range(1, self.n_max + 1):
                    states.append(("powerup", j, n))
        for n in range(1, self.n_max + 1):
            states.append(("busy", n))
        if T > 0.0:
            for i in range(1, self.k_t + 1):
                states.append(("idle", i))
        return states, {s: i for i, s in enumerate(states)}

    def solve(self) -> PhaseTypeSolution:
        """Assemble the sparse generator and solve ``pi Q = 0``."""
        p = self.params
        lam, mu = p.arrival_rate, p.service_rate
        T, D = p.power_down_threshold, p.power_up_delay
        has_pu = D > 0.0
        has_idle = T > 0.0
        rate_d = self.k_d / D if has_pu else 0.0
        rate_t = self.k_t / T if has_idle else 0.0
        n_max = self.n_max

        states, index = self._build_states()
        n_states = len(states)
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []

        def add(src: State, dst: State, rate: float) -> None:
            rows.append(index[src])
            cols.append(index[dst])
            vals.append(rate)

        # standby: an arrival wakes the CPU
        first_after_sleep: State = ("powerup", 1, 1) if has_pu else ("busy", 1)
        add(("standby",), first_after_sleep, lam)

        if has_pu:
            for j in range(1, self.k_d + 1):
                for n in range(1, n_max + 1):
                    if n < n_max:
                        add(("powerup", j, n), ("powerup", j, n + 1), lam)
                    if j < self.k_d:
                        add(("powerup", j, n), ("powerup", j + 1, n), rate_d)
                    else:
                        add(("powerup", j, n), ("busy", n), rate_d)

        for n in range(1, n_max + 1):
            if n < n_max:
                add(("busy", n), ("busy", n + 1), lam)
            if n >= 2:
                add(("busy", n), ("busy", n - 1), mu)
            else:
                after_empty: State = ("idle", 1) if has_idle else ("standby",)
                add(("busy", 1), after_empty, mu)

        if has_idle:
            for i in range(1, self.k_t + 1):
                add(("idle", i), ("busy", 1), lam)
                if i < self.k_t:
                    add(("idle", i), ("idle", i + 1), rate_t)
                else:
                    add(("idle", i), ("standby",), rate_t)

        Q = sparse.coo_matrix(
            (vals, (rows, cols)), shape=(n_states, n_states)
        ).tocsr()
        out_rates = np.asarray(Q.sum(axis=1)).ravel()
        Q = Q - sparse.diags(out_rates)

        # pi Q = 0 with normalisation: replace the last column of Q^T
        A = Q.transpose().tolil()
        A[-1, :] = 1.0
        b = np.zeros(n_states)
        b[-1] = 1.0
        pi = spsolve(A.tocsc(), b)
        pi = np.clip(pi, 0.0, None)
        pi /= pi.sum()

        idle = standby = powerup = active = 0.0
        mean_jobs = 0.0
        trunc = 0.0
        for s, prob in zip(states, pi):
            kind = s[0]
            if kind == "standby":
                standby += prob
            elif kind == "powerup":
                powerup += prob
                mean_jobs += prob * s[2]
                if s[2] == self.n_max:
                    trunc += prob
            elif kind == "busy":
                active += prob
                mean_jobs += prob * s[1]
                if s[1] == self.n_max:
                    trunc += prob
            else:
                idle += prob

        return PhaseTypeSolution(
            fractions=StateFractions(
                idle=idle, standby=standby, powerup=powerup, active=active
            ),
            mean_jobs=mean_jobs,
            truncation_mass=trunc,
            n_states=n_states,
            stages_powerup=self.k_d if has_pu else 0,
            stages_idle=self.k_t if has_idle else 0,
        )

    def mean_latency(self) -> float:
        """Mean time in system via Little's law on the truncated chain."""
        return self.solve().mean_jobs / self.params.arrival_rate
