"""Energy accounting — the paper's Equations 24 and 25.

Equation 25 is the workhorse: total energy is the occupancy-weighted mean
power times the observation time.  Power rates are milliwatts (Table 3
units) and durations are seconds, so energies come out in **millijoules /
1000 = Joules**; this module keeps the conversion in exactly one place.

Equation 24 is the Markov-model variant that replaces wall-clock time with
the derived "total running time" ``(N + L(1)^2)/λ`` of Equation 23; it is
implemented on :class:`~repro.core.markov_supplementary.MarkovSupplementaryModel`
and re-exported here for discoverability.
"""

from __future__ import annotations

from typing import Dict

from repro.core.params import PowerProfile, StateFractions

__all__ = [
    "average_power_mw",
    "energy_joules",
    "energy_breakdown_joules",
    "battery_lifetime_seconds",
]


def average_power_mw(fractions: StateFractions, profile: PowerProfile) -> float:
    """Occupancy-weighted mean power draw in milliwatts."""
    return profile.average_power_mw(fractions)


def energy_joules(
    fractions: StateFractions, profile: PowerProfile, duration_s: float
) -> float:
    """Paper eq. 25: ``E = Σ_state fraction·power × duration`` in Joules."""
    if duration_s < 0.0:
        raise ValueError("duration must be >= 0")
    return average_power_mw(fractions, profile) * duration_s / 1000.0


def energy_breakdown_joules(
    fractions: StateFractions, profile: PowerProfile, duration_s: float
) -> Dict[str, float]:
    """Per-state energy contributions (sums to :func:`energy_joules`)."""
    if duration_s < 0.0:
        raise ValueError("duration must be >= 0")
    powers = profile.as_dict()
    occ = fractions.as_dict()
    return {
        state: powers[state] * occ[state] * duration_s / 1000.0
        for state in powers
    }


def battery_lifetime_seconds(
    fractions: StateFractions, profile: PowerProfile, battery_joules: float
) -> float:
    """Expected lifetime of a battery with *battery_joules* of energy.

    The WSN motivation of the paper: a node's lifetime is its energy budget
    divided by the model's average power.
    """
    if battery_joules <= 0.0:
        raise ValueError("battery capacity must be > 0")
    power_w = average_power_mw(fractions, profile) / 1000.0
    if power_w <= 0.0:
        return float("inf")
    return battery_joules / power_w
