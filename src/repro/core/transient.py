"""Transient analysis: energy and battery depletion over finite horizons.

The paper analyses only the steady state.  A deployed node, however, starts
from a known state (fresh battery, CPU asleep) and its *finite-horizon*
energy differs from `steady-state power x time` while the initial transient
decays.  This module answers the transient questions:

- expected state occupancy over ``[0, t]`` starting from standby
  (phase-type CTMC + uniformization),
- expected energy consumed by time ``t`` (accumulated reward),
- battery depletion curves and time-to-empty, including the crossover
  time after which the steady-state approximation is accurate.

Everything is analytical — the same phase-type chain used by
:mod:`repro.core.phase_type`, evaluated transiently — so these curves are
noise-free and fast enough to embed in design-space sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np
from scipy.sparse.linalg import expm_multiply

from repro.core.exact_renewal import ExactRenewalModel
from repro.core.params import CPUModelParams, StateFractions
from repro.core.phase_type import PhaseTypeModel, state_power_vector

__all__ = ["TransientCurve", "TransientEnergyModel"]


@dataclass(frozen=True)
class TransientCurve:
    """Expected occupancy and cumulative energy at a grid of times."""

    times: np.ndarray
    occupancy: Dict[str, np.ndarray]  # state -> fraction at each time
    cumulative_energy_joules: np.ndarray
    steady_state_power_mw: float

    def occupancy_at(self, index: int) -> StateFractions:
        return StateFractions(
            idle=float(self.occupancy["idle"][index]),
            standby=float(self.occupancy["standby"][index]),
            powerup=float(self.occupancy["powerup"][index]),
            active=float(self.occupancy["active"][index]),
        )

    def relative_transient_error(self) -> np.ndarray:
        """|E(t) - steady_rate * t| / (steady_rate * t) at each grid time.

        Shows how quickly `power x time` becomes a valid approximation.
        """
        steady = self.steady_state_power_mw * self.times / 1000.0
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = np.abs(self.cumulative_energy_joules - steady) / steady
        rel[self.times == 0.0] = 0.0
        return rel


class TransientEnergyModel:
    """Finite-horizon analysis of the power-managed CPU.

    Parameters
    ----------
    params:
        CPU parameters.
    stages:
        Erlang stages for the two constant delays (accuracy knob, as in
        :class:`~repro.core.phase_type.PhaseTypeModel`).
    """

    def __init__(self, params: CPUModelParams, stages: int = 16) -> None:
        self.params = params
        self.model = PhaseTypeModel(params, stages=stages)
        self._states, self._Q = self.model.build_generator()
        self._index = {s: i for i, s in enumerate(self._states)}
        self._power_vector = state_power_vector(self._states, params.profile)

    def _initial_distribution(self) -> np.ndarray:
        p0 = np.zeros(len(self._states))
        p0[self._index[("standby",)]] = 1.0
        return p0

    # ------------------------------------------------------------------ #
    def occupancy_at(self, t: float) -> StateFractions:
        """Expected state fractions at time *t* starting from standby."""
        if t < 0.0:
            raise ValueError("t must be >= 0")
        p0 = self._initial_distribution()
        if t == 0.0:
            pt = p0
        else:
            pt = expm_multiply((self._Q.T * t).tocsc(), p0)
            pt = np.clip(pt, 0.0, None)
        return self._collapse(pt)

    def _collapse(self, pt: np.ndarray) -> StateFractions:
        acc = {"idle": 0.0, "standby": 0.0, "powerup": 0.0, "active": 0.0}
        for i, s in enumerate(self._states):
            kind = s[0]
            if kind == "busy":
                acc["active"] += pt[i]
            elif kind == "powerup":
                acc["powerup"] += pt[i]
            elif kind == "standby":
                acc["standby"] += pt[i]
            else:
                acc["idle"] += pt[i]
        total = sum(acc.values())
        return StateFractions(**{k: v / total for k, v in acc.items()})

    def curve(self, horizon: float, n_points: int = 50) -> TransientCurve:
        """Occupancy and cumulative energy on an evenly spaced grid.

        Cumulative energy integrates the instantaneous expected power with
        the trapezoid rule on the same grid (the integrand is smooth).
        """
        if horizon <= 0.0:
            raise ValueError("horizon must be > 0")
        if n_points < 2:
            raise ValueError("n_points must be >= 2")
        times = np.linspace(0.0, horizon, n_points)
        p0 = self._initial_distribution()
        # expm_multiply evaluates the action of exp(Q^T t) on p0 over the grid
        trajectory = expm_multiply(
            self._Q.T, p0, start=0.0, stop=horizon, num=n_points
        )
        occupancy = {
            k: np.zeros(n_points) for k in ("idle", "standby", "powerup", "active")
        }
        power_t = np.zeros(n_points)
        for row in range(n_points):
            pt = np.clip(trajectory[row], 0.0, None)
            pt = pt / pt.sum()
            f = self._collapse(pt)
            occupancy["idle"][row] = f.idle
            occupancy["standby"][row] = f.standby
            occupancy["powerup"][row] = f.powerup
            occupancy["active"][row] = f.active
            power_t[row] = float(pt @ self._power_vector)
        cumulative = np.concatenate(
            ([0.0], np.cumsum(np.diff(times) * 0.5 * (power_t[1:] + power_t[:-1])))
        ) / 1000.0
        steady_mw = ExactRenewalModel(self.params).energy_rate_mw()
        return TransientCurve(
            times=times,
            occupancy=occupancy,
            cumulative_energy_joules=cumulative,
            steady_state_power_mw=steady_mw,
        )

    # ------------------------------------------------------------------ #
    def time_to_empty(
        self,
        battery_joules: float,
        tolerance: float = 1e-3,
    ) -> float:
        """Expected time until *battery_joules* have been consumed.

        Uses the steady-state rate with a transient correction: solves
        ``E(t) = battery`` on the transient curve when the budget empties
        inside the transient window, otherwise extrapolates at the exact
        steady-state rate (valid because the transient bias decays).
        """
        if battery_joules <= 0.0:
            raise ValueError("battery capacity must be > 0")
        steady_w = ExactRenewalModel(self.params).energy_rate_mw() / 1000.0
        rough = battery_joules / steady_w
        # transient window: several regeneration cycles
        window = min(
            rough,
            10.0 * ExactRenewalModel(self.params).solve().mean_cycle_length,
        )
        curve = self.curve(max(window, 1e-6), n_points=64)
        consumed = curve.cumulative_energy_joules
        if consumed[-1] >= battery_joules:
            # empties inside the window: invert the curve by interpolation
            return float(
                np.interp(battery_joules, consumed, curve.times)
            )
        remaining = battery_joules - float(consumed[-1])
        return float(curve.times[-1]) + remaining / steady_w
