"""The paper's Petri net CPU model (Figure 3, Table 1).

Net structure, reconstructed from the paper's Figure 3 and the nine-step
walk-through in Section 4.2:

========  =========================================================
Place     Role
========  =========================================================
P0        arrival generator ready (1 token initially)
P1        freshly generated job, awaiting dispatch by T1
CPU_Buffer queued jobs
P6        "a job arrived" notification used to wake the CPU
Stand_By  CPU asleep (1 token initially)
Power_Up  CPU waking up (the text's "P7")
CPU_ON    CPU powered on (idle or busy)
Idle      server free (1 token initially; a lock, not the idle state)
Active    job in service
========  =========================================================

Transitions follow Table 1 exactly:

==========  =============  ========  ========================================
Transition  Distribution   Priority  Arcs
==========  =============  ========  ========================================
AR          exp(λ)         —         P0 → AR → P1
T1          immediate      4         P1 → T1 → {P0, P6, CPU_Buffer}
T6          immediate      3         {Stand_By, P6} → T6 → {Power_Up, P6}
T5          immediate      2         {P6, CPU_ON} → T5 → CPU_ON
T2          immediate      1         {CPU_Buffer, CPU_ON, Idle} → T2 →
                                     {Active, CPU_ON}
PUT         det(D)         —         {Power_Up, P6} → PUT → CPU_ON
SR          exp(μ)         —        Active → SR → Idle
PDT         det(T)         —         CPU_ON → PDT → Stand_By,
                                     inhibitors from Active and CPU_Buffer
==========  =============  ========  ========================================

The two deterministic transitions use the RESAMPLE memory policy: PDT's
idle clock restarts whenever a job interrupts it — the paper's "if the time
between jobs exceeds the Power Down Threshold" semantics.

Structural invariants (asserted in the test suite):
``Stand_By + Power_Up + CPU_ON = 1`` and ``Idle + Active = 1`` in every
reachable marking, so time-averaged token counts of ``Stand_By``,
``Power_Up`` and ``Active`` *are* the paper's steady-state percentages, and
the idle percentage is the time average of "CPU_ON with no Active token".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.params import CPUModelParams, StateFractions
from repro.des.distributions import Deterministic, Exponential
from repro.des.random_streams import StreamManager
from repro.petri.net import PetriNet
from repro.petri.simulator import PetriNetSimulator, SimulationResult
from repro.petri.transitions import MemoryPolicy

__all__ = [
    "build_cpu_net",
    "describe_transitions",
    "PetriCPUResult",
    "PetriCPUModel",
]

#: Degenerate deterministic delays are replaced by this tiny positive value;
#: the paper sweeps T from exactly 0, where a zero-delay timed transition
#: would be an immediate transition in disguise.
_MIN_DELAY = 1e-9


@dataclass(frozen=True)
class PetriCPUResult:
    """State fractions measured from the net plus raw token statistics."""

    fractions: StateFractions
    raw: SimulationResult

    @property
    def jobs_in_system(self) -> float:
        """Mean jobs in the system: queued plus in service."""
        return self.raw.mean_tokens("CPU_Buffer") + self.raw.mean_tokens("Active")

    @property
    def throughput(self) -> float:
        """Served jobs per unit time (Service_Rate firings)."""
        return self.raw.throughput("SR")


def build_cpu_net(
    params: CPUModelParams, buffer_capacity: Optional[int] = None
) -> PetriNet:
    """Construct the Figure 3 EDSPN for the given parameters.

    ``buffer_capacity`` optionally bounds ``CPU_Buffer`` (capacity
    semantics: arrivals block while the buffer is full).  The paper's net
    is open/unbounded — simulation handles that fine — but reachability
    analysis and CTMC export need a finite state space, so the analytical
    variants (e.g. :func:`repro.sweep.nets.build_cpu_gspn_net`) pass a
    bound here.
    """
    T = max(params.power_down_threshold, _MIN_DELAY)
    D = max(params.power_up_delay, _MIN_DELAY)

    net = PetriNet("cpu_fig3")
    net.add_place("P0", initial=1)
    net.add_place("P1")
    net.add_place("CPU_Buffer", capacity=buffer_capacity)
    net.add_place("P6")
    net.add_place("Stand_By", initial=1)
    net.add_place("Power_Up")
    net.add_place("CPU_ON")
    net.add_place("Idle", initial=1)
    net.add_place("Active")

    # workload generator (open workload: T1 immediately re-arms AR via P0)
    net.add_timed_transition("AR", Exponential(params.arrival_rate))
    net.add_input_arc("P0", "AR")
    net.add_output_arc("AR", "P1")

    net.add_immediate_transition("T1", priority=4)
    net.add_input_arc("P1", "T1")
    net.add_output_arc("T1", "P0")
    net.add_output_arc("T1", "P6")
    net.add_output_arc("T1", "CPU_Buffer")

    # wake-up path
    net.add_immediate_transition("T6", priority=3)
    net.add_input_arc("Stand_By", "T6")
    net.add_input_arc("P6", "T6")
    net.add_output_arc("T6", "Power_Up")
    net.add_output_arc("T6", "P6")

    net.add_timed_transition(
        "PUT", Deterministic(D), memory_policy=MemoryPolicy.RESAMPLE
    )
    net.add_input_arc("Power_Up", "PUT")
    net.add_input_arc("P6", "PUT")
    net.add_output_arc("PUT", "CPU_ON")

    # notification disposal while the CPU is already on
    net.add_immediate_transition("T5", priority=2)
    net.add_input_arc("P6", "T5")
    net.add_input_arc("CPU_ON", "T5")
    net.add_output_arc("T5", "CPU_ON")

    # service path
    net.add_immediate_transition("T2", priority=1)
    net.add_input_arc("CPU_Buffer", "T2")
    net.add_input_arc("CPU_ON", "T2")
    net.add_input_arc("Idle", "T2")
    net.add_output_arc("T2", "Active")
    net.add_output_arc("T2", "CPU_ON")

    net.add_timed_transition("SR", Exponential(params.service_rate))
    net.add_input_arc("Active", "SR")
    net.add_output_arc("SR", "Idle")

    # power-down with the paper's inverse-logic (inhibitor) arcs
    net.add_timed_transition(
        "PDT", Deterministic(T), memory_policy=MemoryPolicy.RESAMPLE
    )
    net.add_input_arc("CPU_ON", "PDT")
    net.add_inhibitor_arc("Active", "PDT")
    net.add_inhibitor_arc("CPU_Buffer", "PDT")
    net.add_output_arc("PDT", "Stand_By")

    return net


def describe_transitions(params: Optional[CPUModelParams] = None) -> List[Dict[str, str]]:
    """The paper's Table 1 as structured rows (used by the table1 experiment)."""
    if params is None:
        params = CPUModelParams.paper_defaults()
    return [
        {"transition": "AR", "firing_distribution": "Exponential",
         "delay": f"Arrivals (rate {params.arrival_rate:g}/s)", "priority": "NA"},
        {"transition": "T1", "firing_distribution": "Instantaneous",
         "delay": "-", "priority": "4"},
        {"transition": "T2", "firing_distribution": "Instantaneous",
         "delay": "-", "priority": "1"},
        {"transition": "SR", "firing_distribution": "Exponential",
         "delay": f"ServiceRate (rate {params.service_rate:g}/s)", "priority": "NA"},
        {"transition": "PDT", "firing_distribution": "Deterministic",
         "delay": f"PDD = {params.power_down_threshold:g} s", "priority": "NA"},
        {"transition": "T5", "firing_distribution": "Instantaneous",
         "delay": "-", "priority": "2"},
        {"transition": "T6", "firing_distribution": "Instantaneous",
         "delay": "-", "priority": "3"},
        {"transition": "PUT", "firing_distribution": "Deterministic",
         "delay": f"PUD = {params.power_up_delay:g} s", "priority": "NA"},
    ]


class PetriCPUModel:
    """Runs the Figure 3 net and extracts the paper's statistics.

    The paper: "computing the average number of tokens in places during the
    simulation time results in the steady state percentage of time the CPU
    spends in the corresponding state".  Concretely:

    - standby  = mean tokens in ``Stand_By``
    - powerup  = mean tokens in ``Power_Up``
    - active   = mean tokens in ``Active``
    - idle     = mean of the indicator "``CPU_ON`` marked and ``Active``
      empty" (equivalently ``mean(CPU_ON) - mean(Active)`` by the
      ``Idle + Active = 1`` invariant)
    """

    def __init__(
        self,
        params: CPUModelParams,
        streams: Optional[StreamManager] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.params = params
        self.net = build_cpu_net(params)
        self.streams = streams if streams is not None else StreamManager(seed)

    def _make_simulator(self) -> PetriNetSimulator:
        sim = PetriNetSimulator(self.net, streams=self.streams)
        compiled = self.net.compile()
        i_on = compiled.place_names.index("CPU_ON")
        i_active = compiled.place_names.index("Active")
        sim.watch(
            "idle_state",
            lambda m, _on=i_on, _act=i_active: 1.0 if m[_on] >= 1 and m[_act] == 0 else 0.0,
        )
        return sim

    def run(self, horizon: float, warmup: float = 0.0) -> PetriCPUResult:
        """One simulation run of the net."""
        raw = self._make_simulator().run(horizon=horizon, warmup=warmup)
        fractions = StateFractions(
            idle=raw.watcher("idle_state"),
            standby=raw.mean_tokens("Stand_By"),
            powerup=raw.mean_tokens("Power_Up"),
            active=raw.mean_tokens("Active"),
        )
        return PetriCPUResult(fractions=fractions, raw=raw)

    def run_replicated(
        self, horizon: float, n_replications: int, warmup: float = 0.0
    ) -> PetriCPUResult:
        """Average fractions over independent replications.

        Replication *i* uses streams derived from ``(seed, i)`` via
        :meth:`StreamManager.for_replication`, so results are reproducible
        and order-independent.
        """
        if n_replications < 1:
            raise ValueError("n_replications must be >= 1")
        base = self.streams
        results = []
        for i in range(n_replications):
            self.streams = base.for_replication(i)
            results.append(self.run(horizon=horizon, warmup=warmup))
        self.streams = base
        fractions = StateFractions.mean(r.fractions for r in results)
        return PetriCPUResult(fractions=fractions, raw=results[-1].raw)
