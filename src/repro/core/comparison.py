"""Multi-model comparison — the machinery behind Figures 4–5 and Tables 4–5.

:func:`run_threshold_sweep` evaluates any subset of the five models
(simulation, Markov, Petri net, exact renewal, phase-type) over a grid of
Power Down Thresholds at a fixed Power Up Delay, mirroring the paper's
experimental design.  :func:`delta_state_percent` and :func:`delta_energy`
then compute the Δ statistics of Tables 4 and 5:

- Table 4 reports, for each model pair, the *average Δ steady-state
  percentage*: at every threshold we take the absolute percentage-point
  difference in each of the four states, sum over the states, and average
  over the threshold grid (this reading reproduces the magnitude of the
  paper's numbers — e.g. ≈ 100 percentage points for Sim–Markov at
  D = 10 s, where the Markov utilisation alone is ~25 points off).
- Table 5 does the same with a single scalar per threshold: the absolute
  difference in eq.-25 energy over the paper's 1000 s horizon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.energy import energy_joules
from repro.core.exact_renewal import ExactRenewalModel
from repro.core.markov_supplementary import MarkovSupplementaryModel
from repro.core.params import (
    PAPER_TOTAL_SIMULATED_TIME,
    CPUModelParams,
    StateFractions,
)
from repro.core.petri_cpu import PetriCPUModel
from repro.core.phase_type import PhaseTypeModel
from repro.core.simulation_cpu import (
    fractions_from_summary,
    replicate_cpu_simulation,
)
from repro.des.random_streams import StreamManager

__all__ = [
    "MODEL_NAMES",
    "SweepConfig",
    "SweepResult",
    "run_threshold_sweep",
    "delta_state_percent",
    "delta_energy",
]

#: Models the sweep knows how to run.
MODEL_NAMES = ("simulation", "markov", "petri", "exact", "phase_type")


@dataclass(frozen=True)
class SweepConfig:
    """Accuracy/cost knobs for the stochastic models.

    The defaults favour speed (CI-friendly); the experiment harness raises
    them for publication-quality curves.
    """

    sim_horizon: float = 5_000.0
    sim_warmup: float = 100.0
    sim_replications: int = 5
    petri_horizon: float = 5_000.0
    petri_warmup: float = 100.0
    petri_replications: int = 3
    phase_stages: int = 32
    seed: int = 20080901  # ICPP 2008 vintage
    n_jobs: int = 1  # process fan-out for simulation replications


@dataclass
class SweepResult:
    """All models' state fractions over a threshold grid."""

    base_params: CPUModelParams
    power_up_delay: float
    thresholds: List[float]
    fractions: Dict[str, List[StateFractions]] = field(default_factory=dict)

    def models(self) -> List[str]:
        return list(self.fractions)

    def series_percent(self, model: str, state: str) -> np.ndarray:
        """One Figure 4 curve: state percentage vs threshold."""
        return np.array(
            [100.0 * getattr(f, state) for f in self.fractions[model]]
        )

    def energies_joules(
        self, model: str, duration_s: float = PAPER_TOTAL_SIMULATED_TIME
    ) -> np.ndarray:
        """One Figure 5 curve: eq.-25 energy vs threshold."""
        profile = self.base_params.profile
        return np.array(
            [
                energy_joules(f, profile, duration_s)
                for f in self.fractions[model]
            ]
        )


def _solve_one(
    model: str,
    params: CPUModelParams,
    config: SweepConfig,
    point_index: int,
) -> StateFractions:
    """Evaluate one model at one parameter point."""
    if model == "markov":
        return MarkovSupplementaryModel(params).solve().fractions()
    if model == "exact":
        return ExactRenewalModel(params).solve().fractions()
    if model == "phase_type":
        return PhaseTypeModel(params, stages=config.phase_stages).solve().fractions
    if model == "simulation":
        summary = replicate_cpu_simulation(
            params,
            horizon=config.sim_horizon,
            n_replications=config.sim_replications,
            seed=config.seed + point_index,
            warmup=config.sim_warmup,
            n_jobs=config.n_jobs,
        )
        return fractions_from_summary(summary)
    if model == "petri":
        streams = StreamManager(config.seed + 7919 * (point_index + 1))
        model_obj = PetriCPUModel(params, streams=streams)
        return model_obj.run_replicated(
            horizon=config.petri_horizon,
            n_replications=config.petri_replications,
            warmup=config.petri_warmup,
        ).fractions
    raise ValueError(f"unknown model {model!r}; expected one of {MODEL_NAMES}")


def run_threshold_sweep(
    params: CPUModelParams,
    thresholds: Sequence[float],
    models: Sequence[str] = ("simulation", "markov", "petri"),
    config: Optional[SweepConfig] = None,
) -> SweepResult:
    """Evaluate *models* at every Power Down Threshold in *thresholds*.

    The Power Up Delay and all other parameters are taken from *params*;
    only the threshold varies, exactly as in the paper's Figures 4–5.
    """
    if not thresholds:
        raise ValueError("thresholds must be non-empty")
    for m in models:
        if m not in MODEL_NAMES:
            raise ValueError(f"unknown model {m!r}; expected one of {MODEL_NAMES}")
    cfg = config if config is not None else SweepConfig()
    result = SweepResult(
        base_params=params,
        power_up_delay=params.power_up_delay,
        thresholds=[float(t) for t in thresholds],
        fractions={m: [] for m in models},
    )
    for i, T in enumerate(thresholds):
        point = params.with_threshold(float(T))
        for m in models:
            result.fractions[m].append(_solve_one(m, point, cfg, i))
    return result


def delta_state_percent(
    sweep: SweepResult, model_a: str, model_b: str
) -> float:
    """Table 4 statistic: mean over thresholds of the summed absolute
    per-state percentage difference between two models."""
    fa = sweep.fractions[model_a]
    fb = sweep.fractions[model_b]
    per_point = [100.0 * a.l1_distance(b) for a, b in zip(fa, fb)]
    return float(np.mean(per_point))


def delta_energy(
    sweep: SweepResult,
    model_a: str,
    model_b: str,
    duration_s: float = PAPER_TOTAL_SIMULATED_TIME,
) -> float:
    """Table 5 statistic: mean over thresholds of |ΔE| in Joules."""
    ea = sweep.energies_joules(model_a, duration_s)
    eb = sweep.energies_joules(model_b, duration_s)
    return float(np.mean(np.abs(ea - eb)))


def delta_table(
    sweeps: Dict[float, SweepResult],
    pairs: Sequence[Tuple[str, str]] = (
        ("simulation", "markov"),
        ("simulation", "petri"),
        ("markov", "petri"),
    ),
) -> List[Dict[str, float]]:
    """Rows of Table 4: one row per Power Up Delay, one column per pair."""
    rows: List[Dict[str, float]] = []
    for D in sorted(sweeps):
        row: Dict[str, float] = {"power_up_delay": D}
        for a, b in pairs:
            row[f"{a}-{b}"] = delta_state_percent(sweeps[D], a, b)
        rows.append(row)
    return rows


def energy_delta_table(
    sweeps: Dict[float, SweepResult],
    pairs: Sequence[Tuple[str, str]] = (
        ("simulation", "markov"),
        ("simulation", "petri"),
        ("markov", "petri"),
    ),
    duration_s: float = PAPER_TOTAL_SIMULATED_TIME,
) -> List[Dict[str, float]]:
    """Rows of Table 5: mean |ΔE| per Power Up Delay and model pair."""
    rows: List[Dict[str, float]] = []
    for D in sorted(sweeps):
        row: Dict[str, float] = {"power_up_delay": D}
        for a, b in pairs:
            row[f"{a}-{b}"] = delta_energy(sweeps[D], a, b, duration_s)
        rows.append(row)
    return rows
