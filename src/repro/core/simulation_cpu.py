"""Software simulation of the CPU — the paper's benchmark model.

The paper used a Matlab event simulator as ground truth; this module is its
reproduction, twice over:

- :class:`CPUEventSimulator` — a faithful event-driven simulation on the
  library's DES kernel: Poisson(λ) arrivals, exp(μ) FIFO service, power-down
  after a constant idle threshold ``T``, constant power-up delay ``D``.
- :func:`simulate_job_scan` — an independent, vectorised-input
  implementation that walks pre-drawn arrival/service arrays with a Lindley
  style recursion (one iteration per *job* instead of ~4 heap events), used
  both as the fast path for large sweeps and as a cross-implementation
  consistency check (two independent codebases, same distribution of
  results).

Both start the CPU in standby with an empty queue, exactly like the paper's
Petri net ("Initially, the CPU is in the Stand By mode").
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.core.params import CPUModelParams, StateFractions
from repro.des.distributions import Distribution
from repro.des.engine import Simulator
from repro.des.monitors import StateOccupancyMonitor
from repro.des.random_streams import StreamManager
from repro.des.replication import ReplicationSummary, run_replications
from repro.des.statistics import TallyStatistic, TimeWeightedStatistic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.workload.base import ArrivalProcess

__all__ = [
    "CPUSimulationResult",
    "CPUEventSimulator",
    "simulate_job_scan",
    "simulate_cpu_metrics",
    "replicate_cpu_simulation",
]

_STATES = ("idle", "standby", "powerup", "active")


@dataclass(frozen=True)
class CPUSimulationResult:
    """One simulation run's estimates."""

    fractions: StateFractions
    jobs_arrived: int
    jobs_served: int
    mean_latency: float
    mean_jobs_in_system: float
    horizon: float

    def energy_joules(self, profile=None, duration: Optional[float] = None) -> float:
        """Energy via the paper's eq. 25 over *duration* (default: horizon)."""
        if profile is None:
            raise ValueError("a PowerProfile is required")
        span = self.horizon if duration is None else duration
        return profile.average_power_mw(self.fractions) * span / 1000.0


class CPUEventSimulator:
    """Event-driven CPU simulation (the reference implementation).

    Parameters
    ----------
    params:
        Model parameters.
    streams:
        Random streams; uses the ``"cpu/arrivals"`` and ``"cpu/service"``
        named streams so arrival and service randomness are independent.
    arrival_process:
        Optional :class:`~repro.workload.base.ArrivalProcess` overriding the
        default Poisson(λ) arrivals — this is how MMPP, batch and trace
        workloads are fed through the benchmark simulator.
    service_distribution:
        Optional service-time distribution overriding the default
        exponential with rate μ.
    """

    def __init__(
        self,
        params: CPUModelParams,
        streams: Optional[StreamManager] = None,
        seed: Optional[int] = None,
        arrival_process: Optional["ArrivalProcess"] = None,
        service_distribution: Optional[Distribution] = None,
    ) -> None:
        self.params = params
        self.streams = streams if streams is not None else StreamManager(seed)
        self.arrival_process = arrival_process
        self.service_distribution = service_distribution

    def run(self, horizon: float, warmup: float = 0.0) -> CPUSimulationResult:
        """Simulate ``[0, horizon]`` and report statistics from *warmup* on."""
        if horizon <= 0.0:
            raise ValueError("horizon must be > 0")
        if not (0.0 <= warmup < horizon):
            raise ValueError("need 0 <= warmup < horizon")
        p = self.params
        lam, mu = p.arrival_rate, p.service_rate
        T, D = p.power_down_threshold, p.power_up_delay
        arr_rng = self.streams.get("cpu/arrivals")
        svc_rng = self.streams.get("cpu/service")
        process = self.arrival_process
        if process is not None:
            process.reset()
        svc_dist = self.service_distribution

        def next_gap() -> float:
            if process is None:
                return float(arr_rng.exponential(1.0 / lam))
            return float(process.next_interarrival(arr_rng))

        def next_service() -> float:
            if svc_dist is None:
                return float(svc_rng.exponential(1.0 / mu))
            return float(svc_dist.sample(svc_rng))

        sim = Simulator()
        monitor = StateOccupancyMonitor(_STATES, "standby")
        queue_stat = TimeWeightedStatistic(0.0)
        latency = TallyStatistic()
        arrival_times: deque[float] = deque()
        state = {"n": 0, "mode": "standby"}
        power_down_event = [None]
        served = [0]
        arrived = [0]
        stats_from = [warmup]

        def in_window() -> bool:
            return sim.now >= stats_from[0]

        def set_mode(mode: str) -> None:
            state["mode"] = mode
            monitor.transition(sim.now, mode)

        def start_service() -> None:
            set_mode("active")
            sim.schedule(next_service(), service_done)

        def service_done() -> None:
            state["n"] -= 1
            queue_stat.update(sim.now, state["n"])
            served[0] += 1
            t_arr = arrival_times.popleft()
            if t_arr >= stats_from[0]:
                latency.record(sim.now - t_arr)
            if state["n"] > 0:
                start_service()
            else:
                set_mode("idle")
                power_down_event[0] = sim.schedule(T, power_down)

        def power_down() -> None:
            power_down_event[0] = None
            set_mode("standby")

        def power_up_done() -> None:
            # power-up is always triggered by an arrival, so the queue
            # cannot be empty here
            assert state["n"] > 0
            start_service()

        def arrival() -> None:
            arrived[0] += 1
            state["n"] += 1
            queue_stat.update(sim.now, state["n"])
            arrival_times.append(sim.now)
            mode = state["mode"]
            if mode == "standby":
                set_mode("powerup")
                sim.schedule(D, power_up_done)
            elif mode == "idle":
                if power_down_event[0] is not None:
                    sim.cancel(power_down_event[0])
                    power_down_event[0] = None
                start_service()
            # active / powerup: the job just queues
            gap = next_gap()
            if math.isfinite(gap):
                sim.schedule(gap, arrival)

        first_gap = next_gap()
        if math.isfinite(first_gap):
            sim.schedule(first_gap, arrival)
        if warmup > 0.0:
            sim.run_until(warmup)
            # restart the statistics at the warm-up point
            occupancy_reset = StateOccupancyMonitor(
                _STATES, state["mode"], start_time=warmup
            )
            monitor = occupancy_reset

            # rebind set_mode's monitor: simplest is to re-register closures
            def set_mode(mode: str, _monitor=monitor) -> None:  # noqa: F811
                state["mode"] = mode
                _monitor.transition(sim.now, mode)

            queue_reset = TimeWeightedStatistic(state["n"], start_time=warmup)
            queue_stat = queue_reset
            latency = TallyStatistic()
            served[0] = 0
            arrived[0] = 0
        sim.run_until(horizon)

        occupancy = monitor.occupancy(horizon)
        fractions = StateFractions(
            idle=occupancy["idle"],
            standby=occupancy["standby"],
            powerup=occupancy["powerup"],
            active=occupancy["active"],
        )
        return CPUSimulationResult(
            fractions=fractions,
            jobs_arrived=arrived[0],
            jobs_served=served[0],
            mean_latency=latency.mean if latency.count else float("nan"),
            mean_jobs_in_system=queue_stat.time_average(horizon),
            horizon=horizon - warmup,
        )


def simulate_job_scan(
    params: CPUModelParams,
    n_jobs: int,
    rng: np.random.Generator,
) -> CPUSimulationResult:
    """Fast job-scan simulation over pre-drawn variates.

    Draws all inter-arrival and service times up front (one NumPy call
    each — see the HPC guide: vectorise the draws, keep the recursion
    tight), then resolves each job's start time with a Lindley-style
    recursion that also books idle / standby / power-up intervals:

    - server busy at arrival (``a_i < d_{i-1}``): job waits, no state gap;
    - server empty, gap ``<= T``: the CPU idled the whole gap;
    - server empty, gap ``> T``: the CPU idled ``T``, slept ``gap - T - …``
      until the arrival, and powered up for ``D`` before serving.

    The trajectory is statistically identical to
    :class:`CPUEventSimulator`'s (the two are cross-checked in the tests),
    but runs one loop iteration per job.
    """
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    p = params
    lam, mu = p.arrival_rate, p.service_rate
    T, D = p.power_down_threshold, p.power_up_delay

    inter = rng.exponential(1.0 / lam, size=n_jobs)
    service = rng.exponential(1.0 / mu, size=n_jobs)
    arrivals = np.cumsum(inter)

    idle_time = 0.0
    standby_time = 0.0
    powerup_time = 0.0
    latency_total = 0.0
    area_jobs = 0.0  # integral of number-in-system (via latencies: L = Σ latency / horizon)

    # CPU starts asleep at t=0: first job always pays the power-up delay.
    prev_departure = 0.0
    asleep = True
    pending_idle_start = 0.0  # time the server went idle (= prev departure)

    for i in range(n_jobs):
        a = arrivals[i]
        if a >= prev_departure:
            gap = a - pending_idle_start if not asleep else 0.0
            if asleep:
                # asleep since max(pending sleep start); standby until a
                standby_time += a - pending_idle_start
                start = a + D
                powerup_time += D
            elif gap > T:
                # idled T, then slept until the arrival
                idle_time += T
                standby_time += gap - T
                start = a + D
                powerup_time += D
            else:
                idle_time += gap
                start = a
        else:
            start = prev_departure
        departure = start + service[i]
        latency_total += departure - a
        prev_departure = departure
        pending_idle_start = departure
        asleep = False

    horizon = prev_departure
    active_time = float(service.sum())
    # after the last departure the CPU idles T then sleeps, but the run ends
    # at the last departure so no tail is booked.
    total = idle_time + standby_time + powerup_time + active_time
    # `total` can differ from horizon only by float rounding
    fractions = StateFractions(
        idle=idle_time / total,
        standby=standby_time / total,
        powerup=powerup_time / total,
        active=active_time / total,
    )
    return CPUSimulationResult(
        fractions=fractions,
        jobs_arrived=n_jobs,
        jobs_served=n_jobs,
        mean_latency=latency_total / n_jobs,
        mean_jobs_in_system=latency_total / horizon,  # Little's law, measured
        horizon=horizon,
    )


# ---------------------------------------------------------------------- #
# replication plumbing (module level so multiprocessing can pickle it)
# ---------------------------------------------------------------------- #
def simulate_cpu_metrics(
    streams: StreamManager,
    params: CPUModelParams,
    horizon: float,
    warmup: float = 0.0,
) -> Dict[str, float]:
    """One replication, returned as a flat metric dict for the runner."""
    result = CPUEventSimulator(params, streams=streams).run(horizon, warmup)
    f = result.fractions
    return {
        "idle": f.idle,
        "standby": f.standby,
        "powerup": f.powerup,
        "active": f.active,
        "mean_latency": result.mean_latency,
        "mean_jobs": result.mean_jobs_in_system,
        "throughput": result.jobs_served / result.horizon,
    }


def replicate_cpu_simulation(
    params: CPUModelParams,
    horizon: float,
    n_replications: int,
    seed: Optional[int] = None,
    warmup: float = 0.0,
    n_jobs: int = 1,
) -> ReplicationSummary:
    """Across-replication summary of the event simulator."""
    return run_replications(
        simulate_cpu_metrics,
        n_replications=n_replications,
        seed=seed,
        n_jobs=n_jobs,
        params=params,
        horizon=horizon,
        warmup=warmup,
    )


def fractions_from_summary(summary: ReplicationSummary) -> StateFractions:
    """Mean state fractions across a replication summary."""
    return StateFractions(
        idle=summary.means["idle"],
        standby=summary.means["standby"],
        powerup=summary.means["powerup"],
        active=summary.means["active"],
    )
