"""Exact renewal-reward solution of the CPU power-management model.

**This model is an extension beyond the paper** — the paper validates its
Markov approximation and Petri net against a stochastic simulation; here we
derive the exact stationary state fractions in closed form, which gives the
library a noise-free ground truth.

Derivation
----------
The process regenerates each time the CPU enters standby.  One cycle:

1. *Standby* until the next Poisson(λ) arrival: mean ``1/λ``.
2. *Power-up* for exactly ``D``.
3. An *on period* that alternates busy (M/M/1 busy periods) and idle
   excursions until some idle excursion reaches length ``T`` with no
   arrival.  An idle excursion ends in power-down with probability
   ``p = e^{-λT}`` independently, so the number of idle excursions per
   cycle is geometric with mean ``e^{λT}``, each lasting
   ``E[min(Exp(λ), T)] = (1 - e^{-λT})/λ`` on average — total expected
   idle time per cycle ``(e^{λT} - 1)/λ``.
4. Work conservation fixes the busy time: every arriving job brings mean
   work ``1/μ``; arrivals occur at rate λ over the whole cycle, so
   ``E[busy] = ρ E[cycle]``.

Solving ``E[cycle] = 1/λ + D + ρ E[cycle] + (e^{λT} - 1)/λ`` gives

``E[cycle] = (λD + e^{λT}) / (λ (1 - ρ))``

and renewal-reward yields the stationary fractions::

    p_standby = (1 - ρ) / (λD + e^{λT})
    p_powerup = λD (1 - ρ) / (λD + e^{λT})
    p_idle    = (e^{λT} - 1)(1 - ρ) / (λD + e^{λT})
    p_active  = ρ                      (exactly)

These sum to one, reduce to the plain M/M/1 values as ``T → ∞``, and agree
with the paper's supplementary-variable approximation to first order in
``λD`` — which is precisely why the paper's Markov model looks fine at
``D = 0.001`` and collapses at ``D = 10`` (its utilisation estimate drifts
from the work-conservation value ρ).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.params import CPUModelParams, StateFractions

__all__ = ["ExactSteadyState", "ExactRenewalModel"]


@dataclass(frozen=True)
class ExactSteadyState:
    """Exact stationary quantities of the power-managed M/M/1 CPU."""

    p_idle: float
    p_standby: float
    p_powerup: float
    utilization: float
    mean_cycle_length: float
    power_down_rate: float  # cycles (= standby entries) per unit time
    jobs_per_cycle: float

    def fractions(self) -> StateFractions:
        return StateFractions(
            idle=self.p_idle,
            standby=self.p_standby,
            powerup=self.p_powerup,
            active=self.utilization,
        )


class ExactRenewalModel:
    """Closed-form exact solution (see module docstring for the derivation)."""

    def __init__(self, params: CPUModelParams) -> None:
        self.params = params

    def solve(self) -> ExactSteadyState:
        """Evaluate the renewal-reward fractions, overflow-free.

        Multiplying numerator and denominator by ``s = e^{-λT}`` turns
        ``λD + e^{λT}`` into ``(λD s + 1)/s``, bounded for any ``T``.
        """
        p = self.params
        lam = p.arrival_rate
        rho = p.utilization
        T, D = p.power_down_threshold, p.power_up_delay

        s = math.exp(-lam * T)
        lam_d = lam * D
        denom = lam_d * s + 1.0  # = s * (λD + e^{λT})

        p_standby = (1.0 - rho) * s / denom
        p_powerup = lam_d * (1.0 - rho) * s / denom
        p_idle = (1.0 - s) * (1.0 - rho) / denom
        utilization = rho

        # E[cycle] = (λD + e^{λT}) / (λ(1-ρ)) = denom / (s λ (1-ρ));
        # for huge λT, s underflows to 0: the CPU never powers down and the
        # cycle length is genuinely infinite.
        if s > 0.0:
            mean_cycle = denom / (s * lam * (1.0 - rho))
        else:
            mean_cycle = math.inf
        return ExactSteadyState(
            p_idle=p_idle,
            p_standby=p_standby,
            p_powerup=p_powerup,
            utilization=utilization,
            mean_cycle_length=mean_cycle,
            power_down_rate=0.0 if math.isinf(mean_cycle) else 1.0 / mean_cycle,
            jobs_per_cycle=lam * mean_cycle,
        )

    # ------------------------------------------------------------------ #
    def energy_rate_mw(self) -> float:
        """Exact long-run average power in milliwatts."""
        st = self.solve()
        return self.params.profile.average_power_mw(st.fractions())

    def energy_joules(self, duration_s: float) -> float:
        """Exact expected energy over *duration_s* seconds (paper eq. 25)."""
        if duration_s < 0.0:
            raise ValueError("duration must be >= 0")
        return self.energy_rate_mw() * duration_s / 1000.0

    def markov_model_bias(self) -> StateFractions:
        """Signed error of the paper's approximation (Markov − exact).

        A diagnostic the paper could not compute without the exact model;
        EXPERIMENTS.md tabulates it next to Tables 4–5.
        """
        from repro.core.markov_supplementary import MarkovSupplementaryModel

        approx = MarkovSupplementaryModel(self.params).solve().fractions()
        exact = self.solve().fractions()
        return StateFractions(
            idle=approx.idle - exact.idle,
            standby=approx.standby - exact.standby,
            powerup=approx.powerup - exact.powerup,
            active=approx.active - exact.active,
        )
