"""The paper's primary contribution: CPU energy models for WSN processors.

Five interchangeable models of the same power-managed CPU (Poisson(λ)
arrivals, exp(μ) service, constant power-down threshold ``T`` and power-up
delay ``D``), each answering "what fraction of time does the CPU spend
idle / standby / powering-up / active, and how much energy does it burn":

===============  ==========================================  ==============
Model            Implementation                              Paper section
===============  ==========================================  ==============
``simulation``   :class:`~repro.core.simulation_cpu.CPUEventSimulator`
                 (event-driven) and
                 :func:`~repro.core.simulation_cpu.simulate_job_scan`
                 (fast job-scan)                              §5 benchmark
``markov``       :class:`~repro.core.markov_supplementary.MarkovSupplementaryModel`
                 — closed forms, eqs. 11–24                   §4.1
``petri``        :class:`~repro.core.petri_cpu.PetriCPUModel`
                 — the Figure 3 EDSPN on the library's
                 Petri engine                                 §4.2
``exact``        :class:`~repro.core.exact_renewal.ExactRenewalModel`
                 — exact renewal-reward closed form           (extension)
``phase_type``   :class:`~repro.core.phase_type.PhaseTypeModel`
                 — Erlang-k stage expansion CTMC              (extension)
===============  ==========================================  ==============

:mod:`repro.core.comparison` sweeps any subset of them over a threshold
grid and computes the paper's Table 4 / Table 5 delta statistics;
:mod:`repro.core.energy` holds the eq.-25 energy accounting.
"""

from repro.core.comparison import (
    MODEL_NAMES,
    SweepConfig,
    SweepResult,
    delta_energy,
    delta_state_percent,
    delta_table,
    energy_delta_table,
    run_threshold_sweep,
)
from repro.core.energy import (
    average_power_mw,
    battery_lifetime_seconds,
    energy_breakdown_joules,
    energy_joules,
)
from repro.core.exact_renewal import ExactRenewalModel, ExactSteadyState
from repro.core.markov_supplementary import (
    MarkovSteadyState,
    MarkovSupplementaryModel,
)
from repro.core.params import (
    PAPER_TOTAL_SIMULATED_TIME,
    PXA271,
    CPUModelParams,
    PowerProfile,
    StateFractions,
)
from repro.core.petri_cpu import (
    PetriCPUModel,
    PetriCPUResult,
    build_cpu_net,
    describe_transitions,
)
from repro.core.phase_type import PhaseTypeModel, PhaseTypeSolution
from repro.core.simulation_cpu import (
    CPUEventSimulator,
    CPUSimulationResult,
    replicate_cpu_simulation,
    simulate_job_scan,
)
from repro.core.transient import TransientCurve, TransientEnergyModel

__all__ = [
    "CPUEventSimulator",
    "CPUModelParams",
    "CPUSimulationResult",
    "ExactRenewalModel",
    "ExactSteadyState",
    "MODEL_NAMES",
    "MarkovSteadyState",
    "MarkovSupplementaryModel",
    "PAPER_TOTAL_SIMULATED_TIME",
    "PXA271",
    "PetriCPUModel",
    "PetriCPUResult",
    "PhaseTypeModel",
    "PhaseTypeSolution",
    "PowerProfile",
    "StateFractions",
    "SweepConfig",
    "SweepResult",
    "TransientCurve",
    "TransientEnergyModel",
    "average_power_mw",
    "battery_lifetime_seconds",
    "build_cpu_net",
    "delta_energy",
    "delta_state_percent",
    "delta_table",
    "describe_transitions",
    "energy_breakdown_joules",
    "energy_delta_table",
    "energy_joules",
    "replicate_cpu_simulation",
    "run_threshold_sweep",
    "simulate_job_scan",
]
