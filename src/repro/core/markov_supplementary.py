"""The paper's Markov model with supplementary variables (Section 4.1).

The CPU is a birth–death chain (Figure 2) with two non-Markovian wrinkles:
the idle→standby transition fires after a *constant* threshold ``T`` and the
power-up takes a *constant* delay ``D``.  The paper handles both with Cox's
method of supplementary variables and derives closed-form stationary
quantities — equations (11) through (24).  This module implements those
equations literally, plus numerically stable rearrangements for large
``λT`` / ``λD`` (the published forms contain ``exp(λT)`` factors that
overflow float64 near ``λT ≈ 710``; dividing numerator and denominator by
``exp(λT)`` removes the hazard without changing any value).

The model is an *approximation*: its utilisation (eq. 19) is
``ρ (e^{λT} + λD) / denom`` which only equals the work-conservation value
``ρ`` when ``denom = e^{λT} + λD``.  The paper's own Tables 4–5 show the
approximation collapsing for ``D = 10``; the exact solution is in
:mod:`repro.core.exact_renewal`, and the two agree to first order in
``λD`` (a property the test suite checks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.params import CPUModelParams, StateFractions

__all__ = ["MarkovSteadyState", "MarkovSupplementaryModel"]


@dataclass(frozen=True)
class MarkovSteadyState:
    """Everything the closed forms yield.

    Attributes mirror the paper's symbols: ``p_idle`` (eq. 12), ``p_standby``
    (eq. 17), ``p_powerup`` (eq. 18), ``utilization`` = G0(1) (eq. 19),
    ``mean_jobs`` = L(1) (eq. 21), ``mean_latency`` = τ (eq. 22).
    """

    p_idle: float
    p_standby: float
    p_powerup: float
    utilization: float
    mean_jobs: float
    mean_latency: float

    def fractions(self) -> StateFractions:
        """The four state fractions (they sum to exactly 1 in this model)."""
        return StateFractions(
            idle=self.p_idle,
            standby=self.p_standby,
            powerup=self.p_powerup,
            active=self.utilization,
        )


class MarkovSupplementaryModel:
    """Evaluates the paper's supplementary-variable closed forms.

    Parameters
    ----------
    params:
        Model parameters; requires ``rho < 1`` (enforced by
        :class:`~repro.core.params.CPUModelParams`).
    """

    def __init__(self, params: CPUModelParams) -> None:
        self.params = params

    # ------------------------------------------------------------------ #
    def solve(self) -> MarkovSteadyState:
        """Evaluate the closed forms in the overflow-free arrangement.

        With ``s = exp(-λT)`` and ``q = 1 - exp(-λD)`` the paper's common
        denominator ``e^{λT} + (1-ρ) q + ρ λ D`` becomes
        ``(1 + s ((1-ρ) q + ρ λ D)) / s``, so every stationary quantity is a
        ratio of bounded terms.
        """
        p = self.params
        lam, mu = p.arrival_rate, p.service_rate
        rho = p.utilization
        T, D = p.power_down_threshold, p.power_up_delay

        s = math.exp(-lam * T)  # e^{-λT}, in (0, 1]
        q = -math.expm1(-lam * D)  # 1 - e^{-λD}, accurate for small λD
        lam_d = lam * D

        denom = 1.0 + s * ((1.0 - rho) * q + rho * lam_d)

        p_standby = (1.0 - rho) * s / denom  # eq. 17
        p_idle = (1.0 - s) * (1.0 - rho) / denom  # eq. 12 (= (e^{λT}-1) p_s)
        p_powerup = (1.0 - rho) * q * s / denom  # eq. 18
        utilization = rho * (1.0 + lam_d * s) / denom  # eq. 19

        # eq. 21: L(1) = ρ/(1-ρ) * (e^{λT} + (1-ρ)λ²D²/2 + (2-ρ)λD) / denom
        mean_jobs = (
            rho
            / (1.0 - rho)
            * (1.0 + s * (0.5 * (1.0 - rho) * lam_d * lam_d + (2.0 - rho) * lam_d))
            / denom
        )
        mean_latency = mean_jobs / lam  # eq. 22 (Little's law)

        return MarkovSteadyState(
            p_idle=p_idle,
            p_standby=p_standby,
            p_powerup=p_powerup,
            utilization=utilization,
            mean_jobs=mean_jobs,
            mean_latency=mean_latency,
        )

    def solve_paper_form(self) -> MarkovSteadyState:
        """Evaluate the equations exactly as printed (eqs. 11–22).

        Overflows for ``λT ≳ 700``; exists so tests can confirm the stable
        arrangement is algebraically identical where both are finite.
        """
        p = self.params
        lam = p.arrival_rate
        rho = p.utilization
        T, D = p.power_down_threshold, p.power_up_delay

        e_lt = math.exp(lam * T)
        e_nld = math.exp(-lam * D)
        denom = e_lt + (1.0 - rho) * (1.0 - e_nld) + rho * lam * D  # eq. 17

        p_standby = (1.0 - rho) / denom
        p_idle = (e_lt - 1.0) * p_standby  # eq. 12
        p_powerup = (1.0 - rho) * (1.0 - e_nld) / denom  # eq. 18
        utilization = rho * (e_lt + lam * D) / denom  # eq. 19
        mean_jobs = (
            rho
            / (1.0 - rho)
            * (e_lt + 0.5 * (1.0 - rho) * (lam * D) ** 2 + (2.0 - rho) * lam * D)
            / denom
        )  # eq. 21
        return MarkovSteadyState(
            p_idle=p_idle,
            p_standby=p_standby,
            p_powerup=p_powerup,
            utilization=utilization,
            mean_jobs=mean_jobs,
            mean_latency=mean_jobs / lam,  # eq. 22
        )

    # ------------------------------------------------------------------ #
    def total_running_time(self, n_jobs: float) -> float:
        """Paper eq. 23: ``T_total = (N + L(1)^2) / λ``."""
        if n_jobs < 0:
            raise ValueError("n_jobs must be >= 0")
        st = self.solve()
        return (n_jobs + st.mean_jobs**2) / self.params.arrival_rate

    def total_energy_joules(self, n_jobs: float) -> float:
        """Paper eq. 24: average power times eq. 23's running time.

        Power rates are milliwatts, so the product is divided by 1000 to
        return Joules.
        """
        st = self.solve()
        avg_mw = self.params.profile.average_power_mw(st.fractions())
        return avg_mw * self.total_running_time(n_jobs) / 1000.0
