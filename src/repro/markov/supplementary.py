"""Cox's method of supplementary variables — reusable primitives.

A Markov chain cannot directly contain a transition that fires a *constant*
time after its state is entered (the sojourn is not memoryless).  Cox (1955)
augments the state with an *age variable* ``x`` recording how long the
deterministic transition has been enabled; the stationary age densities then
satisfy first-order ODEs.  For a deterministic stage of duration ``tau``
whose occupants are removed by an independent Poisson stream of rate ``lam``
(the paper's *idle* stage: an arrival re-activates the CPU before the
power-down timer expires), the density is

``P(x) = P(0) * exp(-lam * x),  0 <= x <= tau``        (paper eqs. 2, 6)

This module packages the quantities that fall out of that density so that
model-level code (``repro.core.markov_supplementary``) reads like the
paper's derivation instead of a wall of ``exp`` calls.  It also covers the
*non-interruptible* flavour (the paper's power-up stage, which always runs
to completion while arrivals accumulate) via the Poisson-count helpers used
in the paper's equations (8)–(9).
"""

from __future__ import annotations

import math
from typing import List

__all__ = ["SupplementaryVariableStage"]


class SupplementaryVariableStage:
    """A deterministic stage of length ``duration`` observed by a Poisson(λ) stream.

    Parameters
    ----------
    duration:
        The deterministic delay ``tau`` (the paper's ``T`` or ``D``).
    hazard_rate:
        Rate ``lam`` of the exponential events competing with (idle stage) or
        accumulating during (power-up stage) the deterministic delay.
    """

    __slots__ = ("duration", "hazard_rate")

    def __init__(self, duration: float, hazard_rate: float) -> None:
        if duration < 0.0 or not math.isfinite(duration):
            raise ValueError(f"duration must be finite and >= 0, got {duration}")
        if hazard_rate <= 0.0 or not math.isfinite(hazard_rate):
            raise ValueError(
                f"hazard rate must be finite and > 0, got {hazard_rate}"
            )
        self.duration = float(duration)
        self.hazard_rate = float(hazard_rate)

    # ------------------------------------------------------------------ #
    # interruptible stage (paper's idle state)
    # ------------------------------------------------------------------ #
    def completion_probability(self) -> float:
        """P(no hazard event during the stage) = ``exp(-lam * tau)``.

        For the idle stage this is the probability the CPU actually powers
        down rather than being re-activated by an arrival.
        """
        return math.exp(-self.hazard_rate * self.duration)

    def interruption_probability(self) -> float:
        """P(a hazard event cuts the stage short)."""
        return -math.expm1(-self.hazard_rate * self.duration)

    def expected_sojourn_interruptible(self) -> float:
        """E[min(Exp(lam), tau)] = ``(1 - exp(-lam tau)) / lam``.

        Expected time spent in the stage when a hazard event terminates it
        early; integrates the age density.
        """
        return self.interruption_probability() / self.hazard_rate

    def stationary_mass_interruptible(self, entry_rate: float) -> float:
        """Stationary probability mass of the stage (renewal reward).

        ``mass = entry_rate * E[sojourn]`` — with ``entry_rate`` the rate at
        which the stage is entered per unit time.  Integrating the paper's
        age density (eq. 1) gives the same expression.
        """
        if entry_rate < 0.0:
            raise ValueError("entry rate must be >= 0")
        return entry_rate * self.expected_sojourn_interruptible()

    def age_density(self, x: float, density_at_zero: float) -> float:
        """The stationary age density ``P(x) = P(0) exp(-lam x)`` on [0, tau]."""
        if not (0.0 <= x <= self.duration):
            raise ValueError(f"age x={x} outside [0, {self.duration}]")
        return density_at_zero * math.exp(-self.hazard_rate * x)

    # ------------------------------------------------------------------ #
    # non-interruptible stage (paper's power-up state)
    # ------------------------------------------------------------------ #
    def expected_sojourn_full(self) -> float:
        """The stage always completes: expected sojourn is just ``tau``."""
        return self.duration

    def stationary_mass_full(self, entry_rate: float) -> float:
        """Stationary mass of a stage that always runs to completion."""
        if entry_rate < 0.0:
            raise ValueError("entry rate must be >= 0")
        return entry_rate * self.duration

    def poisson_count_pmf(self, n: int) -> float:
        """P(exactly *n* hazard arrivals during the full stage).

        ``exp(-lam tau) (lam tau)^n / n!`` — the weights with which the
        paper's equations (8)–(9) seed the busy states after power-up.
        Evaluated in log space for large ``lam * tau``.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        x = self.hazard_rate * self.duration
        if x == 0.0:
            return 1.0 if n == 0 else 0.0
        log_p = -x + n * math.log(x) - math.lgamma(n + 1)
        return math.exp(log_p)

    def poisson_count_pmf_vector(self, n_max: int) -> List[float]:
        """PMF values for ``n = 0..n_max`` (iterative, no cancellation)."""
        if n_max < 0:
            raise ValueError("n_max must be >= 0")
        x = self.hazard_rate * self.duration
        out = [math.exp(-x)]
        for n in range(1, n_max + 1):
            out.append(out[-1] * x / n)
        return out

    def expected_arrivals(self) -> float:
        """Mean hazard arrivals over the full stage: ``lam * tau``."""
        return self.hazard_rate * self.duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SupplementaryVariableStage(duration={self.duration!r}, "
            f"hazard_rate={self.hazard_rate!r})"
        )
