"""Markov-model substrate: CTMC/DTMC numerics and queueing closed forms.

This package supplies the analytical half of the paper's comparison:

- :mod:`repro.markov.ctmc` — continuous-time Markov chains: generator
  matrices, steady-state solution, transient solution by uniformization,
  mean-reward evaluation.
- :mod:`repro.markov.dtmc` — discrete-time chains (used for embedded-chain
  analysis and by the reachability-graph exports).
- :mod:`repro.markov.birth_death` — birth–death chains (the skeleton of the
  paper's Figure 2) with both numerical and closed-form solutions.
- :mod:`repro.markov.queueing` — textbook queueing formulas (M/M/1, M/M/1/K,
  M/M/c, M/G/1, M/D/1, Little's law) used as ground truth in tests.
- :mod:`repro.markov.supplementary` — Cox's method of supplementary
  variables for a single deterministic transition grafted onto a Markov
  chain; the generic machinery behind the paper's Section 4.1 derivation.
"""

from repro.markov.birth_death import BirthDeathChain
from repro.markov.ctmc import (
    CTMC,
    ConvergenceError,
    NumericalSolveError,
    SolverCache,
    gmres_steady_state,
    power_steady_state,
    resolve_steady_state_method,
)
from repro.markov.dtmc import DTMC
from repro.markov.queueing import (
    MachineRepairQueue,
    MD1Queue,
    MG1Queue,
    MM1Queue,
    MM1KQueue,
    MMcQueue,
    little_l,
    little_w,
)
from repro.markov.supplementary import SupplementaryVariableStage

__all__ = [
    "BirthDeathChain",
    "CTMC",
    "ConvergenceError",
    "DTMC",
    "MachineRepairQueue",
    "MD1Queue",
    "MG1Queue",
    "MM1KQueue",
    "MM1Queue",
    "MMcQueue",
    "NumericalSolveError",
    "SolverCache",
    "SupplementaryVariableStage",
    "gmres_steady_state",
    "little_l",
    "little_w",
    "power_steady_state",
    "resolve_steady_state_method",
]
