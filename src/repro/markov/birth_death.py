"""Birth–death chains — the skeleton of the paper's Figure 2.

A birth–death process moves between adjacent integer states ``0..K`` with
level-dependent birth rates ``lambda_n`` and death rates ``mu_n``.  The
stationary distribution has the classical product form

``pi_n = pi_0 * prod_{k=0}^{n-1} lambda_k / mu_{k+1}``

which this module evaluates in log space so long chains with extreme rate
ratios do not overflow.  A :meth:`BirthDeathChain.to_ctmc` export allows the
closed form to be cross-checked against the generic linear-algebra solver —
one of the library's internal consistency tests.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Union

import numpy as np

from repro.markov.ctmc import CTMC

__all__ = ["BirthDeathChain"]

RateSpec = Union[float, Sequence[float], Callable[[int], float]]


def _rates_from_spec(spec: RateSpec, n: int, name: str) -> np.ndarray:
    """Materialise a rate specification into an array of length *n*."""
    if callable(spec):
        rates = np.array([float(spec(i)) for i in range(n)])
    elif np.isscalar(spec):
        rates = np.full(n, float(spec))
    else:
        rates = np.asarray(spec, dtype=np.float64)
        if rates.shape != (n,):
            raise ValueError(f"{name} must have length {n}, got {rates.shape}")
    if np.any(rates < 0.0) or not np.all(np.isfinite(rates)):
        raise ValueError(f"{name} must be finite and >= 0")
    return rates


class BirthDeathChain:
    """Finite birth–death chain on states ``0..capacity``.

    Parameters
    ----------
    capacity:
        Highest state index ``K`` (the chain has ``K+1`` states).
    birth_rates:
        ``lambda_n`` for ``n = 0..K-1`` — scalar, sequence, or callable.
    death_rates:
        ``mu_n`` for ``n = 1..K`` — scalar, sequence (indexed from state 1),
        or callable receiving the state index.
    """

    def __init__(
        self,
        capacity: int,
        birth_rates: RateSpec,
        death_rates: RateSpec,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        if callable(birth_rates):
            self.birth = np.array(
                [float(birth_rates(n)) for n in range(capacity)]
            )
        else:
            self.birth = _rates_from_spec(birth_rates, capacity, "birth_rates")
        if callable(death_rates):
            self.death = np.array(
                [float(death_rates(n)) for n in range(1, capacity + 1)]
            )
        else:
            self.death = _rates_from_spec(death_rates, capacity, "death_rates")
        if np.any(self.death <= 0.0):
            raise ValueError("death rates must be > 0 for states 1..K")

    # ------------------------------------------------------------------ #
    @property
    def n_states(self) -> int:
        return self.capacity + 1

    def stationary_distribution(self) -> np.ndarray:
        """Product-form stationary distribution, evaluated in log space."""
        with np.errstate(divide="ignore"):
            log_ratio = np.log(self.birth) - np.log(self.death)
        # cumulative log products; state 0 has log weight 0
        log_w = np.concatenate(([0.0], np.cumsum(log_ratio)))
        log_w -= log_w.max()  # scale for numerical safety
        w = np.exp(log_w)
        return w / w.sum()

    def mean_population(self) -> float:
        """Steady-state mean state index (mean number in system)."""
        pi = self.stationary_distribution()
        return float(np.arange(self.n_states) @ pi)

    def blocking_probability(self) -> float:
        """Probability of being in the top state (Erlang-B-style blocking)."""
        return float(self.stationary_distribution()[-1])

    def throughput(self) -> float:
        """Steady-state accepted birth rate ``sum_n pi_n lambda_n``."""
        pi = self.stationary_distribution()
        return float(pi[:-1] @ self.birth)

    def to_ctmc(self) -> CTMC:
        """Export as a generic CTMC (for cross-validation)."""
        n = self.n_states
        Q = np.zeros((n, n))
        for i in range(self.capacity):
            Q[i, i + 1] = self.birth[i]
        for i in range(1, n):
            Q[i, i - 1] = self.death[i - 1]
        np.fill_diagonal(Q, -Q.sum(axis=1))
        return CTMC(Q, labels=list(range(n)))

    # ------------------------------------------------------------------ #
    @staticmethod
    def truncation_for_mm1(rho: float, tail_mass: float = 1e-12) -> int:
        """Capacity needed so the truncated M/M/1 misses < *tail_mass*.

        For M/M/1 the stationary tail is ``rho^{K+1}``; solve for K.
        """
        if not (0.0 < rho < 1.0):
            raise ValueError("rho must be in (0, 1)")
        if not (0.0 < tail_mass < 1.0):
            raise ValueError("tail_mass must be in (0, 1)")
        return max(1, int(math.ceil(math.log(tail_mass) / math.log(rho))) + 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BirthDeathChain(capacity={self.capacity})"
