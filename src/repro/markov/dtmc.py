"""Discrete-time Markov chains.

Used for embedded-jump-chain analysis of CTMCs, for the vanishing-marking
elimination step of the Petri net reachability analysis, and directly by
users who want continuous-free chain models.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["DTMC"]


class DTMC:
    """A finite discrete-time Markov chain with stochastic matrix ``P``."""

    def __init__(
        self,
        transition_matrix: np.ndarray,
        labels: Optional[Sequence[Hashable]] = None,
    ) -> None:
        P = np.asarray(transition_matrix, dtype=np.float64)
        if P.ndim != 2 or P.shape[0] != P.shape[1]:
            raise ValueError(f"transition matrix must be square, got {P.shape}")
        if np.any(P < -1e-12):
            raise ValueError("transition probabilities must be >= 0")
        rows = P.sum(axis=1)
        if not np.allclose(rows, 1.0, atol=1e-8):
            raise ValueError("rows of a stochastic matrix must sum to 1")
        self.P = np.clip(P, 0.0, None)
        # exact renormalisation so powers of P stay stochastic
        self.P /= self.P.sum(axis=1, keepdims=True)
        self.n = P.shape[0]
        if labels is None:
            labels = list(range(self.n))
        if len(labels) != self.n:
            raise ValueError("labels length must match matrix size")
        self.labels: List[Hashable] = list(labels)
        self._index: Dict[Hashable, int] = {s: i for i, s in enumerate(self.labels)}
        if len(self._index) != self.n:
            raise ValueError("labels must be unique")

    @classmethod
    def from_probabilities(
        cls,
        probs: Mapping[Tuple[Hashable, Hashable], float],
        labels: Optional[Sequence[Hashable]] = None,
    ) -> "DTMC":
        """Build from ``{(src, dst): probability}`` (rows must sum to 1)."""
        if labels is None:
            seen = {s for pair in probs for s in pair}
            labels = sorted(seen, key=repr)
        index = {s: i for i, s in enumerate(labels)}
        n = len(labels)
        P = np.zeros((n, n))
        for (src, dst), p in probs.items():
            P[index[src], index[dst]] += p
        return cls(P, labels)

    def stationary_distribution(self) -> np.ndarray:
        """Solve ``pi P = pi`` with ``sum(pi) = 1``."""
        A = (self.P.T - np.eye(self.n)).copy()
        A[-1, :] = 1.0
        b = np.zeros(self.n)
        b[-1] = 1.0
        try:
            pi = np.linalg.solve(A, b)
        except np.linalg.LinAlgError as exc:
            raise ValueError(f"singular chain: {exc}") from exc
        pi = np.where(np.abs(pi) < 1e-13, 0.0, pi)
        if np.any(pi < -1e-9):
            raise ValueError("negative stationary probabilities (reducible chain?)")
        pi = np.clip(pi, 0.0, None)
        return pi / pi.sum()

    def stationary_dict(self) -> Dict[Hashable, float]:
        pi = self.stationary_distribution()
        return {s: float(pi[i]) for i, s in enumerate(self.labels)}

    def step(self, p0: np.ndarray, k: int = 1) -> np.ndarray:
        """Distribution after *k* steps from *p0*."""
        if k < 0:
            raise ValueError("k must be >= 0")
        vec = np.asarray(p0, dtype=np.float64)
        if vec.shape != (self.n,):
            raise ValueError(f"p0 must have shape ({self.n},)")
        for _ in range(k):
            vec = vec @ self.P
        return vec

    def absorption_probabilities(
        self, absorbing: Sequence[Hashable]
    ) -> Dict[Hashable, Dict[Hashable, float]]:
        """Probability of absorbing in each target state from each transient state.

        Standard fundamental-matrix computation: with transient block ``Q``
        and transient→absorbing block ``R``, the absorption matrix is
        ``B = (I - Q)^{-1} R``.

        Used by the Petri net analysis to redistribute probability mass of
        *vanishing* markings (immediate-transition states) onto the tangible
        markings they eventually reach.
        """
        absorbing_idx = [self._index[s] for s in absorbing]
        absorbing_set = set(absorbing_idx)
        transient_idx = [i for i in range(self.n) if i not in absorbing_set]
        if not transient_idx:
            return {}
        Q = self.P[np.ix_(transient_idx, transient_idx)]
        R = self.P[np.ix_(transient_idx, absorbing_idx)]
        try:
            B = np.linalg.solve(np.eye(len(transient_idx)) - Q, R)
        except np.linalg.LinAlgError as exc:
            raise ValueError(
                f"transient block is singular (immediate-transition loop?): {exc}"
            ) from exc
        result: Dict[Hashable, Dict[Hashable, float]] = {}
        for row, ti in enumerate(transient_idx):
            result[self.labels[ti]] = {
                self.labels[aj]: float(B[row, col])
                for col, aj in enumerate(absorbing_idx)
            }
        return result

    def expected_hitting_time(self, targets: Sequence[Hashable]) -> Dict[Hashable, float]:
        """Expected number of steps to reach the target set from each state."""
        target_idx = {self._index[s] for s in targets}
        other = [i for i in range(self.n) if i not in target_idx]
        result = {self.labels[i]: 0.0 for i in target_idx}
        if not other:
            return result
        Q = self.P[np.ix_(other, other)]
        ones = np.ones(len(other))
        try:
            h = np.linalg.solve(np.eye(len(other)) - Q, ones)
        except np.linalg.LinAlgError as exc:
            raise ValueError(f"target set unreachable from some state: {exc}") from exc
        for row, i in enumerate(other):
            result[self.labels[i]] = float(h[row])
        return result

    def is_stochastic(self, atol: float = 1e-9) -> bool:
        """Check the matrix is (still) row-stochastic."""
        return bool(
            np.all(self.P >= -atol)
            and np.allclose(self.P.sum(axis=1), 1.0, atol=atol)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DTMC(n={self.n})"
