"""Textbook queueing closed forms.

These are the analytical ground truths the library's simulators and Petri
nets are validated against:

- :class:`MM1Queue` — the paper's underlying arrival/service model with the
  power management stripped away (its ``T -> inf`` limit).
- :class:`MM1KQueue` — finite-buffer variant (validates the Petri net
  engine's inhibitor-arc capacity modelling).
- :class:`MMcQueue` — multi-server Erlang-C.
- :class:`MG1Queue` / :class:`MD1Queue` — Pollaczek–Khinchine results, used
  to validate general service-time distributions in the DES kernel.
- :func:`little_l` / :func:`little_w` — Little's-law conversions (the paper
  applies Little's law in its Equation 22).

All quantities use the standard notation: ``L`` mean number in system,
``Lq`` mean number in queue, ``W`` mean time in system (latency), ``Wq``
mean waiting time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "MM1Queue",
    "MM1KQueue",
    "MMcQueue",
    "MG1Queue",
    "MD1Queue",
    "MachineRepairQueue",
    "little_l",
    "little_w",
]


def little_l(arrival_rate: float, mean_time: float) -> float:
    """Little's law: ``L = lambda * W``."""
    return arrival_rate * mean_time


def little_w(mean_number: float, arrival_rate: float) -> float:
    """Little's law solved for latency: ``W = L / lambda``."""
    if arrival_rate <= 0.0:
        raise ValueError("arrival rate must be > 0")
    return mean_number / arrival_rate


@dataclass(frozen=True)
class MM1Queue:
    """M/M/1: Poisson(λ) arrivals, exp(μ) service, infinite buffer."""

    arrival_rate: float
    service_rate: float

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0.0 or self.service_rate <= 0.0:
            raise ValueError("rates must be > 0")
        if self.utilization >= 1.0:
            raise ValueError(
                f"unstable queue: rho = {self.utilization:.4g} >= 1"
            )

    @property
    def utilization(self) -> float:
        """``rho = lambda / mu`` — also the long-run busy fraction."""
        return self.arrival_rate / self.service_rate

    def p_n(self, n: int) -> float:
        """Stationary probability of *n* jobs in system."""
        if n < 0:
            raise ValueError("n must be >= 0")
        rho = self.utilization
        return (1.0 - rho) * rho**n

    def mean_number_in_system(self) -> float:
        rho = self.utilization
        return rho / (1.0 - rho)

    def mean_number_in_queue(self) -> float:
        rho = self.utilization
        return rho * rho / (1.0 - rho)

    def mean_latency(self) -> float:
        return 1.0 / (self.service_rate - self.arrival_rate)

    def mean_waiting_time(self) -> float:
        return self.utilization / (self.service_rate - self.arrival_rate)


@dataclass(frozen=True)
class MM1KQueue:
    """M/M/1/K: as M/M/1 but at most *K* jobs in the system (arrivals lost)."""

    arrival_rate: float
    service_rate: float
    capacity: int

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0.0 or self.service_rate <= 0.0:
            raise ValueError("rates must be > 0")
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")

    @property
    def offered_load(self) -> float:
        return self.arrival_rate / self.service_rate

    def p_n(self, n: int) -> float:
        """Stationary probability of *n* in system (0 <= n <= K)."""
        if not (0 <= n <= self.capacity):
            raise ValueError(f"n must be in [0, {self.capacity}]")
        a = self.offered_load
        K = self.capacity
        if math.isclose(a, 1.0):
            return 1.0 / (K + 1)
        return (1.0 - a) * a**n / (1.0 - a ** (K + 1))

    def blocking_probability(self) -> float:
        """Fraction of arrivals lost (PASTA: equals ``p_K``)."""
        return self.p_n(self.capacity)

    def mean_number_in_system(self) -> float:
        a = self.offered_load
        K = self.capacity
        if math.isclose(a, 1.0):
            return K / 2.0
        return a / (1.0 - a) - (K + 1) * a ** (K + 1) / (1.0 - a ** (K + 1))

    def effective_arrival_rate(self) -> float:
        return self.arrival_rate * (1.0 - self.blocking_probability())

    def mean_latency(self) -> float:
        """Latency of *accepted* jobs, by Little's law."""
        return self.mean_number_in_system() / self.effective_arrival_rate()

    def utilization(self) -> float:
        """Fraction of time the server is busy (``1 - p_0``)."""
        return 1.0 - self.p_n(0)


@dataclass(frozen=True)
class MMcQueue:
    """M/M/c: Poisson arrivals, c identical exponential servers (Erlang C)."""

    arrival_rate: float
    service_rate: float
    servers: int

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0.0 or self.service_rate <= 0.0:
            raise ValueError("rates must be > 0")
        if self.servers < 1:
            raise ValueError("servers must be >= 1")
        if self.utilization >= 1.0:
            raise ValueError(
                f"unstable queue: rho = {self.utilization:.4g} >= 1"
            )

    @property
    def offered_load(self) -> float:
        """``a = lambda / mu`` in Erlangs."""
        return self.arrival_rate / self.service_rate

    @property
    def utilization(self) -> float:
        return self.offered_load / self.servers

    def erlang_c(self) -> float:
        """Probability an arriving job must wait (all servers busy)."""
        a = self.offered_load
        c = self.servers
        # sum in log-stable iterative form
        term = 1.0
        total = 1.0
        for k in range(1, c):
            term *= a / k
            total += term
        term_c = term * a / c  # a^c / c!
        tail = term_c / (1.0 - self.utilization)
        return tail / (total + tail)

    def mean_number_in_queue(self) -> float:
        rho = self.utilization
        return self.erlang_c() * rho / (1.0 - rho)

    def mean_number_in_system(self) -> float:
        return self.mean_number_in_queue() + self.offered_load

    def mean_waiting_time(self) -> float:
        return self.mean_number_in_queue() / self.arrival_rate

    def mean_latency(self) -> float:
        return self.mean_waiting_time() + 1.0 / self.service_rate


@dataclass(frozen=True)
class MG1Queue:
    """M/G/1 via Pollaczek–Khinchine.

    Parameterised by the service-time mean and squared coefficient of
    variation, so any :class:`~repro.des.distributions.Distribution` maps
    onto it directly.
    """

    arrival_rate: float
    service_mean: float
    service_cv2: float

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0.0 or self.service_mean <= 0.0:
            raise ValueError("rates must be > 0")
        if self.service_cv2 < 0.0:
            raise ValueError("cv^2 must be >= 0")
        if self.utilization >= 1.0:
            raise ValueError(
                f"unstable queue: rho = {self.utilization:.4g} >= 1"
            )

    @property
    def utilization(self) -> float:
        return self.arrival_rate * self.service_mean

    def mean_waiting_time(self) -> float:
        """P-K formula: ``Wq = rho (1 + cv^2) E[S] / (2 (1 - rho))``."""
        rho = self.utilization
        return rho * (1.0 + self.service_cv2) * self.service_mean / (
            2.0 * (1.0 - rho)
        )

    def mean_latency(self) -> float:
        return self.mean_waiting_time() + self.service_mean

    def mean_number_in_queue(self) -> float:
        return self.arrival_rate * self.mean_waiting_time()

    def mean_number_in_system(self) -> float:
        return self.arrival_rate * self.mean_latency()


def MD1Queue(arrival_rate: float, service_time: float) -> MG1Queue:
    """M/D/1 — deterministic service is M/G/1 with ``cv^2 = 0``."""
    return MG1Queue(arrival_rate, service_time, 0.0)


@dataclass(frozen=True)
class MachineRepairQueue:
    """M/M/1//N — finite source (machine repairman / interactive users).

    *N* clients alternate between thinking (exp, rate ``think_rate`` each)
    and queueing at a single exponential server (rate ``service_rate``) —
    exactly the closed workload of the paper's Section 4.1 with exponential
    think times, so :class:`repro.workload.closed_workload.ClosedCPUSimulator`
    (without power management) is validated against these closed forms.
    """

    n_clients: int
    think_rate: float
    service_rate: float

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if self.think_rate <= 0.0 or self.service_rate <= 0.0:
            raise ValueError("rates must be > 0")

    def state_probabilities(self) -> "list[float]":
        """P(n jobs at the server), n = 0..N (product form, log-stable)."""
        import numpy as np

        n = self.n_clients
        log_w = [0.0]
        for k in range(1, n + 1):
            # birth rate from k-1: (N-k+1) * think; death rate: service
            log_w.append(
                log_w[-1]
                + math.log((n - k + 1) * self.think_rate)
                - math.log(self.service_rate)
            )
        arr = np.exp(np.asarray(log_w) - max(log_w))
        arr /= arr.sum()
        return [float(x) for x in arr]

    def utilization(self) -> float:
        """Server busy probability ``1 - p_0``."""
        return 1.0 - self.state_probabilities()[0]

    def throughput(self) -> float:
        """Completed jobs per unit time ``mu (1 - p_0)``."""
        return self.service_rate * self.utilization()

    def mean_number_at_server(self) -> float:
        probs = self.state_probabilities()
        return float(sum(n * p for n, p in enumerate(probs)))

    def mean_response_time(self) -> float:
        """Interactive response-time law: ``R = N / X - 1 / think_rate``."""
        return self.n_clients / self.throughput() - 1.0 / self.think_rate
