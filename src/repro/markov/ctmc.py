"""Continuous-time Markov chains.

A CTMC is described by its infinitesimal generator ``Q`` (off-diagonal
entries are transition rates, rows sum to zero).  This module provides

- construction from a rate dictionary or a dense *or* scipy-sparse matrix,
  with validation and an explicit dense/sparse *backend* choice,
- steady-state solution ``pi Q = 0, sum(pi) = 1`` via a dense LU solve or a
  sparse LU solve assembled directly from the CSR generator (no densify
  round-trip), with the solved ``pi`` cached on the instance,
- transient solution ``pi(t) = pi(0) exp(Q t)`` by uniformization (the
  numerically robust algorithm; never forms the matrix exponential of an
  ill-conditioned generator directly), using sparse matvecs under the
  sparse backend,
- expected-reward evaluation: given per-state reward rates (e.g. power in
  milliwatts), the steady-state or finite-horizon expected reward, with
  the finite-horizon integral stepping the distribution forward
  incrementally (one uniformization pass over the whole horizon instead of
  one from ``t = 0`` per quadrature node).

The Petri net reachability analysis (:mod:`repro.petri.ctmc_export`)
produces instances of this class, which is how exponential-only Petri nets
get *analytical* solutions the simulator can be validated against.
"""

from __future__ import annotations

import math
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

__all__ = [
    "CTMC",
    "lu_analyse_solve",
    "lu_resolve_permuted",
    "sparse_steady_state",
]

RateDict = Mapping[Tuple[Hashable, Hashable], float]

#: Chains larger than this default to the sparse backend under ``"auto"``.
SPARSE_AUTO_THRESHOLD = 500

_BACKENDS = ("auto", "dense", "sparse")


def _finalize_pi(pi: np.ndarray) -> np.ndarray:
    """Validate and normalise a raw steady-state solve result."""
    if not np.all(np.isfinite(pi)):
        raise ValueError("steady-state solve produced non-finite entries")
    pi = np.where(np.abs(pi) < 1e-13, 0.0, pi)
    if np.any(pi < -1e-9):
        raise ValueError(
            "steady-state solve produced negative probabilities; "
            "the chain is likely reducible"
        )
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if not math.isfinite(total) or total <= 0.0:
        raise ValueError("steady-state normalisation failed")
    return pi / total


def lu_analyse_solve(
    A: sparse.spmatrix, b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``A x = b`` via SuperLU; returns ``(x, perm_c)``.

    ``perm_c`` is the fill-reducing column ordering *inverted into
    pre-permutation form*: a later system with the same sparsity pattern
    can be solved through :func:`lu_resolve_permuted` after permuting its
    columns as ``A[:, perm_c]``, skipping the symbolic analysis.
    Singular systems raise ``ValueError``.
    """
    try:
        lu = splu(A)
        # SuperLU's perm_c maps original -> factor column positions;
        # invert it so reuse can *pre*-permute the columns
        return lu.solve(b), np.argsort(lu.perm_c)
    except RuntimeError as exc:  # "Factor is exactly singular"
        raise ValueError(f"singular generator: {exc}") from exc


def lu_resolve_permuted(
    A_permuted: sparse.spmatrix, b: np.ndarray, perm_c: np.ndarray
) -> np.ndarray:
    """Solve a same-pattern system whose columns are already ``A[:, perm_c]``.

    SuperLU factors with ``ColPerm=NATURAL`` — numeric work only, the
    symbolic analysis was paid by :func:`lu_analyse_solve` — and the
    solution is scattered back to the original ordering.  Any valid
    permutation keeps the solve exact (row pivoting still runs), so a
    stale ``perm_c`` costs fill, never correctness.
    """
    try:
        y = splu(A_permuted, permc_spec="NATURAL").solve(b)
    except RuntimeError as exc:  # "Factor is exactly singular"
        raise ValueError(f"singular generator: {exc}") from exc
    x = np.empty(len(b))
    x[perm_c] = y
    return x


def sparse_steady_state(
    Q: sparse.spmatrix, perm_c: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve ``pi Q = 0, sum(pi) = 1`` from a sparse generator via SuperLU.

    The linear system (``Q^T`` with the last balance equation replaced by the
    normalisation row) is factorised with an explicit LU so the fill-reducing
    *column permutation* — the symbolic half of the factorisation — can be
    reused.  Returns ``(pi, perm_c)``.

    Parameters
    ----------
    Q:
        Sparse generator (rows sum to zero).
    perm_c:
        Column permutation from a previous call on a generator with the
        *same sparsity pattern* (e.g. an earlier point of a parameter
        sweep).  When given, the system is permuted up front and SuperLU
        factors with ``ColPerm=NATURAL``, skipping the COLAMD analysis;
        any valid permutation keeps the solve exact (row pivoting is still
        performed), so a stale permutation costs fill, never correctness.

    Raises
    ------
    ValueError
        If the system is singular (reducible chain) or the permutation has
        the wrong length.
    """
    n = Q.shape[0]
    QT = Q.transpose().tocsr()
    A = sparse.vstack(
        [QT[:-1, :], sparse.csr_matrix(np.ones((1, n)))], format="csc"
    )
    b = np.zeros(n)
    b[-1] = 1.0
    if perm_c is None:
        pi, perm_c = lu_analyse_solve(A, b)
    else:
        perm_c = np.asarray(perm_c)
        if perm_c.shape != (n,):
            raise ValueError(
                f"perm_c must have length {n}, got shape {perm_c.shape}"
            )
        pi = lu_resolve_permuted(A[:, perm_c], b, perm_c)
    return _finalize_pi(pi), perm_c


class CTMC:
    """A finite continuous-time Markov chain.

    Parameters
    ----------
    generator:
        ``(n, n)`` generator matrix, dense or scipy-sparse.  Off-diagonals
        must be >= 0 and each row must sum to ~0 (the constructor
        re-normalises diagonals to make rows sum exactly to zero, and
        verifies the original diagonals were consistent).
    labels:
        Optional state labels (any hashables); defaults to ``range(n)``.
    backend:
        ``"dense"``, ``"sparse"``, or ``"auto"`` (default).  ``"auto"``
        picks sparse when the generator is already a scipy-sparse matrix or
        when ``n > SPARSE_AUTO_THRESHOLD``.  The backend decides how the
        steady-state system is solved and how uniformization multiplies;
        results agree to solver precision either way.
    factor_cache:
        Optional mutable mapping shared by a *family* of chains with the
        same sparsity pattern (e.g. the per-point chains of a parameter
        sweep).  The sparse steady-state solve stores its fill-reducing
        column permutation under ``"perm_c"`` and later chains reuse it,
        paying the symbolic analysis once per family (see
        :func:`sparse_steady_state`).  Ignored by the dense backend.
    """

    def __init__(
        self,
        generator: Union[np.ndarray, sparse.spmatrix],
        labels: Optional[Sequence[Hashable]] = None,
        backend: str = "auto",
        factor_cache: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        is_sparse_input = sparse.issparse(generator)
        if is_sparse_input:
            Q = generator.tocsr().astype(np.float64)
        else:
            Q = np.asarray(generator, dtype=np.float64)
        if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
            raise ValueError(f"generator must be square, got shape {Q.shape}")
        n = Q.shape[0]
        if n == 0:
            raise ValueError("empty chain")

        if backend == "auto":
            backend = (
                "sparse"
                if is_sparse_input or n > SPARSE_AUTO_THRESHOLD
                else "dense"
            )
        self.backend = backend
        self.n = n

        if is_sparse_input:
            off = Q.copy()
            off.setdiag(0.0)
            off.eliminate_zeros()
            if off.data.size and off.data.min() < 0.0:
                raise ValueError("off-diagonal rates must be >= 0")
            rates_out = np.asarray(off.sum(axis=1)).ravel()
            diag = Q.diagonal()
        else:
            off = Q.copy()
            np.fill_diagonal(off, 0.0)
            if np.any(off < 0.0):
                raise ValueError("off-diagonal rates must be >= 0")
            rates_out = off.sum(axis=1)
            diag = np.diag(Q)
        if not np.allclose(diag, -rates_out, rtol=1e-8, atol=1e-8):
            raise ValueError("rows of a generator must sum to zero")

        self._exit_rates: np.ndarray = rates_out
        self._Q_dense: Optional[np.ndarray] = None
        self._Q_csr: Optional[sparse.csr_matrix] = None
        if backend == "sparse":
            if is_sparse_input:
                self._Q_csr = (off - sparse.diags(rates_out)).tocsr()
            else:
                Qc = off
                np.fill_diagonal(Qc, -rates_out)
                self._Q_csr = sparse.csr_matrix(Qc)
        else:
            if is_sparse_input:
                Qc = off.toarray()
            else:
                Qc = off
            np.fill_diagonal(Qc, -rates_out)
            self._Q_dense = Qc

        if labels is None:
            labels = list(range(n))
        if len(labels) != n:
            raise ValueError("labels length must match generator size")
        self.labels: List[Hashable] = list(labels)
        self._index: Dict[Hashable, int] = {s: i for i, s in enumerate(self.labels)}
        if len(self._index) != n:
            raise ValueError("labels must be unique")

        # solver caches (the generator is immutable after construction)
        self._pi: Optional[np.ndarray] = None
        self._unif: Optional[Tuple[float, Callable[[np.ndarray], np.ndarray]]] = None
        self._factor_cache = factor_cache

    # ------------------------------------------------------------------ #
    # representations
    # ------------------------------------------------------------------ #
    @property
    def Q(self) -> np.ndarray:
        """Dense generator matrix (materialised lazily under sparse backend)."""
        if self._Q_dense is None:
            assert self._Q_csr is not None
            self._Q_dense = self._Q_csr.toarray()
        return self._Q_dense

    @property
    def Q_sparse(self) -> sparse.csr_matrix:
        """CSR generator matrix (materialised lazily under dense backend)."""
        if self._Q_csr is None:
            assert self._Q_dense is not None
            self._Q_csr = sparse.csr_matrix(self._Q_dense)
        return self._Q_csr

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rates(
        cls,
        rates: RateDict,
        labels: Optional[Sequence[Hashable]] = None,
        backend: str = "auto",
    ) -> "CTMC":
        """Build from ``{(src, dst): rate}``.

        Labels default to the sorted set of states mentioned in *rates*
        (sorted by string representation to accept mixed label types).
        Under the sparse backend the generator is assembled as COO and
        never densified.
        """
        if labels is None:
            seen = {s for pair in rates for s in pair}
            labels = sorted(seen, key=repr)
        index = {s: i for i, s in enumerate(labels)}
        n = len(labels)
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        for (src, dst), rate in rates.items():
            if src == dst:
                raise ValueError(f"self-loop rate on state {src!r}")
            if rate < 0.0:
                raise ValueError(f"negative rate {rate} on {src!r}->{dst!r}")
            rows.append(index[src])
            cols.append(index[dst])
            data.append(rate)
        off = sparse.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
        exit_rates = np.asarray(off.sum(axis=1)).ravel()
        if backend == "sparse" or (
            backend == "auto" and n > SPARSE_AUTO_THRESHOLD
        ):
            Q: Union[np.ndarray, sparse.spmatrix] = off - sparse.diags(exit_rates)
        else:
            Q = off.toarray()
            np.fill_diagonal(Q, -exit_rates)
        return cls(Q, labels, backend=backend)

    # ------------------------------------------------------------------ #
    # solutions
    # ------------------------------------------------------------------ #
    def steady_state(self) -> np.ndarray:
        """Stationary distribution ``pi`` with ``pi Q = 0`` and ``sum = 1``.

        Solved by replacing one balance equation with the normalisation
        constraint — densely via LU, or sparsely via SuperLU with the
        system assembled directly in CSC form.  Requires the chain to have
        a single recurrent class reachable from everywhere (an
        irreducibility-equivalent condition); a singular system raises
        ``ValueError`` on *both* backends.  The solution is cached; a copy
        is returned.
        """
        if self._pi is None:
            self._pi = self._solve_steady_state()
        return self._pi.copy()

    def _solve_steady_state(self) -> np.ndarray:
        n = self.n
        if self.backend == "sparse":
            # A = Q^T with the last row replaced by the normalisation row,
            # factorised via SuperLU with the symbolic analysis shared
            # through factor_cache when one was provided.
            cache = self._factor_cache
            perm_c = cache.get("perm_c") if cache is not None else None
            if perm_c is not None and np.asarray(perm_c).shape != (n,):
                perm_c = None  # pattern family changed size: re-analyse
            pi, perm_c = sparse_steady_state(self.Q_sparse, perm_c)
            if cache is not None:
                cache["perm_c"] = perm_c
            return pi
        b = np.zeros(n)
        b[-1] = 1.0
        A = self.Q.T.copy()
        A[-1, :] = 1.0
        try:
            pi = np.linalg.solve(A, b)
        except np.linalg.LinAlgError as exc:
            raise ValueError(f"singular generator: {exc}") from exc
        return _finalize_pi(pi)

    def steady_state_dict(self) -> Dict[Hashable, float]:
        """Stationary distribution keyed by state label."""
        pi = self.steady_state()
        return {s: float(pi[i]) for i, s in enumerate(self.labels)}

    def _uniformized(self) -> Tuple[float, Callable[[np.ndarray], np.ndarray]]:
        """``(Lambda, matvec)`` for ``P = I + Q / Lambda`` (cached).

        ``matvec(v)`` computes ``v @ P`` — densely as a BLAS gemv, sparsely
        as a CSR matvec with the transposed uniformized matrix.
        """
        if self._unif is None:
            lam = float(np.max(self._exit_rates))
            if lam > 0.0:
                lam *= 1.000000001  # strictly dominate the diagonal
            if self.backend == "sparse":
                PT = (
                    sparse.eye(self.n, format="csr")
                    + self.Q_sparse.T.tocsr() / lam
                ).tocsr() if lam > 0.0 else None

                def matvec(v: np.ndarray, _PT=PT) -> np.ndarray:
                    return _PT @ v
            else:
                P = np.eye(self.n) + self.Q / lam if lam > 0.0 else None

                def matvec(v: np.ndarray, _P=P) -> np.ndarray:
                    return v @ _P

            self._unif = (lam, matvec)
        return self._unif

    def _advance(self, p: np.ndarray, dt: float, tol: float) -> np.ndarray:
        """Advance distribution *p* by *dt* via uniformization."""
        if dt == 0.0:
            return p
        lam, matvec = self._uniformized()
        if lam == 0.0:  # absorbing everywhere: nothing moves
            return p
        x = lam * dt
        # Poisson weights with scaling for large x: iterate in log space.
        log_w = -x  # log Poisson(0)
        vec = p.copy()
        acc = np.zeros(self.n)
        k = 0
        log_tail_bound = math.log(tol)
        # upper bound on needed terms: mean + 10 sqrt(mean) + 50
        k_max = int(x + 10.0 * math.sqrt(x) + 50.0)
        cumulative = 0.0
        while k <= k_max:
            w = math.exp(log_w)
            acc += w * vec
            cumulative += w
            if cumulative >= 1.0 - tol and k >= x:
                break
            vec = matvec(vec)
            k += 1
            log_w += math.log(x) - math.log(k)
            if log_w < log_tail_bound and k > x:
                break
        # renormalise the truncated sum
        total = acc.sum()
        if total > 0:
            acc /= total
        return acc

    def transient(
        self,
        p0: Union[np.ndarray, Mapping[Hashable, float]],
        t: float,
        tol: float = 1e-12,
    ) -> np.ndarray:
        """Distribution at time *t* from initial distribution *p0*.

        Uses uniformization: with ``Lambda >= max_i |Q_ii|`` and
        ``P = I + Q / Lambda``,

        ``pi(t) = sum_k Poisson(k; Lambda t) * p0 P^k``

        truncated when the Poisson tail drops below *tol*.  All terms are
        non-negative, so the method is numerically stable for any horizon.
        Under the sparse backend each term costs one CSR matvec.
        """
        if t < 0.0:
            raise ValueError("t must be >= 0")
        p = self._coerce_distribution(p0)
        if t == 0.0:
            return p
        return self._advance(p, t, tol)

    def advance(
        self,
        p: Union[np.ndarray, Mapping[Hashable, float]],
        dt: float,
        tol: float = 1e-12,
    ) -> np.ndarray:
        """One incremental uniformization step: the distribution *dt* later.

        Unlike :meth:`transient`, which always starts from ``t = 0``,
        this lets callers walk a trajectory forward step by step — the
        total cost over a horizon is one uniformization pass instead of
        one per sample point.  *p* must already be a distribution.
        """
        if dt < 0.0:
            raise ValueError("dt must be >= 0")
        return self._advance(self._coerce_distribution(p), dt, tol)

    def transient_dict(
        self, p0: Union[np.ndarray, Mapping[Hashable, float]], t: float
    ) -> Dict[Hashable, float]:
        vec = self.transient(p0, t)
        return {s: float(vec[i]) for i, s in enumerate(self.labels)}

    # ------------------------------------------------------------------ #
    # rewards
    # ------------------------------------------------------------------ #
    def expected_reward_rate(
        self, rewards: Union[np.ndarray, Mapping[Hashable, float]]
    ) -> float:
        """Steady-state expected reward rate ``sum_i pi_i r_i``.

        With per-state power draws as rewards this is the chain's average
        power, and ``average power * horizon`` is the paper's Equation 25.
        """
        r = self._coerce_rewards(rewards)
        return float(self.steady_state() @ r)

    def accumulated_reward(
        self,
        p0: Union[np.ndarray, Mapping[Hashable, float]],
        rewards: Union[np.ndarray, Mapping[Hashable, float]],
        t: float,
        steps: int = 256,
        tol: float = 1e-12,
    ) -> float:
        """Expected accumulated reward over ``[0, t]`` (composite Simpson).

        Integrates ``pi(s) . r`` over the horizon, stepping the transient
        distribution forward *incrementally* between quadrature nodes: one
        uniformization pass over the whole horizon instead of a fresh pass
        from ``t = 0`` per node, so the cost is ``O(Lambda t)`` matvecs
        rather than ``O(steps * Lambda t)``.  Accurate enough for energy
        accounting (the integrand is smooth and bounded).
        """
        if steps < 2:
            raise ValueError("steps must be >= 2")
        if steps % 2:
            steps += 1
        r = self._coerce_rewards(rewards)
        p = self._coerce_distribution(p0)
        h = t / steps
        vals = np.empty(steps + 1)
        vals[0] = p @ r
        for i in range(1, steps + 1):
            p = self._advance(p, h, tol)
            vals[i] = p @ r
        return float(h / 3.0 * (vals[0] + vals[-1] + 4 * vals[1:-1:2].sum() + 2 * vals[2:-1:2].sum()))

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def holding_rate(self, state: Hashable) -> float:
        """Total exit rate of *state*."""
        return float(self._exit_rates[self._index[state]])

    def embedded_dtmc(self) -> "np.ndarray":
        """Jump-chain transition matrix (rows of absorbing states self-loop)."""
        n = self.n
        Q = self.Q
        P = np.zeros((n, n))
        for i in range(n):
            out = -Q[i, i]
            if out <= 0.0:
                P[i, i] = 1.0
            else:
                P[i, :] = Q[i, :] / out
                P[i, i] = 0.0
        return P

    def _coerce_distribution(
        self, p0: Union[np.ndarray, Mapping[Hashable, float]]
    ) -> np.ndarray:
        if isinstance(p0, Mapping):
            vec = np.zeros(self.n)
            for s, p in p0.items():
                vec[self._index[s]] = p
        else:
            vec = np.asarray(p0, dtype=np.float64)
        if vec.shape != (self.n,):
            raise ValueError(f"distribution must have shape ({self.n},)")
        if np.any(vec < -1e-12) or not math.isclose(float(vec.sum()), 1.0, abs_tol=1e-9):
            raise ValueError("initial distribution must be non-negative and sum to 1")
        return np.clip(vec, 0.0, None)

    def _coerce_rewards(
        self, rewards: Union[np.ndarray, Mapping[Hashable, float]]
    ) -> np.ndarray:
        if isinstance(rewards, Mapping):
            vec = np.zeros(self.n)
            for s, r in rewards.items():
                vec[self._index[s]] = r
            return vec
        vec = np.asarray(rewards, dtype=np.float64)
        if vec.shape != (self.n,):
            raise ValueError(f"rewards must have shape ({self.n},)")
        return vec

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CTMC(n={self.n}, backend={self.backend!r})"
