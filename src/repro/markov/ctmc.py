"""Continuous-time Markov chains.

A CTMC is described by its infinitesimal generator ``Q`` (off-diagonal
entries are transition rates, rows sum to zero).  This module provides

- construction from a rate dictionary or dense/sparse matrix, with
  validation,
- steady-state solution ``pi Q = 0, sum(pi) = 1`` via a dense LU solve (or
  sparse for large chains),
- transient solution ``pi(t) = pi(0) exp(Q t)`` by uniformization (the
  numerically robust algorithm; never forms the matrix exponential of an
  ill-conditioned generator directly),
- expected-reward evaluation: given per-state reward rates (e.g. power in
  milliwatts), the steady-state or finite-horizon expected reward.

The Petri net reachability analysis (:mod:`repro.petri.ctmc_export`)
produces instances of this class, which is how exponential-only Petri nets
get *analytical* solutions the simulator can be validated against.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

__all__ = ["CTMC"]

RateDict = Mapping[Tuple[Hashable, Hashable], float]


class CTMC:
    """A finite continuous-time Markov chain.

    Parameters
    ----------
    generator:
        Dense ``(n, n)`` generator matrix.  Off-diagonals must be >= 0 and
        each row must sum to ~0 (the constructor re-normalises diagonals to
        make rows sum exactly to zero, and verifies the original diagonals
        were consistent).
    labels:
        Optional state labels (any hashables); defaults to ``range(n)``.
    """

    def __init__(
        self,
        generator: np.ndarray,
        labels: Optional[Sequence[Hashable]] = None,
    ) -> None:
        Q = np.asarray(generator, dtype=np.float64)
        if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
            raise ValueError(f"generator must be square, got shape {Q.shape}")
        n = Q.shape[0]
        if n == 0:
            raise ValueError("empty chain")
        off = Q.copy()
        np.fill_diagonal(off, 0.0)
        if np.any(off < 0.0):
            raise ValueError("off-diagonal rates must be >= 0")
        rates_out = off.sum(axis=1)
        diag = np.diag(Q)
        if not np.allclose(diag, -rates_out, rtol=1e-8, atol=1e-8):
            raise ValueError("rows of a generator must sum to zero")
        Qc = off.copy()
        np.fill_diagonal(Qc, -rates_out)
        self.Q = Qc
        self.n = n
        if labels is None:
            labels = list(range(n))
        if len(labels) != n:
            raise ValueError("labels length must match generator size")
        self.labels: List[Hashable] = list(labels)
        self._index: Dict[Hashable, int] = {s: i for i, s in enumerate(self.labels)}
        if len(self._index) != n:
            raise ValueError("labels must be unique")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rates(
        cls,
        rates: RateDict,
        labels: Optional[Sequence[Hashable]] = None,
    ) -> "CTMC":
        """Build from ``{(src, dst): rate}``.

        Labels default to the sorted set of states mentioned in *rates*
        (sorted by string representation to accept mixed label types).
        """
        if labels is None:
            seen = {s for pair in rates for s in pair}
            labels = sorted(seen, key=repr)
        index = {s: i for i, s in enumerate(labels)}
        n = len(labels)
        Q = np.zeros((n, n))
        for (src, dst), rate in rates.items():
            if src == dst:
                raise ValueError(f"self-loop rate on state {src!r}")
            if rate < 0.0:
                raise ValueError(f"negative rate {rate} on {src!r}->{dst!r}")
            Q[index[src], index[dst]] += rate
        np.fill_diagonal(Q, 0.0)
        np.fill_diagonal(Q, -Q.sum(axis=1))
        return cls(Q, labels)

    # ------------------------------------------------------------------ #
    # solutions
    # ------------------------------------------------------------------ #
    def steady_state(self) -> np.ndarray:
        """Stationary distribution ``pi`` with ``pi Q = 0`` and ``sum = 1``.

        Solved by replacing one balance equation with the normalisation
        constraint.  Requires the chain to have a single recurrent class
        reachable from everywhere (an irreducibility-equivalent condition);
        a singular system raises ``ValueError``.
        """
        n = self.n
        A = self.Q.T.copy()
        A[-1, :] = 1.0
        b = np.zeros(n)
        b[-1] = 1.0
        if n > 500:
            pi = spsolve(sparse.csc_matrix(A), b)
        else:
            try:
                pi = np.linalg.solve(A, b)
            except np.linalg.LinAlgError as exc:
                raise ValueError(f"singular generator: {exc}") from exc
        if not np.all(np.isfinite(pi)):
            raise ValueError("steady-state solve produced non-finite entries")
        pi = np.where(np.abs(pi) < 1e-13, 0.0, pi)
        if np.any(pi < -1e-9):
            raise ValueError(
                "steady-state solve produced negative probabilities; "
                "the chain is likely reducible"
            )
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if not math.isfinite(total) or total <= 0.0:
            raise ValueError("steady-state normalisation failed")
        return pi / total

    def steady_state_dict(self) -> Dict[Hashable, float]:
        """Stationary distribution keyed by state label."""
        pi = self.steady_state()
        return {s: float(pi[i]) for i, s in enumerate(self.labels)}

    def transient(
        self,
        p0: Union[np.ndarray, Mapping[Hashable, float]],
        t: float,
        tol: float = 1e-12,
    ) -> np.ndarray:
        """Distribution at time *t* from initial distribution *p0*.

        Uses uniformization: with ``Lambda >= max_i |Q_ii|`` and
        ``P = I + Q / Lambda``,

        ``pi(t) = sum_k Poisson(k; Lambda t) * p0 P^k``

        truncated when the Poisson tail drops below *tol*.  All terms are
        non-negative, so the method is numerically stable for any horizon.
        """
        if t < 0.0:
            raise ValueError("t must be >= 0")
        p = self._coerce_distribution(p0)
        if t == 0.0:
            return p
        lam = float(np.max(-np.diag(self.Q)))
        if lam == 0.0:  # absorbing everywhere: nothing moves
            return p
        lam *= 1.000000001  # strictly dominate the diagonal
        P = np.eye(self.n) + self.Q / lam
        x = lam * t
        # Poisson weights with scaling for large x: iterate in log space.
        log_w = -x  # log Poisson(0)
        vec = p.copy()
        acc = np.zeros(self.n)
        k = 0
        log_tail_bound = math.log(tol)
        # upper bound on needed terms: mean + 10 sqrt(mean) + 50
        k_max = int(x + 10.0 * math.sqrt(x) + 50.0)
        cumulative = 0.0
        while k <= k_max:
            w = math.exp(log_w)
            acc += w * vec
            cumulative += w
            if cumulative >= 1.0 - tol and k >= x:
                break
            vec = vec @ P
            k += 1
            log_w += math.log(x) - math.log(k)
            if log_w < log_tail_bound and k > x:
                break
        # renormalise the truncated sum
        total = acc.sum()
        if total > 0:
            acc /= total
        return acc

    def transient_dict(
        self, p0: Union[np.ndarray, Mapping[Hashable, float]], t: float
    ) -> Dict[Hashable, float]:
        vec = self.transient(p0, t)
        return {s: float(vec[i]) for i, s in enumerate(self.labels)}

    # ------------------------------------------------------------------ #
    # rewards
    # ------------------------------------------------------------------ #
    def expected_reward_rate(
        self, rewards: Union[np.ndarray, Mapping[Hashable, float]]
    ) -> float:
        """Steady-state expected reward rate ``sum_i pi_i r_i``.

        With per-state power draws as rewards this is the chain's average
        power, and ``average power * horizon`` is the paper's Equation 25.
        """
        r = self._coerce_rewards(rewards)
        return float(self.steady_state() @ r)

    def accumulated_reward(
        self,
        p0: Union[np.ndarray, Mapping[Hashable, float]],
        rewards: Union[np.ndarray, Mapping[Hashable, float]],
        t: float,
        steps: int = 256,
    ) -> float:
        """Expected accumulated reward over ``[0, t]`` (composite Simpson).

        Integrates ``pi(s) . r`` over the horizon; accurate enough for
        energy accounting (the integrand is smooth and bounded).
        """
        if steps < 2:
            raise ValueError("steps must be >= 2")
        if steps % 2:
            steps += 1
        r = self._coerce_rewards(rewards)
        ts = np.linspace(0.0, t, steps + 1)
        vals = np.array([self.transient(p0, s) @ r for s in ts])
        h = t / steps
        return float(h / 3.0 * (vals[0] + vals[-1] + 4 * vals[1:-1:2].sum() + 2 * vals[2:-1:2].sum()))

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def holding_rate(self, state: Hashable) -> float:
        """Total exit rate of *state*."""
        return float(-self.Q[self._index[state], self._index[state]])

    def embedded_dtmc(self) -> "np.ndarray":
        """Jump-chain transition matrix (rows of absorbing states self-loop)."""
        n = self.n
        P = np.zeros((n, n))
        for i in range(n):
            out = -self.Q[i, i]
            if out <= 0.0:
                P[i, i] = 1.0
            else:
                P[i, :] = self.Q[i, :] / out
                P[i, i] = 0.0
        return P

    def _coerce_distribution(
        self, p0: Union[np.ndarray, Mapping[Hashable, float]]
    ) -> np.ndarray:
        if isinstance(p0, Mapping):
            vec = np.zeros(self.n)
            for s, p in p0.items():
                vec[self._index[s]] = p
        else:
            vec = np.asarray(p0, dtype=np.float64)
        if vec.shape != (self.n,):
            raise ValueError(f"distribution must have shape ({self.n},)")
        if np.any(vec < -1e-12) or not math.isclose(float(vec.sum()), 1.0, abs_tol=1e-9):
            raise ValueError("initial distribution must be non-negative and sum to 1")
        return np.clip(vec, 0.0, None)

    def _coerce_rewards(
        self, rewards: Union[np.ndarray, Mapping[Hashable, float]]
    ) -> np.ndarray:
        if isinstance(rewards, Mapping):
            vec = np.zeros(self.n)
            for s, r in rewards.items():
                vec[self._index[s]] = r
            return vec
        vec = np.asarray(rewards, dtype=np.float64)
        if vec.shape != (self.n,):
            raise ValueError(f"rewards must have shape ({self.n},)")
        return vec

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CTMC(n={self.n})"
