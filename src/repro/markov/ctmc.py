"""Continuous-time Markov chains.

A CTMC is described by its infinitesimal generator ``Q`` (off-diagonal
entries are transition rates, rows sum to zero).  This module provides

- construction from a rate dictionary or a dense *or* scipy-sparse matrix,
  with validation and an explicit dense/sparse *backend* choice,
- steady-state solution ``pi Q = 0, sum(pi) = 1`` via a *family* of
  solvers selectable per call — direct LU (dense or SuperLU), ILU-
  preconditioned GMRES on the augmented system, or power iteration on the
  uniformized DTMC — with an ``"auto"`` policy that picks by state count
  and per-method caching of the solved ``pi``,
- transient solution ``pi(t) = pi(0) exp(Q t)`` by uniformization (the
  numerically robust algorithm; never forms the matrix exponential of an
  ill-conditioned generator directly), using sparse matvecs under the
  sparse backend,
- expected-reward evaluation: given per-state reward rates (e.g. power in
  milliwatts), the steady-state or finite-horizon expected reward, with
  the finite-horizon integral stepping the distribution forward
  incrementally (one uniformization pass over the whole horizon instead of
  one from ``t = 0`` per quadrature node).

The Petri net reachability analysis (:mod:`repro.petri.ctmc_export`)
produces instances of this class, which is how exponential-only Petri nets
get *analytical* solutions the simulator can be validated against.
"""

from __future__ import annotations

import math
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np
from scipy import sparse
from scipy.sparse.csgraph import reverse_cuthill_mckee
from scipy.sparse.linalg import LinearOperator, gmres, spilu, splu

from repro import obs

__all__ = [
    "CTMC",
    "ConvergenceError",
    "ITERATIVE_AUTO_THRESHOLD",
    "NumericalSolveError",
    "RESIDUAL_HISTORY_LIMIT",
    "SPARSE_AUTO_THRESHOLD",
    "STEADY_STATE_METHODS",
    "SolverCache",
    "batched_dense_solve",
    "batched_gmres_solve",
    "batched_lu_solve",
    "block_diag_pattern",
    "gmres_augmented_solve",
    "gmres_steady_state",
    "lu_analyse_solve",
    "lu_resolve_permuted",
    "power_steady_state",
    "resolve_steady_state_method",
    "sparse_steady_state",
    "stacked_block_diag",
]

RateDict = Mapping[Tuple[Hashable, Hashable], float]

#: Chains larger than this default to the sparse backend under ``"auto"``.
SPARSE_AUTO_THRESHOLD = 500

#: Chains larger than this solve steady state iteratively (GMRES) under
#: ``method="auto"``; at or below it, direct LU wins (see docs/solvers.md).
ITERATIVE_AUTO_THRESHOLD = 20_000

#: Steady-state solver methods accepted by :meth:`CTMC.steady_state`.
STEADY_STATE_METHODS = ("auto", "lu", "gmres", "power")

#: Default relative tolerance of the iterative steady-state methods.
ITERATIVE_DEFAULT_TOL = 1e-10

#: Default iteration budgets (GMRES counts inner Krylov iterations).
GMRES_DEFAULT_MAX_ITER = 1000
POWER_DEFAULT_MAX_ITER = 100_000

#: GMRES restart length (Krylov subspace dimension between restarts).
GMRES_RESTART = 50

#: Default ILU preconditioner strength: deliberately *weak*.  On
#: arbitrary generators (multi-dimensional reachability graphs) a strong
#: incomplete factorisation hits the same fill cliff as complete LU —
#: exactly what the iterative path exists to avoid — while a weak ILU
#: builds in ~linear time and merely costs extra (cheap) iterations.
#: Callers whose sparsity pattern is known to be narrow-banded (e.g. the
#: phase-type sweep backend) pass stronger settings explicitly.
ILU_DROP_TOL = 0.1
ILU_FILL_FACTOR = 2

#: A cached ILU preconditioner is dropped (rebuilt on the next solve) once
#: a warm-started solve needs more than this many iterations — or 3x the
#: iteration count observed when the ILU was fresh — meaning the sweep has
#: drifted too far from the operating point the ILU was built at.
ILU_REFRESH_ITERATIONS = 8

#: Power iteration can run for 100k+ sweeps; cap the residual history kept
#: on ``ConvergenceError`` (and shipped across process boundaries) to the
#: trailing entries, which are the ones that show the stall shape.
RESIDUAL_HISTORY_LIMIT = 1000

_BACKENDS = ("auto", "dense", "sparse")


class NumericalSolveError(ValueError):
    """A steady-state solve failed *numerically*.

    Raised for singular systems (reducible chains), non-finite or
    negative solution entries, and failed normalisations.  Subclasses
    ``ValueError`` for backward compatibility, but gives callers a type
    to distinguish a chain that cannot be solved from an API misuse —
    the sweep runner treats the former as one bad grid point (NaN row)
    and the latter as a configuration error that aborts the sweep.
    """


class ConvergenceError(RuntimeError):
    """An iterative steady-state solve stalled before reaching tolerance.

    Raised instead of silently returning an unconverged vector.  Carries
    the diagnostic state a caller needs to react programmatically.

    Attributes
    ----------
    method : str
        The iterative method that stalled (``"gmres"`` or ``"power"``).
    iterations : int
        Iterations performed before giving up.
    residual : float
        The residual when the iteration stopped (relative linear-system
        residual for GMRES; successive-iterate 1-norm difference for
        power iteration).
    tol : float
        The tolerance the residual failed to reach.
    residual_history : tuple of float or None
        Per-iteration residuals up to the stall (preconditioned residual
        norms for GMRES; successive-iterate differences — capped at the
        trailing :data:`RESIDUAL_HISTORY_LIMIT` entries — for power
        iteration), so a caller can see *how* the solve stalled (plateau
        vs. divergence) instead of just the endpoint.
    """

    def __init__(
        self,
        method: str,
        iterations: int,
        residual: float,
        tol: float,
        residual_history: Optional[Sequence[float]] = None,
    ) -> None:
        self.method = method
        self.iterations = iterations
        self.residual = residual
        self.tol = tol
        self.residual_history = (
            tuple(float(r) for r in residual_history)
            if residual_history is not None
            else None
        )
        super().__init__(
            f"{method} steady-state solve did not converge: residual "
            f"{residual:.3e} > tol {tol:.1e} after {iterations} iterations "
            f"(raise max_iter, loosen tol, or use method='lu')"
        )

    def __reduce__(self):
        # default exception pickling replays args (the message string)
        # into __init__, which takes these fields — rebuild from them, so
        # worker-raised stalls survive the multiprocessing result channel
        return (
            ConvergenceError,
            (
                self.method,
                self.iterations,
                self.residual,
                self.tol,
                self.residual_history,
            ),
        )


#: ``SolverCache`` keys holding process-local objects (SuperLU/ILU handles)
#: that cannot cross a pickle boundary, plus state meaningless without them.
_PROCESS_LOCAL_KEYS = frozenset({"ilu", "ilu_iters0", "batch_ilu"})


class SolverCache(dict):
    """Shared factor / warm-start cache for a family of same-pattern chains.

    A plain ``dict`` except that pickling drops process-local entries (the
    ILU preconditioner wraps a SuperLU handle, which cannot cross process
    boundaries), so sweep backends holding one stay shippable to worker
    pools — workers simply rebuild the dropped state on first use.

    Well-known keys: ``"perm_c"`` (fill-reducing column permutation of the
    direct sparse LU), ``"pi0"`` (previous solution, the iterative
    methods' warm start), ``"ilu"`` (the ILU preconditioner operator).
    """

    def __reduce__(self):
        kept = {k: v for k, v in self.items() if k not in _PROCESS_LOCAL_KEYS}
        return (SolverCache, (kept,))

    def drop_warm_start(self) -> None:
        """Forget the previous solution (``"pi0"``).

        Pattern-level state — the column permutation, the RCM ordering,
        the ILU preconditioner — is point-independent and stays.  Sweep
        fan-out calls this at chunk boundaries: a warm start carried over
        from a far-away grid point can slow or stall the iterative
        methods, whereas the cold uniform start is merely unexciting.
        """
        self.pop("pi0", None)


def resolve_steady_state_method(n: int, method: str = "auto") -> str:
    """The concrete solver ``method`` denotes for an *n*-state chain.

    Deterministic in the state count: ``"auto"`` resolves to ``"lu"`` for
    ``n <= ITERATIVE_AUTO_THRESHOLD`` and to ``"gmres"`` above it;
    explicit method names resolve to themselves.

    Parameters
    ----------
    n : int
        Number of states of the chain.
    method : {"auto", "lu", "gmres", "power"}
        Requested solver method.

    Returns
    -------
    str
        One of ``"lu"``, ``"gmres"``, ``"power"``.

    Raises
    ------
    ValueError
        If *method* is not one of :data:`STEADY_STATE_METHODS`.
    """
    if method not in STEADY_STATE_METHODS:
        raise ValueError(
            f"method must be one of {STEADY_STATE_METHODS}, got {method!r}"
        )
    if method == "auto":
        return "lu" if n <= ITERATIVE_AUTO_THRESHOLD else "gmres"
    return method


def _finalize_pi(pi: np.ndarray) -> np.ndarray:
    """Validate and normalise a raw steady-state solve result."""
    if not np.all(np.isfinite(pi)):
        raise NumericalSolveError(
            "steady-state solve produced non-finite entries"
        )
    pi = np.where(np.abs(pi) < 1e-13, 0.0, pi)
    if np.any(pi < -1e-9):
        raise NumericalSolveError(
            "steady-state solve produced negative probabilities; "
            "the chain is likely reducible"
        )
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if not math.isfinite(total) or total <= 0.0:
        raise NumericalSolveError("steady-state normalisation failed")
    return pi / total


def lu_analyse_solve(
    A: sparse.spmatrix, b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``A x = b`` via SuperLU; returns ``(x, perm_c)``.

    ``perm_c`` is the fill-reducing column ordering *inverted into
    pre-permutation form*: a later system with the same sparsity pattern
    can be solved through :func:`lu_resolve_permuted` after permuting its
    columns as ``A[:, perm_c]``, skipping the symbolic analysis.
    Singular systems raise ``ValueError``.
    """
    with obs.span("solve.lu_analyse", n=len(b)):
        try:
            lu = splu(A)
            # SuperLU's perm_c maps original -> factor column positions;
            # invert it so reuse can *pre*-permute the columns
            return lu.solve(b), np.argsort(lu.perm_c)
        except RuntimeError as exc:  # "Factor is exactly singular"
            raise NumericalSolveError(f"singular generator: {exc}") from exc


def lu_resolve_permuted(
    A_permuted: sparse.spmatrix, b: np.ndarray, perm_c: np.ndarray
) -> np.ndarray:
    """Solve a same-pattern system whose columns are already ``A[:, perm_c]``.

    SuperLU factors with ``ColPerm=NATURAL`` — numeric work only, the
    symbolic analysis was paid by :func:`lu_analyse_solve` — and the
    solution is scattered back to the original ordering.  Any valid
    permutation keeps the solve exact (row pivoting still runs), so a
    stale ``perm_c`` costs fill, never correctness.
    """
    with obs.span("solve.lu_factor", n=len(b)):
        try:
            y = splu(A_permuted, permc_spec="NATURAL").solve(b)
        except RuntimeError as exc:  # "Factor is exactly singular"
            raise NumericalSolveError(f"singular generator: {exc}") from exc
    x = np.empty(len(b))
    x[perm_c] = y
    return x


def _augmented_system(Q: sparse.spmatrix) -> Tuple[sparse.csc_matrix, np.ndarray]:
    """``(A, b)`` of the augmented steady-state system.

    ``A`` is ``Q^T`` with its last balance equation replaced by the
    normalisation row of ones, so ``A x = b`` (with ``b = e_n``) has the
    stationary distribution as its unique solution for irreducible chains.
    """
    n = Q.shape[0]
    QT = Q.transpose().tocsr()
    A = sparse.vstack(
        [QT[:-1, :], sparse.csr_matrix(np.ones((1, n)))], format="csc"
    )
    b = np.zeros(n)
    b[-1] = 1.0
    return A, b


def gmres_augmented_solve(
    A: sparse.spmatrix,
    b: np.ndarray,
    tol: Optional[float] = None,
    max_iter: Optional[int] = None,
    x0: Optional[np.ndarray] = None,
    cache: Optional[Dict] = None,
    use_ilu: bool = True,
    drop_tol: Optional[float] = None,
    fill_factor: Optional[float] = None,
) -> Tuple[np.ndarray, int]:
    """Solve a prebuilt augmented steady-state system by ILU-GMRES.

    The workhorse behind :func:`gmres_steady_state`; exposed separately so
    sweep backends that already hold the augmented system (e.g. the
    phase-type backend's affine CSC template) can skip re-assembly.

    Parameters
    ----------
    A, b : sparse matrix, ndarray
        The augmented system from :func:`_augmented_system` (or an
        equivalent assembly with the same meaning).
    tol : float, optional
        Relative residual target (default ``ITERATIVE_DEFAULT_TOL``).
    max_iter : int, optional
        Inner-iteration budget (default ``GMRES_DEFAULT_MAX_ITER``);
        rounded up to whole restart cycles of length ``GMRES_RESTART``.
    x0 : ndarray, optional
        Initial guess.  When omitted and *cache* holds a same-length
        ``"pi0"`` (the previous solve of the family), that warm start is
        used — on dense sweep grids this cuts the iteration count to a
        handful per point.
    cache : dict, optional
        A :class:`SolverCache` shared by a family of same-pattern systems.
        The ILU preconditioner is stored under ``"ilu"`` and reused across
        solves (a stale ILU is still a valid preconditioner — it costs
        iterations, never correctness — and is dropped for rebuild once a
        solve needs more than ``ILU_REFRESH_ITERATIONS`` iterations or 3x
        the fresh-ILU iteration count); the solution lands under ``"pi0"``
        for the next warm start.
    use_ilu : bool
        Disable to run unpreconditioned GMRES (mainly for tests and for
        chains whose ILU factors would not fit in memory).
    drop_tol, fill_factor : float, optional
        ILU strength (defaults :data:`ILU_DROP_TOL` /
        :data:`ILU_FILL_FACTOR` — deliberately weak; see the constants).
        Callers with narrow-banded patterns gain from much stronger
        settings, which then amortise across a warm-started sweep.

    Returns
    -------
    (x, iterations) : ndarray, int
        The raw solution (un-normalised; pass through ``_finalize_pi``)
        and the inner iteration count.

    Raises
    ------
    ConvergenceError
        If the residual has not reached *tol* within the budget.
    """
    n = len(b)
    if tol is None:
        tol = ITERATIVE_DEFAULT_TOL
    if max_iter is None:
        max_iter = GMRES_DEFAULT_MAX_ITER
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    warm_start = x0 is not None
    if x0 is None and cache is not None:
        pi0 = cache.get("pi0")
        if pi0 is not None and np.shape(pi0) == (n,):
            x0 = np.asarray(pi0, dtype=np.float64)
            warm_start = True
    obs.incr(
        "solver.warm_start.hits" if warm_start else "solver.warm_start.misses"
    )
    # cache["ilu"] holds the preconditioner, or None recording an earlier
    # failed factorisation (don't re-pay the failed attempt per point)
    known_failed = False
    M = None
    if use_ilu and cache is not None and "ilu" in cache:
        M = cache["ilu"]
        if M is None:
            known_failed = True
        elif M.shape != (n, n):
            M = None  # pattern family changed size: rebuild
    fresh_ilu = False
    if M is None and use_ilu and not known_failed:
        with obs.span("solve.ilu_build", n=n) as ilu_sp:
            try:
                ilu = spilu(
                    sparse.csc_matrix(A),
                    drop_tol=ILU_DROP_TOL if drop_tol is None else drop_tol,
                    fill_factor=(
                        ILU_FILL_FACTOR if fill_factor is None else fill_factor
                    ),
                )
                M = LinearOperator((n, n), ilu.solve)
                fresh_ilu = True
                obs.incr("solver.ilu.builds")
            except RuntimeError:
                # zero pivot in the incomplete factorisation (usually a
                # reducible chain): fall through unpreconditioned and let the
                # convergence check speak
                M = None
                ilu_sp.set("failed", True)
        if cache is not None:
            cache["ilu"] = M

    residual_history: List[float] = []

    def _record(pr_norm: float) -> None:
        residual_history.append(float(pr_norm))

    restart = max(1, min(GMRES_RESTART, max_iter, n))
    outer = max(1, -(-max_iter // restart))  # ceil division
    with obs.span("solve.gmres", n=n, warm_start=warm_start) as sp:
        x, info = gmres(
            A,
            b,
            x0=x0,
            rtol=tol,
            atol=0.0,
            restart=restart,
            maxiter=outer,
            M=M,
            callback=_record,
            callback_type="pr_norm",
        )
        iterations = len(residual_history)
        sp.set("iterations", iterations)
        if residual_history:
            sp.set("final_residual", residual_history[-1])
        obs.incr("solver.gmres.solves")
        obs.incr("solver.gmres.iterations", iterations)
        if info != 0:
            residual = float(np.linalg.norm(A @ x - b) / np.linalg.norm(b))
            raise ConvergenceError(
                "gmres", iterations, residual, tol, residual_history
            )
    if cache is not None:
        cache["pi0"] = np.asarray(x, dtype=np.float64).copy()
        # the per-iteration preconditioned residual norms of the last
        # successful solve, for callers that want the convergence shape
        cache["residual_history"] = tuple(residual_history)
        if fresh_ilu:
            cache["ilu_iters0"] = iterations
        elif not known_failed and iterations > max(
            ILU_REFRESH_ITERATIONS, 3 * cache.get("ilu_iters0", 0)
        ):
            # drifted too far from the ILU's operating point: rebuild next
            cache.pop("ilu", None)
            cache.pop("ilu_iters0", None)
            obs.incr("solver.ilu.rebuilds")
    return x, iterations


def block_diag_pattern(
    indptr: np.ndarray, indices: np.ndarray, n_blocks: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Sparsity pattern of a block-diagonal stack of *n_blocks* same-pattern
    blocks.

    Given one block's compressed pattern (``indptr``/``indices`` — CSC or
    CSR, the construction is symmetric), returns the pattern of the
    ``(n_blocks * n, n_blocks * n)`` matrix whose diagonal blocks all share
    it.  Pure index arithmetic, fully vectorised: indices are tiled and
    shifted by ``k * n``, pointer arrays are tiled and shifted by
    ``k * nnz``.  One pattern serves every batch of a sweep (cacheable per
    block count); only the data slot changes per batch.
    """
    if n_blocks < 1:
        raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
    n = len(indptr) - 1
    nnz = len(indices)
    block_offsets = np.arange(n_blocks, dtype=np.intp)[:, None]
    bd_indices = (
        np.tile(indices, n_blocks).reshape(n_blocks, nnz) + block_offsets * n
    ).ravel()
    bd_indptr = np.empty(n_blocks * n + 1, dtype=np.intp)
    bd_indptr[0] = 0
    bd_indptr[1:] = (
        np.tile(np.asarray(indptr[1:], dtype=np.intp), n_blocks).reshape(
            n_blocks, n
        )
        + block_offsets * nnz
    ).ravel()
    return bd_indptr, bd_indices


def stacked_block_diag(
    indptr: np.ndarray,
    indices: np.ndarray,
    data_stack: np.ndarray,
    pattern: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> sparse.csc_matrix:
    """Assemble a block-diagonal CSC matrix from one shared pattern and a
    ``(n_blocks, nnz)`` data stack.

    The canonical use is a parameter sweep whose per-point systems share
    one sparsity pattern: materialise every grid point's numbers as one
    2-D array (e.g. the phase-type backend's affine map, one GEMM for the
    whole grid) and bind them all into a single sparse operator —
    ``data_stack.ravel()`` is already in block-then-column order, so no
    per-point assembly loop survives.

    *pattern* optionally supplies a precomputed
    :func:`block_diag_pattern` result for this block count (batches of a
    sweep reuse it); when omitted it is built here.
    """
    data_stack = np.ascontiguousarray(data_stack, dtype=np.float64)
    if data_stack.ndim != 2:
        raise ValueError(
            f"data_stack must be 2-D (n_blocks, nnz), got {data_stack.shape}"
        )
    n_blocks, nnz = data_stack.shape
    if nnz != len(indices):
        raise ValueError(
            f"data_stack has {nnz} entries per block, pattern has "
            f"{len(indices)}"
        )
    n = len(indptr) - 1
    if pattern is None:
        pattern = block_diag_pattern(indptr, indices, n_blocks)
    bd_indptr, bd_indices = pattern
    total = n_blocks * n
    return sparse.csc_matrix(
        (data_stack.ravel(), bd_indices, bd_indptr), shape=(total, total)
    )


def batched_lu_solve(
    A_bd: sparse.spmatrix,
    b_stack: np.ndarray,
    permc_spec: Optional[str] = None,
) -> np.ndarray:
    """Solve a block-diagonal stack of independent systems with **one**
    SuperLU factorisation.

    ``A_bd`` is the stacked operator (:func:`stacked_block_diag`) holding
    ``n_blocks`` independent blocks; ``b_stack`` is ``(n_blocks, n)``, one
    right-hand side per block.  Because the matrix is block diagonal, the
    complete factorisation's fill stays block-local — memory and flops are
    the *sum* of the per-block costs — while the per-call overhead
    (Python, symbolic analysis setup, triangular-solve dispatch) is paid
    once per stack instead of once per block.  Returns the solutions as
    ``(n_blocks, n)``.

    *permc_spec* passes through to ``splu``.  The default (COLAMD) runs
    the fill-reducing analysis over the whole stack — fine for one-off
    stacks, but a sweep should pre-permute each block's columns with one
    block's cached ordering and pass ``"NATURAL"``: same fill, and the
    symbolic analysis cost drops from every batch to once per sweep
    (exactly the pointwise path's :func:`lu_analyse_solve` /
    :func:`lu_resolve_permuted` split, lifted to stacks).

    Raises
    ------
    NumericalSolveError
        If *any* block is singular — SuperLU reports the stack as
        singular without naming the block.  Callers that need per-block
        isolation catch this and re-solve block-by-block to find the
        offender(s).
    """
    b_stack = np.asarray(b_stack, dtype=np.float64)
    n_blocks, n = b_stack.shape
    with obs.span("solve.batch_lu", blocks=n_blocks, n=n):
        try:
            if permc_spec is None:
                lu = splu(A_bd.tocsc())
            else:
                lu = splu(A_bd.tocsc(), permc_spec=permc_spec)
        except RuntimeError as exc:  # "Factor is exactly singular"
            raise NumericalSolveError(
                f"singular generator in batched stack: {exc}"
            ) from exc
        x = lu.solve(b_stack.ravel())
        obs.incr("solver.batch.lu_solves")
        obs.incr("solver.batch.points", n_blocks)
    return x.reshape(n_blocks, n)


def batched_dense_solve(
    A_stack: np.ndarray, b_stack: np.ndarray
) -> np.ndarray:
    """Solve a stack of small dense systems with one batched LAPACK call.

    ``A_stack`` is ``(n_blocks, n, n)``, ``b_stack`` is ``(n_blocks, n)``;
    returns the solutions as ``(n_blocks, n)``.  For blocks small enough
    to densify (tens of states), ``numpy.linalg.solve`` on the stacked
    array runs the whole batch through LAPACK's ``gesv`` with *no* Python
    in the loop — partial pivoting included — which beats any sparse
    factorisation whose per-column bookkeeping dwarfs the O(n^3) flops at
    these sizes.

    Raises
    ------
    NumericalSolveError
        If LAPACK reports an exactly singular block (the stack fails as a
        whole; callers isolate by re-solving block-by-block).
    """
    n_blocks, n = b_stack.shape
    with obs.span("solve.batch_dense", blocks=n_blocks, n=n):
        try:
            x = np.linalg.solve(A_stack, b_stack[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError as exc:
            raise NumericalSolveError(
                f"singular generator in batched dense stack: {exc}"
            ) from exc
        obs.incr("solver.batch.dense_solves")
        obs.incr("solver.batch.points", n_blocks)
    return x


def batched_gmres_solve(
    A_bd: sparse.spmatrix,
    b_stack: np.ndarray,
    A_block: Optional[sparse.spmatrix] = None,
    tol: Optional[float] = None,
    max_iter: Optional[int] = None,
    x0_stack: Optional[np.ndarray] = None,
    cache: Optional[Dict] = None,
    drop_tol: Optional[float] = None,
    fill_factor: Optional[float] = None,
) -> Tuple[np.ndarray, int]:
    """Solve a block-diagonal stack of independent systems with **one**
    restarted GMRES iteration, preconditioned by a single shared block ILU.

    The Krylov iteration runs on the whole ``(n_blocks * n,)`` stacked
    system — every matvec advances *all* blocks at once through one CSR
    kernel — and converges when every block has.  The preconditioner is an
    incomplete factorisation of **one representative block** (*A_block*,
    typically the middle grid point of the batch), applied block-wise as a
    single multi-RHS triangular solve: on a smooth parameter grid the
    blocks are near-identical operators, so one ILU preconditions the
    whole family (a property the pointwise warm-started sweep already
    exploits across time; here it is exploited across the batch).

    Parameters
    ----------
    A_bd, b_stack : sparse matrix, ndarray
        The stacked operator and the ``(n_blocks, n)`` right-hand sides.
    A_block : sparse matrix, optional
        Representative block to build the shared ILU from.  When omitted
        (and no cached ILU fits), the iteration runs unpreconditioned.
    tol : float, optional
        *Per-block* relative residual target (default
        ``ITERATIVE_DEFAULT_TOL``).  The global stopping tolerance is
        scaled by ``1/sqrt(n_blocks)`` so the stacked convergence
        criterion implies each block's residual is below *tol* even in the
        worst case where one block carries all the residual.
    max_iter : int, optional
        Inner-iteration budget (default ``GMRES_DEFAULT_MAX_ITER``).
    x0_stack : ndarray, optional
        ``(n_blocks, n)`` initial guesses (e.g. the previous batch's last
        solution tiled across the blocks).
    cache : dict, optional
        :class:`SolverCache` shared across the batches of a sweep.  The
        shared block ILU lives under ``"batch_ilu"`` (dropped and rebuilt
        when the block size changes); the last block's solution lands
        under ``"pi0"`` so the *next* batch — and any interleaved
        pointwise solve — warm-starts from the nearest grid point.
    drop_tol, fill_factor : float, optional
        ILU strength for the representative block (defaults
        :data:`ILU_DROP_TOL` / :data:`ILU_FILL_FACTOR`).

    Returns
    -------
    (x_stack, iterations) : ndarray, int
        Raw per-block solutions ``(n_blocks, n)`` (un-normalised; pass
        each through ``_finalize_pi``) and the inner iteration count.

    Raises
    ------
    ConvergenceError
        If the stacked residual has not reached the scaled tolerance
        within the budget.  Callers that need per-block isolation fall
        back to pointwise solves.
    """
    b_stack = np.asarray(b_stack, dtype=np.float64)
    n_blocks, n = b_stack.shape
    total = n_blocks * n
    if tol is None:
        tol = ITERATIVE_DEFAULT_TOL
    if max_iter is None:
        max_iter = GMRES_DEFAULT_MAX_ITER
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    # the worst case concentrates the whole stacked residual in one block;
    # scaling by 1/sqrt(n_blocks) keeps the per-block guarantee honest
    global_tol = max(tol / math.sqrt(n_blocks), 1e-13)

    ilu = None
    if cache is not None:
        entry = cache.get("batch_ilu")
        if entry is not None and entry.shape == (n, n):
            ilu = entry
    if ilu is None and A_block is not None:
        with obs.span("solve.ilu_build", n=n) as ilu_sp:
            try:
                raw = spilu(
                    sparse.csc_matrix(A_block),
                    drop_tol=ILU_DROP_TOL if drop_tol is None else drop_tol,
                    fill_factor=(
                        ILU_FILL_FACTOR if fill_factor is None else fill_factor
                    ),
                )
                ilu = LinearOperator((n, n), raw.solve, matmat=raw.solve)
                obs.incr("solver.ilu.builds")
                if cache is not None:
                    cache["batch_ilu"] = ilu
            except RuntimeError:
                # zero pivot in the representative block: iterate
                # unpreconditioned and let the convergence check speak
                ilu_sp.set("failed", True)
    M = None
    if ilu is not None:
        _solve_block = ilu.matmat  # (n, k) multi-RHS triangular solve

        def _apply_blockwise(v: np.ndarray, _s=_solve_block) -> np.ndarray:
            return np.asarray(
                _s(v.reshape(n_blocks, n).T)
            ).T.ravel()

        M = LinearOperator((total, total), _apply_blockwise)

    residual_history: List[float] = []

    def _record(pr_norm: float) -> None:
        residual_history.append(float(pr_norm))

    restart = max(1, min(GMRES_RESTART, max_iter, total))
    outer = max(1, -(-max_iter // restart))  # ceil division
    x0 = None if x0_stack is None else np.asarray(x0_stack).ravel()
    with obs.span("solve.batch_gmres", blocks=n_blocks, n=n) as sp:
        x, info = gmres(
            A_bd,
            b_stack.ravel(),
            x0=x0,
            rtol=global_tol,
            atol=0.0,
            restart=restart,
            maxiter=outer,
            M=M,
            callback=_record,
            callback_type="pr_norm",
        )
        iterations = len(residual_history)
        sp.set("iterations", iterations)
        if residual_history:
            sp.set("final_residual", residual_history[-1])
        obs.incr("solver.batch.gmres_solves")
        obs.incr("solver.batch.points", n_blocks)
        obs.incr("solver.gmres.iterations", iterations)
        if info != 0:
            b_flat = b_stack.ravel()
            residual = float(
                np.linalg.norm(A_bd @ x - b_flat) / np.linalg.norm(b_flat)
            )
            raise ConvergenceError(
                "gmres", iterations, residual, global_tol, residual_history
            )
    x_stack = x.reshape(n_blocks, n)
    if cache is not None:
        # the last block is the batch's far edge on the grid — the best
        # warm start for whatever comes next (next batch's first block)
        cache["pi0"] = x_stack[-1].copy()
        cache["residual_history"] = tuple(residual_history)
    return x_stack, iterations


def gmres_steady_state(
    Q: Union[np.ndarray, sparse.spmatrix],
    tol: Optional[float] = None,
    max_iter: Optional[int] = None,
    x0: Optional[np.ndarray] = None,
    cache: Optional[Dict] = None,
    use_ilu: bool = True,
    reorder: bool = True,
) -> np.ndarray:
    """Solve ``pi Q = 0, sum(pi) = 1`` by ILU-preconditioned GMRES.

    Builds the augmented system (``Q^T`` with the last balance row
    replaced by the normalisation row) and solves it with restarted GMRES,
    preconditioned by an incomplete LU factorisation.  Unlike the direct
    solve this never forms complete LU factors, so memory stays bounded by
    the ILU fill budget — the path that keeps chains far past
    :data:`ITERATIVE_AUTO_THRESHOLD` states tractable.

    The states are reordered by reverse Cuthill-McKee first (*reorder*;
    near-free, cached per pattern family) — reachability exploration
    emits breadth-first state orders whose ILU factors are much weaker
    than the same budget spent on a bandwidth-reduced ordering.  Warm
    starts and the returned distribution stay in the caller's original
    state order; the permutation is internal.

    See :func:`gmres_augmented_solve` for the remaining parameter
    semantics (*cache* carries warm starts and the shared preconditioner
    across a sweep).  Assumes an irreducible chain; unlike the LU path, a
    reducible chain may surface as :class:`ConvergenceError` rather than
    ``ValueError``, or converge to one of its stationary distributions.

    Returns
    -------
    ndarray
        The stationary distribution.
    """
    if not sparse.issparse(Q):
        Q = sparse.csr_matrix(np.asarray(Q, dtype=np.float64))
    Q = Q.tocsr()
    n = Q.shape[0]
    perm: Optional[np.ndarray] = None
    if reorder and n > 2:
        perm = cache.get("rcm_perm") if cache is not None else None
        if perm is not None and np.shape(perm) != (n,):
            perm = None  # pattern family changed size: re-order
        if perm is None:
            perm = np.asarray(reverse_cuthill_mckee(Q, symmetric_mode=False))
            if cache is not None:
                cache["rcm_perm"] = perm
        Q = Q[perm][:, perm].tocsr()
        if x0 is not None:
            x0 = np.asarray(x0, dtype=np.float64)[perm]
        elif cache is not None:
            pi0 = cache.get("pi0")
            if pi0 is not None and np.shape(pi0) == (n,):
                x0 = np.asarray(pi0, dtype=np.float64)[perm]
    A, b = _augmented_system(Q)
    x, _ = gmres_augmented_solve(
        A, b, tol=tol, max_iter=max_iter, x0=x0, cache=cache, use_ilu=use_ilu
    )
    if perm is not None:
        x_orig = np.empty(n)
        x_orig[perm] = x
        x = x_orig
        if cache is not None:
            # keep the warm start in original coordinates (the permuted
            # copy stored by the inner solve is translated on every read)
            cache["pi0"] = x.copy()
    return _finalize_pi(x)


def power_steady_state(
    Q: Union[np.ndarray, sparse.spmatrix],
    tol: Optional[float] = None,
    max_iter: Optional[int] = None,
    x0: Optional[np.ndarray] = None,
    cache: Optional[Dict] = None,
) -> np.ndarray:
    """Solve ``pi Q = 0, sum(pi) = 1`` by power iteration on the
    uniformized DTMC.

    With ``Lambda = 1.05 * max_i |Q_ii|`` the uniformized matrix
    ``P = I + Q / Lambda`` is a strictly aperiodic stochastic matrix whose
    unique fixed point (for irreducible chains) is the CTMC's stationary
    distribution; iterating ``x <- x P`` converges geometrically at the
    chain's mixing rate.  Each sweep is one CSR matvec and nothing beyond
    the generator is ever stored — the lowest-memory solver in the family,
    at the price of slow convergence for stiff or slowly mixing chains.

    Parameters
    ----------
    Q : ndarray or sparse matrix
        Generator (rows sum to zero).
    tol : float, optional
        Successive-iterate 1-norm target (default
        ``ITERATIVE_DEFAULT_TOL``).
    max_iter : int, optional
        Sweep budget (default ``POWER_DEFAULT_MAX_ITER``).
    x0 : ndarray, optional
        Starting distribution; defaults to the *cache*'s ``"pi0"`` warm
        start when present, else uniform.
    cache : dict, optional
        :class:`SolverCache` shared across a family; the solution is
        stored under ``"pi0"`` for the next warm start.

    Returns
    -------
    ndarray
        The stationary distribution.

    Raises
    ------
    ConvergenceError
        If the successive-iterate difference is still above *tol* after
        *max_iter* sweeps.
    ValueError
        If every state is absorbing (no uniformization constant exists).
    """
    if not sparse.issparse(Q):
        Q = sparse.csr_matrix(np.asarray(Q, dtype=np.float64))
    Q = Q.tocsr()
    n = Q.shape[0]
    if tol is None:
        tol = ITERATIVE_DEFAULT_TOL
    if max_iter is None:
        max_iter = POWER_DEFAULT_MAX_ITER
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    lam = float(-Q.diagonal().min())
    if lam <= 0.0:
        raise ValueError(
            "power iteration needs at least one non-absorbing state"
        )
    lam *= 1.05  # keep self-loop mass: guarantees aperiodicity
    PT = (sparse.eye(n, format="csr") + Q.T.tocsr() / lam).tocsr()
    warm_start = x0 is not None
    if x0 is None and cache is not None:
        pi0 = cache.get("pi0")
        if pi0 is not None and np.shape(pi0) == (n,):
            x0 = np.asarray(pi0, dtype=np.float64)
            warm_start = True
    obs.incr(
        "solver.warm_start.hits" if warm_start else "solver.warm_start.misses"
    )
    if x0 is None:
        x = np.full(n, 1.0 / n)
    else:
        x = np.clip(np.asarray(x0, dtype=np.float64), 0.0, None)
        total = x.sum()
        x = x / total if total > 0.0 else np.full(n, 1.0 / n)
    diff = math.inf
    diff_history: List[float] = []
    with obs.span("solve.power", n=n, warm_start=warm_start) as sp:
        for iteration in range(1, max_iter + 1):
            x_new = PT @ x
            total = x_new.sum()
            if not (math.isfinite(total) and total > 0.0):
                raise NumericalSolveError(
                    "power iteration produced a non-distribution"
                )
            x_new /= total
            diff = float(np.abs(x_new - x).sum())
            diff_history.append(diff)
            x = x_new
            if diff <= tol:
                break
        else:
            sp.set("iterations", max_iter)
            obs.incr("solver.power.solves")
            obs.incr("solver.power.iterations", max_iter)
            raise ConvergenceError(
                "power",
                max_iter,
                diff,
                tol,
                diff_history[-RESIDUAL_HISTORY_LIMIT:],
            )
        sp.set("iterations", iteration)
        sp.set("final_residual", diff)
        obs.incr("solver.power.solves")
        obs.incr("solver.power.iterations", iteration)
    if cache is not None:
        cache["pi0"] = x.copy()
        cache["residual_history"] = tuple(
            diff_history[-RESIDUAL_HISTORY_LIMIT:]
        )
    return _finalize_pi(x)


def sparse_steady_state(
    Q: sparse.spmatrix, perm_c: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve ``pi Q = 0, sum(pi) = 1`` from a sparse generator via SuperLU.

    The linear system (``Q^T`` with the last balance equation replaced by the
    normalisation row) is factorised with an explicit LU so the fill-reducing
    *column permutation* — the symbolic half of the factorisation — can be
    reused.  Returns ``(pi, perm_c)``.

    Parameters
    ----------
    Q:
        Sparse generator (rows sum to zero).
    perm_c:
        Column permutation from a previous call on a generator with the
        *same sparsity pattern* (e.g. an earlier point of a parameter
        sweep).  When given, the system is permuted up front and SuperLU
        factors with ``ColPerm=NATURAL``, skipping the COLAMD analysis;
        any valid permutation keeps the solve exact (row pivoting is still
        performed), so a stale permutation costs fill, never correctness.

    Raises
    ------
    ValueError
        If the system is singular (reducible chain) or the permutation has
        the wrong length.
    """
    n = Q.shape[0]
    A, b = _augmented_system(Q)
    if perm_c is None:
        pi, perm_c = lu_analyse_solve(A, b)
    else:
        perm_c = np.asarray(perm_c)
        if perm_c.shape != (n,):
            raise ValueError(
                f"perm_c must have length {n}, got shape {perm_c.shape}"
            )
        pi = lu_resolve_permuted(A[:, perm_c], b, perm_c)
    return _finalize_pi(pi), perm_c


class CTMC:
    """A finite continuous-time Markov chain.

    Parameters
    ----------
    generator:
        ``(n, n)`` generator matrix, dense or scipy-sparse.  Off-diagonals
        must be >= 0 and each row must sum to ~0 (the constructor
        re-normalises diagonals to make rows sum exactly to zero, and
        verifies the original diagonals were consistent).
    labels:
        Optional state labels (any hashables); defaults to ``range(n)``.
    backend:
        ``"dense"``, ``"sparse"``, or ``"auto"`` (default).  ``"auto"``
        picks sparse when the generator is already a scipy-sparse matrix or
        when ``n > SPARSE_AUTO_THRESHOLD``.  The backend decides how the
        steady-state system is solved and how uniformization multiplies;
        results agree to solver precision either way.
    factor_cache:
        Optional mutable mapping shared by a *family* of chains with the
        same sparsity pattern (e.g. the per-point chains of a parameter
        sweep).  The sparse steady-state solve stores its fill-reducing
        column permutation under ``"perm_c"`` and later chains reuse it,
        paying the symbolic analysis once per family (see
        :func:`sparse_steady_state`).  Ignored by the dense backend.
    """

    def __init__(
        self,
        generator: Union[np.ndarray, sparse.spmatrix],
        labels: Optional[Sequence[Hashable]] = None,
        backend: str = "auto",
        factor_cache: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        is_sparse_input = sparse.issparse(generator)
        if is_sparse_input:
            Q = generator.tocsr().astype(np.float64)
        else:
            Q = np.asarray(generator, dtype=np.float64)
        if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
            raise ValueError(f"generator must be square, got shape {Q.shape}")
        n = Q.shape[0]
        if n == 0:
            raise ValueError("empty chain")

        if backend == "auto":
            backend = (
                "sparse"
                if is_sparse_input or n > SPARSE_AUTO_THRESHOLD
                else "dense"
            )
        self.backend = backend
        self.n = n

        if is_sparse_input:
            off = Q.copy()
            off.setdiag(0.0)
            off.eliminate_zeros()
            if off.data.size and off.data.min() < 0.0:
                raise ValueError("off-diagonal rates must be >= 0")
            rates_out = np.asarray(off.sum(axis=1)).ravel()
            diag = Q.diagonal()
        else:
            off = Q.copy()
            np.fill_diagonal(off, 0.0)
            if np.any(off < 0.0):
                raise ValueError("off-diagonal rates must be >= 0")
            rates_out = off.sum(axis=1)
            diag = np.diag(Q)
        if not np.allclose(diag, -rates_out, rtol=1e-8, atol=1e-8):
            raise ValueError("rows of a generator must sum to zero")

        self._exit_rates: np.ndarray = rates_out
        self._Q_dense: Optional[np.ndarray] = None
        self._Q_csr: Optional[sparse.csr_matrix] = None
        if backend == "sparse":
            if is_sparse_input:
                self._Q_csr = (off - sparse.diags(rates_out)).tocsr()
            else:
                Qc = off
                np.fill_diagonal(Qc, -rates_out)
                self._Q_csr = sparse.csr_matrix(Qc)
        else:
            if is_sparse_input:
                Qc = off.toarray()
            else:
                Qc = off
            np.fill_diagonal(Qc, -rates_out)
            self._Q_dense = Qc

        if labels is None:
            labels = list(range(n))
        if len(labels) != n:
            raise ValueError("labels length must match generator size")
        self.labels: List[Hashable] = list(labels)
        self._index: Dict[Hashable, int] = {s: i for i, s in enumerate(self.labels)}
        if len(self._index) != n:
            raise ValueError("labels must be unique")

        # solver caches (the generator is immutable after construction);
        # steady-state solutions are cached per resolved method so method
        # comparisons exercise genuinely independent solves
        self._pi_cache: Dict[str, np.ndarray] = {}
        self._unif: Optional[Tuple[float, Callable[[np.ndarray], np.ndarray]]] = None
        self._factor_cache = factor_cache

    # ------------------------------------------------------------------ #
    # representations
    # ------------------------------------------------------------------ #
    @property
    def Q(self) -> np.ndarray:
        """Dense generator matrix (materialised lazily under sparse backend)."""
        if self._Q_dense is None:
            assert self._Q_csr is not None
            self._Q_dense = self._Q_csr.toarray()
        return self._Q_dense

    @property
    def Q_sparse(self) -> sparse.csr_matrix:
        """CSR generator matrix (materialised lazily under dense backend)."""
        if self._Q_csr is None:
            assert self._Q_dense is not None
            self._Q_csr = sparse.csr_matrix(self._Q_dense)
        return self._Q_csr

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rates(
        cls,
        rates: RateDict,
        labels: Optional[Sequence[Hashable]] = None,
        backend: str = "auto",
    ) -> "CTMC":
        """Build from ``{(src, dst): rate}``.

        Labels default to the sorted set of states mentioned in *rates*
        (sorted by string representation to accept mixed label types).
        Under the sparse backend the generator is assembled as COO and
        never densified.
        """
        if labels is None:
            seen = {s for pair in rates for s in pair}
            labels = sorted(seen, key=repr)
        index = {s: i for i, s in enumerate(labels)}
        n = len(labels)
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        for (src, dst), rate in rates.items():
            if src == dst:
                raise ValueError(f"self-loop rate on state {src!r}")
            if rate < 0.0:
                raise ValueError(f"negative rate {rate} on {src!r}->{dst!r}")
            rows.append(index[src])
            cols.append(index[dst])
            data.append(rate)
        off = sparse.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
        exit_rates = np.asarray(off.sum(axis=1)).ravel()
        if backend == "sparse" or (
            backend == "auto" and n > SPARSE_AUTO_THRESHOLD
        ):
            Q: Union[np.ndarray, sparse.spmatrix] = off - sparse.diags(exit_rates)
        else:
            Q = off.toarray()
            np.fill_diagonal(Q, -exit_rates)
        return cls(Q, labels, backend=backend)

    # ------------------------------------------------------------------ #
    # solutions
    # ------------------------------------------------------------------ #
    def steady_state(
        self,
        method: str = "auto",
        tol: Optional[float] = None,
        max_iter: Optional[int] = None,
        x0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Stationary distribution ``pi`` with ``pi Q = 0`` and ``sum = 1``.

        Parameters
        ----------
        method : {"auto", "lu", "gmres", "power"}
            Steady-state solver.

            - ``"lu"`` — direct solve of the augmented system (one balance
              equation replaced by the normalisation constraint), densely
              via LAPACK or sparsely via SuperLU depending on the chain's
              ``backend``.  Exact to machine precision; memory grows with
              LU fill.
            - ``"gmres"`` — restarted GMRES with an ILU preconditioner on
              the same augmented system (:func:`gmres_steady_state`).
              Memory bounded by the ILU fill budget; the path for chains
              the direct factorisation cannot hold.
            - ``"power"`` — power iteration on the uniformized DTMC
              (:func:`power_steady_state`).  Lowest memory (the generator
              plus two vectors), slowest convergence.
            - ``"auto"`` — ``"lu"`` up to
              :data:`ITERATIVE_AUTO_THRESHOLD` (20 000) states, then
              ``"gmres"`` (see :func:`resolve_steady_state_method` and
              docs/solvers.md).
        tol : float, optional
            Convergence tolerance of the iterative methods (default
            ``1e-10``); ignored by ``"lu"``, which is direct.
        max_iter : int, optional
            Iteration budget of the iterative methods (GMRES inner
            iterations / power sweeps); ignored by ``"lu"``.
        x0 : ndarray, optional
            Warm start for the iterative methods.  When omitted, the
            chain's ``factor_cache`` provides the previous same-pattern
            solution (``"pi0"``), which is what makes dense sweep grids
            converge in a handful of iterations per point.

        Returns
        -------
        ndarray
            The stationary distribution (a copy).  Solutions are cached
            per resolved method — but only for default-argument solves: a
            call with an explicit *tol*, *max_iter* or *x0* always solves
            fresh (and is not cached), so asking for a tighter tolerance
            can never be answered with an earlier, looser vector.

        Raises
        ------
        ValueError
            Unknown *method*, or a singular (reducible) chain under the
            direct solver.
        ConvergenceError
            An iterative method stalled before reaching *tol*; the error
            carries the iteration count and final residual.

        Notes
        -----
        The direct solver detects reducible chains (singular system); the
        iterative methods assume irreducibility and may instead stall or
        converge to one of several stationary distributions.  Requires a
        single recurrent class reachable from everywhere for the result
        to be *the* stationary distribution.
        """
        resolved = self.resolve_method(method)
        default_solve = tol is None and max_iter is None and x0 is None
        if default_solve:
            cached = self._pi_cache.get(resolved)
            if cached is not None:
                return cached.copy()
        with obs.span("solve.steady", method=resolved, n=self.n):
            try:
                pi = self._solve_steady_state(resolved, tol, max_iter, x0)
            except NumericalSolveError as exc:
                diagnosis = self.reducibility_diagnosis()
                if diagnosis is not None:
                    raise NumericalSolveError(f"{exc} — {diagnosis}") from exc
                raise
        if default_solve:
            self._pi_cache[resolved] = pi
        return pi.copy()

    def resolve_method(self, method: str = "auto") -> str:
        """The concrete solver *method* denotes for this chain's size."""
        return resolve_steady_state_method(self.n, method)

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def communicating_classes(self):
        """Strongly-connected-component structure of the transition graph.

        Returns a :class:`repro.verify.chain.ChainClassification`; one
        ``O(n + nnz)`` pass, independent of the rates' magnitudes (only
        the sparsity pattern matters).
        """
        from repro.verify.chain import classify_states

        coo = self.Q_sparse.tocoo()
        mask = coo.data != 0.0
        return classify_states(self.n, coo.row[mask], coo.col[mask])

    def is_irreducible(self) -> bool:
        """True when every state communicates with every other state."""
        return self.communicating_classes().is_irreducible

    def reducibility_diagnosis(self) -> Optional[str]:
        """Why ``pi Q = 0`` has no unique root, or ``None`` if it does.

        Names the closed communicating classes by their state labels so a
        failed steady-state solve can report *which* parts of the chain
        fragment, instead of the bare ``singular generator``.
        """
        classification = self.communicating_classes()
        if classification.has_unique_stationary:
            return None
        closed = classification.closed_members()
        parts = [
            f"class of {self.labels[members[0]]!r} ({len(members)} state(s))"
            for members in closed[:3]
        ]
        if len(closed) > 3:
            parts.append(f"+{len(closed) - 3} more")
        return (
            f"the chain is reducible: {len(closed)} closed communicating "
            f"classes ({'; '.join(parts)}), so no unique stationary "
            "distribution exists"
        )

    def seed_steady_state(self, pi: np.ndarray) -> None:
        """Install an externally solved stationary vector.

        Every method's cache is seeded — the vector *is* the stationary
        distribution, however it was obtained (e.g. a sweep backend's
        shared-template solve).
        """
        pi = np.asarray(pi, dtype=np.float64)
        if pi.shape != (self.n,):
            raise ValueError(f"pi must have shape ({self.n},)")
        solved = pi.copy()
        for name in STEADY_STATE_METHODS[1:]:
            self._pi_cache[name] = solved

    def _solve_steady_state(
        self,
        method: str,
        tol: Optional[float],
        max_iter: Optional[int],
        x0: Optional[np.ndarray],
    ) -> np.ndarray:
        n = self.n
        if method == "gmres":
            return gmres_steady_state(
                self.Q_sparse,
                tol=tol,
                max_iter=max_iter,
                x0=x0,
                cache=self._factor_cache,
            )
        if method == "power":
            return power_steady_state(
                self.Q_sparse,
                tol=tol,
                max_iter=max_iter,
                x0=x0,
                cache=self._factor_cache,
            )
        if self.backend == "sparse":
            # A = Q^T with the last row replaced by the normalisation row,
            # factorised via SuperLU with the symbolic analysis shared
            # through factor_cache when one was provided.
            cache = self._factor_cache
            perm_c = cache.get("perm_c") if cache is not None else None
            if perm_c is not None and np.asarray(perm_c).shape != (n,):
                perm_c = None  # pattern family changed size: re-analyse
            pi, perm_c = sparse_steady_state(self.Q_sparse, perm_c)
            if cache is not None:
                cache["perm_c"] = perm_c
            return pi
        b = np.zeros(n)
        b[-1] = 1.0
        A = self.Q.T.copy()
        A[-1, :] = 1.0
        try:
            pi = np.linalg.solve(A, b)
        except np.linalg.LinAlgError as exc:
            raise NumericalSolveError(f"singular generator: {exc}") from exc
        return _finalize_pi(pi)

    def steady_state_dict(self) -> Dict[Hashable, float]:
        """Stationary distribution keyed by state label."""
        pi = self.steady_state()
        return {s: float(pi[i]) for i, s in enumerate(self.labels)}

    def _uniformized(self) -> Tuple[float, Callable[[np.ndarray], np.ndarray]]:
        """``(Lambda, matvec)`` for ``P = I + Q / Lambda`` (cached).

        ``matvec(v)`` computes ``v @ P`` — densely as a BLAS gemv, sparsely
        as a CSR matvec with the transposed uniformized matrix.
        """
        if self._unif is None:
            lam = float(np.max(self._exit_rates))
            if lam > 0.0:
                lam *= 1.000000001  # strictly dominate the diagonal
            if self.backend == "sparse":
                PT = (
                    sparse.eye(self.n, format="csr")
                    + self.Q_sparse.T.tocsr() / lam
                ).tocsr() if lam > 0.0 else None

                def matvec(v: np.ndarray, _PT=PT) -> np.ndarray:
                    return _PT @ v
            else:
                P = np.eye(self.n) + self.Q / lam if lam > 0.0 else None

                def matvec(v: np.ndarray, _P=P) -> np.ndarray:
                    return v @ _P

            self._unif = (lam, matvec)
        return self._unif

    def _advance(self, p: np.ndarray, dt: float, tol: float) -> np.ndarray:
        """Advance distribution *p* by *dt* via uniformization."""
        if dt == 0.0:
            return p
        lam, matvec = self._uniformized()
        if lam == 0.0:  # absorbing everywhere: nothing moves
            return p
        x = lam * dt
        # Poisson weights with scaling for large x: iterate in log space.
        log_w = -x  # log Poisson(0)
        vec = p.copy()
        acc = np.zeros(self.n)
        k = 0
        log_tail_bound = math.log(tol)
        # upper bound on needed terms: mean + 10 sqrt(mean) + 50
        k_max = int(x + 10.0 * math.sqrt(x) + 50.0)
        cumulative = 0.0
        while k <= k_max:
            w = math.exp(log_w)
            acc += w * vec
            cumulative += w
            if cumulative >= 1.0 - tol and k >= x:
                break
            vec = matvec(vec)
            k += 1
            log_w += math.log(x) - math.log(k)
            if log_w < log_tail_bound and k > x:
                break
        # renormalise the truncated sum
        total = acc.sum()
        if total > 0:
            acc /= total
        return acc

    def transient(
        self,
        p0: Union[np.ndarray, Mapping[Hashable, float]],
        t: float,
        tol: float = 1e-12,
    ) -> np.ndarray:
        """Distribution at time *t* from initial distribution *p0*.

        Uses uniformization: with ``Lambda >= max_i |Q_ii|`` and
        ``P = I + Q / Lambda``,

        ``pi(t) = sum_k Poisson(k; Lambda t) * p0 P^k``

        truncated when the Poisson tail drops below *tol*.  All terms are
        non-negative, so the method is numerically stable for any horizon.
        Under the sparse backend each term costs one CSR matvec.
        """
        if t < 0.0:
            raise ValueError("t must be >= 0")
        p = self._coerce_distribution(p0)
        if t == 0.0:
            return p
        return self._advance(p, t, tol)

    def advance(
        self,
        p: Union[np.ndarray, Mapping[Hashable, float]],
        dt: float,
        tol: float = 1e-12,
    ) -> np.ndarray:
        """One incremental uniformization step: the distribution *dt* later.

        Unlike :meth:`transient`, which always starts from ``t = 0``,
        this lets callers walk a trajectory forward step by step — the
        total cost over a horizon is one uniformization pass instead of
        one per sample point.  *p* must already be a distribution.
        """
        if dt < 0.0:
            raise ValueError("dt must be >= 0")
        return self._advance(self._coerce_distribution(p), dt, tol)

    def transient_dict(
        self, p0: Union[np.ndarray, Mapping[Hashable, float]], t: float
    ) -> Dict[Hashable, float]:
        vec = self.transient(p0, t)
        return {s: float(vec[i]) for i, s in enumerate(self.labels)}

    # ------------------------------------------------------------------ #
    # rewards
    # ------------------------------------------------------------------ #
    def expected_reward_rate(
        self, rewards: Union[np.ndarray, Mapping[Hashable, float]]
    ) -> float:
        """Steady-state expected reward rate ``sum_i pi_i r_i``.

        With per-state power draws as rewards this is the chain's average
        power, and ``average power * horizon`` is the paper's Equation 25.
        """
        r = self._coerce_rewards(rewards)
        return float(self.steady_state() @ r)

    def accumulated_reward(
        self,
        p0: Union[np.ndarray, Mapping[Hashable, float]],
        rewards: Union[np.ndarray, Mapping[Hashable, float]],
        t: float,
        steps: int = 256,
        tol: float = 1e-12,
    ) -> float:
        """Expected accumulated reward over ``[0, t]`` (composite Simpson).

        Integrates ``pi(s) . r`` over the horizon, stepping the transient
        distribution forward *incrementally* between quadrature nodes: one
        uniformization pass over the whole horizon instead of a fresh pass
        from ``t = 0`` per node, so the cost is ``O(Lambda t)`` matvecs
        rather than ``O(steps * Lambda t)``.  Accurate enough for energy
        accounting (the integrand is smooth and bounded).
        """
        if steps < 2:
            raise ValueError("steps must be >= 2")
        if steps % 2:
            steps += 1
        r = self._coerce_rewards(rewards)
        p = self._coerce_distribution(p0)
        h = t / steps
        vals = np.empty(steps + 1)
        vals[0] = p @ r
        for i in range(1, steps + 1):
            p = self._advance(p, h, tol)
            vals[i] = p @ r
        return float(h / 3.0 * (vals[0] + vals[-1] + 4 * vals[1:-1:2].sum() + 2 * vals[2:-1:2].sum()))

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def holding_rate(self, state: Hashable) -> float:
        """Total exit rate of *state*."""
        return float(self._exit_rates[self._index[state]])

    def embedded_dtmc(self) -> "np.ndarray":
        """Jump-chain transition matrix (rows of absorbing states self-loop)."""
        n = self.n
        Q = self.Q
        P = np.zeros((n, n))
        for i in range(n):
            out = -Q[i, i]
            if out <= 0.0:
                P[i, i] = 1.0
            else:
                P[i, :] = Q[i, :] / out
                P[i, i] = 0.0
        return P

    def _coerce_distribution(
        self, p0: Union[np.ndarray, Mapping[Hashable, float]]
    ) -> np.ndarray:
        if isinstance(p0, Mapping):
            vec = np.zeros(self.n)
            for s, p in p0.items():
                vec[self._index[s]] = p
        else:
            vec = np.asarray(p0, dtype=np.float64)
        if vec.shape != (self.n,):
            raise ValueError(f"distribution must have shape ({self.n},)")
        if np.any(vec < -1e-12) or not math.isclose(float(vec.sum()), 1.0, abs_tol=1e-9):
            raise ValueError("initial distribution must be non-negative and sum to 1")
        return np.clip(vec, 0.0, None)

    def _coerce_rewards(
        self, rewards: Union[np.ndarray, Mapping[Hashable, float]]
    ) -> np.ndarray:
        if isinstance(rewards, Mapping):
            vec = np.zeros(self.n)
            for s, r in rewards.items():
                vec[self._index[s]] = r
            return vec
        vec = np.asarray(rewards, dtype=np.float64)
        if vec.shape != (self.n,):
            raise ValueError(f"rewards must have shape ({self.n},)")
        return vec

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CTMC(n={self.n}, backend={self.backend!r})"
