"""Open workload generators (§4.1: "tasks arrive independent of the state
of the current task").

- :class:`PoissonProcess` — the paper's workload (memoryless interrupts).
- :class:`MMPPProcess` — Markov-modulated Poisson: the arrival rate
  switches between regimes (e.g. quiescent monitoring vs event bursts in a
  surveillance WSN), producing correlated, bursty traffic that no renewal
  process can express.
- :class:`BatchPoissonProcess` — Poisson-timed batches of geometrically
  distributed size (a sensor flushing a buffer of readings at once).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.des.distributions import Exponential
from repro.workload.base import ArrivalProcess, RenewalProcess

__all__ = ["PoissonProcess", "MMPPProcess", "BatchPoissonProcess"]


class PoissonProcess(RenewalProcess):
    """Poisson arrivals with the given rate (exponential gaps)."""

    def __init__(self, rate: float) -> None:
        super().__init__(Exponential(rate))
        self.rate = float(rate)

    def __repr__(self) -> str:
        return f"PoissonProcess(rate={self.rate!r})"


class MMPPProcess(ArrivalProcess):
    """Markov-modulated Poisson process.

    A background CTMC with ``len(rates)`` phases modulates the instantaneous
    Poisson rate: while in phase *i* arrivals occur at ``rates[i]`` and the
    phase switches away at ``switch_rates[i]`` (uniformly to another phase
    when more than two are defined).

    The process is *not* renewal — the phase persists between arrivals —
    so the class carries internal state; call :meth:`reset` between
    replications.
    """

    def __init__(
        self,
        rates: Sequence[float],
        switch_rates: Sequence[float],
        start_phase: int = 0,
    ) -> None:
        self.rates = np.asarray(rates, dtype=np.float64)
        self.switch = np.asarray(switch_rates, dtype=np.float64)
        if self.rates.ndim != 1 or self.rates.shape != self.switch.shape:
            raise ValueError("rates and switch_rates must be equal-length 1-D")
        if self.rates.size < 2:
            raise ValueError("MMPP needs at least two phases")
        if np.any(self.rates < 0.0) or np.any(self.switch <= 0.0):
            raise ValueError("need rates >= 0 and switch_rates > 0")
        if np.all(self.rates == 0.0):
            raise ValueError("at least one phase must have a positive rate")
        if not (0 <= start_phase < self.rates.size):
            raise ValueError("start_phase out of range")
        self.start_phase = int(start_phase)
        self.phase = self.start_phase

    def reset(self) -> None:
        self.phase = self.start_phase

    def stationary_phase_distribution(self) -> np.ndarray:
        """Stationary distribution of the modulating chain.

        With uniform switching, the chain's stationary weights are inversely
        proportional to the exit rates.
        """
        w = 1.0 / self.switch
        return w / w.sum()

    def mean_rate(self) -> float:
        """Phase-weighted mean arrival rate."""
        return float(self.stationary_phase_distribution() @ self.rates)

    def next_interarrival(self, rng: np.random.Generator) -> float:
        """Competing-exponentials race between 'arrival' and 'phase switch'."""
        elapsed = 0.0
        n_phases = self.rates.size
        while True:
            lam = self.rates[self.phase]
            sw = self.switch[self.phase]
            total = lam + sw
            step = rng.exponential(1.0 / total)
            elapsed += step
            if rng.random() < lam / total:
                return elapsed
            # phase switch: uniform over the other phases
            if n_phases == 2:
                self.phase = 1 - self.phase
            else:
                move = rng.integers(n_phases - 1)
                self.phase = int(move if move < self.phase else move + 1)

    def __repr__(self) -> str:
        return (
            f"MMPPProcess(rates={self.rates.tolist()!r}, "
            f"switch={self.switch.tolist()!r})"
        )


class BatchPoissonProcess(ArrivalProcess):
    """Poisson-timed batches with geometric batch sizes.

    Batches arrive at ``batch_rate``; each batch holds ``Geometric(p)``
    jobs (support 1, 2, …, mean ``1/p``).  Jobs within a batch arrive
    back-to-back (zero gap), modelling a node flushing buffered readings.
    """

    def __init__(self, batch_rate: float, mean_batch_size: float) -> None:
        if batch_rate <= 0.0:
            raise ValueError("batch_rate must be > 0")
        if mean_batch_size < 1.0:
            raise ValueError("mean_batch_size must be >= 1")
        self.batch_rate = float(batch_rate)
        self.mean_batch_size = float(mean_batch_size)
        self._p = 1.0 / self.mean_batch_size
        self._remaining = 0

    def reset(self) -> None:
        self._remaining = 0

    def mean_rate(self) -> float:
        return self.batch_rate * self.mean_batch_size

    def next_interarrival(self, rng: np.random.Generator) -> float:
        if self._remaining > 0:
            self._remaining -= 1
            return 0.0
        gap = rng.exponential(1.0 / self.batch_rate)
        self._remaining = int(rng.geometric(self._p)) - 1
        return float(gap)

    def __repr__(self) -> str:
        return (
            f"BatchPoissonProcess(batch_rate={self.batch_rate!r}, "
            f"mean_batch_size={self.mean_batch_size!r})"
        )
