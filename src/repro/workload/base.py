"""Arrival-process interface.

An :class:`ArrivalProcess` is a *stateful* generator of inter-arrival times:
``next_interarrival(rng)`` returns the time to the next job.  Statefulness
matters because interesting processes (MMPP, traces) are not renewal
processes — the next gap depends on internal phase.  :meth:`reset` rewinds
that internal state so a process object can be reused across replications.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

import numpy as np

from repro.des.distributions import Distribution, Exponential

__all__ = ["ArrivalProcess", "RenewalProcess"]


class ArrivalProcess(ABC):
    """Stateful source of inter-arrival times."""

    @abstractmethod
    def next_interarrival(self, rng: np.random.Generator) -> float:
        """Time until the next arrival (>= 0)."""

    @abstractmethod
    def mean_rate(self) -> float:
        """Long-run arrival rate (jobs per unit time)."""

    def reset(self) -> None:
        """Rewind internal state (default: stateless, nothing to do)."""

    def arrival_times(
        self,
        rng: np.random.Generator,
        horizon: Optional[float] = None,
        n: Optional[int] = None,
    ) -> np.ndarray:
        """Materialise arrival instants until *horizon* or *n* arrivals.

        Exactly one of *horizon* / *n* must be given.
        """
        if (horizon is None) == (n is None):
            raise ValueError("specify exactly one of horizon or n")
        times: List[float] = []
        t = 0.0
        if n is not None:
            if n < 0:
                raise ValueError("n must be >= 0")
            for _ in range(n):
                t += self.next_interarrival(rng)
                times.append(t)
        else:
            if horizon <= 0.0:
                raise ValueError("horizon must be > 0")
            while True:
                t += self.next_interarrival(rng)
                if t > horizon:
                    break
                times.append(t)
        return np.asarray(times)


class RenewalProcess(ArrivalProcess):
    """I.i.d. inter-arrival times from any delay distribution.

    ``RenewalProcess(Exponential(lam))`` is the Poisson process; a
    ``Deterministic`` distribution gives the fixed-interval workload the
    paper associates with closed generators; ``Weibull``/``LogNormal``
    model heavy-tailed sensing triggers.
    """

    def __init__(self, interarrival: Distribution) -> None:
        if not isinstance(interarrival, Distribution):
            raise TypeError("interarrival must be a Distribution")
        if interarrival.mean() <= 0.0:
            raise ValueError("inter-arrival mean must be > 0")
        self.interarrival = interarrival

    def next_interarrival(self, rng: np.random.Generator) -> float:
        return float(self.interarrival.sample(rng))

    def mean_rate(self) -> float:
        return 1.0 / self.interarrival.mean()

    def cv2(self) -> float:
        """Squared coefficient of variation of the gaps (burstiness proxy)."""
        return self.interarrival.cv2()

    def __repr__(self) -> str:
        return f"RenewalProcess({self.interarrival!r})"


def poisson(rate: float) -> RenewalProcess:
    """Shorthand for the Poisson process of the given rate."""
    return RenewalProcess(Exponential(rate))
