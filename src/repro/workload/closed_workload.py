"""Closed workload: a finite client population with think times.

The paper (§4.1): "a new task will not arrive until the current task has
been completed … best suited for modeling tasks that occur at set
intervals."  Here a population of ``n_clients`` logical task sources each
cycles through *think → submit → wait for completion → think …*; the CPU
itself keeps the paper's power management (idle threshold ``T``, power-up
delay ``D``).

:class:`ClosedCPUSimulator` simulates this loop event-driven on the DES
kernel and reports the same :class:`~repro.core.params.StateFractions` as
the open-workload models, so open and closed generators can be compared
apples-to-apples (the ``open_vs_closed`` example does exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.params import CPUModelParams, StateFractions
from repro.des.distributions import Distribution, Exponential
from repro.des.engine import Simulator
from repro.des.monitors import StateOccupancyMonitor
from repro.des.random_streams import StreamManager
from repro.des.statistics import TallyStatistic

__all__ = ["ClosedWorkload", "ClosedCPUSimulator", "ClosedCPUResult"]

_STATES = ("idle", "standby", "powerup", "active")


@dataclass(frozen=True)
class ClosedWorkload:
    """A closed population: *n_clients* sources with i.i.d. think times."""

    n_clients: int
    think_time: Distribution

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if self.think_time.mean() <= 0.0:
            raise ValueError("think time mean must be > 0")

    def nominal_rate(self) -> float:
        """Arrival rate if the CPU were infinitely fast (upper bound):
        ``n_clients / E[think]``."""
        return self.n_clients / self.think_time.mean()


@dataclass(frozen=True)
class ClosedCPUResult:
    """Closed-loop simulation outcome."""

    fractions: StateFractions
    jobs_served: int
    mean_latency: float
    effective_arrival_rate: float
    horizon: float


class ClosedCPUSimulator:
    """Power-managed CPU fed by a closed workload.

    Parameters
    ----------
    params:
        CPU parameters — ``arrival_rate`` is ignored (the closed loop
        determines arrivals); service rate, threshold, delay and profile
        are used as in the open model.
    workload:
        Client population and think-time distribution.
    """

    def __init__(
        self,
        params: CPUModelParams,
        workload: ClosedWorkload,
        streams: Optional[StreamManager] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.params = params
        self.workload = workload
        self.streams = streams if streams is not None else StreamManager(seed)

    def run(self, horizon: float, warmup: float = 0.0) -> ClosedCPUResult:
        """Simulate ``[0, horizon]``; statistics collected after *warmup*."""
        if horizon <= 0.0:
            raise ValueError("horizon must be > 0")
        if not (0.0 <= warmup < horizon):
            raise ValueError("need 0 <= warmup < horizon")
        p = self.params
        mu, T, D = p.service_rate, p.power_down_threshold, p.power_up_delay
        think_rng = self.streams.get("closed/think")
        svc_rng = self.streams.get("closed/service")

        sim = Simulator()
        monitor = [StateOccupancyMonitor(_STATES, "standby")]
        latency = [TallyStatistic()]
        queue: list = []  # submission times, FIFO
        state = {"n": 0, "mode": "standby"}
        pd_event = [None]
        served = [0]
        stats_from = [0.0 if warmup == 0.0 else warmup]

        def set_mode(mode: str) -> None:
            state["mode"] = mode
            monitor[0].transition(sim.now, mode)

        def start_service() -> None:
            set_mode("active")
            sim.schedule(svc_rng.exponential(1.0 / mu), service_done)

        def client_thinks() -> None:
            sim.schedule(
                float(self.workload.think_time.sample(think_rng)), submit
            )

        def submit() -> None:
            state["n"] += 1
            queue.append(sim.now)
            mode = state["mode"]
            if mode == "standby":
                set_mode("powerup")
                sim.schedule(D, powered_up)
            elif mode == "idle":
                if pd_event[0] is not None:
                    sim.cancel(pd_event[0])
                    pd_event[0] = None
                start_service()

        def powered_up() -> None:
            assert state["n"] > 0
            start_service()

        def service_done() -> None:
            state["n"] -= 1
            served[0] += 1
            t_submit = queue.pop(0)
            if t_submit >= stats_from[0]:
                latency[0].record(sim.now - t_submit)
            client_thinks()  # completion releases the client back to thinking
            if state["n"] > 0:
                start_service()
            else:
                set_mode("idle")
                pd_event[0] = sim.schedule(T, power_down)

        def power_down() -> None:
            pd_event[0] = None
            set_mode("standby")

        for _ in range(self.workload.n_clients):
            client_thinks()

        if warmup > 0.0:
            sim.run_until(warmup)
            monitor[0] = StateOccupancyMonitor(
                _STATES, state["mode"], start_time=warmup
            )
            latency[0] = TallyStatistic()
            served[0] = 0
        sim.run_until(horizon)

        occupancy = monitor[0].occupancy(horizon)
        observed = horizon - warmup
        return ClosedCPUResult(
            fractions=StateFractions(
                idle=occupancy["idle"],
                standby=occupancy["standby"],
                powerup=occupancy["powerup"],
                active=occupancy["active"],
            ),
            jobs_served=served[0],
            mean_latency=latency[0].mean if latency[0].count else float("nan"),
            effective_arrival_rate=served[0] / observed,
            horizon=observed,
        )
