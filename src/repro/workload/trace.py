"""Trace-driven workloads: record, persist, and replay arrival instants.

Lets a measured (or synthesised) arrival sequence drive any of the models:
record a trace from one process, replay it through another simulator, and
compare.  The on-disk format is one float timestamp per line with ``#``
comments — trivially diffable and tool-friendly.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.workload.base import ArrivalProcess

__all__ = ["ArrivalTrace", "TraceProcess"]


class ArrivalTrace:
    """An ordered sequence of arrival timestamps starting after t = 0."""

    def __init__(self, times: np.ndarray) -> None:
        arr = np.asarray(times, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("trace must be 1-D")
        if arr.size and (arr[0] < 0.0 or np.any(np.diff(arr) < 0.0)):
            raise ValueError("trace timestamps must be non-negative and sorted")
        if arr.size and not np.all(np.isfinite(arr)):
            raise ValueError("trace timestamps must be finite")
        self.times = arr

    # ------------------------------------------------------------------ #
    @classmethod
    def from_process(
        cls,
        process: ArrivalProcess,
        rng: np.random.Generator,
        horizon: Optional[float] = None,
        n: Optional[int] = None,
    ) -> "ArrivalTrace":
        """Record a trace by sampling *process*."""
        process.reset()
        return cls(process.arrival_times(rng, horizon=horizon, n=n))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ArrivalTrace":
        """Read a trace file (one timestamp per line, ``#`` comments)."""
        values = []
        for line in Path(path).read_text().splitlines():
            text = line.split("#", 1)[0].strip()
            if text:
                values.append(float(text))
        return cls(np.asarray(values))

    def save(self, path: Union[str, Path], header: str = "") -> None:
        """Write the trace with an optional comment header."""
        lines = []
        if header:
            lines.extend(f"# {h}" for h in header.splitlines())
        lines.extend(f"{t:.9f}" for t in self.times)
        Path(path).write_text("\n".join(lines) + "\n")

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def horizon(self) -> float:
        return float(self.times[-1]) if self.times.size else 0.0

    def interarrivals(self) -> np.ndarray:
        """Gaps between consecutive arrivals (first gap is from t = 0)."""
        if not self.times.size:
            return np.empty(0)
        return np.diff(self.times, prepend=0.0)

    def mean_rate(self) -> float:
        """Empirical arrival rate."""
        if self.times.size == 0 or self.horizon == 0.0:
            return 0.0
        return self.times.size / self.horizon

    def interarrival_cv2(self) -> float:
        """Squared coefficient of variation of the gaps (1 ≈ Poisson)."""
        gaps = self.interarrivals()
        if gaps.size < 2:
            return float("nan")
        m = gaps.mean()
        if m == 0.0:
            return float("inf")
        return float(gaps.var() / (m * m))

    def thin(self, keep_probability: float, rng: np.random.Generator) -> "ArrivalTrace":
        """Random thinning (keep each arrival independently)."""
        if not (0.0 < keep_probability <= 1.0):
            raise ValueError("keep_probability must be in (0, 1]")
        mask = rng.random(self.times.size) < keep_probability
        return ArrivalTrace(self.times[mask])

    def shifted(self, offset: float) -> "ArrivalTrace":
        """Trace translated by *offset* (must keep times non-negative)."""
        if self.times.size and self.times[0] + offset < 0.0:
            raise ValueError("shift would create negative timestamps")
        return ArrivalTrace(self.times + offset)


class TraceProcess(ArrivalProcess):
    """Replays an :class:`ArrivalTrace` as an arrival process.

    After the trace is exhausted, :meth:`next_interarrival` returns
    ``math.inf`` — simulators naturally stop seeing arrivals.
    """

    def __init__(self, trace: ArrivalTrace) -> None:
        if len(trace) == 0:
            raise ValueError("cannot replay an empty trace")
        self.trace = trace
        self._gaps = trace.interarrivals()
        self._pos = 0

    def reset(self) -> None:
        self._pos = 0

    def mean_rate(self) -> float:
        return self.trace.mean_rate()

    def next_interarrival(self, rng: np.random.Generator) -> float:
        if self._pos >= self._gaps.size:
            return math.inf
        gap = float(self._gaps[self._pos])
        self._pos += 1
        return gap

    @property
    def exhausted(self) -> bool:
        return self._pos >= self._gaps.size
