"""Workload generators.

The paper (§4.1) distinguishes two workload families:

- **open** — "tasks arrive independent of the state of the current task"
  (interrupt-driven sensing, radio packets): :mod:`repro.workload.open_workload`
  provides Poisson, general renewal, Markov-modulated Poisson (MMPP) and
  batch arrival processes.
- **closed** — "a new task will not arrive until the current task has been
  completed" (fixed-interval duty cycles): :mod:`repro.workload.closed_workload`
  models a finite population of clients with think times and couples it to
  the power-managed CPU.

:mod:`repro.workload.trace` replays and records concrete arrival traces so
measured workloads can be fed through every model.
"""

from repro.workload.base import ArrivalProcess, RenewalProcess
from repro.workload.closed_workload import (
    ClosedCPUSimulator,
    ClosedWorkload,
)
from repro.workload.open_workload import (
    BatchPoissonProcess,
    MMPPProcess,
    PoissonProcess,
)
from repro.workload.trace import ArrivalTrace, TraceProcess

__all__ = [
    "ArrivalProcess",
    "ArrivalTrace",
    "BatchPoissonProcess",
    "ClosedCPUSimulator",
    "ClosedWorkload",
    "MMPPProcess",
    "PoissonProcess",
    "RenewalProcess",
    "TraceProcess",
]
