"""The paper's evaluation artifacts, regenerated.

One entry point per table/figure of Shareef & Zhu (2008):

=========  =======================================================
``fig4``   steady-state percentages vs Power Down Threshold
           (D = 0.001 s) for simulation / Markov / Petri net
``fig5``   eq.-25 energy vs Power Down Threshold, same models
``table4`` avg Δ steady-state percentage for D ∈ {0.001, 0.3, 10}
``table5`` avg Δ energy (J) for the same grid
``table1`` the Petri net transition parameters (structure echo)
``table2`` simulation parameters (with the documented service-rate
           interpretation)
``table3`` PXA271 power rates
=========  =======================================================

Every experiment accepts an :class:`ExperimentConfig`; ``fast=True`` (the
default) uses a coarse grid and short runs suitable for CI, ``fast=False``
reproduces the paper's full grid with long runs.  Results render as ASCII
(tables/plots) and export CSV rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.comparison import (
    SweepConfig,
    SweepResult,
    delta_table,
    energy_delta_table,
    run_threshold_sweep,
)
from repro.core.params import (
    PAPER_TOTAL_SIMULATED_TIME,
    PXA271,
    CPUModelParams,
    STATE_NAMES,
)
from repro.core.petri_cpu import describe_transitions
from repro.experiments.reporting import ascii_plot, format_table, write_csv

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_figure4",
    "run_figure5",
    "run_table4",
    "run_table5",
    "run_table1",
    "run_table2",
    "run_table3",
    "EXPERIMENTS",
]

#: Power Up Delays swept by Tables 4 and 5.
PAPER_POWER_UP_DELAYS = (0.001, 0.3, 10.0)


@dataclass(frozen=True)
class ExperimentConfig:
    """Cost/accuracy configuration shared by all experiments.

    ``fast`` keeps CI runtimes in seconds; the full configuration uses the
    paper's 0.1-step threshold grid with much longer runs.
    """

    fast: bool = True
    seed: int = 20080901
    models: Tuple[str, ...] = ("simulation", "markov", "petri", "exact")

    def thresholds(self) -> Tuple[float, ...]:
        if self.fast:
            return (0.0, 0.25, 0.5, 0.75, 1.0)
        return tuple(round(0.1 * i, 1) for i in range(11))

    def sweep_config(self) -> SweepConfig:
        if self.fast:
            return SweepConfig(
                sim_horizon=2_000.0,
                sim_warmup=100.0,
                sim_replications=3,
                petri_horizon=2_000.0,
                petri_warmup=100.0,
                petri_replications=2,
                phase_stages=16,
                seed=self.seed,
            )
        return SweepConfig(
            sim_horizon=20_000.0,
            sim_warmup=500.0,
            sim_replications=10,
            petri_horizon=20_000.0,
            petri_warmup=500.0,
            petri_replications=5,
            phase_stages=64,
            seed=self.seed,
        )


@dataclass
class ExperimentResult:
    """Rendered text plus CSV-ready rows for one artifact."""

    name: str
    text: str
    csv_headers: List[str]
    csv_rows: List[List[object]]
    extra: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        return self.text

    def write_csv(self, directory: Path) -> Path:
        return write_csv(
            Path(directory) / f"{self.name}.csv", self.csv_headers, self.csv_rows
        )


# ---------------------------------------------------------------------- #
# shared sweeps (cached per config so table4+table5 pay once)
# ---------------------------------------------------------------------- #
@lru_cache(maxsize=8)
def _sweep_for_delay(config: ExperimentConfig, delay: float) -> SweepResult:
    params = CPUModelParams.paper_defaults(D=delay)
    return run_threshold_sweep(
        params,
        thresholds=config.thresholds(),
        models=config.models,
        config=config.sweep_config(),
    )


def _sweeps_for_table(config: ExperimentConfig) -> Dict[float, SweepResult]:
    return {d: _sweep_for_delay(config, d) for d in PAPER_POWER_UP_DELAYS}


# ---------------------------------------------------------------------- #
# Figure 4
# ---------------------------------------------------------------------- #
def run_figure4(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Figure 4: state percentages vs threshold at D = 0.001 s."""
    sweep = _sweep_for_delay(config, 0.001)
    thresholds = np.asarray(sweep.thresholds)

    sections: List[str] = [
        "Figure 4 — steady-state percentage of time vs Power Down Threshold "
        "(Power Up Delay = 0.001 s)",
        "",
    ]
    # one plot per state, all models overlaid (the paper overlays states;
    # per-state panels read better in ASCII)
    for state in STATE_NAMES:
        series = {
            model: sweep.series_percent(model, state)
            for model in sweep.models()
        }
        sections.append(
            ascii_plot(
                thresholds,
                series,
                title=f"[{state}] percentage of time (%)",
                x_label="Power Down Threshold (s)",
                width=60,
                height=12,
            )
        )
        sections.append("")

    headers = ["threshold_s"] + [
        f"{model}_{state}_pct"
        for model in sweep.models()
        for state in STATE_NAMES
    ]
    rows: List[List[object]] = []
    for i, t in enumerate(sweep.thresholds):
        row: List[object] = [t]
        for model in sweep.models():
            f = sweep.fractions[model][i]
            row.extend(100.0 * getattr(f, s) for s in STATE_NAMES)
        rows.append(row)

    table_rows = []
    for i, t in enumerate(sweep.thresholds):
        for model in sweep.models():
            f = sweep.fractions[model][i].as_percent_dict()
            table_rows.append(
                [t, model] + [f[s] for s in STATE_NAMES]
            )
    sections.append(
        format_table(
            ["T (s)", "model", "idle %", "standby %", "powerup %", "active %"],
            table_rows,
            title="Figure 4 data",
        )
    )
    return ExperimentResult(
        name="figure4",
        text="\n".join(sections),
        csv_headers=headers,
        csv_rows=rows,
        extra={"sweep": sweep},
    )


# ---------------------------------------------------------------------- #
# Figure 5
# ---------------------------------------------------------------------- #
def run_figure5(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Figure 5: eq.-25 energy (J over 1000 s) vs threshold at D = 0.001 s."""
    sweep = _sweep_for_delay(config, 0.001)
    thresholds = np.asarray(sweep.thresholds)
    duration = PAPER_TOTAL_SIMULATED_TIME

    series = {
        model: sweep.energies_joules(model, duration)
        for model in sweep.models()
    }
    plot = ascii_plot(
        thresholds,
        series,
        title=(
            "Figure 5 — energy (J) over 1000 s vs Power Down Threshold "
            "(Power Up Delay = 0.001 s)"
        ),
        x_label="Power Down Threshold (s)",
        y_label="Joules",
        width=60,
        height=14,
    )
    headers = ["threshold_s"] + [f"{m}_energy_J" for m in sweep.models()]
    rows: List[List[object]] = []
    table_rows: List[List[object]] = []
    for i, t in enumerate(sweep.thresholds):
        row: List[object] = [t]
        trow: List[object] = [t]
        for model in sweep.models():
            e = float(series[model][i])
            row.append(e)
            trow.append(e)
        rows.append(row)
        table_rows.append(trow)
    table = format_table(
        ["T (s)"] + [f"{m} (J)" for m in sweep.models()],
        table_rows,
        title="Figure 5 data",
    )
    return ExperimentResult(
        name="figure5",
        text=plot + "\n\n" + table,
        csv_headers=headers,
        csv_rows=rows,
        extra={"sweep": sweep},
    )


# ---------------------------------------------------------------------- #
# Tables 4 and 5
# ---------------------------------------------------------------------- #
_PAIRS = (
    ("simulation", "markov"),
    ("simulation", "petri"),
    ("markov", "petri"),
)


def run_table4(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Table 4: avg Δ steady-state percentages for varying Power Up Delay."""
    sweeps = _sweeps_for_table(config)
    rows_raw = delta_table(sweeps, pairs=_PAIRS)
    headers = ["power_up_delay_s"] + [f"avg_delta_{a}_{b}_pct" for a, b in _PAIRS]
    rows = [
        [r["power_up_delay"]] + [r[f"{a}-{b}"] for a, b in _PAIRS]
        for r in rows_raw
    ]
    table = format_table(
        ["Power Up Delay (s)", "Sim-Markov", "Sim-PN", "Markov-PN"],
        rows,
        title=(
            "Table 4 — avg Δ steady-state percentages (%), summed over the "
            "four states, averaged over the threshold sweep"
        ),
    )
    note = (
        "\nPaper reference values: D=0.001 -> 0.338 / 0.351 / 0.076;"
        " D=0.3 -> 4.182 / 1.677 / 3.338; D=10 -> 116.788 / 16.046 / 103.077.\n"
        "Expected shape: Sim-Markov grows explosively with D; Sim-PN stays small."
    )
    return ExperimentResult(
        name="table4",
        text=table + note,
        csv_headers=headers,
        csv_rows=rows,
        extra={"sweeps": sweeps},
    )


def run_table5(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Table 5: avg Δ energy (J) for varying Power Up Delay."""
    sweeps = _sweeps_for_table(config)
    rows_raw = energy_delta_table(
        sweeps, pairs=_PAIRS, duration_s=PAPER_TOTAL_SIMULATED_TIME
    )
    headers = ["power_up_delay_s"] + [f"avg_delta_{a}_{b}_J" for a, b in _PAIRS]
    rows = [
        [r["power_up_delay"]] + [r[f"{a}-{b}"] for a, b in _PAIRS]
        for r in rows_raw
    ]
    table = format_table(
        ["Power Up Delay (s)", "Sim-Markov", "Sim-PN", "Markov-PN"],
        rows,
        title=(
            "Table 5 — avg Δ energy consumption (J) over 1000 s, averaged "
            "over the threshold sweep"
        ),
    )
    note = (
        "\nPaper reference values: D=0.001 -> 0.154 / 0.166 / 0.037;"
        " D=0.3 -> 1.558 / 0.298 / 1.401; D=10 -> 24.866 / 1.285 / 25.411.\n"
        "Expected shape: Markov energy error grows with D; PN error does not."
    )
    return ExperimentResult(
        name="table5",
        text=table + note,
        csv_headers=headers,
        csv_rows=rows,
        extra={"sweeps": sweeps},
    )


# ---------------------------------------------------------------------- #
# Tables 1–3 (structural/config echoes, kept for completeness)
# ---------------------------------------------------------------------- #
def run_table1(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Table 1: the CPU Petri net's transition parameters."""
    rows_dicts = describe_transitions(CPUModelParams.paper_defaults())
    headers = ["transition", "firing_distribution", "delay", "priority"]
    rows = [[r[h] for h in headers] for r in rows_dicts]
    table = format_table(
        ["Transition", "Firing Distribution", "Delay", "Priority"],
        rows,
        title="Table 1 — CPU Jobs Petri Net Transition Parameters",
    )
    return ExperimentResult(
        name="table1", text=table, csv_headers=headers, csv_rows=rows
    )


def run_table2(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Table 2: simulation parameters (with interpretation note)."""
    params = CPUModelParams.paper_defaults()
    rows = [
        ["Total Simulated Time", f"{PAPER_TOTAL_SIMULATED_TIME:g} sec"],
        ["Arrival Rate", f"{params.arrival_rate:g} per sec"],
        [
            "Service Rate",
            f"{params.service_rate:g} per sec (paper prints '.1 per sec', "
            "read as mean service time 0.1 s; see DESIGN.md)",
        ],
    ]
    table = format_table(
        ["Parameter", "Value"], rows, title="Table 2 — Simulation Parameters"
    )
    return ExperimentResult(
        name="table2",
        text=table,
        csv_headers=["parameter", "value"],
        csv_rows=rows,
    )


def run_table3(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Table 3: PXA271 power rates."""
    rows = [
        ["Standby", PXA271.standby_mw],
        ["Idle", PXA271.idle_mw],
        ["Powering Up", PXA271.powerup_mw],
        ["Active", PXA271.active_mw],
    ]
    table = format_table(
        ["State", "Power Rate (mW)"],
        rows,
        title="Table 3 — Power Rate Parameters for the PXA271 CPU (mW)",
    )
    return ExperimentResult(
        name="table3",
        text=table,
        csv_headers=["state", "power_mw"],
        csv_rows=rows,
    )


def run_accuracy(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Cost-of-accuracy: wall-clock per model to 1pp error (Section 6)."""
    from repro.experiments.accuracy import (
        render_cost_of_accuracy,
        run_cost_of_accuracy,
    )

    target = 1.0
    rows = run_cost_of_accuracy(
        delays=(0.001, 10.0), target_pct=target, seed=config.seed
    )
    text = render_cost_of_accuracy(rows, target)
    return ExperimentResult(
        name="accuracy",
        text=text,
        csv_headers=[
            "power_up_delay_s", "model", "error_pp", "wall_clock_s",
            "reached_target",
        ],
        csv_rows=[
            [r.power_up_delay, r.model, r.achieved_error_pct,
             r.wall_clock_s, r.reached_target]
            for r in rows
        ],
    )


#: Registry used by the CLI and the benchmark harness.
EXPERIMENTS = {
    "fig4": run_figure4,
    "fig5": run_figure5,
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "accuracy": run_accuracy,
}
