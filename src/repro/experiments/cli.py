"""Command-line interface for the experiment harness.

Examples::

    repro-experiments list
    repro-experiments lint --net cpu-gspn
    repro-experiments run fig4
    repro-experiments run table4 --full --csv-dir results/
    repro-experiments run all --csv-dir results/
    python -m repro run fig5

Fast mode (default) finishes in seconds; ``--full`` reproduces the paper's
0.1-step threshold grid with long runs (minutes).
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import List, Optional, Sequence

from repro import obs
from repro.core.params import CPUModelParams
from repro.experiments.paper_experiments import EXPERIMENTS, ExperimentConfig
from repro.markov.ctmc import (
    STEADY_STATE_METHODS,
    ConvergenceError,
    resolve_steady_state_method,
)
from repro.petri.analysis import ReachabilityOptions
from repro.sweep import (
    BACKEND_NAMES,
    BatchedPhaseTypeBackend,
    DEMO_NETS,
    GSPNBackend,
    PhaseTypeBackend,
    RenewalBackend,
    SweepGrid,
    SweepRunner,
)
from repro.sweep.backends import resolve_cpu_axis
from repro.verify import LINT_LEVELS, lint_net

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Energy Modeling of "
            "Processors in Wireless Sensor Networks based on Petri Nets' "
            "(Shareef & Zhu, 2008)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list", help="list available experiments")
    list_p.set_defaults(func=_cmd_list)

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper table/figure) or 'all'",
    )
    run_p.add_argument(
        "--full",
        action="store_true",
        help="full-fidelity grid and horizons (slow; paper-quality)",
    )
    run_p.add_argument(
        "--seed", type=int, default=20080901, help="master random seed"
    )
    run_p.add_argument(
        "--csv-dir",
        type=Path,
        default=None,
        help="also write <experiment>.csv files into this directory",
    )
    run_p.set_defaults(func=_cmd_run)

    sweep_p = sub.add_parser(
        "sweep",
        help="batched parameter sweep over a model backend",
        description=(
            "Sweep model parameters over a grid and solve each point "
            "analytically through a batched model backend.  GSPN example: "
            "repro-experiments sweep --net cpu-gspn --rate AR=0.2:2.0:10 "
            "--rate PDT=2,3.33 --metric mean_tokens:Stand_By.  "
            "Deterministic-delay (Figure 4/5-style) example: "
            "repro-experiments sweep --model phase-type --rate T=0.1:2.0:20 "
            "--metric fraction:standby --metric power --metric energy@10"
        ),
    )
    sweep_p.add_argument(
        "--model",
        choices=sorted(BACKEND_NAMES) + ["phase-type-batched"],
        default="gspn",
        help=(
            "model backend: 'gspn' re-binds exponential rates of --net; "
            "'phase-type' stage-expands the deterministic-delay CPU model; "
            "'phase-type-batched' is shorthand for phase-type with "
            "--batched; 'renewal' is the exact closed form (default: gspn)"
        ),
    )
    sweep_p.add_argument(
        "--net",
        choices=sorted(DEMO_NETS),
        default=None,
        help=(
            "demo net to sweep under --model gspn "
            "(default: the exponentialised Figure 3 CPU)"
        ),
    )
    sweep_p.add_argument(
        "--rate",
        action="append",
        required=True,
        metavar="NAME=VALUES",
        help=(
            "axis spec, repeatable: 'AR=0.1:2.0:10' (linspace), "
            "'AR=0.1:10:5:log' (geomspace), 'AR=0.5,1,2', or 'AR=1.5'; "
            "CPU-model axes accept AR/SR/T/D aliases"
        ),
    )
    sweep_p.add_argument(
        "--metric",
        action="append",
        default=None,
        metavar="SPEC",
        help=(
            "metric column, repeatable.  gspn: mean_tokens:<place>, "
            "probability_positive:<place>, throughput:<transition>; "
            "phase-type/renewal: fraction:<state>, power, mean_jobs; "
            "transient (phase-type): energy@<t>, fraction:<state>@<t>, "
            "accumulated_reward:<reward>@<t>, time_to_threshold:<frac> "
            "(default: per-model defaults)"
        ),
    )
    sweep_p.add_argument(
        "--param",
        action="append",
        default=None,
        metavar="NAME=VALUE",
        help=(
            "base CPU parameter override for phase-type/renewal, "
            "repeatable (e.g. --param SR=20 --param D=0.05)"
        ),
    )
    sweep_p.add_argument(
        "--stages",
        type=int,
        default=None,
        help="Erlang stages per deterministic delay (phase-type; default 32)",
    )
    sweep_p.add_argument(
        "--n-max",
        type=int,
        default=None,
        help=(
            "queue truncation level shared by the whole grid (phase-type; "
            "default: sized from the base parameters)"
        ),
    )
    sweep_p.add_argument(
        "--batched",
        action="store_true",
        help=(
            "solve the grid in stacked batches — one block-diagonal "
            "system per batch instead of one solve per point "
            "(--model phase-type; see docs/batched.md)"
        ),
    )
    sweep_p.add_argument(
        "--batch-size",
        default=None,
        metavar="N|auto",
        help=(
            "grid points per stacked solve under --batched: an int >= 1, "
            "or 'auto' to budget batch memory from the template's "
            "sparsity (default auto)"
        ),
    )
    sweep_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="fan points out over this many worker processes (one machine)",
    )
    sweep_p.add_argument(
        "--distributed",
        action="store_true",
        help=(
            "shard the grid over TCP-connected workers (coordinator/worker "
            "fan-out with requeue-on-death and checkpointing; see "
            "docs/distributed.md)"
        ),
    )
    sweep_p.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "local worker processes to launch under --distributed "
            "(default 2; 0 waits for external 'repro-experiments worker "
            "--connect' processes)"
        ),
    )
    sweep_p.add_argument(
        "--bind",
        default=None,
        metavar="HOST:PORT",
        help=(
            "coordinator bind address under --distributed (default "
            "127.0.0.1:0; bind a routable address to accept workers from "
            "other machines — trusted networks only)"
        ),
    )
    sweep_p.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "journal completed rows to FILE under --distributed; an "
            "interrupted sweep re-run with the same grid resumes from it"
        ),
    )
    sweep_p.add_argument(
        "--backend",
        choices=["auto", "dense", "sparse"],
        default=None,
        help="CTMC linear-algebra backend under --model gspn (default auto)",
    )
    _add_solver_flags(sweep_p)
    sweep_p.add_argument(
        "--no-preflight",
        action="store_true",
        help=(
            "skip the verification preflight (chain classification, grid "
            "vetting) and solve a flagged configuration anyway"
        ),
    )
    sweep_p.add_argument(
        "--csv-dir",
        type=Path,
        default=None,
        help="also write a sweep.csv into this directory",
    )
    _add_telemetry_flags(sweep_p)
    sweep_p.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the live progress line on stderr",
    )
    sweep_p.set_defaults(func=_cmd_sweep)

    lint_p = sub.add_parser(
        "lint",
        help="verify a net structurally before paying for its state space",
        description=(
            "Run the structural verification suite on a demo net and print "
            "a diagnostic report with stable PN0xx/CH0xx codes (see "
            "docs/verification.md).  The default 'standard' level proves "
            "boundedness (P-invariants, capacities) and deadlock freedom "
            "(Commoner's siphon/trap condition) with zero state-space "
            "exploration; 'deep' additionally explores the reachability "
            "graph and classifies the chain.  Example: repro-experiments "
            "lint --net cpu-gspn --level standard --strict"
        ),
    )
    lint_p.add_argument(
        "--net",
        choices=sorted(DEMO_NETS),
        default="cpu-gspn",
        help="demo net to lint (default: the exponentialised Figure 3 CPU)",
    )
    lint_p.add_argument(
        "--level",
        choices=list(LINT_LEVELS),
        default="standard",
        help=(
            "quick: structure+bounds+conflicts; standard: +siphon/trap "
            "deadlock check (default; no exploration); deep: +bounded "
            "state-space exploration and chain classification"
        ),
    )
    lint_p.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on warnings (errors always exit 2)",
    )
    lint_p.add_argument(
        "--max-markings",
        type=int,
        default=None,
        help="exploration cap of --level deep (default 50000)",
    )
    lint_p.set_defaults(func=_cmd_lint)

    steady_p = sub.add_parser(
        "steady",
        help="solve one model's steady state once (solver showcase)",
        description=(
            "Build one model at its base parameters, solve the stationary "
            "distribution with the chosen solver, and report size, timing "
            "and the default metrics.  Scale the state space with "
            "--buffer/--nodes (gspn nets) or --n-max (phase-type) to see "
            "where the iterative solvers take over, e.g.: "
            "repro-experiments steady --net wsn-cluster --buffer 30 "
            "--solver gmres"
        ),
    )
    steady_p.add_argument(
        "--model",
        choices=["gspn", "phase-type"],
        default="gspn",
        help="model family (renewal is closed form — nothing to solve)",
    )
    steady_p.add_argument(
        "--net",
        choices=sorted(DEMO_NETS),
        default=None,
        help="demo net under --model gspn (default: wsn-cluster)",
    )
    steady_p.add_argument(
        "--buffer",
        type=int,
        default=None,
        help="buffer/queue capacity of the demo net (gspn; grows the chain)",
    )
    steady_p.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="sensor-node count (wsn-cluster only; grows the chain fast)",
    )
    steady_p.add_argument(
        "--max-markings",
        type=int,
        default=None,
        help=(
            "reachability exploration cap for gspn nets "
            "(default 2000000 — sized for the deep demo scenarios)"
        ),
    )
    steady_p.add_argument(
        "--param",
        action="append",
        default=None,
        metavar="NAME=VALUE",
        help="base CPU parameter override (phase-type), repeatable",
    )
    steady_p.add_argument(
        "--stages",
        type=int,
        default=None,
        help="Erlang stages per deterministic delay (phase-type; default 32)",
    )
    steady_p.add_argument(
        "--n-max",
        type=int,
        default=None,
        help="queue truncation level (phase-type; grows the chain)",
    )
    _add_solver_flags(steady_p)
    _add_telemetry_flags(steady_p)
    steady_p.set_defaults(func=_cmd_steady)

    worker_p = sub.add_parser(
        "worker",
        help="join a distributed sweep as a worker",
        description=(
            "Connect to a sweep coordinator (a 'sweep --distributed' "
            "process, possibly on another machine), receive the model "
            "template, and solve chunks of grid points until the sweep "
            "finishes.  Example: repro-experiments worker --connect "
            "10.0.0.5:7777"
        ),
    )
    worker_p.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address (printed by 'sweep --distributed')",
    )
    _add_telemetry_flags(worker_p)
    worker_p.set_defaults(func=_cmd_worker)

    serve_p = sub.add_parser(
        "serve",
        help="run the always-on sweep service daemon",
        description=(
            "Start a persistent solver daemon that answers sweep/steady/"
            "lint requests over the distributed pickle framing and an "
            "HTTP/JSON front end, caching prepared model templates in an "
            "LRU so repeat models skip the expensive exploration.  Drain "
            "gracefully with SIGTERM.  See docs/service.md."
        ),
    )
    serve_p.add_argument(
        "--bind",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="pickle-channel listen address (default 127.0.0.1:0 — "
             "an ephemeral port, printed on startup)",
    )
    serve_p.add_argument(
        "--http",
        default=None,
        metavar="HOST:PORT",
        help="HTTP listen address (default: same host, ephemeral port)",
    )
    serve_p.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="fork N persistent solver shards (default 0: solve inline)",
    )
    serve_p.add_argument(
        "--cache-capacity",
        type=int,
        default=8,
        metavar="K",
        help="prepared-template LRU size (default 8 models)",
    )
    serve_p.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="concurrent requests being solved (default: --workers, or 4)",
    )
    serve_p.add_argument(
        "--max-pending",
        type=int,
        default=16,
        metavar="N",
        help="requests allowed to queue before 'busy' replies (default 16)",
    )
    serve_p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="worker deaths tolerated per request before it fails (default 2)",
    )
    serve_p.add_argument(
        "--journal",
        type=Path,
        default=None,
        metavar="FILE",
        help="append one JSON line per request (and lifecycle event) to FILE",
    )
    serve_p.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help=(
            "inline-mode micro-batching window: hold the first request "
            "for a template this long so concurrent same-template "
            "requests coalesce into one stacked solve (adds up to MS "
            "latency per request; 0 still coalesces whatever queued "
            "during the previous solve; default 2.0)"
        ),
    )
    serve_p.add_argument(
        "--solve-delay",
        type=float,
        default=None,
        help=argparse.SUPPRESS,  # test hook: per-point sleep to force queueing
    )
    _add_telemetry_flags(serve_p)
    serve_p.set_defaults(func=_cmd_serve)

    query_p = sub.add_parser(
        "query",
        help="send one request to a running sweep service",
        description=(
            "Client for 'repro-experiments serve': send one sweep/steady/"
            "lint/ping/stats request over the pickle channel (default) or "
            "HTTP (--http) and render the reply.  Examples: "
            "repro-experiments query --connect 127.0.0.1:7788 --op sweep "
            "--net mm1k --axis arrive=0.2:1.8:8 ; "
            "repro-experiments query --connect 127.0.0.1:8080 --http "
            "--op stats"
        ),
    )
    query_p.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="service address (printed by 'serve' on startup)",
    )
    query_p.add_argument(
        "--http",
        action="store_true",
        help="--connect is the service's HTTP address; speak JSON",
    )
    query_p.add_argument(
        "--op",
        choices=["sweep", "steady", "lint", "ping", "stats"],
        default="steady",
        help="request kind (default steady)",
    )
    query_p.add_argument(
        "--model",
        choices=list(BACKEND_NAMES) + ["phase-type-batched"],
        default="gspn",
        help="model family (default gspn)",
    )
    query_p.add_argument(
        "--net",
        choices=sorted(DEMO_NETS),
        default=None,
        help="demo net for --model gspn / --op lint (default cpu-gspn)",
    )
    query_p.add_argument("--buffer", type=int, default=None,
                         help="buffer capacity (net-dependent)")
    query_p.add_argument("--nodes", type=int, default=None,
                         help="cluster size (wsn-cluster only)")
    query_p.add_argument(
        "--axis",
        action="append",
        default=None,
        metavar="NAME=VALUES",
        help="sweep axis (repeatable): NAME=v1,v2 or NAME=start:stop:count",
    )
    query_p.add_argument(
        "--metric",
        action="append",
        default=None,
        metavar="SPEC",
        help="metric column (repeatable; default: the model's standard set)",
    )
    query_p.add_argument(
        "--param",
        action="append",
        default=None,
        metavar="NAME=VALUE",
        help="base CPU parameter override (phase-type/renewal models)",
    )
    query_p.add_argument("--stages", type=int, default=None,
                         help="Erlang stages (phase-type models)")
    query_p.add_argument("--n-max", type=int, default=None,
                         help="queue truncation (phase-type models)")
    query_p.add_argument(
        "--level",
        choices=list(LINT_LEVELS),
        default="standard",
        help="lint level for --op lint (default standard)",
    )
    query_p.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="give up on the service after this long (default 120)",
    )
    _add_solver_flags(query_p)
    query_p.set_defaults(func=_cmd_query)
    return parser


def _parse_hostport(spec: str, flag: str) -> tuple:
    """Split ``HOST:PORT``, diagnosing the exact malformed piece."""
    host, sep, port_text = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"{flag} must look like HOST:PORT, got {spec!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"{flag}: port {port_text!r} in {spec!r} must be an integer"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"{flag}: port must be in [0, 65535], got {port}")
    return host, port


def _add_solver_flags(parser: argparse.ArgumentParser) -> None:
    """Steady-state solver flags shared by ``sweep`` and ``steady``."""
    parser.add_argument(
        "--solver",
        choices=list(STEADY_STATE_METHODS),
        default=None,
        help=(
            "steady-state solver: 'lu' direct, 'gmres' ILU-preconditioned "
            "Krylov, 'power' uniformized power iteration; 'auto' picks by "
            "state count (default; see docs/solvers.md)"
        ),
    )
    parser.add_argument(
        "--tol",
        type=float,
        default=None,
        help="iterative-solver convergence tolerance (default 1e-10)",
    )
    parser.add_argument(
        "--max-iter",
        type=int,
        default=None,
        help="iterative-solver iteration budget",
    )


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    """``--trace``/``--profile`` shared by ``sweep``, ``steady``, ``worker``."""
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "record a structured trace of the run and write it to FILE as "
            "JSON Lines (see docs/observability.md)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print a phase breakdown (wall-clock per instrumented phase, "
            "solver iteration counters) to stderr when the command finishes"
        ),
    )


def _telemetry_trace(args: argparse.Namespace, name: str) -> Optional[obs.Trace]:
    """A fresh trace when ``--trace``/``--profile`` asks for one."""
    if args.trace is not None or args.profile:
        return obs.Trace(name)
    return None


def _finish_telemetry(args: argparse.Namespace, trace: Optional[obs.Trace]) -> None:
    """Write the trace file / print the profile, as requested."""
    if trace is None:
        return
    if args.trace is not None:
        trace.write_jsonl(str(args.trace))
        print(f"[wrote trace {args.trace}]", file=sys.stderr)
    if args.profile:
        print(obs.render_profile(trace, title=f"{trace.name} profile"),
              file=sys.stderr)


def _cmd_list(args: argparse.Namespace) -> int:
    for name in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
        print(f"{name:8s} {doc}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = ExperimentConfig(fast=not args.full, seed=args.seed)
    names: List[str] = (
        sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    for name in names:
        t0 = time.perf_counter()
        result = EXPERIMENTS[name](config)
        elapsed = time.perf_counter() - t0
        print(result.render())
        print(f"\n[{name} finished in {elapsed:.2f} s]")
        if args.csv_dir is not None:
            path = result.write_csv(args.csv_dir)
            print(f"[wrote {path}]")
        if len(names) > 1:
            print("\n" + "#" * 78 + "\n")
    return 0


#: default metric columns per CPU-model backend
_CPU_DEFAULT_METRICS = ("fraction:standby", "fraction:active", "power")


def _base_cpu_params(param_specs: Optional[List[str]]) -> CPUModelParams:
    """Paper-default CPU parameters with ``--param NAME=VALUE`` overrides."""
    overrides = {}
    for spec in param_specs or []:
        name, sep, value = spec.partition("=")
        if not sep or not name.strip() or not value.strip():
            raise ValueError(
                f"--param must look like NAME=VALUE, got {spec!r}"
            )
        try:
            overrides[resolve_cpu_axis(name.strip())] = float(value)
        except ValueError:
            raise ValueError(
                f"--param {name.strip()!r}: cannot parse value {value!r}"
            ) from None
    return replace(CPUModelParams.paper_defaults(), **overrides)


#: which optional sweep flags each model understands
_SWEEP_FLAG_SCOPE = {
    "--net": ("gspn",),
    "--backend": ("gspn",),
    "--param": ("phase-type", "renewal"),
    "--stages": ("phase-type",),
    "--n-max": ("phase-type",),
    "--solver": ("gspn", "phase-type"),
    "--tol": ("gspn", "phase-type"),
    "--max-iter": ("gspn", "phase-type"),
    "--batched": ("phase-type",),
}


def _check_sweep_flags(args: argparse.Namespace) -> None:
    """Reject flags the selected --model would otherwise silently ignore."""
    given = {
        "--net": args.net,
        "--backend": args.backend,
        "--param": args.param,
        "--stages": args.stages,
        "--n-max": args.n_max,
        "--solver": args.solver,
        "--tol": args.tol,
        "--max-iter": args.max_iter,
        "--batched": args.batched or None,
    }
    for flag, models in _SWEEP_FLAG_SCOPE.items():
        if given[flag] is not None and args.model not in models:
            raise ValueError(
                f"{flag} does not apply to --model {args.model} "
                f"(it is for --model {'/'.join(models)})"
            )
    if args.batch_size is not None and not args.batched:
        raise ValueError(
            "--batch-size requires --batched (or --model phase-type-batched)"
        )


def _parse_batch_size(value: Optional[str]):
    """``--batch-size`` argument: ``'auto'`` or an int >= 1."""
    if value is None or value == "auto":
        return "auto"
    try:
        size = int(value)
    except ValueError:
        raise ValueError(
            f"--batch-size must be an int >= 1 or 'auto', got {value!r}"
        ) from None
    if size < 1:
        raise ValueError(f"--batch-size must be >= 1, got {size}")
    return size


def _check_distributed_flags(args: argparse.Namespace) -> None:
    """Reject fan-out flag combinations that would silently do nothing."""
    if not args.distributed:
        for flag, value in (
            ("--shards", args.shards),
            ("--bind", args.bind),
            ("--checkpoint", args.checkpoint),
        ):
            if value is not None:
                raise ValueError(f"{flag} requires --distributed")
        return
    if args.jobs is not None:
        raise ValueError(
            "--jobs does not apply with --distributed (use --shards for "
            "local workers, or 'repro-experiments worker' for remote ones)"
        )
    if args.shards is not None and args.shards < 0:
        raise ValueError(f"--shards must be >= 0, got {args.shards}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    solver = args.solver if args.solver is not None else "auto"
    # keep the distributed package (asyncio/multiprocessing machinery) off
    # the startup path of plain sweeps: its error type joins the handler
    # only when --distributed is in play
    error_types: tuple = (KeyError, ValueError, ConvergenceError)
    if args.distributed:
        from repro.sweep.distributed import DistributedSweepError

        error_types = error_types + (
            DistributedSweepError,  # e.g. every worker died mid-sweep
            OSError,  # e.g. --bind address already in use
        )
    trace = _telemetry_trace(args, "sweep")
    show_progress = not args.quiet and obs.stream_is_tty(sys.stderr)
    if trace is None and show_progress:
        # the progress line is driven by the sweep.rows.completed counter,
        # so it needs a live trace even without --trace/--profile
        trace = obs.Trace("sweep")
    obs_token = obs.activate(trace) if trace is not None else None
    progress: Optional[obs.ProgressLine] = None
    try:
        if args.model == "phase-type-batched":
            # the service's query channel spells the batched backend as
            # its own model family; accept the same spelling here
            args.model = "phase-type"
            args.batched = True
        _check_sweep_flags(args)
        _check_distributed_flags(args)
        runner_solver_kwargs = {}
        if args.model == "gspn":
            net = args.net if args.net is not None else "cpu-gspn"
            factory, default_metrics = DEMO_NETS[net]
            model: object = factory()
            title = f"{net} sweep"
            runner_solver_kwargs = dict(
                method=solver, tol=args.tol, max_iter=args.max_iter
            )
        else:
            params = _base_cpu_params(args.param)
            if args.model == "phase-type" and args.batched:
                model = BatchedPhaseTypeBackend(
                    params,
                    stages=args.stages if args.stages is not None else 32,
                    n_max=args.n_max,
                    method=solver,
                    tol=args.tol,
                    max_iter=args.max_iter,
                    batch_size=_parse_batch_size(args.batch_size),
                )
            elif args.model == "phase-type":
                model = PhaseTypeBackend(
                    params,
                    stages=args.stages if args.stages is not None else 32,
                    n_max=args.n_max,
                    method=solver,
                    tol=args.tol,
                    max_iter=args.max_iter,
                )
            else:
                model = RenewalBackend(params)
            default_metrics = _CPU_DEFAULT_METRICS
            title = f"{args.model} sweep"
        metrics: List[str] = (
            args.metric if args.metric else list(default_metrics)
        )
        grid = SweepGrid.from_specs(args.rate)
        if trace is not None and show_progress:
            progress = obs.ProgressLine(
                len(grid.points()), sys.stderr, enabled=True
            )
            trace.on_counter = progress.on_counter
        if args.distributed:
            from repro.sweep.distributed import DistributedSweepRunner

            host, port = _parse_hostport(
                args.bind if args.bind is not None else "127.0.0.1:0",
                "--bind",
            )
            shards = args.shards if args.shards is not None else 2
            runner: SweepRunner = DistributedSweepRunner(
                model,
                metrics,
                backend=args.backend if args.backend is not None else "auto",
                n_shards=shards,
                host=host,
                port=port,
                checkpoint=args.checkpoint,
                preflight=not args.no_preflight,
                **runner_solver_kwargs,
            )
            bound_host, bound_port = runner.address
            if shards == 0:
                print(
                    f"[coordinator listening on {bound_host}:{bound_port} — "
                    f"start workers with: repro-experiments worker "
                    f"--connect {bound_host}:{bound_port}]"
                )
        else:
            runner = SweepRunner(
                model,
                metrics,
                backend=args.backend if args.backend is not None else "auto",
                n_workers=args.jobs,
                preflight=not args.no_preflight,
                **runner_solver_kwargs,
            )
        t0 = time.perf_counter()
        with obs.span("cli.sweep", model=args.model):
            result = runner.run(grid)
        elapsed = time.perf_counter() - t0
    except error_types as exc:
        msg = exc.args[0] if exc.args else exc
        print(f"error: {msg}", file=sys.stderr)
        return 2
    finally:
        if progress is not None:
            progress.finish()
        if obs_token is not None:
            obs.deactivate(obs_token)
        _finish_telemetry(args, trace)
    print(result.render(title=f"{title} ({len(result)} points)"))
    fanout = (
        f", {runner.describe_fanout()}" if args.distributed else ""  # type: ignore[attr-defined]
    )
    print(
        f"\n[{len(result)} points in {elapsed:.3f} s — "
        f"{runner.model.describe()}{fanout}]"
    )
    if result.errors:
        print(
            f"[{result.n_failed} point(s) failed and carry NaN rows — "
            "see the table footer]",
            file=sys.stderr,
        )
    if args.csv_dir is not None:
        args.csv_dir.mkdir(parents=True, exist_ok=True)
        path = result.write_csv(args.csv_dir)
        print(f"[wrote {path}]")
    return 0


#: net name -> constructor kwargs the ``steady`` size flags map onto
_STEADY_NET_SIZE_KWARGS = {
    "mm1k": {"--buffer": "K"},
    "cpu-gspn": {"--buffer": "buffer_capacity"},
    "wsn-cluster": {"--buffer": "buffer_capacity", "--nodes": "n_nodes"},
}


def _cmd_steady(args: argparse.Namespace) -> int:
    solver = args.solver if args.solver is not None else "auto"
    trace = _telemetry_trace(args, "steady")
    obs_token = obs.activate(trace) if trace is not None else None
    try:
        if args.model == "gspn":
            for flag in ("--param", "--stages", "--n-max"):
                if getattr(args, flag[2:].replace("-", "_")) is not None:
                    raise ValueError(
                        f"{flag} does not apply to --model gspn "
                        "(it is for --model phase-type)"
                    )
            net = args.net if args.net is not None else "wsn-cluster"
            factory, metrics = DEMO_NETS[net]
            size_kwargs = {}
            for flag, value in (("--buffer", args.buffer), ("--nodes", args.nodes)):
                if value is None:
                    continue
                keyword = _STEADY_NET_SIZE_KWARGS[net].get(flag)
                if keyword is None:
                    raise ValueError(f"{flag} does not apply to --net {net}")
                size_kwargs[keyword] = value
            max_markings = (
                args.max_markings if args.max_markings is not None else 2_000_000
            )
            backend: object = GSPNBackend(
                factory(**size_kwargs),
                options=ReachabilityOptions(max_markings=max_markings),
                method=solver,
                tol=args.tol,
                max_iter=args.max_iter,
            )
            title = f"{net} steady state"
        else:
            for flag, value in (
                ("--net", args.net),
                ("--buffer", args.buffer),
                ("--nodes", args.nodes),
                ("--max-markings", args.max_markings),
            ):
                if value is not None:
                    raise ValueError(
                        f"{flag} does not apply to --model phase-type "
                        "(it is for --model gspn)"
                    )
            backend = PhaseTypeBackend(
                _base_cpu_params(args.param),
                stages=args.stages if args.stages is not None else 32,
                n_max=args.n_max,
                method=solver,
                tol=args.tol,
                max_iter=args.max_iter,
            )
            metrics = _CPU_DEFAULT_METRICS
            title = "phase-type steady state"
        with obs.span("cli.steady", model=args.model):
            with obs.span("steady.prepare"):
                backend.prepare()
            n = backend.n_states
            t0 = time.perf_counter()
            with obs.span("steady.solve", n=n):
                solution = backend.solve({})
            with obs.span("steady.metrics"):
                values = [(m, backend.evaluate(solution, m)) for m in metrics]
            elapsed = time.perf_counter() - t0
    except (KeyError, ValueError, ConvergenceError) as exc:
        msg = exc.args[0] if exc.args else exc
        print(f"error: {msg}", file=sys.stderr)
        return 2
    finally:
        if obs_token is not None:
            obs.deactivate(obs_token)
        _finish_telemetry(args, trace)
    print(title)
    print("-" * len(title))
    for name, value in values:
        print(f"{name:30s} {value:.6g}")
    print(
        f"\n[{n} states solved with {resolve_steady_state_method(n, solver)} "
        f"in {elapsed:.3f} s — {backend.describe()}]"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    try:
        factory, _ = DEMO_NETS[args.net]
        net = factory()
        kwargs = {}
        if args.max_markings is not None:
            if args.level != "deep":
                raise ValueError(
                    "--max-markings applies only to --level deep "
                    "(the other levels never explore the state space)"
                )
            kwargs["max_markings"] = args.max_markings
        report = lint_net(net, level=args.level, **kwargs)
    except (KeyError, ValueError) as exc:
        msg = exc.args[0] if exc.args else exc
        print(f"error: {msg}", file=sys.stderr)
        return 2
    print(report.render(title=f"lint report: {args.net} ({args.level})"))
    if report.errors:
        return 2
    if args.strict and report.warnings:
        return 1
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.sweep.distributed import ProtocolError, worker_main

    # the worker's own trace: run_worker installs it for the connection,
    # records every solve into it, and *also* ships segments to the
    # coordinator when the template asks for telemetry
    trace = _telemetry_trace(args, "worker")
    try:
        host, port = _parse_hostport(args.connect, "--connect")
        solved = worker_main(host, port, trace=trace)
    except (ValueError, OSError, EOFError, ProtocolError) as exc:
        # OSError covers refused/reset connections; EOFError covers
        # asyncio.IncompleteReadError when the coordinator dies (or is
        # Ctrl-C'd) mid-conversation — a routine event, not a traceback
        msg = exc.args[0] if exc.args else exc
        print(f"error: {msg}", file=sys.stderr)
        return 2
    finally:
        _finish_telemetry(args, trace)
    print(f"[worker solved {solved} point(s)]")
    return 0


async def _serve_forever(service) -> None:
    import asyncio
    import signal

    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, service.request_drain)
        except NotImplementedError:  # pragma: no cover - non-unix
            pass
    async with service:
        await service.serve_until_drained()


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.sweep.service import SweepService

    # activate the trace *before* asyncio.run so every handler task on
    # the loop (and the drain path) sees it via the ambient contextvar
    trace = _telemetry_trace(args, "service")
    obs_token = obs.activate(trace) if trace is not None else None
    try:
        try:
            host, port = _parse_hostport(args.bind, "--bind")
            http_host: Optional[str] = None
            http_port = 0
            if args.http is not None:
                http_host, http_port = _parse_hostport(args.http, "--http")
            service = SweepService(
                host,
                port,
                http_host=http_host,
                http_port=http_port,
                n_workers=args.workers,
                cache_capacity=args.cache_capacity,
                max_inflight=args.max_inflight,
                max_pending=args.max_pending,
                max_retries=args.max_retries,
                journal=str(args.journal) if args.journal else None,
                solve_delay=args.solve_delay,
                batch_window_ms=args.batch_window_ms,
            )
        except (ValueError, OSError) as exc:
            msg = exc.args[0] if exc.args else exc
            print(f"error: {msg}", file=sys.stderr)
            return 2
        h, p = service.address
        hh, hp = service.http_address
        print(
            f"[service listening on {h}:{p} (pickle) and "
            f"http://{hh}:{hp} — drain with SIGTERM]",
            flush=True,
        )
        try:
            asyncio.run(_serve_forever(service))
        except KeyboardInterrupt:  # pragma: no cover - signal-handler race
            pass
    finally:
        if obs_token is not None:
            obs.deactivate(obs_token)
        _finish_telemetry(args, trace)
    print(f"[service drained after {service.completed} request(s)]")
    return 0


def _build_query_payload(args: argparse.Namespace) -> dict:
    if args.op in ("ping", "stats"):
        return {"op": args.op}
    if args.op == "lint":
        payload: dict = {"op": "lint", "net": args.net or "cpu-gspn"}
        if args.level != "standard":
            payload["level"] = args.level
        return payload
    model: dict = {"kind": args.model}
    if args.model == "gspn":
        if args.net is not None:
            model["net"] = args.net
        if args.buffer is not None:
            model["buffer"] = args.buffer
        if args.nodes is not None:
            model["nodes"] = args.nodes
    else:
        if args.param:
            params = {}
            for spec in args.param:
                name, sep, value = spec.partition("=")
                if not sep:
                    raise ValueError(
                        f"--param must look like NAME=VALUE, got {spec!r}"
                    )
                params[name] = float(value)
            model["params"] = params
        if args.stages is not None:
            model["stages"] = args.stages
        if args.n_max is not None:
            model["n_max"] = args.n_max
    if args.solver is not None:
        model["solver"] = args.solver
    if args.tol is not None:
        model["tol"] = args.tol
    if args.max_iter is not None:
        model["max_iter"] = args.max_iter
    payload = {"op": args.op, "model": model}
    if args.op == "sweep":
        if not args.axis:
            raise ValueError("--op sweep needs at least one --axis")
        payload["axes"] = list(args.axis)
    elif args.axis:
        raise ValueError("--axis applies only to --op sweep")
    if args.metric:
        payload["metrics"] = list(args.metric)
    return payload


def _query_http(args: argparse.Namespace, payload: dict) -> dict:
    import json
    import urllib.error
    import urllib.request

    host, port = _parse_hostport(args.connect, "--connect")
    base = f"http://{host}:{port}"
    if args.op in ("ping", "stats"):
        url = base + ("/healthz" if args.op == "ping" else "/stats")
        request = urllib.request.Request(url)
    else:
        body = {k: v for k, v in payload.items() if k != "op"}
        request = urllib.request.Request(
            f"{base}/v1/{args.op}",
            data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(request, timeout=args.timeout) as resp:
            reply = json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode(errors="replace")
        try:
            detail = json.loads(detail).get("error", detail)
        except ValueError:
            pass
        raise ValueError(f"HTTP {exc.code}: {detail}") from exc
    if args.op == "ping":
        return {"kind": "result", "op": "ping", **reply}
    if args.op == "stats":
        return {"kind": "result", "op": "stats", **reply}
    return reply


def _cmd_query(args: argparse.Namespace) -> int:
    import json
    import socket as socket_module

    from repro.sweep.results import PointFailure, SweepResult
    from repro.sweep.service import request_over_socket

    try:
        payload = _build_query_payload(args)
        if args.http:
            reply = _query_http(args, payload)
        else:
            host, port = _parse_hostport(args.connect, "--connect")
            reply = request_over_socket(
                host, port, payload, timeout=args.timeout
            )
    except (ValueError, ConnectionError, OSError, socket_module.timeout) as exc:
        msg = str(exc) or type(exc).__name__
        print(f"error: {msg}", file=sys.stderr)
        return 2
    kind = reply.get("kind")
    if kind == "busy":
        state = "draining" if reply.get("draining") else "busy"
        print(f"error: service {state}: {reply.get('message')}", file=sys.stderr)
        return 2
    if kind == "error":
        print(
            f"error [{reply.get('code')}]: {reply.get('message')}",
            file=sys.stderr,
        )
        return 2
    if args.op == "sweep":
        rows = {
            i: [float("nan") if v is None else float(v) for v in row]
            for i, row in enumerate(reply["rows"])
        }
        errors = {
            e["index"]: PointFailure.from_dict(e)
            for e in reply.get("errors", ())
        }
        result = SweepResult.assemble(
            reply["axis_names"],
            reply["metric_names"],
            reply["points"],
            rows,
            errors=errors,
        )
        print(result.render(title=f"service sweep ({len(result)} points)"))
    elif args.op == "steady":
        print("service steady state")
        print("-" * len("service steady state"))
        for name, value in reply["values"].items():
            shown = float("nan") if value is None else value
            print(f"{name:30s} {shown:.6g}")
        for e in reply.get("errors", ()):
            print(f"  [{e['stage']}] {e['error_type']}: {e['message']}")
    elif args.op == "lint":
        status = "ok" in reply and reply["ok"]
        print(f"lint {reply.get('net')} ({reply.get('level')}): "
              f"{'ok' if status else 'FINDINGS'}")
        for fact in reply.get("facts", ()):
            print(f"proved  {fact}")
        for d in reply.get("diagnostics", ()):
            hint = f"  [{d['fix_hint']}]" if d.get("fix_hint") else ""
            print(f"{d['code']} {d['severity']:7s} {d['subject']}: "
                  f"{d['message']}{hint}")
        if not status:
            return 2
    else:
        print(json.dumps(reply, indent=2, default=str))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point (console script and ``python -m repro``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
