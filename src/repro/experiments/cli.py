"""Command-line interface for the experiment harness.

Examples::

    repro-experiments list
    repro-experiments run fig4
    repro-experiments run table4 --full --csv-dir results/
    repro-experiments run all --csv-dir results/
    python -m repro run fig5

Fast mode (default) finishes in seconds; ``--full`` reproduces the paper's
0.1-step threshold grid with long runs (minutes).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.experiments.paper_experiments import EXPERIMENTS, ExperimentConfig
from repro.sweep import DEMO_NETS, SweepGrid, SweepRunner

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Energy Modeling of "
            "Processors in Wireless Sensor Networks based on Petri Nets' "
            "(Shareef & Zhu, 2008)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list", help="list available experiments")
    list_p.set_defaults(func=_cmd_list)

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper table/figure) or 'all'",
    )
    run_p.add_argument(
        "--full",
        action="store_true",
        help="full-fidelity grid and horizons (slow; paper-quality)",
    )
    run_p.add_argument(
        "--seed", type=int, default=20080901, help="master random seed"
    )
    run_p.add_argument(
        "--csv-dir",
        type=Path,
        default=None,
        help="also write <experiment>.csv files into this directory",
    )
    run_p.set_defaults(func=_cmd_run)

    sweep_p = sub.add_parser(
        "sweep",
        help="batched rate sweep over a demo GSPN (explores the net once)",
        description=(
            "Sweep exponential-transition rates over a grid and solve each "
            "point analytically via the batched GSPN solver.  Example: "
            "repro-experiments sweep --net cpu-gspn --rate AR=0.2:2.0:10 "
            "--rate PDT=2,3.33 --metric mean_tokens:Stand_By"
        ),
    )
    sweep_p.add_argument(
        "--net",
        choices=sorted(DEMO_NETS),
        default="cpu-gspn",
        help="demo net to sweep (default: the exponentialised Figure 3 CPU)",
    )
    sweep_p.add_argument(
        "--rate",
        action="append",
        required=True,
        metavar="NAME=VALUES",
        help=(
            "axis spec, repeatable: 'AR=0.1:2.0:10' (linspace), "
            "'AR=0.1:10:5:log' (geomspace), 'AR=0.5,1,2', or 'AR=1.5'"
        ),
    )
    sweep_p.add_argument(
        "--metric",
        action="append",
        default=None,
        metavar="KIND:NAME",
        help=(
            "metric column, repeatable: mean_tokens:<place>, "
            "probability_positive:<place>, throughput:<transition> "
            "(default: per-net defaults)"
        ),
    )
    sweep_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="fan points out over this many worker processes",
    )
    sweep_p.add_argument(
        "--backend",
        choices=["auto", "dense", "sparse"],
        default="auto",
        help="CTMC linear-algebra backend (default auto)",
    )
    sweep_p.add_argument(
        "--csv-dir",
        type=Path,
        default=None,
        help="also write a sweep.csv into this directory",
    )
    sweep_p.set_defaults(func=_cmd_sweep)
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    for name in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
        print(f"{name:8s} {doc}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = ExperimentConfig(fast=not args.full, seed=args.seed)
    names: List[str] = (
        sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    for name in names:
        t0 = time.perf_counter()
        result = EXPERIMENTS[name](config)
        elapsed = time.perf_counter() - t0
        print(result.render())
        print(f"\n[{name} finished in {elapsed:.2f} s]")
        if args.csv_dir is not None:
            path = result.write_csv(args.csv_dir)
            print(f"[wrote {path}]")
        if len(names) > 1:
            print("\n" + "#" * 78 + "\n")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    factory, default_metrics = DEMO_NETS[args.net]
    metrics: List[str] = args.metric if args.metric else list(default_metrics)
    try:
        grid = SweepGrid.from_specs(args.rate)
        runner = SweepRunner(
            factory(), metrics, backend=args.backend, n_workers=args.jobs
        )
        t0 = time.perf_counter()
        result = runner.run(grid)
        elapsed = time.perf_counter() - t0
    except (KeyError, ValueError) as exc:
        msg = exc.args[0] if exc.args else exc
        print(f"error: {msg}", file=sys.stderr)
        return 2
    print(result.render(title=f"{args.net} sweep ({len(result)} points)"))
    print(
        f"\n[{len(result)} points over {runner.solver.n} tangible markings "
        f"in {elapsed:.3f} s — graph explored once]"
    )
    if args.csv_dir is not None:
        args.csv_dir.mkdir(parents=True, exist_ok=True)
        path = result.write_csv(args.csv_dir)
        print(f"[wrote {path}]")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point (console script and ``python -m repro``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
