"""Plain-text reporting: ASCII tables, ASCII line plots, CSV export.

The benchmark harness is terminal-first (matplotlib is not a dependency):
tables render with box-drawing-free ASCII so they diff cleanly, and the
line plot is a dot-matrix renderer good enough to eyeball the Figure 4/5
curve shapes.  Every experiment can also dump CSV for external plotting.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

__all__ = ["format_table", "ascii_plot", "write_csv"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_fmt: str = "{:.3f}",
) -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    def render(cell: object) -> str:
        if isinstance(cell, float) or isinstance(cell, np.floating):
            return float_fmt.format(float(cell))
        return str(cell)

    text_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in text_rows)
    return "\n".join(lines)


def ascii_plot(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 68,
    height: int = 18,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Dot-matrix line plot of one or more series over a shared x grid.

    Each series gets a marker character; collisions show the later series.
    """
    if not series:
        raise ValueError("need at least one series")
    xs = np.asarray(x, dtype=np.float64)
    markers = "*o+x#@%&"
    all_y = np.concatenate([np.asarray(v, dtype=np.float64) for v in series.values()])
    if any(np.asarray(v).shape != xs.shape for v in series.values()):
        raise ValueError("every series must match the x grid length")
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(xs.min()), float(xs.max())
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, values) in enumerate(series.items()):
        marker = markers[si % len(markers)]
        ys = np.asarray(values, dtype=np.float64)
        for xv, yv in zip(xs, ys):
            col = int(round((xv - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((yv - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    label_w = 10
    for r, row_chars in enumerate(grid):
        if r == 0:
            label = f"{y_max:9.3g} "
        elif r == height - 1:
            label = f"{y_min:9.3g} "
        elif r == height // 2 and y_label:
            label = f"{y_label[:9]:>9s} "
        else:
            label = " " * label_w
        lines.append(label + "|" + "".join(row_chars))
    lines.append(" " * label_w + "+" + "-" * width)
    x_axis = f"{x_min:<10.3g}{x_label:^{max(width - 20, 0)}}{x_max:>10.3g}"
    lines.append(" " * (label_w + 1) + x_axis)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * (label_w + 1) + "legend: " + legend)
    return "\n".join(lines)


def write_csv(
    path: Union[str, Path],
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> Path:
    """Write rows to *path* (parent directories created)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
    return out


def csv_text(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """CSV as a string (for reports embedded in docs)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buf.getvalue()
