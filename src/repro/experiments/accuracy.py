"""The cost-of-accuracy experiment (the paper's Section 6, quantified).

The paper's closing discussion weighs the Petri net's accuracy against its
"long simulation time that is required before the percentages stabilize",
versus a Markov model that is "just evaluating an analytical expression".
This experiment turns that qualitative trade-off into a table: for each
model, the wall-clock time to produce state percentages within a target
error of the exact solution.

- Analytical models (supplementary-variable Markov, exact renewal, Erlang
  phase-type) are timed directly; their error is deterministic.
- Stochastic models (event simulation, Petri net) are run with doubling
  simulation horizons until the summed-state error against the exact
  solution drops below the target, charging the *total* wall-clock spent.

The result is the quantitative version of the paper's conclusion — the
Markov evaluation is ~10^4-10^5 x cheaper *where it is valid* (small D),
and no amount of speed helps once its bias exceeds the target (large D),
where only the simulators and the phase-type chain can deliver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.exact_renewal import ExactRenewalModel
from repro.core.markov_supplementary import MarkovSupplementaryModel
from repro.core.params import CPUModelParams, StateFractions
from repro.core.petri_cpu import PetriCPUModel
from repro.core.phase_type import PhaseTypeModel
from repro.core.simulation_cpu import CPUEventSimulator
from repro.des.random_streams import StreamManager
from repro.experiments.reporting import format_table

__all__ = ["AccuracyRow", "run_cost_of_accuracy", "render_cost_of_accuracy"]


@dataclass(frozen=True)
class AccuracyRow:
    """One model's cost to reach (or fail to reach) the error target."""

    model: str
    power_up_delay: float
    achieved_error_pct: float  # summed-state |Δ| vs exact, in points
    wall_clock_s: float
    reached_target: bool
    note: str = ""


def _error_pct(fractions: StateFractions, exact: StateFractions) -> float:
    return 100.0 * fractions.l1_distance(exact)


def _time_analytic(
    name: str,
    solve: Callable[[], StateFractions],
    exact: StateFractions,
    delay: float,
    target_pct: float,
    repeats: int = 50,
) -> AccuracyRow:
    t0 = time.perf_counter()
    for _ in range(repeats):
        fractions = solve()
    elapsed = (time.perf_counter() - t0) / repeats
    err = _error_pct(fractions, exact)
    return AccuracyRow(
        model=name,
        power_up_delay=delay,
        achieved_error_pct=err,
        wall_clock_s=elapsed,
        reached_target=err <= target_pct,
        note="" if err <= target_pct else "bias exceeds target at any cost",
    )


def _time_stochastic(
    name: str,
    run_at_horizon: Callable[[float, int], StateFractions],
    exact: StateFractions,
    delay: float,
    target_pct: float,
    base_horizon: float = 500.0,
    max_horizon: float = 64_000.0,
) -> AccuracyRow:
    total = 0.0
    horizon = base_horizon
    err = float("inf")
    attempt = 0
    while True:
        t0 = time.perf_counter()
        fractions = run_at_horizon(horizon, attempt)
        total += time.perf_counter() - t0
        err = _error_pct(fractions, exact)
        if err <= target_pct or horizon >= max_horizon:
            break
        horizon *= 2.0
        attempt += 1
    return AccuracyRow(
        model=name,
        power_up_delay=delay,
        achieved_error_pct=err,
        wall_clock_s=total,
        reached_target=err <= target_pct,
        note=f"horizon {horizon:g} s",
    )


def run_cost_of_accuracy(
    delays: tuple = (0.001, 10.0),
    target_pct: float = 1.0,
    threshold: float = 0.3,
    seed: int = 20080901,
) -> List[AccuracyRow]:
    """Time every model to *target_pct* summed-state error vs exact.

    Returns one row per (model, Power Up Delay) pair.
    """
    if target_pct <= 0.0:
        raise ValueError("target_pct must be > 0")
    rows: List[AccuracyRow] = []
    for delay in delays:
        params = CPUModelParams.paper_defaults(T=threshold, D=delay)
        exact = ExactRenewalModel(params).solve().fractions()

        rows.append(_time_analytic(
            "markov (eqs. 17-19)",
            lambda p=params: MarkovSupplementaryModel(p).solve().fractions(),
            exact, delay, target_pct,
        ))
        rows.append(_time_analytic(
            "phase-type (Erlang-32)",
            lambda p=params: PhaseTypeModel(p, stages=32).solve().fractions,
            exact, delay, target_pct, repeats=5,
        ))

        streams = StreamManager(seed)

        def run_sim(horizon: float, attempt: int, p=params, s=streams) -> StateFractions:
            sim = CPUEventSimulator(p, streams=s.for_replication(attempt))
            return sim.run(horizon=horizon, warmup=min(100.0, horizon / 10)).fractions

        rows.append(_time_stochastic(
            "event simulation", run_sim, exact, delay, target_pct
        ))

        def run_petri(horizon: float, attempt: int, p=params, s=streams) -> StateFractions:
            model = PetriCPUModel(p, streams=s.for_replication(100 + attempt))
            return model.run(horizon=horizon, warmup=min(100.0, horizon / 10)).fractions

        rows.append(_time_stochastic(
            "petri net", run_petri, exact, delay, target_pct
        ))
    return rows


def render_cost_of_accuracy(rows: List[AccuracyRow], target_pct: float) -> str:
    table = [
        [
            r.power_up_delay,
            r.model,
            r.achieved_error_pct,
            r.wall_clock_s * 1000.0,
            "yes" if r.reached_target else "NO",
            r.note,
        ]
        for r in rows
    ]
    return format_table(
        ["D (s)", "model", "error (pp)", "wall-clock (ms)", "met target", "note"],
        table,
        title=(
            f"Cost of accuracy — time to reach {target_pct:g} summed "
            "percentage points vs the exact solution (paper Section 6, "
            "quantified)"
        ),
        float_fmt="{:.3f}",
    )
