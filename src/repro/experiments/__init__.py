"""Experiment harness: regenerate every table and figure of the paper.

See :mod:`repro.experiments.paper_experiments` for the per-artifact entry
points and :mod:`repro.experiments.cli` for the command line
(``repro-experiments run fig4`` / ``python -m repro run fig4``).
"""

from repro.experiments.paper_experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    ExperimentResult,
    run_figure4,
    run_figure5,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.experiments.reporting import ascii_plot, format_table, write_csv

__all__ = [
    "EXPERIMENTS",
    "ExperimentConfig",
    "ExperimentResult",
    "ascii_plot",
    "format_table",
    "run_figure4",
    "run_figure5",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "write_csv",
]
