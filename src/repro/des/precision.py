"""Precision-controlled sequential simulation.

The paper's Section 6 names the Petri net's main drawback: "their long
simulation time that is required before the percentages stabilize", versus
"evaluating a Markov model means just evaluating an analytical expression".
This module makes that trade-off measurable: run replications *until* every
watched metric's confidence interval is tighter than a requested relative
half-width, and report how much simulated time that took.

The sequential procedure is the classical two-stage approach: run a pilot
batch of replications, then keep adding replications until the Student-t
interval is narrow enough (or a budget is exhausted — reported honestly in
the result rather than silently returning an unconverged estimate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.des.random_streams import StreamManager
from repro.des.statistics import confidence_interval

__all__ = ["PrecisionResult", "run_until_precise"]

ModelFn = Callable[..., Mapping[str, float]]


@dataclass
class PrecisionResult:
    """Outcome of a sequential precision-controlled run."""

    means: Dict[str, float]
    half_widths: Dict[str, float]
    relative_half_widths: Dict[str, float]
    n_replications: int
    converged: bool
    target: float
    level: float
    samples: Dict[str, List[float]] = field(default_factory=dict)

    def worst_metric(self) -> str:
        """The metric furthest from the precision target."""
        return max(
            self.relative_half_widths,
            key=lambda m: self.relative_half_widths[m],
        )


def run_until_precise(
    fn: ModelFn,
    metrics: Sequence[str],
    relative_half_width: float = 0.05,
    level: float = 0.95,
    min_replications: int = 5,
    max_replications: int = 1000,
    seed: Optional[int] = None,
    **kwargs: Any,
) -> PrecisionResult:
    """Replicate *fn* until every metric in *metrics* meets the target.

    Parameters
    ----------
    fn:
        Model function ``fn(streams, **kwargs) -> {metric: value}`` (the
        same signature as :func:`repro.des.replication.run_replications`).
    metrics:
        The metric names whose precision is controlled.  Metrics whose
        running mean is ~0 are judged on absolute half-width instead
        (relative precision is undefined at zero).
    relative_half_width:
        Target: CI half-width / |mean| <= this for every watched metric.
    min_replications / max_replications:
        Pilot size and budget.  If the budget runs out the result is
        returned with ``converged=False``.

    Returns
    -------
    PrecisionResult
        Means, achieved precisions, and the replication count used.
    """
    if not metrics:
        raise ValueError("need at least one metric to control")
    if not (0.0 < relative_half_width < 1.0):
        raise ValueError("relative_half_width must be in (0, 1)")
    if min_replications < 2:
        raise ValueError("min_replications must be >= 2")
    if max_replications < min_replications:
        raise ValueError("max_replications must be >= min_replications")

    base = StreamManager(seed)
    samples: Dict[str, List[float]] = {m: [] for m in metrics}
    n = 0
    converged = False

    def add_replication(index: int) -> None:
        streams = base.for_replication(index)
        result = fn(streams, **kwargs)
        for m in metrics:
            if m not in result:
                raise KeyError(f"model did not report metric {m!r}")
            samples[m].append(float(result[m]))

    while n < max_replications:
        add_replication(n)
        n += 1
        if n < min_replications:
            continue
        worst = 0.0
        for m in metrics:
            arr = np.asarray(samples[m])
            lo, hi = confidence_interval(arr, level)
            half = 0.5 * (hi - lo)
            mean = float(arr.mean())
            rel = half / abs(mean) if abs(mean) > 1e-12 else half
            worst = max(worst, rel)
        if worst <= relative_half_width:
            converged = True
            break

    means: Dict[str, float] = {}
    halves: Dict[str, float] = {}
    rels: Dict[str, float] = {}
    for m in metrics:
        arr = np.asarray(samples[m])
        lo, hi = confidence_interval(arr, level)
        means[m] = float(arr.mean())
        halves[m] = 0.5 * (hi - lo)
        rels[m] = (
            halves[m] / abs(means[m]) if abs(means[m]) > 1e-12 else halves[m]
        )
    return PrecisionResult(
        means=means,
        half_widths=halves,
        relative_half_widths=rels,
        n_replications=n,
        converged=converged,
        target=relative_half_width,
        level=level,
        samples=samples,
    )
