"""Output-analysis statistics for terminating and steady-state simulation.

Three collector types cover everything the library measures:

- :class:`TimeWeightedStatistic` — integrals of piecewise-constant signals
  over time (queue length, tokens in a Petri net place, power-state
  indicator).  The steady-state *percentages* the paper reports in Figure 4
  are exactly time-weighted means of indicator signals.
- :class:`TallyStatistic` — classic observation tallies (job latency) using
  Welford's numerically stable online algorithm.
- :class:`BatchMeans` — nonoverlapping batch means over a single long run,
  the standard steady-state confidence-interval method when replications are
  expensive.

Plus two free functions: :func:`confidence_interval` (Student-t) and
:func:`mser_truncation_point` (MSER-5 warm-up detection).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats

__all__ = [
    "TimeWeightedStatistic",
    "TallyStatistic",
    "BatchMeans",
    "confidence_interval",
    "mser_truncation_point",
]


class TimeWeightedStatistic:
    """Time integral of a piecewise-constant signal.

    Call :meth:`update` whenever the signal changes value; the collector
    accumulates ``value * dt`` between updates.  :meth:`finalize` (or passing
    ``until`` to the accessor methods) closes the last segment at the stated
    horizon.

    Parameters
    ----------
    initial_value:
        Signal value at ``start_time``.
    start_time:
        Clock value at which observation begins (useful after warm-up
        truncation).
    """

    __slots__ = ("_area", "_area2", "_last_time", "_value", "_start", "_min", "_max")

    def __init__(self, initial_value: float = 0.0, start_time: float = 0.0) -> None:
        self._area = 0.0
        self._area2 = 0.0
        self._last_time = float(start_time)
        self._value = float(initial_value)
        self._start = float(start_time)
        self._min = float(initial_value)
        self._max = float(initial_value)

    @property
    def current_value(self) -> float:
        """The signal value as of the last update."""
        return self._value

    def update(self, time: float, value: float) -> None:
        """Record that the signal changed to *value* at *time*."""
        if time < self._last_time:
            raise ValueError(
                f"time went backwards: {time} < {self._last_time}"
            )
        dt = time - self._last_time
        if dt > 0.0:
            self._area += self._value * dt
            self._area2 += self._value * self._value * dt
        self._last_time = time
        self._value = float(value)
        if value < self._min:
            self._min = float(value)
        if value > self._max:
            self._max = float(value)

    def advance(self, time: float) -> None:
        """Advance the clock without changing the value."""
        self.update(time, self._value)

    def elapsed(self, until: Optional[float] = None) -> float:
        """Observed horizon length."""
        end = self._last_time if until is None else float(until)
        return max(end - self._start, 0.0)

    def time_average(self, until: Optional[float] = None) -> float:
        """Time-weighted mean of the signal over the observed horizon."""
        end = self._last_time if until is None else float(until)
        if end < self._last_time:
            raise ValueError("cannot finalise before the last recorded update")
        total = end - self._start
        if total <= 0.0:
            return self._value
        area = self._area + self._value * (end - self._last_time)
        return area / total

    def time_variance(self, until: Optional[float] = None) -> float:
        """Time-weighted variance of the signal."""
        end = self._last_time if until is None else float(until)
        total = end - self._start
        if total <= 0.0:
            return 0.0
        tail = end - self._last_time
        area = self._area + self._value * tail
        area2 = self._area2 + self._value * self._value * tail
        mean = area / total
        return max(area2 / total - mean * mean, 0.0)

    def minimum(self) -> float:
        return self._min

    def maximum(self) -> float:
        return self._max

    def finalize(self, time: float) -> float:
        """Close the last segment at *time* and return the time average."""
        self.advance(time)
        return self.time_average()


class TallyStatistic:
    """Welford online mean/variance over discrete observations."""

    __slots__ = ("_n", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def record(self, x: float) -> None:
        """Add one observation."""
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    def record_many(self, xs: Sequence[float]) -> None:
        """Add a batch of observations."""
        for x in xs:
            self.record(float(x))

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        return self._mean if self._n else float("nan")

    @property
    def variance(self) -> float:
        """Sample (n-1) variance."""
        if self._n < 2:
            return float("nan")
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else float("nan")

    @property
    def minimum(self) -> float:
        return self._min if self._n else float("nan")

    @property
    def maximum(self) -> float:
        return self._max if self._n else float("nan")

    def standard_error(self) -> float:
        if self._n < 2:
            return float("nan")
        return self.std / math.sqrt(self._n)

    def merge(self, other: "TallyStatistic") -> "TallyStatistic":
        """Parallel-merge two tallies (Chan et al. pairwise update)."""
        merged = TallyStatistic()
        n = self._n + other._n
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged._n = n
        merged._mean = self._mean + delta * other._n / n
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self._n * other._n / n
        )
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged


class BatchMeans:
    """Nonoverlapping batch-means estimator over a single long run.

    Observations stream in via :meth:`record`; they are grouped into batches
    of ``batch_size`` and the batch averages form the (approximately
    independent) sample used for the confidence interval.
    """

    __slots__ = ("batch_size", "_acc", "_in_batch", "_batches")

    def __init__(self, batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = int(batch_size)
        self._acc = 0.0
        self._in_batch = 0
        self._batches: List[float] = []

    def record(self, x: float) -> None:
        self._acc += x
        self._in_batch += 1
        if self._in_batch == self.batch_size:
            self._batches.append(self._acc / self.batch_size)
            self._acc = 0.0
            self._in_batch = 0

    @property
    def batch_count(self) -> int:
        return len(self._batches)

    @property
    def batch_means(self) -> np.ndarray:
        return np.asarray(self._batches)

    def mean(self) -> float:
        if not self._batches:
            return float("nan")
        return float(np.mean(self._batches))

    def confidence_interval(self, level: float = 0.95) -> Tuple[float, float]:
        """Student-t interval over the batch means."""
        return confidence_interval(self._batches, level)


def confidence_interval(
    samples: Sequence[float], level: float = 0.95
) -> Tuple[float, float]:
    """Two-sided Student-t confidence interval ``(lo, hi)`` for the mean.

    With fewer than two samples the interval is degenerate (``(x, x)`` or
    NaNs) rather than an exception, so callers can report partial runs.
    """
    arr = np.asarray(samples, dtype=np.float64)
    n = arr.size
    if n == 0:
        return (float("nan"), float("nan"))
    mean = float(arr.mean())
    if n == 1:
        return (mean, mean)
    if not (0.0 < level < 1.0):
        raise ValueError("confidence level must be in (0, 1)")
    sem = float(arr.std(ddof=1)) / math.sqrt(n)
    if sem == 0.0:
        return (mean, mean)
    t = float(_scipy_stats.t.ppf(0.5 + level / 2.0, df=n - 1))
    return (mean - t * sem, mean + t * sem)


def mser_truncation_point(samples: Sequence[float], batch: int = 5) -> int:
    """MSER-k warm-up truncation point (default MSER-5).

    Returns the index into *samples* at which observation should start so the
    marginal standard error of the remaining mean is minimised.  Following
    standard practice, candidate truncation points are limited to the first
    half of the series; if the minimiser lands in the second half the data is
    deemed too short and ``0`` is returned.
    """
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size < 2 * batch:
        return 0
    # collapse to batch means to smooth out noise
    m = arr.size // batch
    batched = arr[: m * batch].reshape(m, batch).mean(axis=1)
    # suffix sums via reversed cumulative sums (vectorised MSER statistic)
    rev = batched[::-1]
    csum = np.cumsum(rev)
    csum2 = np.cumsum(rev * rev)
    n_keep = np.arange(1, m + 1, dtype=np.float64)
    suffix_mean = csum / n_keep
    suffix_var = np.maximum(csum2 / n_keep - suffix_mean**2, 0.0)
    mser = (suffix_var / n_keep)[::-1]  # mser[d] = stat when dropping d batches
    half = max(m // 2, 1)
    d_star = int(np.argmin(mser[:half]))
    if mser[d_star] == 0.0 and d_star == 0:
        return 0
    return d_star * batch
