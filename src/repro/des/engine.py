"""The discrete-event simulation engine.

A :class:`Simulator` owns a clock and an :class:`~repro.des.events.EventQueue`
and advances by repeatedly popping the earliest event and running its action.
Actions may schedule further events (at or after the current time) and may
stop the run.  The engine enforces the fundamental DES invariant — time never
goes backwards — and exposes hooks for tracing.

Typical usage::

    sim = Simulator()

    def arrival():
        ...                       # mutate model state
        sim.schedule(rng.exponential(1.0), arrival)

    sim.schedule(0.0, arrival)
    sim.run_until(1000.0)
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.des.events import Event, EventQueue

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the engine detects an inconsistent schedule.

    Examples: scheduling into the past, NaN delays, or exceeding the
    configured event budget (a runaway-model guard).
    """


class Simulator:
    """Event-driven simulator with a monotonic clock.

    Parameters
    ----------
    start_time:
        Initial clock value (default ``0.0``).
    max_events:
        Hard cap on the number of events executed in one :meth:`run_until` /
        :meth:`run` call; protects against accidental infinite immediate
        loops in user models.  ``None`` disables the cap.
    trace_hook:
        Optional callable ``(time, event) -> None`` invoked just before each
        event action runs.
    """

    __slots__ = (
        "now",
        "queue",
        "max_events",
        "trace_hook",
        "events_executed",
        "_stopped",
        "_compact_interval",
    )

    def __init__(
        self,
        start_time: float = 0.0,
        max_events: Optional[int] = None,
        trace_hook: Optional[Callable[[float, Event], None]] = None,
    ) -> None:
        self.now = float(start_time)
        self.queue = EventQueue()
        self.max_events = max_events
        self.trace_hook = trace_hook
        self.events_executed = 0
        self._stopped = False
        self._compact_interval = 4096

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        priority: int = 0,
        tag: Any = None,
    ) -> Event:
        """Schedule *action* to run ``delay`` time units from now.

        Returns the :class:`Event`, whose :meth:`~Event.cancel` method (or
        :meth:`Simulator.cancel`) descheduling it.
        """
        if delay < 0.0 or delay != delay:
            raise SimulationError(f"invalid delay {delay!r} at t={self.now}")
        return self.queue.push(Event(self.now + delay, action, priority, tag))

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        tag: Any = None,
    ) -> Event:
        """Schedule *action* at absolute simulation time *time*."""
        if time < self.now or time != time:
            raise SimulationError(
                f"cannot schedule at t={time!r}; clock is already at {self.now}"
            )
        return self.queue.push(Event(time, action, priority, tag))

    def cancel(self, event: Event) -> None:
        """Deschedule a previously scheduled event (lazy O(1))."""
        self.queue.cancel(event)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        """Request that the current run loop exit after the current event."""
        self._stopped = True

    def step(self) -> bool:
        """Execute exactly one event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        """
        event = self.queue.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError(
                f"event at t={event.time} popped while clock at {self.now}"
            )
        self.now = event.time
        if self.trace_hook is not None:
            self.trace_hook(self.now, event)
        event.action()
        self.events_executed += 1
        if self.events_executed % self._compact_interval == 0:
            self.queue.compact()
        return True

    def run(self) -> float:
        """Run until the event queue empties or :meth:`stop` is called.

        Returns the final clock value.
        """
        self._stopped = False
        budget = self.max_events
        while not self._stopped:
            if budget is not None and self.events_executed >= budget:
                raise SimulationError(
                    f"event budget of {budget} exhausted at t={self.now}"
                )
            if not self.step():
                break
        return self.now

    def run_until(self, end_time: float) -> float:
        """Run events with time ``<= end_time``; leave the clock at *end_time*.

        Events scheduled exactly at ``end_time`` are executed.  On return the
        clock equals ``end_time`` even if the queue drained earlier, so
        time-weighted statistics can be finalised at a well-defined horizon.
        """
        if end_time < self.now:
            raise SimulationError(
                f"run_until({end_time}) but clock already at {self.now}"
            )
        self._stopped = False
        budget = self.max_events
        while not self._stopped:
            if budget is not None and self.events_executed >= budget:
                raise SimulationError(
                    f"event budget of {budget} exhausted at t={self.now}"
                )
            t_next = self.queue.peek_time()
            if t_next is None or t_next > end_time:
                break
            self.step()
        if self.now < end_time:
            self.now = end_time
        return self.now

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def pending_count(self) -> int:
        """Number of live scheduled events."""
        return len(self.queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.6g}, pending={len(self.queue)}, "
            f"executed={self.events_executed})"
        )
