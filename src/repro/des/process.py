"""Process-interaction API on top of the event kernel.

The callback style of :class:`~repro.des.engine.Simulator` is fast but
models with long sequential behaviours (think → submit → wait → think …)
read better as *processes*: Python generators that ``yield`` the things
they wait for.  This module provides that layer:

- ``yield env.timeout(5.0)`` — wait 5 time units,
- ``yield resource.request()`` … ``resource.release()`` — queue for a
  server,
- ``yield other_process`` — join another process.

It is intentionally a small subset of the SimPy surface — enough for the
examples and for users who prefer process-style modelling — executing on
exactly the same engine, clock, and statistics as the rest of the library.

Example::

    env = ProcessEnvironment(seed=1)

    def customer(env, server):
        yield env.timeout(1.0)
        req = server.request()
        yield req
        yield env.timeout(0.5)        # service
        server.release()

    env.spawn(customer(env, server))
    env.run_until(100.0)
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional

from repro.des.engine import SimulationError, Simulator
from repro.des.random_streams import StreamManager

__all__ = ["ProcessEnvironment", "Process", "Resource", "Timeout"]

ProcessGen = Generator[Any, Any, None]


class Timeout:
    """A delay a process can yield on."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0.0:
            raise ValueError("timeout delay must be >= 0")
        self.delay = float(delay)


class _Request:
    """Internal: one pending resource acquisition."""

    __slots__ = ("resource", "process", "granted")

    def __init__(self, resource: "Resource") -> None:
        self.resource = resource
        self.process: Optional["Process"] = None
        self.granted = False


class Process:
    """A running generator-based process."""

    __slots__ = ("env", "generator", "finished", "_waiters", "name")

    def __init__(self, env: "ProcessEnvironment", generator: ProcessGen,
                 name: str = "process") -> None:
        self.env = env
        self.generator = generator
        self.finished = False
        self._waiters: List["Process"] = []
        self.name = name

    def _advance(self, value: Any = None) -> None:
        """Resume the generator and interpret what it yields next."""
        try:
            yielded = self.generator.send(value)
        except StopIteration:
            self.finished = True
            for waiter in self._waiters:
                self.env._schedule_resume(waiter)
            self._waiters.clear()
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        env = self.env
        if isinstance(yielded, Timeout):
            env.sim.schedule(yielded.delay, lambda: self._advance())
        elif isinstance(yielded, _Request):
            yielded.process = self
            yielded.resource._enqueue(yielded)
        elif isinstance(yielded, Process):
            if yielded.finished:
                env._schedule_resume(self)
            else:
                yielded._waiters.append(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {yielded!r}; "
                "yield a Timeout, a resource request, or a Process"
            )


class Resource:
    """A counted resource with FIFO queueing.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of concurrent holders.
    """

    def __init__(self, env: "ProcessEnvironment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = int(capacity)
        self.in_use = 0
        self._queue: Deque[_Request] = deque()
        self.total_requests = 0
        self.total_waits = 0  # requests that had to queue

    def request(self) -> _Request:
        """Create a request to yield on."""
        return _Request(self)

    def _enqueue(self, req: _Request) -> None:
        self.total_requests += 1
        if self.in_use < self.capacity and not self._queue:
            self.in_use += 1
            req.granted = True
            self.env._schedule_resume(req.process)
        else:
            self.total_waits += 1
            self._queue.append(req)

    def release(self) -> None:
        """Release one unit; wakes the longest-waiting requester."""
        if self.in_use <= 0:
            raise SimulationError("release() without a matching grant")
        if self._queue:
            req = self._queue.popleft()
            req.granted = True
            self.env._schedule_resume(req.process)
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._queue)


class ProcessEnvironment:
    """Owns the engine and the process bookkeeping."""

    def __init__(
        self,
        seed: Optional[int] = None,
        streams: Optional[StreamManager] = None,
    ) -> None:
        self.sim = Simulator()
        self.streams = streams if streams is not None else StreamManager(seed)
        self._spawned = 0

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        return self.sim.now

    def timeout(self, delay: float) -> Timeout:
        return Timeout(delay)

    def spawn(self, generator: ProcessGen, name: Optional[str] = None) -> Process:
        """Start a process; it begins executing at the current time."""
        self._spawned += 1
        proc = Process(self, generator, name or f"process-{self._spawned}")
        self._schedule_resume(proc)
        return proc

    def resource(self, capacity: int = 1) -> Resource:
        return Resource(self, capacity)

    def _schedule_resume(self, proc: Process, value: Any = None) -> None:
        self.sim.schedule(0.0, lambda: proc._advance(value))

    # ------------------------------------------------------------------ #
    def run_until(self, horizon: float) -> float:
        """Run all processes until *horizon*."""
        return self.sim.run_until(horizon)

    def run(self) -> float:
        """Run until no process has pending work."""
        return self.sim.run()
