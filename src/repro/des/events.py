"""Event objects and the pending-event set.

The event queue is a binary heap keyed on ``(time, priority, sequence)``.
The sequence number makes the ordering total and deterministic: two events
scheduled for the same instant at the same priority fire in scheduling order,
which is what reproducible simulations require.

Cancellation is *lazy*: :meth:`EventQueue.cancel` marks the event and the pop
loop discards cancelled entries.  Lazy deletion keeps cancellation O(1), which
the Petri net simulator relies on — disabling a timed transition cancels its
pending firing event, and under heavy immediate-transition traffic that
happens far more often than actual firings.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator, Optional

__all__ = ["Event", "EventQueue"]


class Event:
    """A scheduled occurrence inside a :class:`~repro.des.engine.Simulator`.

    Parameters
    ----------
    time:
        Absolute simulation time at which the event fires.
    action:
        Zero-argument callable invoked when the event fires.
    priority:
        Tie-breaker for events at the same instant; *lower* values fire
        first (matching the convention that immediate transitions at
        priority 0 pre-empt everything).
    tag:
        Optional opaque payload used by callers to identify the event in
        traces (the Petri simulator stores the transition name here).
    """

    __slots__ = ("time", "action", "priority", "tag", "sequence", "cancelled")

    def __init__(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        tag: Any = None,
    ) -> None:
        self.time = float(time)
        self.action = action
        self.priority = int(priority)
        self.tag = tag
        self.sequence = -1  # assigned by the queue on push
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the queue discards it instead of firing it."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6g}, prio={self.priority}, tag={self.tag!r}, {state})"


class EventQueue:
    """Deterministic pending-event set with lazy cancellation.

    The queue never compares ``Event`` objects directly; heap entries are
    ``(time, priority, sequence, event)`` tuples so ordering is purely on the
    scalar key.
    """

    __slots__ = ("_heap", "_counter", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> Event:
        """Insert *event* and return it (for convenient chaining)."""
        if event.time != event.time:  # NaN guard
            raise ValueError("event time is NaN")
        event.sequence = next(self._counter)
        heapq.heappush(self._heap, (event.time, event.priority, event.sequence, event))
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Lazily remove *event*; no-op if already cancelled or fired."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            _, _, _, event = heapq.heappop(heap)
            if not event.cancelled:
                self._live -= 1
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0

    def compact(self) -> None:
        """Physically remove cancelled entries.

        Useful in very long runs where cancellations outnumber firings and
        the heap would otherwise grow without bound.  The simulator calls
        this automatically when the dead fraction grows large.
        """
        if len(self._heap) <= 2 * self._live:
            return
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)

    def dead_fraction(self) -> float:
        """Fraction of heap entries that are cancelled (diagnostic)."""
        if not self._heap:
            return 0.0
        return 1.0 - self._live / len(self._heap)

    def iter_pending(self) -> Iterator[Event]:
        """Iterate over live events in arbitrary (heap) order."""
        for _, _, _, event in self._heap:
            if not event.cancelled:
                yield event
