"""Reproducible, independently seedable random-number streams.

Stochastic simulations need two properties from their randomness:

1. **Reproducibility** — the same master seed must reproduce the same run.
2. **Stream independence** — different model components (arrival process,
   service process, each timed Petri transition, each replication) must draw
   from statistically independent streams, otherwise adding a draw in one
   component perturbs every other component and common-random-number variance
   reduction becomes impossible.

:class:`StreamManager` provides both on top of NumPy's ``SeedSequence``
spawning mechanism: every *named* stream is derived deterministically from
``(master_seed, name)`` so components can be added or removed without
shifting anyone else's stream, and replications are derived from
``(master_seed, replication_index)``.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional

import numpy as np

__all__ = ["StreamManager"]


def _name_to_key(name: str) -> int:
    """Stable 32-bit key for a stream name (CRC32; stable across runs)."""
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


class StreamManager:
    """Factory of named, independent ``numpy.random.Generator`` streams.

    Parameters
    ----------
    seed:
        Master seed.  ``None`` draws OS entropy (non-reproducible; fine for
        exploration, avoid in experiments).

    Examples
    --------
    >>> streams = StreamManager(seed=42)
    >>> arr = streams.get("arrivals")
    >>> svc = streams.get("service")
    >>> arr is streams.get("arrivals")
    True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._root = np.random.SeedSequence(seed)
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for *name*.

        The stream depends only on ``(master seed, name)`` — the order in
        which streams are requested does not matter.
        """
        gen = self._streams.get(name)
        if gen is None:
            # extend the root's spawn key so replication-derived managers
            # (which carry a spawn key of their own) stay distinct
            seq = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(self._root.spawn_key) + (_name_to_key(name),),
            )
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def for_replication(self, index: int) -> "StreamManager":
        """Derive a child manager for replication *index*.

        Replication streams are independent of each other and of the parent's
        named streams, yet fully determined by ``(master seed, index)``.
        """
        if index < 0:
            raise ValueError("replication index must be >= 0")
        child = StreamManager.__new__(StreamManager)
        child._root = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(0x5EED0000 + index,)
        )
        child.seed = self.seed
        child._streams = {}
        return child

    def reset(self) -> None:
        """Forget all derived streams (they regenerate identically)."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamManager(seed={self.seed!r}, streams={sorted(self._streams)})"
