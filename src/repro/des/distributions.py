"""Distribution objects for timed events.

Every delay in the library — inter-arrival times, service times, Petri net
transition firing delays — is described by a :class:`Distribution`.  A
distribution knows how to sample (scalar and vectorised), and reports its
exact mean and variance so tests can check sampled moments against theory.

The vectorised ``sample_array`` path matters for performance: the fast
regenerative CPU simulator and the workload generators pre-draw large blocks
of variates with one NumPy call instead of one Python-level call per event
(see the optimisation guides: vectorise the hot loop, not the cold one).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

__all__ = [
    "Distribution",
    "Deterministic",
    "Exponential",
    "Uniform",
    "Erlang",
    "Gamma",
    "HyperExponential",
    "Pareto",
    "Weibull",
    "LogNormal",
    "TruncatedNormal",
    "Empirical",
]


class Distribution(ABC):
    """A non-negative random delay."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one variate."""

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw *n* variates as a float64 array (vectorised where possible)."""
        return np.fromiter(
            (self.sample(rng) for _ in range(n)), dtype=np.float64, count=n
        )

    @abstractmethod
    def mean(self) -> float:
        """Exact expectation."""

    @abstractmethod
    def variance(self) -> float:
        """Exact variance."""

    def cv2(self) -> float:
        """Squared coefficient of variation (variance / mean^2)."""
        m = self.mean()
        if m == 0.0:
            return 0.0
        return self.variance() / (m * m)

    def is_immediate(self) -> bool:
        """True when the delay is identically zero."""
        return False


class Deterministic(Distribution):
    """A constant delay — the paper's Power-Down-Threshold and Power-Up-Delay.

    ``Deterministic(0.0)`` is a valid degenerate case (an immediate delay).
    """

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        if value < 0.0 or not math.isfinite(value):
            raise ValueError(f"deterministic delay must be finite and >= 0, got {value}")
        self.value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value)

    def mean(self) -> float:
        return self.value

    def variance(self) -> float:
        return 0.0

    def is_immediate(self) -> bool:
        return self.value == 0.0

    def __repr__(self) -> str:
        return f"Deterministic({self.value!r})"


class Exponential(Distribution):
    """Exponential delay with the given *rate* (mean ``1/rate``).

    The memoryless workhorse: Poisson arrivals and exponential service in the
    paper's M/M/1-with-power-management model.
    """

    __slots__ = ("rate",)

    def __init__(self, rate: float) -> None:
        if rate <= 0.0 or not math.isfinite(rate):
            raise ValueError(f"exponential rate must be finite and > 0, got {rate}")
        self.rate = float(rate)

    def sample(self, rng: np.random.Generator) -> float:
        return rng.exponential(1.0 / self.rate)

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(1.0 / self.rate, size=n)

    def mean(self) -> float:
        return 1.0 / self.rate

    def variance(self) -> float:
        return 1.0 / (self.rate * self.rate)

    def __repr__(self) -> str:
        return f"Exponential(rate={self.rate!r})"


class Uniform(Distribution):
    """Uniform delay on ``[low, high]``."""

    __slots__ = ("low", "high")

    def __init__(self, low: float, high: float) -> None:
        if not (0.0 <= low <= high) or not math.isfinite(high):
            raise ValueError(f"need 0 <= low <= high < inf, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return rng.uniform(self.low, self.high)

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def variance(self) -> float:
        span = self.high - self.low
        return span * span / 12.0

    def __repr__(self) -> str:
        return f"Uniform({self.low!r}, {self.high!r})"


class Erlang(Distribution):
    """Erlang-k delay: sum of *k* iid exponentials with the given *rate* each.

    Mean ``k/rate``.  Erlang stages are the classical phase-type
    approximation of a deterministic delay inside a Markov chain — the
    extension model in :mod:`repro.core.phase_type` uses exactly this.
    """

    __slots__ = ("k", "rate")

    def __init__(self, k: int, rate: float) -> None:
        if k < 1:
            raise ValueError(f"Erlang shape k must be >= 1, got {k}")
        if rate <= 0.0 or not math.isfinite(rate):
            raise ValueError(f"Erlang rate must be finite and > 0, got {rate}")
        self.k = int(k)
        self.rate = float(rate)

    @classmethod
    def with_mean(cls, k: int, mean: float) -> "Erlang":
        """Erlang-k with total mean *mean* (each stage has rate ``k/mean``)."""
        if mean <= 0.0:
            raise ValueError("mean must be > 0")
        return cls(k, k / mean)

    def sample(self, rng: np.random.Generator) -> float:
        return rng.gamma(self.k, 1.0 / self.rate)

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.gamma(self.k, 1.0 / self.rate, size=n)

    def mean(self) -> float:
        return self.k / self.rate

    def variance(self) -> float:
        return self.k / (self.rate * self.rate)

    def __repr__(self) -> str:
        return f"Erlang(k={self.k!r}, rate={self.rate!r})"


class Gamma(Distribution):
    """Gamma delay with real-valued *shape* and *scale* (mean ``shape*scale``).

    Generalises :class:`Erlang` to non-integer shapes; shapes < 1 give
    delay distributions with CV^2 > 1.
    """

    __slots__ = ("shape", "scale")

    def __init__(self, shape: float, scale: float) -> None:
        if shape <= 0.0 or scale <= 0.0:
            raise ValueError("Gamma shape and scale must be > 0")
        self.shape = float(shape)
        self.scale = float(scale)

    def sample(self, rng: np.random.Generator) -> float:
        return rng.gamma(self.shape, self.scale)

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.gamma(self.shape, self.scale, size=n)

    def mean(self) -> float:
        return self.shape * self.scale

    def variance(self) -> float:
        return self.shape * self.scale * self.scale

    def __repr__(self) -> str:
        return f"Gamma(shape={self.shape!r}, scale={self.scale!r})"


class Pareto(Distribution):
    """Pareto (Lomax-shifted) delay on ``[minimum, inf)`` with tail index
    *alpha*.

    Heavy-tailed: the mean requires ``alpha > 1`` and the variance
    ``alpha > 2`` (the accessors raise otherwise rather than return a
    misleading number).  Models rare-but-huge sensing bursts.
    """

    __slots__ = ("alpha", "minimum")

    def __init__(self, alpha: float, minimum: float) -> None:
        if alpha <= 0.0 or minimum <= 0.0:
            raise ValueError("Pareto alpha and minimum must be > 0")
        self.alpha = float(alpha)
        self.minimum = float(minimum)

    def sample(self, rng: np.random.Generator) -> float:
        return self.minimum * (1.0 + rng.pareto(self.alpha))

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.minimum * (1.0 + rng.pareto(self.alpha, size=n))

    def mean(self) -> float:
        if self.alpha <= 1.0:
            raise ValueError(f"Pareto mean is infinite for alpha={self.alpha}")
        return self.alpha * self.minimum / (self.alpha - 1.0)

    def variance(self) -> float:
        if self.alpha <= 2.0:
            raise ValueError(
                f"Pareto variance is infinite for alpha={self.alpha}"
            )
        a, m = self.alpha, self.minimum
        return m * m * a / ((a - 1.0) ** 2 * (a - 2.0))

    def __repr__(self) -> str:
        return f"Pareto(alpha={self.alpha!r}, minimum={self.minimum!r})"


class HyperExponential(Distribution):
    """Probabilistic mixture of exponentials (CV^2 > 1; bursty service)."""

    __slots__ = ("probs", "rates")

    def __init__(self, probs: Sequence[float], rates: Sequence[float]) -> None:
        p = np.asarray(probs, dtype=np.float64)
        r = np.asarray(rates, dtype=np.float64)
        if p.ndim != 1 or p.shape != r.shape or p.size == 0:
            raise ValueError("probs and rates must be equal-length 1-D sequences")
        if np.any(p < 0) or not math.isclose(float(p.sum()), 1.0, abs_tol=1e-9):
            raise ValueError("probs must be non-negative and sum to 1")
        if np.any(r <= 0):
            raise ValueError("rates must be > 0")
        self.probs = p
        self.rates = r

    def sample(self, rng: np.random.Generator) -> float:
        i = rng.choice(self.probs.size, p=self.probs)
        return rng.exponential(1.0 / self.rates[i])

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        branch = rng.choice(self.probs.size, size=n, p=self.probs)
        return rng.exponential(1.0 / self.rates[branch])

    def mean(self) -> float:
        return float(np.sum(self.probs / self.rates))

    def variance(self) -> float:
        second = float(np.sum(2.0 * self.probs / (self.rates**2)))
        m = self.mean()
        return second - m * m

    def __repr__(self) -> str:
        return f"HyperExponential(probs={self.probs.tolist()!r}, rates={self.rates.tolist()!r})"


class Weibull(Distribution):
    """Weibull delay with *shape* and *scale* (mean ``scale * Γ(1 + 1/shape)``)."""

    __slots__ = ("shape", "scale")

    def __init__(self, shape: float, scale: float) -> None:
        if shape <= 0.0 or scale <= 0.0:
            raise ValueError("Weibull shape and scale must be > 0")
        self.shape = float(shape)
        self.scale = float(scale)

    def sample(self, rng: np.random.Generator) -> float:
        return self.scale * rng.weibull(self.shape)

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=n)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale * self.scale * (g2 - g1 * g1)

    def __repr__(self) -> str:
        return f"Weibull(shape={self.shape!r}, scale={self.scale!r})"


class LogNormal(Distribution):
    """Log-normal delay parameterised by the underlying normal ``mu, sigma``."""

    __slots__ = ("mu", "sigma")

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma < 0.0:
            raise ValueError("sigma must be >= 0")
        self.mu = float(mu)
        self.sigma = float(sigma)

    @classmethod
    def with_mean_cv(cls, mean: float, cv: float) -> "LogNormal":
        """Construct from the delay's mean and coefficient of variation."""
        if mean <= 0.0 or cv < 0.0:
            raise ValueError("need mean > 0 and cv >= 0")
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - 0.5 * sigma2
        return cls(mu, math.sqrt(sigma2))

    def sample(self, rng: np.random.Generator) -> float:
        return rng.lognormal(self.mu, self.sigma)

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=n)

    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma**2)

    def variance(self) -> float:
        s2 = self.sigma**2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu + s2)

    def __repr__(self) -> str:
        return f"LogNormal(mu={self.mu!r}, sigma={self.sigma!r})"


class TruncatedNormal(Distribution):
    """Normal delay truncated at zero (rejection-sampled).

    Mean/variance reported are those of the *truncated* distribution.
    """

    __slots__ = ("loc", "scale", "_alpha")

    def __init__(self, loc: float, scale: float) -> None:
        if scale <= 0.0:
            raise ValueError("scale must be > 0")
        self.loc = float(loc)
        self.scale = float(scale)
        self._alpha = -self.loc / self.scale

    @staticmethod
    def _phi(x: float) -> float:
        return math.exp(-0.5 * x * x) / math.sqrt(2.0 * math.pi)

    @staticmethod
    def _Phi(x: float) -> float:
        return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))

    def sample(self, rng: np.random.Generator) -> float:
        while True:
            x = rng.normal(self.loc, self.scale)
            if x >= 0.0:
                return x

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        out = np.empty(n)
        filled = 0
        while filled < n:
            draw = rng.normal(self.loc, self.scale, size=max(n - filled, 16))
            draw = draw[draw >= 0.0]
            take = min(draw.size, n - filled)
            out[filled : filled + take] = draw[:take]
            filled += take
        return out

    def mean(self) -> float:
        a = self._alpha
        lam = self._phi(a) / (1.0 - self._Phi(a))
        return self.loc + self.scale * lam

    def variance(self) -> float:
        a = self._alpha
        z = 1.0 - self._Phi(a)
        lam = self._phi(a) / z
        delta = lam * (lam - a)
        return self.scale**2 * (1.0 - delta)

    def __repr__(self) -> str:
        return f"TruncatedNormal(loc={self.loc!r}, scale={self.scale!r})"


class Empirical(Distribution):
    """Resampling distribution over observed delays (trace bootstrap)."""

    __slots__ = ("values",)

    def __init__(self, values: Sequence[float]) -> None:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("need a non-empty 1-D sequence of delays")
        if np.any(arr < 0.0) or not np.all(np.isfinite(arr)):
            raise ValueError("delays must be finite and >= 0")
        self.values = arr

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.values[rng.integers(self.values.size)])

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        idx = rng.integers(self.values.size, size=n)
        return self.values[idx]

    def mean(self) -> float:
        return float(self.values.mean())

    def variance(self) -> float:
        return float(self.values.var())

    def __repr__(self) -> str:
        return f"Empirical(n={self.values.size})"
