"""Monitors: turn raw simulation state changes into analysable series.

:class:`StateOccupancyMonitor` tracks a categorical state variable (the
CPU's power state) and reports the fraction of time spent in each state —
precisely the "steady state percentage" quantity in the paper's Figure 4.

:class:`TraceRecorder` captures a bounded event trace for debugging and for
the trace-driven workload replays in :mod:`repro.workload.trace`.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.des.statistics import TimeWeightedStatistic

__all__ = ["StateOccupancyMonitor", "TraceRecorder"]


class StateOccupancyMonitor:
    """Fraction of time a categorical signal spends in each state.

    Parameters
    ----------
    states:
        The complete set of states that may occur.  Declaring them up front
        means results always contain every state (with 0.0 occupancy when
        never visited), which keeps downstream tables rectangular.
    initial_state:
        State at ``start_time``.
    start_time:
        Observation start (post-warm-up).
    """

    def __init__(
        self,
        states: Sequence[Hashable],
        initial_state: Hashable,
        start_time: float = 0.0,
    ) -> None:
        if initial_state not in states:
            raise ValueError(f"initial state {initial_state!r} not in {states!r}")
        self._indicators: Dict[Hashable, TimeWeightedStatistic] = {
            s: TimeWeightedStatistic(
                1.0 if s == initial_state else 0.0, start_time=start_time
            )
            for s in states
        }
        self._state = initial_state
        self._transitions = 0

    @property
    def current_state(self) -> Hashable:
        return self._state

    @property
    def transition_count(self) -> int:
        return self._transitions

    def transition(self, time: float, new_state: Hashable) -> None:
        """Record a state change at *time* (self-transitions are allowed)."""
        if new_state not in self._indicators:
            raise KeyError(f"unknown state {new_state!r}")
        if new_state == self._state:
            return
        self._indicators[self._state].update(time, 0.0)
        self._indicators[new_state].update(time, 1.0)
        self._state = new_state
        self._transitions += 1

    def occupancy(self, until: float) -> Dict[Hashable, float]:
        """Fractions of time per state over ``[start_time, until]``.

        The fractions sum to 1 (up to float rounding).
        """
        return {
            s: ind.time_average(until) for s, ind in self._indicators.items()
        }

    def occupancy_percent(self, until: float) -> Dict[Hashable, float]:
        """Occupancy scaled to percent — the paper's Figure 4 unit."""
        return {s: 100.0 * f for s, f in self.occupancy(until).items()}


class TraceRecorder:
    """Bounded in-memory event trace.

    Records ``(time, label, payload)`` triples.  When ``capacity`` is reached
    the recorder stops appending (and remembers how many events were
    dropped) instead of silently consuming unbounded memory during long
    steady-state runs.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be >= 0 or None")
        self.capacity = capacity
        self._events: List[Tuple[float, str, Any]] = []
        self.dropped = 0

    def record(self, time: float, label: str, payload: Any = None) -> None:
        if self.capacity is not None and len(self._events) >= self.capacity:
            self.dropped += 1
            return
        self._events.append((time, label, payload))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    @property
    def events(self) -> List[Tuple[float, str, Any]]:
        return list(self._events)

    def labels(self) -> List[str]:
        return [label for _, label, _ in self._events]

    def times(self) -> List[float]:
        return [t for t, _, _ in self._events]

    def filter(self, label: str) -> List[Tuple[float, str, Any]]:
        """All events with the given label."""
        return [e for e in self._events if e[1] == label]

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
