"""Discrete-event simulation kernel.

This package is the simulation substrate for the whole library.  It provides

- an event-driven simulation :class:`~repro.des.engine.Simulator` (event heap
  plus a monotonically advancing clock),
- reproducible, independently seedable random-number streams
  (:mod:`repro.des.random_streams`),
- distribution objects shared by the workload generators and the Petri net
  engine (:mod:`repro.des.distributions`),
- statistics collectors for terminating and steady-state simulation:
  time-weighted averages, Welford tallies, batch means, confidence
  intervals and MSER warm-up truncation (:mod:`repro.des.statistics`),
- state-occupancy monitors and trace recorders (:mod:`repro.des.monitors`),
- a replication runner with optional multiprocessing fan-out
  (:mod:`repro.des.replication`).

The kernel is deliberately callback-based (schedule a callable at an absolute
or relative time) rather than coroutine-based: callback scheduling keeps the
hot loop free of generator overhead, which matters because the Petri net
token game schedules and cancels events at a high rate.
"""

from repro.des.distributions import (
    Deterministic,
    Distribution,
    Empirical,
    Erlang,
    Exponential,
    Gamma,
    HyperExponential,
    LogNormal,
    Pareto,
    TruncatedNormal,
    Uniform,
    Weibull,
)
from repro.des.engine import Simulator, SimulationError
from repro.des.events import Event, EventQueue
from repro.des.monitors import StateOccupancyMonitor, TraceRecorder
from repro.des.precision import PrecisionResult, run_until_precise
from repro.des.process import ProcessEnvironment, Process, Resource, Timeout
from repro.des.random_streams import StreamManager
from repro.des.replication import (
    ReplicationResult,
    ReplicationSummary,
    run_replications,
)
from repro.des.statistics import (
    BatchMeans,
    TallyStatistic,
    TimeWeightedStatistic,
    confidence_interval,
    mser_truncation_point,
)

__all__ = [
    "BatchMeans",
    "Deterministic",
    "Distribution",
    "Empirical",
    "Erlang",
    "Event",
    "EventQueue",
    "Exponential",
    "Gamma",
    "HyperExponential",
    "LogNormal",
    "Pareto",
    "PrecisionResult",
    "Process",
    "ProcessEnvironment",
    "ReplicationResult",
    "ReplicationSummary",
    "Resource",
    "Simulator",
    "SimulationError",
    "StateOccupancyMonitor",
    "StreamManager",
    "TallyStatistic",
    "TimeWeightedStatistic",
    "Timeout",
    "TraceRecorder",
    "TruncatedNormal",
    "Uniform",
    "Weibull",
    "confidence_interval",
    "mser_truncation_point",
    "run_replications",
    "run_until_precise",
]
