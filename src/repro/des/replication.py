"""Independent-replication experiment runner.

Steady-state estimates from a single stochastic run carry unknown bias and
variance; the classical remedy is R independent replications with distinct
random streams, reporting the across-replication mean and a Student-t
confidence interval per metric.

:func:`run_replications` does exactly that for any model function of the
signature ``fn(streams: StreamManager, **kwargs) -> dict[str, float]``.
Replications are embarrassingly parallel, so the runner can fan them out
over a ``multiprocessing`` pool (``n_jobs > 1``); results are identical to
the serial path because each replication's randomness depends only on
``(seed, replication_index)`` — see :class:`~repro.des.random_streams.StreamManager`.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.des.random_streams import StreamManager
from repro.des.statistics import confidence_interval

__all__ = ["ReplicationResult", "ReplicationSummary", "run_replications"]

ModelFn = Callable[..., Mapping[str, float]]


@dataclass(frozen=True)
class ReplicationResult:
    """One replication's metric dictionary plus its index."""

    index: int
    metrics: Dict[str, float]


@dataclass
class ReplicationSummary:
    """Across-replication aggregate for a set of scalar metrics.

    Attributes
    ----------
    replications:
        Per-replication raw results, in index order.
    means / stds:
        Across-replication mean and sample standard deviation per metric.
    intervals:
        Student-t confidence intervals per metric at ``level``.
    level:
        Confidence level used for ``intervals``.
    """

    replications: List[ReplicationResult]
    means: Dict[str, float] = field(default_factory=dict)
    stds: Dict[str, float] = field(default_factory=dict)
    intervals: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    level: float = 0.95

    @property
    def n(self) -> int:
        return len(self.replications)

    def metric_samples(self, name: str) -> np.ndarray:
        """All replications' values for one metric."""
        return np.asarray([r.metrics[name] for r in self.replications])

    def half_width(self, name: str) -> float:
        """Half-width of the confidence interval for *name*."""
        lo, hi = self.intervals[name]
        return 0.5 * (hi - lo)

    def relative_half_width(self, name: str) -> float:
        """Half-width relative to the mean (precision diagnostic)."""
        mean = self.means[name]
        if mean == 0.0:
            return float("inf")
        return self.half_width(name) / abs(mean)


def _one_replication(
    args: Tuple[ModelFn, int, Optional[int], Dict[str, Any]],
) -> ReplicationResult:
    fn, index, seed, kwargs = args
    streams = StreamManager(seed).for_replication(index)
    metrics = dict(fn(streams, **kwargs))
    return ReplicationResult(index=index, metrics=metrics)


def run_replications(
    fn: ModelFn,
    n_replications: int,
    seed: Optional[int] = None,
    n_jobs: int = 1,
    level: float = 0.95,
    **kwargs: Any,
) -> ReplicationSummary:
    """Run *fn* across independent replications and summarise.

    Parameters
    ----------
    fn:
        Model function ``fn(streams, **kwargs) -> {metric: value}``.  Must be
        picklable when ``n_jobs > 1`` (i.e. a module-level function).
    n_replications:
        Number of independent replications (>= 1).
    seed:
        Master seed; replication *i* uses streams derived from
        ``(seed, i)``.
    n_jobs:
        ``1`` runs serially; ``> 1`` uses a process pool of that size;
        ``-1`` uses ``os.cpu_count()`` processes.
    level:
        Confidence level for the reported intervals.
    kwargs:
        Forwarded to every replication.

    Returns
    -------
    ReplicationSummary
        Identical regardless of ``n_jobs`` (replications are seeded by
        index, not by worker).
    """
    if n_replications < 1:
        raise ValueError("n_replications must be >= 1")
    tasks = [(fn, i, seed, kwargs) for i in range(n_replications)]

    if n_jobs == 1 or n_replications == 1:
        results = [_one_replication(t) for t in tasks]
    else:
        if n_jobs == -1:
            n_jobs = multiprocessing.cpu_count()
        n_jobs = max(1, min(n_jobs, n_replications))
        with multiprocessing.get_context("spawn").Pool(n_jobs) as pool:
            results = pool.map(_one_replication, tasks)
        results.sort(key=lambda r: r.index)

    metric_names = sorted(results[0].metrics)
    for r in results:
        if sorted(r.metrics) != metric_names:
            raise ValueError(
                "replications returned inconsistent metric sets: "
                f"{sorted(r.metrics)} vs {metric_names}"
            )

    summary = ReplicationSummary(replications=results, level=level)
    for name in metric_names:
        samples = np.asarray([r.metrics[name] for r in results])
        summary.means[name] = float(samples.mean())
        summary.stds[name] = (
            float(samples.std(ddof=1)) if samples.size > 1 else 0.0
        )
        summary.intervals[name] = confidence_interval(samples, level)
    return summary
