"""Battery capacity and lifetime arithmetic.

WSN batteries are quoted in milliamp-hours at a nominal voltage; energy
models produce average power in milliwatts.  :class:`Battery` converts
between the two and applies a usable-fraction derating (self-discharge,
cutoff voltage, temperature — motes rarely extract the label capacity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Battery"]

_SECONDS_PER_HOUR = 3600.0
_SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class Battery:
    """An ideal-source battery model with capacity derating.

    Parameters
    ----------
    capacity_mah:
        Label capacity in milliamp-hours (2×AA ≈ 2500 mAh).
    voltage_v:
        Nominal supply voltage (2×AA ≈ 3.0 V).
    usable_fraction:
        Fraction of label capacity actually extractable (default 0.85).
    """

    capacity_mah: float
    voltage_v: float = 3.0
    usable_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0.0 or not math.isfinite(self.capacity_mah):
            raise ValueError("capacity must be finite and > 0")
        if self.voltage_v <= 0.0:
            raise ValueError("voltage must be > 0")
        if not (0.0 < self.usable_fraction <= 1.0):
            raise ValueError("usable_fraction must be in (0, 1]")

    @classmethod
    def aa_pair(cls) -> "Battery":
        """Two alkaline AA cells in series — the classic mote supply."""
        return cls(capacity_mah=2500.0, voltage_v=3.0)

    @classmethod
    def coin_cell(cls) -> "Battery":
        """CR2032 coin cell (225 mAh @ 3 V)."""
        return cls(capacity_mah=225.0, voltage_v=3.0)

    # ------------------------------------------------------------------ #
    @property
    def energy_joules(self) -> float:
        """Usable energy: ``mAh × 3.6 × V × usable_fraction``."""
        return (
            self.capacity_mah
            * 3.6  # mAh -> coulombs (1 mAh = 3.6 C)
            * self.voltage_v
            * self.usable_fraction
        )

    def lifetime_seconds(self, average_power_mw: float) -> float:
        """Lifetime under a constant average drain."""
        if average_power_mw < 0.0:
            raise ValueError("power must be >= 0")
        if average_power_mw == 0.0:
            return math.inf
        return self.energy_joules / (average_power_mw / 1000.0)

    def lifetime_days(self, average_power_mw: float) -> float:
        return self.lifetime_seconds(average_power_mw) / _SECONDS_PER_DAY

    def drain_fraction(self, average_power_mw: float, duration_s: float) -> float:
        """Fraction of usable energy consumed over *duration_s* (can be > 1)."""
        if duration_s < 0.0:
            raise ValueError("duration must be >= 0")
        return (average_power_mw / 1000.0) * duration_s / self.energy_joules
