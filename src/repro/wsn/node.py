"""A sensor node: CPU model + radio + sensing workload + battery.

:class:`SensorNode` ties the paper's CPU energy model into the WSN setting
that motivates it.  The node senses at some rate; every sensed event costs
a CPU job (the paper's arrival process) and, with some probability, a radio
transmission.  The CPU's stationary behaviour comes from any of the
library's models (the noise-free exact renewal model by default, or the
Petri net / simulation for cross-checking), the radio from
:class:`~repro.wsn.radio.DutyCycledRadio`, and the battery turns average
power into a lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Literal, Optional

from repro.core.exact_renewal import ExactRenewalModel
from repro.core.markov_supplementary import MarkovSupplementaryModel
from repro.core.params import CPUModelParams, StateFractions
from repro.core.petri_cpu import PetriCPUModel
from repro.core.simulation_cpu import CPUEventSimulator
from repro.wsn.battery import Battery
from repro.wsn.radio import DutyCycledRadio

__all__ = ["NodeEnergyReport", "SensorNode"]

CPUModelKind = Literal["exact", "markov", "petri", "simulation"]


@dataclass(frozen=True)
class NodeEnergyReport:
    """Energy decomposition and lifetime of one node."""

    cpu_fractions: StateFractions
    cpu_power_mw: float
    radio_power_mw: float
    total_power_mw: float
    lifetime_days: float

    def power_breakdown(self) -> Dict[str, float]:
        return {"cpu_mw": self.cpu_power_mw, "radio_mw": self.radio_power_mw}


class SensorNode:
    """A battery-powered sensing node.

    Parameters
    ----------
    cpu_params:
        CPU model parameters; ``arrival_rate`` is the sensing-driven job
        rate (jobs/s).
    radio:
        Duty-cycled radio; ``None`` models a compute-only node.
    battery:
        Energy source (defaults to a pair of AA cells).
    tx_per_job:
        Radio transmissions per CPU job (reporting probability, or > 1 for
        multi-packet payloads).
    rx_per_second:
        Packets received/overheard per second (relay traffic).
    """

    def __init__(
        self,
        cpu_params: CPUModelParams,
        radio: Optional[DutyCycledRadio] = None,
        battery: Optional[Battery] = None,
        tx_per_job: float = 1.0,
        rx_per_second: float = 0.0,
        name: str = "node",
    ) -> None:
        if tx_per_job < 0.0 or rx_per_second < 0.0:
            raise ValueError("traffic factors must be >= 0")
        self.cpu_params = cpu_params
        self.radio = radio
        self.battery = battery if battery is not None else Battery.aa_pair()
        self.tx_per_job = float(tx_per_job)
        self.rx_per_second = float(rx_per_second)
        self.name = name

    # ------------------------------------------------------------------ #
    def cpu_fractions(
        self,
        model: CPUModelKind = "exact",
        horizon: float = 5_000.0,
        seed: Optional[int] = None,
    ) -> StateFractions:
        """CPU state fractions from the chosen model."""
        if model == "exact":
            return ExactRenewalModel(self.cpu_params).solve().fractions()
        if model == "markov":
            return MarkovSupplementaryModel(self.cpu_params).solve().fractions()
        if model == "petri":
            return PetriCPUModel(self.cpu_params, seed=seed).run(
                horizon=horizon, warmup=min(100.0, horizon / 10.0)
            ).fractions
        if model == "simulation":
            return CPUEventSimulator(self.cpu_params, seed=seed).run(
                horizon=horizon, warmup=min(100.0, horizon / 10.0)
            ).fractions
        raise ValueError(f"unknown CPU model {model!r}")

    def tx_rate(self) -> float:
        """Transmissions per second implied by the sensing workload."""
        return self.cpu_params.arrival_rate * self.tx_per_job

    def report(
        self,
        model: CPUModelKind = "exact",
        horizon: float = 5_000.0,
        seed: Optional[int] = None,
    ) -> NodeEnergyReport:
        """Full energy report: per-subsystem power plus battery lifetime."""
        fractions = self.cpu_fractions(model=model, horizon=horizon, seed=seed)
        cpu_mw = self.cpu_params.profile.average_power_mw(fractions)
        radio_mw = 0.0
        if self.radio is not None:
            radio_mw = self.radio.average_power_mw(
                self.tx_rate(), self.rx_per_second
            )
        total = cpu_mw + radio_mw
        return NodeEnergyReport(
            cpu_fractions=fractions,
            cpu_power_mw=cpu_mw,
            radio_power_mw=radio_mw,
            total_power_mw=total,
            lifetime_days=self.battery.lifetime_days(total),
        )

    def optimal_threshold(
        self, candidates: Optional[list] = None
    ) -> float:
        """Power-down threshold minimising CPU power (exact model).

        For the paper's parameters the answer is always the smallest
        threshold — idling costs 88 mW vs 17 mW standby — but with a large
        power-up delay and a busier workload the sweep can be non-trivial;
        exposing it lets examples explore the trade-off.
        """
        if candidates is None:
            candidates = [0.0, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0]
        best_t, best_p = None, float("inf")
        for t in candidates:
            params = self.cpu_params.with_threshold(float(t))
            fractions = ExactRenewalModel(params).solve().fractions()
            power = params.profile.average_power_mw(fractions)
            if power < best_p:
                best_t, best_p = float(t), power
        assert best_t is not None
        return best_t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SensorNode({self.name!r}, lambda={self.cpu_params.arrival_rate:g}/s)"
