"""Wireless-sensor-network context around the CPU energy models.

The paper's motivation is node lifetime in battery-powered WSNs.  This
package supplies the surrounding pieces so the CPU models can be exercised
in that setting:

- :mod:`repro.wsn.profiles` — power profiles of real WSN processors and
  radios (the paper's PXA271 plus common motes),
- :mod:`repro.wsn.battery` — battery capacity and lifetime arithmetic,
- :mod:`repro.wsn.radio` — a duty-cycled radio energy model,
- :mod:`repro.wsn.node` — a sensor node combining CPU, radio, sensing
  workload and battery into a lifetime estimate,
- :mod:`repro.wsn.network` — many-node aggregates (first-death lifetime,
  relay-load asymmetry around a sink).
"""

from repro.wsn.battery import Battery
from repro.wsn.network import NetworkLifetimeReport, SensorNetwork
from repro.wsn.node import NodeEnergyReport, SensorNode
from repro.wsn.profiles import (
    ATMEGA128L,
    CC2420,
    MSP430,
    PXA271_PROFILE,
    RadioProfile,
    processor_profiles,
)
from repro.wsn.radio import DutyCycledRadio, RadioEnergyBreakdown

__all__ = [
    "ATMEGA128L",
    "Battery",
    "CC2420",
    "DutyCycledRadio",
    "MSP430",
    "NetworkLifetimeReport",
    "NodeEnergyReport",
    "PXA271_PROFILE",
    "RadioEnergyBreakdown",
    "RadioProfile",
    "SensorNetwork",
    "SensorNode",
    "processor_profiles",
]
