"""Power profiles of WSN hardware.

The processor profiles reuse :class:`repro.core.params.PowerProfile` (four
CPU power states).  ``PXA271_PROFILE`` is the paper's Table 3 verbatim; the
other processors carry representative values from mote datasheets and the
WSN literature so examples can compare platforms.  They are deliberately
round numbers — the point of the examples is relative behaviour, not
datasheet fidelity.

``RadioProfile`` adds the transceiver states (TX / RX / idle-listen /
sleep) used by :mod:`repro.wsn.radio`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.core.params import PXA271, PowerProfile

__all__ = [
    "PXA271_PROFILE",
    "MSP430",
    "ATMEGA128L",
    "RadioProfile",
    "CC2420",
    "processor_profiles",
]

#: The paper's Table 3 (Intel PXA271), re-exported under the wsn namespace.
PXA271_PROFILE = PXA271

#: TI MSP430-class (TelosB mote): ~3 µW deep sleep, ~3 mW active at 4 MHz.
MSP430 = PowerProfile(
    name="MSP430",
    standby_mw=0.003,
    idle_mw=0.4,
    powerup_mw=2.0,
    active_mw=3.0,
)

#: Atmel ATmega128L-class (Mica2 mote): ~75 µW sleep, ~33 mW active.
ATMEGA128L = PowerProfile(
    name="ATmega128L",
    standby_mw=0.075,
    idle_mw=9.6,
    powerup_mw=20.0,
    active_mw=33.0,
)


def processor_profiles() -> Dict[str, PowerProfile]:
    """All bundled processor profiles keyed by name."""
    return {p.name: p for p in (PXA271_PROFILE, MSP430, ATMEGA128L)}


@dataclass(frozen=True)
class RadioProfile:
    """Transceiver power states plus the link bitrate.

    Defaults for :data:`CC2420` follow the usual figures: TX ≈ 52.2 mW at
    0 dBm, RX/listen ≈ 56.4 mW (receiving costs about as much as listening),
    sleep ≈ 60 µW, 250 kbit/s.
    """

    name: str
    tx_mw: float
    rx_mw: float
    listen_mw: float
    sleep_mw: float
    bitrate_bps: float

    def __post_init__(self) -> None:
        for label, v in (
            ("tx_mw", self.tx_mw),
            ("rx_mw", self.rx_mw),
            ("listen_mw", self.listen_mw),
            ("sleep_mw", self.sleep_mw),
        ):
            if v < 0.0 or not math.isfinite(v):
                raise ValueError(f"{label} must be finite and >= 0, got {v}")
        if self.bitrate_bps <= 0.0:
            raise ValueError("bitrate must be > 0")

    def packet_airtime_s(self, payload_bytes: int, overhead_bytes: int = 17) -> float:
        """Seconds on air for one packet (payload + PHY/MAC overhead)."""
        if payload_bytes < 0 or overhead_bytes < 0:
            raise ValueError("byte counts must be >= 0")
        return 8.0 * (payload_bytes + overhead_bytes) / self.bitrate_bps

    def tx_energy_mj(self, payload_bytes: int, overhead_bytes: int = 17) -> float:
        """Millijoules to transmit one packet."""
        return self.tx_mw * self.packet_airtime_s(payload_bytes, overhead_bytes)

    def rx_energy_mj(self, payload_bytes: int, overhead_bytes: int = 17) -> float:
        """Millijoules to receive one packet."""
        return self.rx_mw * self.packet_airtime_s(payload_bytes, overhead_bytes)


#: TI/Chipcon CC2420 802.15.4 transceiver (TelosB / MicaZ class).
CC2420 = RadioProfile(
    name="CC2420",
    tx_mw=52.2,
    rx_mw=56.4,
    listen_mw=56.4,
    sleep_mw=0.06,
    bitrate_bps=250_000.0,
)
