"""Duty-cycled radio energy model.

WSN MAC layers (B-MAC, X-MAC, 802.15.4 beacon mode, …) save energy by
sleeping the radio and waking periodically to listen.  This module models
that pattern at the level the paper's energy accounting needs: long-run
average power as a function of traffic rates and the listen duty cycle,
plus per-packet energy bookkeeping.

The model intentionally parallels :class:`~repro.core.params.StateFractions`:
a radio divides its time between TX, RX, idle-listen and sleep, and the
average power is the occupancy-weighted sum — the radio analogue of the
paper's eq. 25.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.wsn.profiles import RadioProfile

__all__ = ["RadioEnergyBreakdown", "DutyCycledRadio"]


@dataclass(frozen=True)
class RadioEnergyBreakdown:
    """Occupancy fractions and average power of a radio."""

    tx: float
    rx: float
    listen: float
    sleep: float
    average_power_mw: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "tx": self.tx,
            "rx": self.rx,
            "listen": self.listen,
            "sleep": self.sleep,
        }

    def total(self) -> float:
        return self.tx + self.rx + self.listen + self.sleep


class DutyCycledRadio:
    """A radio that sleeps except for periodic listen windows and traffic.

    Parameters
    ----------
    profile:
        Transceiver power numbers and bitrate.
    listen_duty_cycle:
        Fraction of time spent in idle-listen when not transmitting or
        receiving (e.g. 0.01 for a 1 % low-power-listening MAC).
    payload_bytes / overhead_bytes:
        Packet sizing used to convert packet rates into airtime.
    """

    def __init__(
        self,
        profile: RadioProfile,
        listen_duty_cycle: float = 0.01,
        payload_bytes: int = 36,
        overhead_bytes: int = 17,
    ) -> None:
        if not (0.0 <= listen_duty_cycle <= 1.0):
            raise ValueError("listen_duty_cycle must be in [0, 1]")
        if payload_bytes < 0 or overhead_bytes < 0:
            raise ValueError("byte counts must be >= 0")
        self.profile = profile
        self.listen_duty_cycle = float(listen_duty_cycle)
        self.payload_bytes = int(payload_bytes)
        self.overhead_bytes = int(overhead_bytes)

    # ------------------------------------------------------------------ #
    @property
    def packet_airtime_s(self) -> float:
        return self.profile.packet_airtime_s(
            self.payload_bytes, self.overhead_bytes
        )

    def occupancy(
        self, tx_packets_per_s: float, rx_packets_per_s: float
    ) -> RadioEnergyBreakdown:
        """Long-run occupancy for given traffic rates.

        TX/RX fractions are ``rate × airtime``; the listen duty cycle
        applies to the remaining time; sleep absorbs the rest.  Raises when
        the requested traffic exceeds the channel (fractions > 1).
        """
        if tx_packets_per_s < 0.0 or rx_packets_per_s < 0.0:
            raise ValueError("packet rates must be >= 0")
        air = self.packet_airtime_s
        tx = tx_packets_per_s * air
        rx = rx_packets_per_s * air
        if tx + rx > 1.0:
            raise ValueError(
                f"offered traffic needs {tx + rx:.2f}× the channel capacity"
            )
        remaining = 1.0 - tx - rx
        listen = remaining * self.listen_duty_cycle
        sleep = remaining - listen
        p = self.profile
        avg = (
            tx * p.tx_mw + rx * p.rx_mw + listen * p.listen_mw + sleep * p.sleep_mw
        )
        return RadioEnergyBreakdown(
            tx=tx, rx=rx, listen=listen, sleep=sleep, average_power_mw=avg
        )

    def average_power_mw(
        self, tx_packets_per_s: float, rx_packets_per_s: float
    ) -> float:
        return self.occupancy(tx_packets_per_s, rx_packets_per_s).average_power_mw

    def energy_joules(
        self,
        tx_packets_per_s: float,
        rx_packets_per_s: float,
        duration_s: float,
    ) -> float:
        """Radio energy over *duration_s* seconds."""
        if duration_s < 0.0:
            raise ValueError("duration must be >= 0")
        return (
            self.average_power_mw(tx_packets_per_s, rx_packets_per_s)
            * duration_s
            / 1000.0
        )

    def max_packet_rate(self) -> float:
        """Channel saturation rate (packets/s at 100 % airtime)."""
        return 1.0 / self.packet_airtime_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DutyCycledRadio({self.profile.name}, "
            f"duty={self.listen_duty_cycle:g}, "
            f"payload={self.payload_bytes}B)"
        )
