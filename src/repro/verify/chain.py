"""Chain-level preflight: communicating classes of the tangible graph.

When a reachability template already exists — a
:class:`~repro.petri.ctmc_export.GSPNSolver` explored the net, or a
:class:`~repro.markov.ctmc.CTMC` was assembled — classifying its strongly
connected components is a single ``O(states + edges)`` pass, and it turns
the solvers' "likely reducible" guesses into precise diagnoses:

- **dead states** (no outgoing edge): absorbing deadlocks; a steady-state
  sweep over such a chain either fails numerically or silently reports
  the deadlock distribution;
- **multiple closed classes**: the stationary distribution is not unique —
  direct solvers raise ``singular``, iterative ones stall or converge to
  an arbitrary mixture;
- **transient states** with one closed class: harmless for steady state
  (their stationary probability is exactly 0) but worth a note, since
  steady metrics then ignore part of the model.

The classification itself is solver-agnostic; :func:`classify_states`
takes bare edge arrays, and the lint layer maps the verdicts onto
``CH0xx`` diagnostics with marking names as subjects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse.csgraph import connected_components

from repro.verify.diagnostics import Diagnostic, Severity

__all__ = [
    "ChainClassification",
    "chain_diagnostics",
    "classify_states",
]


@dataclass(frozen=True)
class ChainClassification:
    """Communicating-class structure of a finite chain.

    Attributes
    ----------
    n_states:
        Number of states classified.
    classes:
        Strongly connected components as tuples of state indices.
    closed_classes:
        Indices into :attr:`classes` of the *closed* (recurrent)
        components — no edge leaves them.  A chain has a unique
        stationary distribution iff exactly one class is closed.
    dead_states:
        States with no outgoing edge at all (absorbing deadlocks); always
        singleton closed classes.
    transient_states:
        States in non-closed classes — left forever with probability 1.
    """

    n_states: int
    classes: Tuple[Tuple[int, ...], ...]
    closed_classes: Tuple[int, ...]
    dead_states: Tuple[int, ...]
    transient_states: Tuple[int, ...]

    @property
    def is_irreducible(self) -> bool:
        """Single communicating class (hence a unique stationary vector)."""
        return len(self.classes) == 1

    @property
    def has_unique_stationary(self) -> bool:
        """Exactly one closed class: ``pi Q = 0`` has one normalised root."""
        return len(self.closed_classes) == 1

    def closed_members(self) -> List[Tuple[int, ...]]:
        """The closed classes themselves (tuples of state indices)."""
        return [self.classes[i] for i in self.closed_classes]


def classify_states(
    n_states: int,
    rows: Sequence[int],
    cols: Sequence[int],
) -> ChainClassification:
    """Classify a chain given its off-diagonal edge list.

    Parameters
    ----------
    n_states:
        State count.
    rows, cols:
        Source/target state indices of the directed edges (duplicates
        fine; self-loops ignored).
    """
    if n_states <= 0:
        raise ValueError(f"n_states must be >= 1, got {n_states}")
    rows = np.asarray(rows, dtype=np.intp)
    cols = np.asarray(cols, dtype=np.intp)
    adj = sparse.coo_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(n_states, n_states)
    ).tocsr()
    n_comp, labels = connected_components(
        adj, directed=True, connection="strong"
    )
    members: List[List[int]] = [[] for _ in range(n_comp)]
    for state, comp in enumerate(labels):
        members[comp].append(state)

    open_comps = set()
    has_out = np.zeros(n_states, dtype=bool)
    for s, t in zip(rows, cols):
        if s != t:
            has_out[s] = True
            if labels[s] != labels[t]:
                open_comps.add(int(labels[s]))
    closed = tuple(c for c in range(n_comp) if c not in open_comps)
    dead = tuple(int(s) for s in range(n_states) if not has_out[s])
    transient = tuple(
        s
        for c in open_comps
        for s in members[c]
    )
    return ChainClassification(
        n_states=n_states,
        classes=tuple(tuple(m) for m in members),
        closed_classes=closed,
        dead_states=dead,
        transient_states=tuple(sorted(transient)),
    )


def _label(labels: Optional[Sequence[object]], state: int) -> str:
    if labels is None:
        return f"state {state}"
    return repr(labels[state])


def chain_diagnostics(
    classification: ChainClassification,
    labels: Optional[Sequence[object]] = None,
    steady: bool = True,
    max_examples: int = 3,
) -> List[Diagnostic]:
    """Map a :class:`ChainClassification` onto ``CH0xx`` diagnostics.

    Parameters
    ----------
    classification:
        The verdicts to report.
    labels:
        Optional state labels (e.g. tangible
        :class:`~repro.petri.marking.Marking` objects) used as subjects,
        so a diagnosis *names the offending markings*.
    steady:
        ``True`` when the caller intends to solve steady states —
        dead markings and non-unique stationary structure are then
        errors; for purely transient use they degrade to warnings.
    max_examples:
        States/classes named per diagnostic before eliding.
    """
    diags: List[Diagnostic] = []
    hard = Severity.ERROR if steady else Severity.WARNING

    for state in classification.dead_states[:max_examples]:
        more = len(classification.dead_states) - max_examples
        suffix = (
            f" (one of {len(classification.dead_states)} dead markings)"
            if more > 0
            else ""
        )
        diags.append(
            Diagnostic(
                code="CH001",
                severity=hard,
                subject=_label(labels, state),
                message=(
                    "reachable dead marking: no firing leaves it, the "
                    f"chain absorbs here{suffix}"
                ),
                fix_hint=(
                    "add the firing that should leave this marking, or "
                    "analyse transients only"
                ),
            )
        )

    closed = classification.closed_members()
    if len(closed) >= 2:
        parts = []
        for members in closed[:max_examples]:
            parts.append(
                f"class of {_label(labels, members[0])} "
                f"({len(members)} state(s))"
            )
        more = len(closed) - max_examples
        if more > 0:
            parts.append(f"+{more} more")
        diags.append(
            Diagnostic(
                code="CH002",
                severity=hard,
                subject="chain",
                message=(
                    f"{len(closed)} closed communicating classes — no unique "
                    f"stationary distribution: " + "; ".join(parts)
                ),
                fix_hint=(
                    "the chain fragments into absorbing components; add "
                    "the transitions that reconnect them"
                ),
            )
        )
    elif classification.transient_states:
        n_t = len(classification.transient_states)
        example = _label(labels, classification.transient_states[0])
        diags.append(
            Diagnostic(
                code="CH003",
                severity=Severity.INFO,
                subject="chain",
                message=(
                    f"{n_t} transient marking(s) (e.g. {example}) carry "
                    "zero stationary probability; steady-state metrics "
                    "ignore them"
                ),
            )
        )
    return diags
