"""Typed diagnostics: the currency of the verification subsystem.

Every analyzer in :mod:`repro.verify` reports through
:class:`Diagnostic` records with **stable codes**, so tooling (CI greps,
``--strict`` gates, tests) can match on ``d.code`` instead of message
text:

- ``PN0xx`` — structural net diagnostics (incidence-matrix / graph work,
  no state space);
- ``CH0xx`` — chain-level diagnostics (tangible reachability graph / CTMC
  communicating-class analysis);
- ``SW0xx`` — sweep-configuration diagnostics (grids, metrics, backend
  truncation knobs).

The full catalogue lives in :data:`CODES` and is documented for humans in
``docs/verification.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence


__all__ = [
    "CODES",
    "Diagnostic",
    "LintReport",
    "PreflightError",
    "Severity",
]


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst.

    ``INFO`` qualifies or annotates (never fails a lint run); ``WARNING``
    flags probable modelling mistakes and unproven properties (fails only
    under ``--strict``); ``ERROR`` marks nets/configurations that cannot
    produce meaningful results (fails always, and aborts sweep preflight).
    """

    INFO = 0
    WARNING = 1
    ERROR = 2


#: Stable diagnostic-code catalogue: code -> one-line meaning.  Codes are
#: append-only; retired codes are never reused.
CODES: Dict[str, str] = {
    "PN001": "malformed structure (zero-time livelock, unbounded source)",
    "PN002": "place not provably bounded (no P-invariant cover, no capacity)",
    "PN003": "structural note (token sink, capacity-bounded source)",
    "PN004": "minimal siphon without an initially marked trap (deadlock risk)",
    "PN005": "state-space exploration incomplete (truncated at max_markings)",
    "PN006": "invariant search truncated (budget hit; family may be partial)",
    "PN007": "equal-priority immediate conflict with all-default weights",
    "PN008": "non-free-choice immediate conflict (confusion risk)",
    "PN009": "dead transition (never fires)",
    "PN010": "proof qualification (inhibitors/guards/capacities/arc weights)",
    "CH001": "reachable dead marking (absorbing deadlock state)",
    "CH002": "multiple closed communicating classes (no unique steady state)",
    "CH003": "transient markings present (chain leaves them forever)",
    "SW001": "sweep grid value unusable (non-positive or non-finite rate)",
    "SW002": "phase-type truncation unmonitored (truncation_mass not swept)",
}


@dataclass(frozen=True)
class Diagnostic:
    """One verification finding.

    Attributes
    ----------
    code:
        Stable identifier from :data:`CODES` (``PN0xx``/``CH0xx``/``SW0xx``).
    severity:
        :class:`Severity` of the finding.
    subject:
        The net element or configuration item the finding is about — a
        place, transition, marking repr, axis name, or ``"net"``.
    message:
        Human-readable statement of the problem.
    fix_hint:
        Actionable next step (may be empty).
    """

    code: str
    severity: Severity
    subject: str
    message: str
    fix_hint: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(
                f"unknown diagnostic code {self.code!r} "
                f"(catalogue: {sorted(CODES)})"
            )

    def render(self) -> str:
        """One display line: ``CODE severity subject: message (hint)``."""
        hint = f"  [{self.fix_hint}]" if self.fix_hint else ""
        return (
            f"{self.code} {self.severity.name.lower():7s} "
            f"{self.subject}: {self.message}{hint}"
        )


@dataclass
class LintReport:
    """The outcome of a lint or preflight pass.

    Attributes
    ----------
    diagnostics:
        Findings, worst first (sorted on access by severity then code).
    facts:
        Positive statements the analyzers *proved* (bounds, invariants,
        deadlock freedom) — rendered above the findings so a clean run
        still says what was verified rather than printing nothing.
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)
    facts: List[str] = field(default_factory=list)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.sorted())

    def __len__(self) -> int:
        return len(self.diagnostics)

    def sorted(self) -> List[Diagnostic]:
        return sorted(
            self.diagnostics, key=lambda d: (-int(d.severity), d.code, d.subject)
        )

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.sorted() if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.by_severity(Severity.INFO)

    @property
    def ok(self) -> bool:
        """No errors (warnings and infos allowed)."""
        return not self.errors

    def codes(self) -> List[str]:
        """The distinct codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def extend(self, diagnostics: Sequence[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def render(self, title: str = "lint report") -> str:
        """Multi-line human-readable report."""
        lines = [title, "-" * len(title)]
        for fact in self.facts:
            lines.append(f"proved  {fact}")
        if self.facts and self.diagnostics:
            lines.append("")
        for d in self.sorted():
            lines.append(d.render())
        if not self.diagnostics:
            lines.append("no findings")
        n_e, n_w, n_i = len(self.errors), len(self.warnings), len(self.infos)
        lines.append("")
        lines.append(
            f"{n_e} error(s), {n_w} warning(s), {n_i} note(s)"
        )
        return "\n".join(lines)


class PreflightError(ValueError):
    """A sweep was aborted by its verification preflight.

    Subclasses ``ValueError`` so existing CLI error handling (``error:
    ... exit 2``) and caller ``except`` clauses catch it without change.
    Carries the full :class:`LintReport` as :attr:`report`; the message
    summarises the error-severity findings.
    """

    def __init__(self, report: LintReport) -> None:
        self.report = report
        errors = report.errors
        detail = "; ".join(
            f"{d.code} {d.subject}: {d.message}" for d in errors[:3]
        )
        more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
        super().__init__(
            f"sweep preflight failed with {len(errors)} error(s): "
            f"{detail}{more} — fix the model or pass preflight=False "
            f"(--no-preflight) to run anyway"
        )
