"""The lint driver: run analyzers, collect diagnostics, gate sweeps.

Two entry points:

- :func:`lint_net` — lint one net at a chosen *level*:

  - ``"quick"`` — incidence-matrix work only: malformed structure
    (PN001/PN003), structural boundedness via P-invariant coverage and
    capacities (PN002/PN006), immediate-conflict hygiene (PN007/PN008),
    structurally dead transitions (PN009);
  - ``"standard"`` (default) — adds the siphon/trap deadlock-freedom
    check (PN004) and the proof-qualification notes (PN010).  Still
    **zero reachability exploration** — milliseconds at any marking
    count;
  - ``"deep"`` — additionally explores the state space (bounded by
    *max_markings*) and classifies the chain: dead markings (CH001),
    closed communicating classes (CH002/CH003), behaviourally dead
    transitions (PN009, exact), truncation (PN005).

- :func:`preflight_sweep` — the gate :class:`repro.sweep.SweepRunner`
  runs before solving (or fanning out) a grid.  For GSPN backends the
  reachability template already exists, so the chain-level checks are
  *free*; grid values are vetted (SW001) and the phase-type truncation
  knob is cross-referenced (SW002).  Error-severity findings abort the
  sweep via :class:`~repro.verify.diagnostics.PreflightError` before any
  point is solved or any worker receives a template.
"""

from __future__ import annotations

import math
from typing import Any, List, Mapping, Optional, Sequence, Tuple

from repro.petri.analysis import ReachabilityOptions, explore_reachability
from repro.petri.invariants import p_invariants_detailed
from repro.petri.net import PetriNet
from repro.petri.structural import (
    commoner_check,
    immediate_conflicts,
    structurally_dead_transitions,
    _skeleton_qualifications,
)
from repro.verify.chain import chain_diagnostics, classify_states
from repro.verify.diagnostics import (
    Diagnostic,
    LintReport,
    PreflightError,
    Severity,
)

__all__ = [
    "LINT_LEVELS",
    "lint_net",
    "preflight_sweep",
]

#: Recognised lint levels, cheapest first.
LINT_LEVELS = ("quick", "standard", "deep")

#: Exploration cap of the deep level (deliberately below the solver
#: default: lint should stay interactive even on a mis-modelled net).
DEEP_MAX_MARKINGS = 50_000


# --------------------------------------------------------------------- #
# structural passes
# --------------------------------------------------------------------- #
def _structure_diagnostics(net: PetriNet) -> List[Diagnostic]:
    """PN001 (malformed) / PN003 (notes) from the raw arc structure."""
    diags: List[Diagnostic] = []
    compiled = net.compile()
    if not compiled.place_names or not compiled.transitions:
        diags.append(
            Diagnostic(
                code="PN001",
                severity=Severity.ERROR,
                subject="net",
                message="net has no places or no transitions",
                fix_hint="a model needs at least one of each",
            )
        )
        return diags
    for ti, trans in enumerate(compiled.transitions):
        inputs = compiled.inputs[ti]
        outputs = compiled.outputs[ti]
        unconstrained = (
            not inputs
            and not compiled.inhibitors[ti]
            and trans.guard is None
        )
        if trans.is_immediate and not inputs:
            diags.append(
                Diagnostic(
                    code="PN001",
                    severity=Severity.ERROR,
                    subject=trans.name,
                    message=(
                        "immediate transition without input arcs fires in "
                        "an infinite zero-time loop"
                    ),
                    fix_hint="give it an input arc or make it timed",
                )
            )
        elif unconstrained:
            all_capped = outputs and all(
                compiled.capacities[p] >= 0 for p, _ in outputs
            )
            if all_capped:
                diags.append(
                    Diagnostic(
                        code="PN003",
                        severity=Severity.INFO,
                        subject=trans.name,
                        message=(
                            "source transition (no input arcs); bounded "
                            "only by the capacities of its output places"
                        ),
                    )
                )
            else:
                diags.append(
                    Diagnostic(
                        code="PN001",
                        severity=Severity.ERROR,
                        subject=trans.name,
                        message=(
                            "always-enabled source transition feeding an "
                            "uncapacitated place: the state space is "
                            "unbounded"
                        ),
                        fix_hint=(
                            "add an input/inhibitor arc, a guard, or a "
                            "capacity on its output places"
                        ),
                    )
                )
        if trans.is_immediate and inputs and set(inputs) == set(outputs):
            diags.append(
                Diagnostic(
                    code="PN001",
                    severity=Severity.ERROR,
                    subject=trans.name,
                    message=(
                        "immediate transition leaves the marking unchanged "
                        "(zero-time livelock)"
                    ),
                    fix_hint="remove it or make it change the marking",
                )
            )
        if not outputs:
            diags.append(
                Diagnostic(
                    code="PN003",
                    severity=Severity.INFO,
                    subject=trans.name,
                    message="token sink (no output arcs): tokens leave the net here",
                )
            )
    return diags


def _boundedness_diagnostics(
    net: PetriNet,
) -> Tuple[List[Diagnostic], List[str]]:
    """PN002/PN006 plus the proven invariant and bound facts."""
    diags: List[Diagnostic] = []
    facts: List[str] = []
    compiled = net.compile()
    names = compiled.place_names
    m0 = compiled.initial_marking
    search = p_invariants_detailed(net)

    bounds = {}
    for i, name in enumerate(names):
        cap = int(compiled.capacities[i])
        bounds[name] = (cap, "capacity") if cap >= 0 else None
    for inv in search.invariants:
        total = sum(w * int(m0[names.index(p)]) for p, w in inv.items())
        terms = " + ".join(
            (f"{w}*{p}" if w != 1 else p) for p, w in inv.items()
        )
        facts.append(f"P-invariant: {terms} = {total}")
        for p, w in inv.items():
            bound = total // w
            if bounds[p] is None or bound < bounds[p][0]:
                bounds[p] = (bound, "invariant")

    covered = {p: b for p, b in bounds.items() if b is not None}
    if covered:
        worst = max(b for b, _ in covered.values())
        ones = sum(1 for b, _ in covered.values() if b <= 1)
        detail = (
            f"{ones} of them 1-bounded; worst bound {worst}"
            if 0 < ones < len(covered)
            else (
                f"every place {'1-bounded' if worst <= 1 else f'<= {worst} tokens'}"
            )
        )
        head = (
            f"all {len(names)} places"
            if len(covered) == len(names)
            else f"{len(covered)} of {len(names)} places"
        )
        facts.append(f"{head} structurally bounded ({detail})")
    if len(covered) != len(names):
        for name in names:
            if bounds[name] is None:
                diags.append(
                    Diagnostic(
                        code="PN002",
                        severity=Severity.WARNING,
                        subject=name,
                        message=(
                            "not covered by any semi-positive P-invariant "
                            "and no capacity declared: boundedness is "
                            "unproven (the place may still be bounded "
                            "behaviourally)"
                        ),
                        fix_hint=(
                            "declare a capacity, or verify with "
                            "lint level 'deep' (explores the state space)"
                        ),
                    )
                )
    if search.truncated:
        diags.append(
            Diagnostic(
                code="PN006",
                severity=Severity.WARNING,
                subject="net",
                message=(
                    "P-invariant combination search truncated after "
                    f"{search.candidates_tried} candidates (basis size "
                    f"{search.basis_size}); missing coverage proves nothing"
                ),
                fix_hint="raise the budget via p_invariants_detailed(budget=...)",
            )
        )
    return diags, facts


def _conflict_diagnostics(net: PetriNet) -> List[Diagnostic]:
    """PN007/PN008 immediate-conflict hygiene."""
    diags: List[Diagnostic] = []
    for conflict in immediate_conflicts(net):
        competitors = ", ".join(conflict.transitions)
        if conflict.untied_default_weights:
            diags.append(
                Diagnostic(
                    code="PN007",
                    severity=Severity.WARNING,
                    subject=conflict.place,
                    message=(
                        f"immediates {{{competitors}}} compete at priority "
                        f"{conflict.priority} with every weight at the 1.0 "
                        "default — the conflict resolves as a uniform "
                        "split the model probably never chose"
                    ),
                    fix_hint=(
                        "set explicit weights, or separate the competitors "
                        "by priority"
                    ),
                )
            )
        if not conflict.free_choice:
            diags.append(
                Diagnostic(
                    code="PN008",
                    severity=Severity.WARNING,
                    subject=conflict.place,
                    message=(
                        f"immediates {{{competitors}}} form a "
                        "non-free-choice conflict (their enabling depends "
                        "on other places): confusion — the winner depends "
                        "on firing order, not only on weights"
                    ),
                    fix_hint=(
                        "restructure so competing immediates share exactly "
                        "one input place, or separate them by priority"
                    ),
                )
            )
    return diags


def _dead_transition_diagnostics(net: PetriNet) -> List[Diagnostic]:
    """PN009 — transitions provably unable to ever fire."""
    return [
        Diagnostic(
            code="PN009",
            severity=Severity.WARNING,
            subject=name,
            message=(
                "structurally dead: its input places can never all be "
                "marked from the initial marking"
            ),
            fix_hint="remove the transition or fix the token flow into it",
        )
        for name in structurally_dead_transitions(net)
    ]


def _commoner_diagnostics(
    net: PetriNet,
) -> Tuple[List[Diagnostic], List[str]]:
    """PN004 deadlock risks, or the deadlock-freedom fact."""
    diags: List[Diagnostic] = []
    facts: List[str] = []
    result = commoner_check(net)
    if result.holds:
        n = len(result.siphons.sets)
        qualifier = (
            " (for the skeleton: see the PN010 notes)"
            if result.qualifications
            else ""
        )
        facts.append(
            f"deadlock-free by Commoner's condition: every one of the "
            f"{n} minimal siphons contains an initially marked "
            f"trap{qualifier}"
        )
    else:
        for siphon in result.unmarked_siphons:
            members = ", ".join(sorted(siphon))
            diags.append(
                Diagnostic(
                    code="PN004",
                    severity=Severity.WARNING,
                    subject=f"{{{members}}}",
                    message=(
                        "minimal siphon without an initially marked trap: "
                        "once these places empty together they stay "
                        "empty — a structural deadlock risk"
                    ),
                    fix_hint=(
                        "mark a trap inside the siphon initially, or add "
                        "a refilling transition"
                    ),
                )
            )
        if not result.siphons.complete:
            diags.append(
                Diagnostic(
                    code="PN006",
                    severity=Severity.WARNING,
                    subject="net",
                    message=(
                        "minimal-siphon search hit its node budget after "
                        f"{result.siphons.nodes_expanded} nodes; the "
                        "deadlock-freedom verdict is unavailable"
                    ),
                    fix_hint="raise the budget via commoner_check(budget=...)",
                )
            )
    return diags, facts


def _qualification_diagnostics(net: PetriNet) -> List[Diagnostic]:
    """PN010 — features limiting structural proofs to the skeleton."""
    return [
        Diagnostic(
            code="PN010",
            severity=Severity.INFO,
            subject="net",
            message=qualification,
        )
        for qualification in _skeleton_qualifications(net)
    ]


def _exploration_diagnostics(
    net: PetriNet, max_markings: int, steady: bool = True
) -> Tuple[List[Diagnostic], List[str]]:
    """Deep level: explore, then PN005/PN009/CH00x from the real graph."""
    diags: List[Diagnostic] = []
    facts: List[str] = []
    graph = explore_reachability(
        net, ReachabilityOptions(max_markings=max_markings)
    )
    if not graph.complete:
        diags.append(
            Diagnostic(
                code="PN005",
                severity=Severity.WARNING,
                subject="net",
                message=(
                    f"state space exceeded {max_markings} markings; "
                    "exploration truncated, chain-level verdicts "
                    "unavailable (the net may be unbounded)"
                ),
                fix_hint="raise max_markings, or bound the net",
            )
        )
        return diags, facts

    bound = max(
        (int(m.counts.max(initial=0)) for m in graph.markings), default=0
    )
    facts.append(
        f"state space explored completely: {graph.n_markings} markings, "
        f"{bound}-bounded"
    )
    for name in graph.dead_transitions():
        diags.append(
            Diagnostic(
                code="PN009",
                severity=Severity.WARNING,
                subject=name,
                message="never enabled in any reachable marking",
                fix_hint="remove the transition or fix the token flow into it",
            )
        )
    rows = []
    cols = []
    for mi, edges in enumerate(graph.edges_out):
        for e in edges:
            rows.append(mi)
            cols.append(e.target)
    classification = classify_states(graph.n_markings, rows, cols)
    chain = chain_diagnostics(
        classification, labels=graph.markings, steady=steady
    )
    diags.extend(chain)
    if not any(d.code.startswith("CH") for d in chain):
        facts.append(
            "chain is irreducible on the reachable markings: a unique "
            "stationary distribution exists"
        )
    return diags, facts


# --------------------------------------------------------------------- #
# entry points
# --------------------------------------------------------------------- #
def lint_net(
    net: PetriNet,
    level: str = "standard",
    max_markings: int = DEEP_MAX_MARKINGS,
) -> LintReport:
    """Lint one net; see the module docstring for what each level runs.

    Parameters
    ----------
    net:
        The net to analyse (any EDSPN — timed-transition distributions
        are irrelevant to the structural levels).
    level:
        ``"quick"``, ``"standard"`` (default) or ``"deep"``.
    max_markings:
        Exploration cap of the deep level; ignored below it.

    Returns
    -------
    LintReport
        Findings plus the positive facts the analyzers proved.
    """
    if level not in LINT_LEVELS:
        raise ValueError(
            f"level must be one of {LINT_LEVELS}, got {level!r}"
        )
    report = LintReport()
    report.extend(_structure_diagnostics(net))
    bound_diags, bound_facts = _boundedness_diagnostics(net)
    report.extend(bound_diags)
    report.facts.extend(bound_facts)
    report.extend(_conflict_diagnostics(net))
    report.extend(_dead_transition_diagnostics(net))
    if level in ("standard", "deep"):
        commoner_diags, commoner_facts = _commoner_diagnostics(net)
        report.extend(commoner_diags)
        report.facts.extend(commoner_facts)
        report.extend(_qualification_diagnostics(net))
    if level == "deep":
        deep_diags, deep_facts = _exploration_diagnostics(net, max_markings)
        report.extend(deep_diags)
        report.facts.extend(deep_facts)
    return report


def _wants_steady_metrics(metrics: Sequence[Any]) -> bool:
    """True when at least one *string* metric is a steady-state kind.

    Callable metrics are opaque — they do not escalate chain findings to
    errors (permissive by design).
    """
    from repro.sweep.backends.base import parse_metric_spec

    for metric in metrics:
        if isinstance(metric, str):
            try:
                if not parse_metric_spec(metric).is_transient:
                    return True
            except ValueError:
                continue  # malformed specs fail later, with their own error
    return False


def _grid_value_diagnostics(
    points: Sequence[Mapping[str, float]], what: str
) -> List[Diagnostic]:
    """SW001 — non-positive / non-finite values on any axis."""
    diags: List[Diagnostic] = []
    flagged: set = set()
    for point in points:
        for axis, value in point.items():
            if axis in flagged:
                continue
            v = float(value)
            if not math.isfinite(v) or v <= 0.0:
                flagged.add(axis)
                diags.append(
                    Diagnostic(
                        code="SW001",
                        severity=Severity.ERROR,
                        subject=axis,
                        message=(
                            f"grid value {v!r} is not a usable {what} "
                            "(must be finite and > 0)"
                        ),
                        fix_hint="fix the axis spec before sweeping",
                    )
                )
    return diags


def preflight_sweep(
    model: Any,
    points: Sequence[Mapping[str, float]],
    metrics: Sequence[Any],
) -> LintReport:
    """Verify a sweep configuration before any point is solved.

    Dispatches on the backend type:

    - **GSPN backends** — the reachability template already exists, so
      the chain-level classification (CH001/CH002/CH003) costs one
      linear pass over the rate template; immediate-conflict hygiene
      (PN007/PN008) and grid-rate vetting (SW001) ride along.  Dead
      markings and fragmented chains are errors when a steady-state
      metric is requested, warnings otherwise (transient sweeps over
      absorbing chains are legitimate).
    - **CPU-parameter backends** (phase-type, renewal) — grid values are
      vetted (SW001); the phase-type queue truncation is cross-referenced
      (SW002) when ``truncation_mass`` is not monitored.
    - anything else — no opinion (custom backends lint themselves).

    Returns the report; *callers* decide whether to raise — the sweep
    runner aborts on error-severity findings via
    :class:`~repro.verify.diagnostics.PreflightError`.
    """
    from repro.sweep.backends import GSPNBackend, PhaseTypeBackend
    from repro.sweep.backends.base import CPUParamsAxesMixin

    report = LintReport()
    steady = _wants_steady_metrics(metrics)

    if isinstance(model, GSPNBackend):
        solver = model.solver
        report.extend(_conflict_diagnostics(solver.net))
        rows, cols = solver.tangible_edges()
        classification = classify_states(solver.n, rows, cols)
        report.extend(
            chain_diagnostics(
                classification, labels=solver.markings, steady=steady
            )
        )
        for name in solver.graph.dead_transitions():
            report.diagnostics.append(
                Diagnostic(
                    code="PN009",
                    severity=Severity.WARNING,
                    subject=name,
                    message="never enabled in any reachable marking",
                )
            )
        report.extend(_grid_value_diagnostics(points, "exponential rate"))
    elif isinstance(model, CPUParamsAxesMixin):
        report.extend(_grid_value_diagnostics(points, "CPU parameter"))
        if isinstance(model, PhaseTypeBackend):
            monitored = any(
                isinstance(m, str) and m.startswith("truncation_mass")
                for m in metrics
            )
            if not monitored:
                from repro.sweep.backends.base import resolve_cpu_axis

                axes = {
                    resolve_cpu_axis(a) for p in points[:1] for a in p
                }
                severity = (
                    Severity.WARNING
                    if "arrival_rate" in axes
                    else Severity.INFO
                )
                report.diagnostics.append(
                    Diagnostic(
                        code="SW002",
                        severity=severity,
                        subject="n_max",
                        message=(
                            f"the queue is truncated at n_max="
                            f"{model.n_max} and no 'truncation_mass' "
                            "metric is swept; truncation error goes "
                            "unmonitored"
                            + (
                                " (and the swept arrival rate grows it)"
                                if severity is Severity.WARNING
                                else ""
                            )
                        ),
                        fix_hint=(
                            "add --metric truncation_mass, or raise "
                            "--n-max for the heaviest grid point"
                        ),
                    )
                )
    return report


def raise_on_errors(report: LintReport) -> None:
    """Raise :class:`PreflightError` when *report* carries errors."""
    if not report.ok:
        raise PreflightError(report)
