"""Structural verification & model lint: diagnose nets *before* you pay
for state spaces.

The subsystem has three layers:

- **structural analyzers** (:mod:`repro.petri.structural`,
  :mod:`repro.petri.invariants`) — pure incidence-matrix/graph work:
  minimal siphons and traps, Commoner's deadlock-freedom condition,
  P-invariant boundedness, dead transitions, immediate-conflict
  detection.  Milliseconds at any state-space size;
- **chain-level preflight** (:mod:`repro.verify.chain`) — when a
  reachability template already exists, one strongly-connected-component
  pass classifies absorbing/transient structure and names the offending
  markings;
- **the lint driver** (:mod:`repro.verify.lint`,
  :mod:`repro.verify.diagnostics`) — typed :class:`Diagnostic` records
  with stable ``PN0xx``/``CH0xx``/``SW0xx`` codes, a
  :func:`lint_net` API and CLI (``repro-experiments lint``), and
  :func:`preflight_sweep`, which :class:`~repro.sweep.runner.SweepRunner`
  runs before solving or fanning out a grid.

See ``docs/verification.md`` for the code catalogue and examples.
"""

from repro.verify.chain import (
    ChainClassification,
    chain_diagnostics,
    classify_states,
)
from repro.verify.diagnostics import (
    CODES,
    Diagnostic,
    LintReport,
    PreflightError,
    Severity,
)
from repro.verify.lint import (
    LINT_LEVELS,
    lint_net,
    preflight_sweep,
    raise_on_errors,
)

__all__ = [
    "CODES",
    "ChainClassification",
    "Diagnostic",
    "LINT_LEVELS",
    "LintReport",
    "PreflightError",
    "Severity",
    "chain_diagnostics",
    "classify_states",
    "lint_net",
    "preflight_sweep",
    "raise_on_errors",
]
