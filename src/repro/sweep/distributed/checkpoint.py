"""Row-level checkpointing for distributed sweeps.

The coordinator appends every completed row to a JSONL file as it
arrives, so an interrupted sweep (coordinator crash, every worker lost,
Ctrl-C) resumes from what finished instead of restarting.  The format is
deliberately plain text:

- line 1 — header::

    {"kind": "header", "version": 1, "fingerprint": "<sha256>",
     "axis_names": [...], "metric_names": [...], "n_points": N}

- then one line per completed row, in completion (not grid) order::

    {"kind": "row", "index": 17, "values": [0.4, 1.2]}
    {"kind": "row", "index": 18, "values": [NaN, NaN],
     "error": {"stage": "solve", "error_type": "ConvergenceError", ...}}

- plus one line per worker death blamed on a point::

    {"kind": "requeue", "index": 5}

  Requeue counts survive resumes, so a point that deterministically
  crashes its worker converges to a poison verdict (NaN row) across
  restarts instead of re-killing the fleet forever.

The fingerprint hashes the axis names, metric names, every grid point,
and the model's type + description, so a checkpoint is only ever resumed
against the *same* sweep; a mismatch raises instead of silently merging
incompatible tables.
Floats round-trip exactly (JSON uses ``repr``), so a resumed table is
bit-identical to an uninterrupted run.  A torn final line (the
interruption happened mid-write) is ignored on load.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, TextIO, Tuple, Union

from repro.sweep.results import PointFailure

__all__ = ["CheckpointMismatchError", "SweepCheckpoint", "sweep_fingerprint"]

CHECKPOINT_VERSION = 1


class CheckpointMismatchError(ValueError):
    """The checkpoint on disk belongs to a different sweep."""


def sweep_fingerprint(
    axis_names: Sequence[str],
    metric_names: Sequence[str],
    points: Sequence[Mapping[str, float]],
    model: Optional[object] = None,
) -> str:
    """Content hash identifying one sweep (axes, metrics, every point).

    When *model* is given its type and one-line description (state count,
    solver, truncation level…) join the hash, so a checkpoint written
    against ``--buffer 10`` refuses to resume a ``--buffer 20`` sweep
    whose grid happens to look identical.  The description — not the
    pickle — is hashed: pickle bytes can vary across processes (set
    iteration order under hash randomisation), which would break every
    cross-process resume.
    """
    digest = hashlib.sha256()
    payload = {
        "axis_names": list(axis_names),
        "metric_names": list(metric_names),
        "points": [[float(p[a]) for a in axis_names] for p in points],
    }
    if model is not None:
        describe = getattr(model, "describe", None)
        payload["model"] = (
            f"{type(model).__name__}: "
            f"{describe() if callable(describe) else ''}"
        )
    digest.update(json.dumps(payload, separators=(",", ":")).encode())
    return digest.hexdigest()


class SweepCheckpoint:
    """Append-only JSONL journal of completed sweep rows.

    Parameters
    ----------
    path:
        Journal location; parent directories are created on first write.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: Optional[TextIO] = None

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def load(
        self,
        axis_names: Sequence[str],
        metric_names: Sequence[str],
        points: Sequence[Mapping[str, float]],
        model: Optional[object] = None,
    ) -> Tuple[
        Dict[int, List[float]], Dict[int, PointFailure], Dict[int, int]
    ]:
        """Validate the journal against this sweep and return its state.

        Returns ``(rows, errors, requeues)`` keyed by point index — all
        empty when the file does not exist yet.  Raises
        :class:`CheckpointMismatchError` when the header does not match
        the sweep being run (different grid, metrics, axis order, or
        model — see :func:`sweep_fingerprint`).
        """
        if not self.path.exists():
            return {}, {}, {}
        want = sweep_fingerprint(axis_names, metric_names, points, model)
        rows: Dict[int, List[float]] = {}
        errors: Dict[int, PointFailure] = {}
        requeues: Dict[int, int] = {}
        with self.path.open() as fh:
            lines = fh.read().splitlines()
        if not lines:
            return {}, {}, {}
        header = self._decode(lines[0], line_no=1, last=len(lines) == 1)
        if header is None:
            # the journal died mid-write of its very first line: no
            # state was ever recorded — treat as empty, not corrupt
            return {}, {}, {}
        if header.get("kind") != "header":
            raise CheckpointMismatchError(
                f"{self.path} does not start with a checkpoint header"
            )
        if header.get("fingerprint") != want:
            raise CheckpointMismatchError(
                f"{self.path} belongs to a different sweep "
                f"(axes {header.get('axis_names')}, metrics "
                f"{header.get('metric_names')}, {header.get('n_points')} "
                "points); delete it or point --checkpoint elsewhere"
            )
        for line_no, line in enumerate(lines[1:], start=2):
            record = self._decode(line, line_no, last=line_no == len(lines))
            if record is None:  # torn final line
                continue
            kind = record.get("kind")
            if kind not in ("row", "requeue"):
                raise CheckpointMismatchError(
                    f"{self.path}:{line_no}: unexpected record kind {kind!r}"
                )
            index = int(record["index"])
            if not 0 <= index < len(points):
                raise CheckpointMismatchError(
                    f"{self.path}:{line_no}: row index {index} outside the "
                    f"{len(points)}-point grid"
                )
            if kind == "requeue":
                requeues[index] = requeues.get(index, 0) + 1
                continue
            rows[index] = [float(v) for v in record["values"]]
            if record.get("error") is not None:
                errors[index] = PointFailure.from_dict(record["error"])
            else:
                errors.pop(index, None)
        return rows, errors, requeues

    def _decode(self, line: str, line_no: int, last: bool) -> Optional[dict]:
        try:
            return json.loads(line)
        except json.JSONDecodeError:
            if last:  # interrupted mid-append: drop the torn line
                return None
            raise CheckpointMismatchError(
                f"{self.path}:{line_no}: corrupt checkpoint line"
            ) from None

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def open_for_append(
        self,
        axis_names: Sequence[str],
        metric_names: Sequence[str],
        points: Sequence[Mapping[str, float]],
        has_state: bool,
        model: Optional[object] = None,
    ) -> None:
        """Open the journal, writing the header if it is new/empty.

        *has_state* is whether :meth:`load` recovered anything — rows
        **or** requeue blame counts.  A journal holding only requeue
        records must be appended to, not truncated: losing the counts
        would reset poison convergence on every resume.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not (has_state and self.path.exists())
        if not fresh:
            self._trim_torn_tail()
        self._fh = self.path.open("w" if fresh else "a")
        if fresh:
            self._append(
                {
                    "kind": "header",
                    "version": CHECKPOINT_VERSION,
                    "fingerprint": sweep_fingerprint(
                        axis_names, metric_names, points, model
                    ),
                    "axis_names": list(axis_names),
                    "metric_names": list(metric_names),
                    "n_points": len(points),
                }
            )

    def _trim_torn_tail(self) -> None:
        """Drop a torn (unterminated) final line before appending.

        :meth:`load` tolerates the torn line by skipping it; appending
        *onto* it would weld two records into one corrupt mid-file line
        and poison every later resume.
        """
        data = self.path.read_bytes()
        if data and not data.endswith(b"\n"):
            keep = data.rfind(b"\n") + 1
            with self.path.open("rb+") as fh:
                fh.truncate(keep)

    def append_row(
        self,
        index: int,
        values: Sequence[float],
        error: Optional[PointFailure] = None,
    ) -> None:
        """Journal one completed row (flushed immediately)."""
        record: Dict[str, object] = {
            "kind": "row",
            "index": int(index),
            "values": [float(v) for v in values],
        }
        if error is not None:
            record["error"] = error.to_dict()
        self._append(record)

    def append_requeue(self, index: int) -> None:
        """Journal one worker-death blame on *index* (counts survive
        resumes, so deterministic killer points eventually poison)."""
        self._append({"kind": "requeue", "index": int(index)})

    def _append(self, record: Mapping[str, object]) -> None:
        assert self._fh is not None, "checkpoint not opened for append"
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
