"""Length-prefixed pickle framing for the coordinator/worker TCP channel.

Every message is one Python object (a ``dict`` with a ``"kind"`` key)
serialised with pickle and framed as an 8-byte big-endian length prefix
followed by the payload.  Pickle is what lets the coordinator ship the
*sweep backend template itself* — a prepared
:class:`~repro.sweep.backends.base.SweepBackend` — to every worker in one
message, exactly as the in-machine process pool does through its
initializer.

Message kinds
-------------

======================  =========  ==========================================
kind                    direction  payload
======================  =========  ==========================================
``hello``               w -> c     ``version``, ``worker`` (host:pid label)
``template``            c -> w     ``model`` (backend), ``metrics``, and
                                   ``telemetry`` (bool: the coordinator runs
                                   with tracing on; ship trace segments back)
``reject``              c -> w     ``message`` — handshake refused (e.g.
                                   protocol version mismatch)
``fatal``               w -> c     ``index``, ``error_type``, ``message`` —
                                   a configuration error; aborts the sweep
``chunk``               c -> w     ``chunk_id``, ``indices``, ``points`` —
                                   one *contiguous, axis-ordered* span;
                                   ``pointwise`` (bool) forces per-point
                                   framing on a batch-capable backend (the
                                   coordinator's retry downgrade)
``telemetry``           w -> c     ``index``, ``spans``, ``counters`` — the
                                   trace segment recorded while solving that
                                   point (only when the template asked for
                                   telemetry; sent *before* the point's
                                   ``row``, so a stored row always has its
                                   spans and a requeued one never
                                   double-counts them)
``row``                 w -> c     ``index``, ``values``, optional ``error``
                                   (a ``PointFailure``) — streamed per point
``rows``                w -> c     *(v2)* ``rows`` (a list of per-row
                                   ``{index, values, error}`` payloads),
                                   ``spans`` (per-point segments keyed by
                                   index), ``counters`` — one frame per
                                   stacked ``solve_batch``; the batched
                                   backend's answer to framing-bound
                                   sub-millisecond points
``chunk_done``          w -> c     ``chunk_id``
``shutdown``            c -> w     —
======================  =========  ==========================================

The always-on service (:mod:`repro.sweep.service`) speaks the same
framing on the same port and adds two message families on top.  Client
side (one connection may carry many request/reply cycles)::

======================  =========  ==========================================
kind                    direction  payload
======================  =========  ==========================================
``request``             cl -> s    ``op`` (``sweep``/``steady``/``lint``/
                                   ``ping``/``stats``), ``model`` spec,
                                   ``axes``, ``metrics``, optional ``id``
``result``              s -> cl    the op's reply (rows, errors, stats…)
``busy``                s -> cl    queue full (or ``draining: true``) —
                                   backpressure, not failure; retry later
``error``               s -> cl    ``message``, ``code``
                                   (``bad-request``/``worker``/``internal``)
======================  =========  ==========================================

Service-worker side (persistent shards; ``hello`` carries
``role: "service-worker"``)::

======================  =========  ==========================================
kind                    direction  payload
======================  =========  ==========================================
``welcome``             s -> w     ``version``, ``capacity`` (worker-side
                                   template-LRU size), ``telemetry``
``task``                s -> w     ``task_id``, ``fingerprint``, ``metrics``,
                                   ``indices``, ``points`` — one request's
                                   (remaining) grid points
``need_template``       w -> s     ``fingerprint`` — the worker's LRU does
                                   not hold this template; the service
                                   answers with a ``template`` message
``task_done``           w -> s     ``task_id``
======================  =========  ==========================================

``template``, ``telemetry``, ``row``, ``fatal``, and ``shutdown`` are
reused with one-shot semantics; ``template`` gains a ``fingerprint``
field on the service channel so a worker can key its local LRU.

Row framing comes in two granularities.  On a backend without batch
support, rows stream back *per point*: when a worker dies mid-chunk the
coordinator knows exactly which points of that chunk finished and
requeues only the unfinished suffix, blaming the in-flight point alone.
On a batch-capable backend (protocol v2), a worker solves each stacked
batch as one block-diagonal system and ships one ``rows`` frame per
batch — sub-millisecond points stop paying two protocol messages each.
Worker death then loses at most one batch: the coordinator requeues the
whole unfinished remainder *without blaming anyone* and downgrades the
retry to pointwise framing (``chunk.pointwise``), so a genuinely
poisonous point is isolated and blamed by the per-point machinery on
the next attempt.  Both framings carry the same exactly-once telemetry:
span segments are keyed to their row (stashed until the row is stored),
so the merged run-level trace covers each stored row's solve exactly
once however many times the point was attempted.

.. warning::
   Pickle executes arbitrary code on load, so the channel is only as
   trustworthy as its peers.  The coordinator binds ``127.0.0.1`` by
   default; bind non-loopback addresses only on networks where every
   host is trusted (see ``docs/distributed.md``).
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from typing import Any, Dict

__all__ = [
    "CAPABILITIES",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "recv_message",
    "send_message",
]

#: Bumped on incompatible wire changes; the coordinator refuses
#: mismatched workers (with a ``reject`` message naming the versions).
#: v2 added the batched ``rows`` frame and the ``pointwise`` chunk flag.
PROTOCOL_VERSION = 2

#: Feature names this build speaks, advertised in the ``hello`` /
#: ``welcome`` handshake.  Capabilities travel *with* the version so a
#: rejected peer's operator sees what the other side wanted (e.g. an old
#: v1 ``worker --connect`` pointed at a batch-framing coordinator gets a
#: ``reject`` naming both versions and the missing ``rows`` capability,
#: not a mid-sweep frame error).
CAPABILITIES = ("rows",)

#: Upper bound on one frame (a template for a very large state space is
#: tens of MB; a corrupted length prefix would otherwise ask for petabytes).
MAX_FRAME_BYTES = 1 << 31

_LEN = struct.Struct(">Q")


class ProtocolError(RuntimeError):
    """A peer sent a malformed or unexpected message."""


async def send_message(writer: asyncio.StreamWriter, message: Dict[str, Any]) -> None:
    """Frame and send one message, draining the transport."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    writer.write(_LEN.pack(len(payload)) + payload)
    await writer.drain()


async def recv_message(reader: asyncio.StreamReader) -> Dict[str, Any]:
    """Receive one framed message.

    Raises
    ------
    asyncio.IncompleteReadError
        If the peer closed the connection (cleanly or not) mid-frame —
        the coordinator treats this as worker death.
    ProtocolError
        If the frame is oversized or does not decode to a ``dict`` with a
        ``"kind"`` key.
    """
    header = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            "limit (corrupt stream?)"
        )
    payload = await reader.readexactly(length)
    try:
        message = pickle.loads(payload)
    except Exception as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict) or "kind" not in message:
        raise ProtocolError(
            f"expected a message dict with a 'kind', got {type(message).__name__}"
        )
    return message
