"""The sweep coordinator: shard, dispatch, collect, survive.

:class:`SweepCoordinator` owns the authoritative state of one distributed
sweep — which points are done, which are pending, how often each has been
requeued — and serves any number of workers over an asyncio TCP server.
Scheduling is pull-based: an idle worker checks out the next pending
chunk; there is no static assignment, so a slow host simply takes fewer
chunks.

Sharding preserves the grid's axis order: pending points are split into
*contiguous* chunks (:func:`~repro.sweep.runner.contiguous_chunks`), so
iterative warm starts inside a chunk stay adjacent on the parameter grid
and the merged table is ordered exactly like the serial runner's.

Fault model
-----------

- **A point fails numerically** — the worker streams a NaN row with a
  :class:`~repro.sweep.results.PointFailure`; the sweep continues.
- **A worker dies mid-chunk** (crash, kill, network partition) — rows
  stream per point, so the coordinator requeues exactly the unfinished
  suffix of the chunk at the *front* of the queue; surviving workers pick
  it up.
- **A point keeps killing workers** — after ``max_requeues`` requeues it
  is poisoned: NaN row, ``stage="worker"`` error record, sweep continues.
- **Every worker is gone** — the supervisor aborts with
  :class:`DistributedSweepError`; completed rows are already in the
  checkpoint (when one is configured), so the next run resumes instead of
  restarting.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import socket as socket_module
from collections import deque
from dataclasses import dataclass
from typing import (
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro import obs
from repro.sweep.backends.base import Metric
from repro.sweep.distributed.checkpoint import SweepCheckpoint
from repro.sweep.distributed.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_message,
    send_message,
)
from repro.sweep.results import PointFailure
from repro.sweep.runner import contiguous_chunks

__all__ = ["DistributedSweepError", "SweepCoordinator"]

logger = logging.getLogger(__name__)

#: How often one point may be requeued after killing its worker before it
#: is poisoned (NaN row + error record) instead of retried.
DEFAULT_MAX_REQUEUES = 2


class DistributedSweepError(RuntimeError):
    """The distributed sweep cannot make progress (e.g. all workers died)."""


@dataclass
class _Chunk:
    """One contiguous span of pending grid points."""

    chunk_id: int
    indices: List[int]
    points: List[Dict[str, float]]


class SweepCoordinator:
    """Authoritative state + worker protocol handler of one sweep.

    Parameters
    ----------
    model, metrics:
        The prepared sweep backend template and metric specs shipped to
        every worker.
    points:
        All grid points in enumeration order (the row indices of the
        result table).
    done_rows, done_errors:
        Rows already completed (e.g. loaded from a checkpoint); only the
        remaining points are sharded.
    done_requeues:
        Worker-death blame counts carried over from a checkpoint, so a
        point that crashed workers in a previous run keeps its record
        and eventually poisons instead of re-killing the fleet forever.
    n_chunks:
        Target chunk count across the whole sweep (oversubscribe workers
        ~4x so pull-scheduling can balance load).
    checkpoint:
        Optional open :class:`~repro.sweep.distributed.checkpoint.SweepCheckpoint`
        to journal every completed row.
    max_requeues:
        Worker-death retries per point before poisoning it.
    """

    def __init__(
        self,
        model,
        metrics: Sequence[Metric],
        points: Sequence[Mapping[str, float]],
        *,
        n_chunks: int,
        done_rows: Optional[Dict[int, List[float]]] = None,
        done_errors: Optional[Dict[int, PointFailure]] = None,
        done_requeues: Optional[Dict[int, int]] = None,
        checkpoint: Optional[SweepCheckpoint] = None,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
    ) -> None:
        self.model = model
        self.metrics = list(metrics)
        self.points = [dict(p) for p in points]
        self.max_requeues = max_requeues
        self._checkpoint = checkpoint
        self._rows: Dict[int, List[float]] = dict(done_rows or {})
        self._errors: Dict[int, PointFailure] = dict(done_errors or {})
        self._requeues: Dict[int, int] = dict(done_requeues or {})
        self._chunk_ids = itertools.count()
        self._pending: Deque[_Chunk] = deque(
            self._shard([i for i in range(len(points)) if i not in self._rows],
                        n_chunks)
        )
        self._cond = asyncio.Condition()
        self._failure: Optional[BaseException] = None
        self._n_connected = 0
        self._n_ever_connected = 0
        # The run-level trace (if the sweep runs with telemetry active).
        # Captured here, in the runner's context, because the asyncio
        # server invokes handle_worker from the event loop's own context.
        self._trace = obs.current_trace()
        if self._trace is not None:
            if self._rows:
                # checkpoint-resumed rows count as completed so the
                # progress counters start from the resumed offset
                self._trace.incr("sweep.rows.completed", len(self._rows))
                resumed_failed = sum(1 for i in self._errors if i in self._rows)
                if resumed_failed:
                    self._trace.incr("sweep.rows.failed", resumed_failed)
            self._note_queue_depth()

    # ------------------------------------------------------------------ #
    # sharding
    # ------------------------------------------------------------------ #
    def _shard(self, remaining: List[int], n_chunks: int) -> List[_Chunk]:
        """Contiguous chunks over the remaining indices.

        After a checkpoint resume the remaining indices may have gaps;
        each maximal contiguous run is chunked separately so no chunk
        ever spans a gap (warm starts stay adjacent).
        """
        if not remaining:
            return []
        runs: List[List[int]] = [[remaining[0]]]
        for index in remaining[1:]:
            if index == runs[-1][-1] + 1:
                runs[-1].append(index)
            else:
                runs.append([index])
        chunks: List[_Chunk] = []
        total = len(remaining)
        for run in runs:
            share = max(1, round(n_chunks * len(run) / total))
            for start, stop in contiguous_chunks(len(run), share):
                indices = run[start:stop]
                chunks.append(
                    _Chunk(
                        chunk_id=next(self._chunk_ids),
                        indices=indices,
                        points=[self.points[i] for i in indices],
                    )
                )
        return chunks

    # ------------------------------------------------------------------ #
    # progress
    # ------------------------------------------------------------------ #
    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def n_completed(self) -> int:
        """Rows done so far (including checkpointed and poisoned ones)."""
        return len(self._rows)

    @property
    def n_connected(self) -> int:
        return self._n_connected

    @property
    def n_ever_connected(self) -> int:
        return self._n_ever_connected

    def _complete(self) -> bool:
        return len(self._rows) == len(self.points)

    def result_rows(
        self,
    ) -> Tuple[Dict[int, List[float]], Dict[int, PointFailure]]:
        """The merged ``index -> row`` / ``index -> failure`` maps."""
        return dict(self._rows), dict(self._errors)

    async def abort(self, exc: BaseException) -> None:
        """Fail the sweep: :meth:`wait` raises, workers get shut down."""
        async with self._cond:
            if self._failure is None:
                self._failure = exc
            self._cond.notify_all()

    async def wait(self) -> None:
        """Block until every row is in (or the sweep aborted)."""
        async with self._cond:
            await self._cond.wait_for(
                lambda: self._failure is not None or self._complete()
            )
            if self._failure is not None:
                raise DistributedSweepError(
                    f"distributed sweep failed with "
                    f"{self.n_points - self.n_completed} of {self.n_points} "
                    f"points unfinished: {self._failure}"
                ) from self._failure

    async def drain(self, timeout: float = 5.0) -> None:
        """Give connected workers time to complete the shutdown handshake.

        Called after :meth:`wait` succeeds, before the server closes —
        otherwise the final ``chunk_done``/``shutdown`` exchange races
        the teardown and healthy workers see their connection die.
        """
        async def _all_gone() -> None:
            async with self._cond:
                await self._cond.wait_for(lambda: self._n_connected == 0)

        try:
            await asyncio.wait_for(_all_gone(), timeout)
        except asyncio.TimeoutError:
            logger.warning(
                "%d worker(s) still connected after the %.1fs shutdown "
                "grace period; closing anyway",
                self._n_connected,
                timeout,
            )

    # ------------------------------------------------------------------ #
    # bookkeeping (call while holding self._cond)
    # ------------------------------------------------------------------ #
    def _note_queue_depth(self) -> None:
        if self._trace is not None:
            self._trace.gauge("dist.queue.depth", len(self._pending))

    def _store_row(
        self,
        index: int,
        values: Sequence[float],
        error: Optional[PointFailure],
    ) -> bool:
        """Record one completed row; False on duplicate delivery
        (requeue race — first write wins, telemetry must not merge)."""
        if index in self._rows:
            return False
        self._rows[index] = [float(v) for v in values]
        if error is not None:
            self._errors[index] = error
        if self._trace is not None:
            self._trace.incr("sweep.rows.completed")
            if error is not None:
                self._trace.incr("sweep.rows.failed")
        if self._checkpoint is not None:
            self._checkpoint.append_row(index, values, error)
        return True

    def _poison(self, index: int) -> None:
        count = self._requeues.get(index, 0)
        logger.warning(
            "point %d requeued %d times after killing its worker; "
            "recording a NaN row and moving on",
            index,
            count,
        )
        stored = self._store_row(
            index,
            [float("nan")] * len(self.metrics),
            PointFailure(
                index=index,
                point=self.points[index],
                stage="worker",
                error_type="WorkerDied",
                message=(
                    f"worker died on this point {count} time(s); "
                    f"gave up after max_requeues={self.max_requeues}"
                ),
            ),
        )
        if stored and self._trace is not None:
            # the worker that would have recorded this point's span died
            # with it — a synthetic zero-duration span keeps the merged
            # trace covering every grid point exactly once
            self._trace.incr("dist.points.poisoned")
            now = self._trace.now()
            self._trace.add_span(
                "sweep.point", now, now,
                index=index, stage="worker", poisoned=True,
            )

    def _pop_live_chunk(self) -> Optional[_Chunk]:
        """Next chunk with poisoned points filtered out (may finish sweep)."""
        while self._pending:
            chunk = self._pending.popleft()
            live_indices: List[int] = []
            for index in chunk.indices:
                if index in self._rows:
                    continue  # completed elsewhere (duplicate after requeue)
                if self._requeues.get(index, 0) > self.max_requeues:
                    self._poison(index)
                else:
                    live_indices.append(index)
            if live_indices:
                return _Chunk(
                    chunk_id=next(self._chunk_ids),
                    indices=live_indices,
                    points=[self.points[i] for i in live_indices],
                )
        return None

    async def _checkout_chunk(self) -> Optional[_Chunk]:
        async with self._cond:
            while True:
                if self._failure is not None:
                    return None
                chunk = self._pop_live_chunk()
                if chunk is not None:
                    self._note_queue_depth()
                    return chunk
                if self._complete():
                    self._cond.notify_all()
                    return None
                # no pending work, sweep unfinished: another worker holds
                # the remaining chunks — wait in case it dies and they
                # come back
                await self._cond.wait()

    async def _requeue(
        self,
        chunk: _Chunk,
        done: Set[int],
        reason: BaseException,
        blame: bool = True,
    ) -> None:
        async with self._cond:
            unfinished = [
                i for i in chunk.indices
                if i not in done and i not in self._rows
            ]
            if unfinished:
                # rows stream per point in order, so the first unfinished
                # index is the one being solved when the worker died —
                # blame it alone; the healthy tail of the chunk must not
                # inherit retry counts (it would get poisoned wholesale).
                # No blame at all when the chunk never reached the worker
                # (dispatch to an already-dead socket): no point was
                # being solved, so none earned a strike.
                if blame:
                    self._requeues[unfinished[0]] = (
                        self._requeues.get(unfinished[0], 0) + 1
                    )
                    if self._checkpoint is not None:
                        self._checkpoint.append_requeue(unfinished[0])
                self._pending.appendleft(
                    _Chunk(
                        chunk_id=next(self._chunk_ids),
                        indices=unfinished,
                        points=[self.points[i] for i in unfinished],
                    )
                )
                if self._trace is not None:
                    self._trace.incr("dist.requeues")
                    self._trace.event(
                        "dist.requeue",
                        index=unfinished[0],
                        n_points=len(unfinished),
                        blame=blame,
                        reason=type(reason).__name__,
                    )
                self._note_queue_depth()
                logger.warning(
                    "worker died mid-chunk (%s); requeued %d unfinished "
                    "point(s) starting at index %d",
                    reason,
                    len(unfinished),
                    unfinished[0],
                )
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # the per-worker protocol handler (asyncio server callback)
    # ------------------------------------------------------------------ #
    async def handle_worker(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        try:
            hello = await recv_message(reader)
            if hello.get("kind") != "hello":
                raise ProtocolError(f"expected hello, got {hello.get('kind')!r}")
            if hello.get("version") != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"protocol version mismatch: coordinator "
                    f"{PROTOCOL_VERSION}, worker {hello.get('version')}"
                )
            await send_message(
                writer,
                {
                    "kind": "template",
                    "model": self.model,
                    "metrics": self.metrics,
                    "telemetry": self._trace is not None,
                },
            )
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
            ProtocolError,
        ) as exc:
            logger.warning("worker %s rejected during handshake: %s", peer, exc)
            if isinstance(exc, ProtocolError):
                # tell the worker *why* (version mismatch, bad hello) —
                # otherwise its operator only sees a dropped connection
                # while the diagnosis sits in a log on another machine
                try:
                    await send_message(
                        writer, {"kind": "reject", "message": str(exc)}
                    )
                except (ConnectionError, OSError):
                    pass
            writer.close()
            return
        worker_label = hello.get("worker", str(peer))
        logger.info("worker %s joined", worker_label)
        async with self._cond:
            self._n_connected += 1
            self._n_ever_connected += 1
            self._cond.notify_all()
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # kernel-level dead-peer detection: a silent partition (no
            # RST ever arrives) still surfaces as a connection error
            # instead of hanging the chunk forever.  Tighten the probe
            # schedule where the platform allows it — the Linux default
            # (2h idle) would stall a sweep for hours first.
            sock.setsockopt(
                socket_module.SOL_SOCKET, socket_module.SO_KEEPALIVE, 1
            )
            for option, value in (
                ("TCP_KEEPIDLE", 30),
                ("TCP_KEEPINTVL", 10),
                ("TCP_KEEPCNT", 6),
            ):
                if hasattr(socket_module, option):
                    sock.setsockopt(
                        socket_module.IPPROTO_TCP,
                        getattr(socket_module, option),
                        value,
                    )
        chunk: Optional[_Chunk] = None
        chunk_sent = False
        done_in_chunk: Set[int] = set()
        # Per-point trace segments that arrived ahead of their row (see
        # protocol.py): merged only when the row is actually stored.
        segments: Dict[int, List[Dict[str, object]]] = {}
        t_joined = self._trace.now() if self._trace is not None else 0.0
        t_dispatch = 0.0
        t_first_row: Optional[float] = None
        try:
            while True:
                chunk = await self._checkout_chunk()
                if chunk is None:
                    try:
                        await send_message(writer, {"kind": "shutdown"})
                    except (ConnectionError, OSError):
                        pass
                    break
                done_in_chunk = set()
                chunk_sent = False
                await send_message(
                    writer,
                    {
                        "kind": "chunk",
                        "chunk_id": chunk.chunk_id,
                        "indices": chunk.indices,
                        "points": chunk.points,
                    },
                )
                chunk_sent = True
                if self._trace is not None:
                    t_dispatch = self._trace.now()
                    t_first_row = None
                    self._trace.incr("dist.chunks.dispatched")
                expected = set(chunk.indices)
                while True:
                    message = await recv_message(reader)
                    if message["kind"] == "telemetry":
                        if self._trace is not None:
                            # counter deltas measure solver work actually
                            # done, so they merge unconditionally; spans
                            # wait for their row (exactly-once per point)
                            counters = message.get("counters")
                            if counters:
                                self._trace.merge_segment(counters=counters)
                            spans = message.get("spans")
                            if spans and message.get("index") is not None:
                                segments[message["index"]] = spans
                    elif message["kind"] == "row":
                        index = message["index"]
                        if index not in expected:
                            raise ProtocolError(
                                f"row for index {index} outside chunk "
                                f"{chunk.chunk_id}"
                            )
                        done_in_chunk.add(index)
                        if self._trace is not None and t_first_row is None:
                            t_first_row = self._trace.now()
                        async with self._cond:
                            stored = self._store_row(
                                index, message["values"], message.get("error")
                            )
                            self._cond.notify_all()
                        spans = segments.pop(index, None)
                        if stored and spans and self._trace is not None:
                            self._trace.merge_segment(spans=spans)
                    elif message["kind"] == "fatal":
                        # a configuration error: every point and every
                        # worker would fail identically — abort the sweep
                        # with the worker's diagnosis
                        await self.abort(
                            RuntimeError(
                                f"worker {worker_label} hit a configuration "
                                f"error on point {message.get('index')}: "
                                f"{message.get('error_type')}: "
                                f"{message.get('message')}"
                            )
                        )
                        chunk = None
                        break
                    elif message["kind"] == "chunk_done":
                        missing = expected - done_in_chunk
                        if missing:
                            raise ProtocolError(
                                f"worker finished chunk {chunk.chunk_id} but "
                                f"never sent rows for {sorted(missing)}"
                            )
                        if self._trace is not None:
                            now = self._trace.now()
                            attrs: Dict[str, object] = {
                                "chunk_id": chunk.chunk_id,
                                "n_points": len(chunk.indices),
                                "label": worker_label,
                            }
                            if t_first_row is not None:
                                # dispatch latency: send to first row back
                                attrs["first_row_s"] = t_first_row - t_dispatch
                            self._trace.add_span(
                                "dist.chunk", t_dispatch, now, **attrs
                            )
                        chunk = None
                        break
                    else:
                        raise ProtocolError(
                            f"unexpected message {message['kind']!r} "
                            "while a chunk is out"
                        )
        except asyncio.CancelledError:
            # event-loop teardown (the sweep is already decided); exit
            # quietly so the cancellation is not logged as a server error
            pass
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
            ProtocolError,
        ) as exc:
            logger.warning("worker %s lost: %s", worker_label, exc)
            if chunk is not None:
                await self._requeue(chunk, done_in_chunk, exc, blame=chunk_sent)
        finally:
            async with self._cond:
                self._n_connected -= 1
                self._cond.notify_all()
            if self._trace is not None:
                self._trace.add_span(
                    "dist.worker",
                    t_joined,
                    self._trace.now(),
                    label=worker_label,
                )
            writer.close()
            logger.info("worker %s left", worker_label)
